"""Push-kernel throughput: seed scalar loop vs frontier-batched kernels.

The kernel layer (PR 5, ``repro.ppr.kernels``) replaced the pure-Python
one-node-at-a-time ``deque`` push with frontier-synchronous kernels and
a multi-source batched API. At several graph sizes this bench times

* ``scalar`` — the seed reference loop (``kernel="scalar"``), one push
  per Python iteration, extrapolated per-source from a couple of runs;
* ``single`` — the NumPy frontier kernel, one source per call;
* ``batch``  — the NumPy kernel over a 64-source batch, per-source;
* the numba kernel (same two measurements) when the optional
  dependency is importable.

Precision is ``r_max = 1e-7`` for forward push — the regime the
paper's scalability claims (Fig. 10) and STRAP-grade factorizations
live in, where the scalar loop's per-push interpreter overhead
dominates. A backward-push column rides along at its own default-ish
``1e-6``. Parity of every kernel against the scalar rows is recorded
within the additive residue bound. Results land in
``benchmarks/results/push_kernels.json`` for the CI artifact; the
final asserts pin the acceptance criteria — >= 10x single-source and
>= 30x 64-source-batch speedup at the >= 100k-node size on the NumPy
path alone.

Runnable standalone (``python benchmarks/bench_push_kernels.py``) or
via pytest (marked ``slow``).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import bench_scale, format_table
from repro.graph import powerlaw_community
from repro.ppr import HAS_NUMBA, backward_push_batch, forward_push_batch
from repro.rng import ensure_rng

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

SIZES = (10_000, 50_000, 100_000)
EDGE_FACTOR = 5
R_MAX = 1e-7
R_MAX_BACKWARD = 1e-6
BATCH = 64
SCALAR_SOURCES = 2       # ~10 s/source at 100k nodes: extrapolate
SINGLE_SOURCES = 4
SINGLE_TARGET = 10.0     # acceptance: NumPy single-source speedup
BATCH_TARGET = 30.0      # acceptance: NumPy 64-source-batch speedup
RESULTS_PATH = Path(__file__).parent / "results" / "push_kernels.json"


def _per_source(fn, sources, *, one_at_a_time: bool) -> float:
    start = time.perf_counter()
    if one_at_a_time:
        for source in sources:
            fn([source])
    else:
        fn(sources)
    return (time.perf_counter() - start) / len(sources)


def _measure(num_nodes: int, seed: int = 0) -> dict:
    graph, _ = powerlaw_community(num_nodes, EDGE_FACTOR * num_nodes,
                                  num_communities=16, seed=seed)
    rng = ensure_rng(seed + 1)
    sources = rng.integers(0, graph.num_nodes, BATCH)

    def forward(batch, kernel):
        return forward_push_batch(graph, np.asarray(batch), r_max=R_MAX,
                                  kernel=kernel)

    t_scalar = _per_source(
        lambda s: forward(s, "scalar"), sources[:SCALAR_SOURCES],
        one_at_a_time=True)
    t_single = _per_source(
        lambda s: forward(s, "numpy"), sources[:SINGLE_SOURCES],
        one_at_a_time=True)
    t_batch = _per_source(lambda s: forward(s, "numpy"), sources,
                          one_at_a_time=False)

    # parity: batch rows vs the scalar reference, within the additive
    # bound both sit inside (each is within sum(residue) of exact)
    est_scalar, res_scalar = forward(sources[:SCALAR_SOURCES], "scalar")
    est_batch, res_batch = forward(sources, "numpy")
    bound = (res_batch[:SCALAR_SOURCES].sum(axis=1)
             + res_scalar.sum(axis=1))
    diff = np.abs(est_batch[:SCALAR_SOURCES] - est_scalar).max(axis=1)
    parity_ok = bool(np.all(diff <= bound + 1e-12))

    # backward push rides along at one scalar target
    t_bwd_scalar = _per_source(
        lambda t: backward_push_batch(graph, np.asarray(t),
                                      r_max=R_MAX_BACKWARD,
                                      kernel="scalar"),
        sources[:1], one_at_a_time=True)
    t_bwd_batch = _per_source(
        lambda t: backward_push_batch(graph, np.asarray(t),
                                      r_max=R_MAX_BACKWARD,
                                      kernel="numpy"),
        sources[:16], one_at_a_time=False)

    row = {"nodes": graph.num_nodes, "edges": graph.num_edges,
           "scalar_seconds": round(t_scalar, 4),
           "single_seconds": round(t_single, 4),
           "batch_seconds": round(t_batch, 4),
           "single_speedup": round(t_scalar / t_single, 1),
           "batch_speedup": round(t_scalar / t_batch, 1),
           "backward_scalar_seconds": round(t_bwd_scalar, 4),
           "backward_batch_seconds": round(t_bwd_batch, 4),
           "backward_speedup": round(t_bwd_scalar / t_bwd_batch, 1),
           "parity_max_diff": float(diff.max()),
           "parity_ok": parity_ok}
    if HAS_NUMBA:    # pragma: no cover - optional-dependency CI leg
        forward(sources[:1], "numba")        # jit warm-up outside timing
        row["numba_single_seconds"] = round(_per_source(
            lambda s: forward(s, "numba"), sources[:SINGLE_SOURCES],
            one_at_a_time=True), 4)
        row["numba_batch_seconds"] = round(_per_source(
            lambda s: forward(s, "numba"), sources, one_at_a_time=False), 4)
        row["numba_single_speedup"] = round(
            t_scalar / row["numba_single_seconds"], 1)
        row["numba_batch_speedup"] = round(
            t_scalar / row["numba_batch_seconds"], 1)
    return row


def run_scaling(sizes=SIZES) -> list[dict]:
    rows = [_measure(n) for n in sizes]
    record = {"edge_factor": EDGE_FACTOR, "r_max": R_MAX,
              "r_max_backward": R_MAX_BACKWARD, "batch": BATCH,
              "alpha": 0.15, "numba": HAS_NUMBA, "rows": rows}
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n",
                            encoding="utf-8")

    title = (f"Local-PPR push kernels: seed scalar loop vs "
             f"frontier/batched (r_max={R_MAX}, batch={BATCH})")
    table = format_table(
        ["nodes", "scalar (s/src)", "single (s/src)", "batch (s/src)",
         "single x", "batch x", "backward x"],
        [[f"{r['nodes']:,}", f"{r['scalar_seconds']:.3f}",
          f"{r['single_seconds']:.4f}", f"{r['batch_seconds']:.4f}",
          f"{r['single_speedup']:.1f}", f"{r['batch_speedup']:.1f}",
          f"{r['backward_speedup']:.1f}"] for r in rows])
    report("push_kernels", title + "\n" + table)
    return rows


def test_push_kernel_scaling():
    sizes = tuple(max(2_000, int(n * bench_scale())) for n in SIZES)
    rows = run_scaling(sizes)
    for row in rows:
        assert row["parity_ok"], row
    largest = rows[-1]
    if largest["nodes"] >= 100_000:
        # acceptance criteria, NumPy path alone at >= 100k nodes
        assert largest["single_speedup"] >= SINGLE_TARGET, largest
        assert largest["batch_speedup"] >= BATCH_TARGET, largest


if __name__ == "__main__":
    for row in run_scaling():
        print(json.dumps(row))
