"""Streaming updates vs. per-batch full refits (the PR-3 acceptance).

Replays ``vk_sim``'s future edges (paper Appendix C / Figure 9) in
``NUM_BATCHES`` timestamped delta batches through two pipelines that
both end each batch with a published serving store:

* ``streaming`` — one cold fit, then
  :class:`repro.streaming.StreamingUpdater` per batch: delta-log
  compaction, local incremental PPR sketch repair, warm reweighting,
  versioned publish;
* ``full refit`` — the status quo ante: after every batch, a cold
  ``NRP.fit`` on the accumulated graph plus a store export.

Alongside wall-clock it measures final-state quality: mean top-10
neighbor overlap and pair-score correlation of the streaming model
against a cold refit on the *final* graph. The asserts pin the
acceptance criteria at the full ``vk_sim`` scale (6k nodes / 120k old
edges): >= 3x end-to-end speedup, >= 0.95 top-10 overlap. The whole
trajectory lands in ``benchmarks/results/streaming.json`` for CI to
archive next to the fit-scaling artifact.

Runnable standalone (``python benchmarks/bench_streaming.py``) or via
pytest (marked ``slow``).
"""

import json
import math
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import NRP
from repro.bench import bench_scale, format_table
from repro.datasets import load_evolving_dataset
from repro.io import export_store
from repro.streaming import StreamingConfig, StreamingUpdater

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

DATASET = "vk_sim"
NUM_BATCHES = 10
DIM = 64
ELL2 = 10                    # the paper's default reweighting depth
SEED = 0
TOPK = 10
OVERLAP_SAMPLE = 1500
RESULTS_PATH = Path(__file__).parent / "results" / "streaming.json"

MODEL_KW = dict(dim=DIM, ell2=ELL2, seed=SEED)
# One warm sweep pair per batch (drift stays ~1e-2 on this stream) and a
# 1e-6 residue threshold: basis staleness dominates the error budget at
# ~1e-2 score scale, so pushing residues below 1e-6 buys nothing.
STREAM_CONFIG = StreamingConfig(warm_epochs=1, refresh_tol=1e-6)


def _overlap_and_corr(model_a, model_b, num_nodes: int) -> tuple[float, float]:
    rng = np.random.default_rng(SEED)
    nodes = rng.choice(num_nodes, size=min(OVERLAP_SAMPLE, num_nodes),
                       replace=False)
    ea = model_a.to_serving(cache_size=0)
    eb = model_b.to_serving(cache_size=0)
    ids_a, _ = ea.topk(nodes, TOPK)
    ids_b, _ = eb.topk(nodes, TOPK)
    overlap = float(np.mean([
        len(set(a.tolist()) & set(b.tolist())) / TOPK
        for a, b in zip(ids_a, ids_b)]))
    src = rng.integers(0, num_nodes, 4000)
    dst = rng.integers(0, num_nodes, 4000)
    corr = float(np.corrcoef(model_a.score_pairs(src, dst),
                             model_b.score_pairs(src, dst))[0, 1])
    return overlap, corr


def run_streaming(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    data = load_evolving_dataset(DATASET, scale=scale)
    graph = data.old_graph
    batch_size = math.ceil(data.num_new_edges / NUM_BATCHES)
    batches = list(data.delta_batches(batch_size))

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # ---------------- streaming path -----------------------------
        model = NRP(keep_factor_state=True, **MODEL_KW)
        start = time.perf_counter()
        updater = StreamingUpdater(graph, model, config=STREAM_CONFIG)
        stream_fit_seconds = time.perf_counter() - start
        batch_records = []
        start = time.perf_counter()
        for batch in batches:
            rec = updater.apply_batch(batch.src, batch.dst)
            updater.publish(tmp / "stream_store", keep=2)
            batch_records.append(rec)
        stream_seconds = time.perf_counter() - start

        # ---------------- per-batch full refits ----------------------
        refit_seconds = []
        cold = None
        start_all = time.perf_counter()
        for i in range(len(batches)):
            start = time.perf_counter()
            # what a no-streaming pipeline does: rebuild the accumulated
            # graph, refit from scratch, re-export the store
            graph_i = _accumulate(graph, batches[:i + 1])
            cold = NRP(**MODEL_KW).fit(graph_i)
            export_store(cold, tmp / "cold_store")
            refit_seconds.append(time.perf_counter() - start)
        full_seconds = time.perf_counter() - start_all

    # ---------------- final-state quality ----------------------------
    final_graph = updater.graph
    assert cold is not None
    assert final_graph.num_edges == graph.num_edges + sum(
        len(b.src) for b in batches)
    overlap, corr = _overlap_and_corr(updater.model, cold,
                                      final_graph.num_nodes)

    speedup = full_seconds / max(stream_seconds, 1e-9)
    record = {
        "dataset": DATASET, "scale": scale, "dim": DIM, "ell2": ELL2,
        "num_nodes": graph.num_nodes, "old_edges": graph.num_edges,
        "new_edges": data.num_new_edges, "num_batches": len(batches),
        "batch_size": batch_size,
        "stream_fit_seconds": round(stream_fit_seconds, 3),
        "stream_seconds": round(stream_seconds, 3),
        "full_refit_seconds": round(full_seconds, 3),
        "per_batch_refit_seconds": [round(s, 3) for s in refit_seconds],
        "speedup": round(speedup, 2),
        "escalations": updater.num_escalations,
        "topk_overlap": round(overlap, 4),
        "score_corr": round(corr, 4),
        "batches": batch_records,
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n",
                            encoding="utf-8")

    rows = [[f"{r['batch']}", f"{r['arc_deltas']}", f"{r['touched']}",
             f"{r['sweeps']}", "yes" if r["escalated"] else "no",
             f"{r['seconds']:.3f}", f"{refit_seconds[i]:.3f}"]
            for i, r in enumerate(batch_records)]
    title = (f"Streaming updates on {DATASET} "
             f"(n={graph.num_nodes:,}, |E_old|={graph.num_edges:,}, "
             f"|E_new|={data.num_new_edges:,}, {len(batches)} batches, "
             f"dim={DIM})")
    summary = (f"streaming {stream_seconds:.2f}s vs per-batch refits "
               f"{full_seconds:.2f}s -> {speedup:.2f}x | top-{TOPK} "
               f"overlap {overlap:.3f}, score corr {corr:.3f}, "
               f"{updater.num_escalations} escalations")
    table = format_table(
        ["batch", "deltas", "touched", "sweeps", "escalated",
         "stream (s)", "refit (s)"], rows)
    report("streaming", title + "\n" + table + "\n" + summary)
    return record


def _accumulate(base, batches):
    """The graph after applying ``batches`` to ``base`` (cold pipeline)."""
    from repro.graph import add_arcs
    graph = base
    for batch in batches:
        graph = add_arcs(graph, batch.src, batch.dst)
    return graph


def test_streaming_vs_full_refit():
    record = run_streaming()
    if record["num_nodes"] >= 6000 and record["num_batches"] >= 10:
        # acceptance criteria at the full vk_sim scale
        assert record["speedup"] >= 3.0, (
            f"streaming only {record['speedup']}x faster than per-batch "
            f"full refits")
        assert record["topk_overlap"] >= 0.95, (
            f"top-10 overlap {record['topk_overlap']} < 0.95 against the "
            f"cold refit on the final graph")


if __name__ == "__main__":
    print(json.dumps(run_streaming(), indent=2))
