"""Ablations of NRP's own design choices (DESIGN.md section 6).

1. Weight-update mode: the paper's sequential Gauss-Seidel sweep vs the
   vectorized Jacobi variant (quality/time tradeoff).
2. b1 handling: the paper's AM-GM approximation (Eq. 14) vs the exact
   b1 available from Lambda at no asymptotic extra cost.
3. SVD initialization: BKSVD (paper) vs plain randomized SVD vs exact.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, fit_timed, format_table
from repro.core import NRP
from repro.datasets import load_dataset
from repro.graph import link_prediction_split
from repro.rng import spawn_rngs
from repro.tasks import evaluate_link_prediction


def _split():
    data = load_dataset("wiki_sim", scale=bench_scale() * 0.3)
    split_rng, _ = spawn_rngs(0, 2)
    return link_prediction_split(data.graph, seed=split_rng)


def test_ablation_update_mode_and_b1(benchmark):
    split = _split()

    def run():
        rows = []
        for mode, exact_b1 in (("sequential", False), ("sequential", True),
                               ("jacobi", False), ("jacobi", True)):
            model = NRP(dim=64, lam=0.1, update_mode=mode,
                        exact_b1=exact_b1, seed=0)
            fitted = fit_timed(model, split.train_graph)
            auc = evaluate_link_prediction(fitted.embedder, split,
                                           seed=1).auc
            rows.append([f"{mode}, b1={'exact' if exact_b1 else 'amgm'}",
                         auc, fitted.seconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_update_mode",
           "\nAblation - weight update mode x b1 handling (wiki_sim)\n"
           + format_table(["variant", "AUC", "seconds"], rows))
    aucs = [r[1] for r in rows]
    # all variants land in the same quality band (the approximation and
    # the Jacobi relaxation are benign), max spread 2% AUC
    assert max(aucs) - min(aucs) < 0.02


def test_ablation_svd_backend(benchmark):
    split = _split()

    def run():
        rows = []
        for svd in ("bksvd", "rsvd", "exact"):
            model = NRP(dim=64, lam=0.1, svd=svd, seed=0)
            fitted = fit_timed(model, split.train_graph)
            auc = evaluate_link_prediction(fitted.embedder, split,
                                           seed=1).auc
            rows.append([svd, auc, fitted.seconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_svd",
           "\nAblation - SVD initialization backend (wiki_sim)\n"
           + format_table(["backend", "AUC", "seconds"], rows))
    table = {r[0]: r[1] for r in rows}
    # BKSVD should track the exact factorization closely (Theorem 1)
    assert abs(table["bksvd"] - table["exact"]) < 0.02
