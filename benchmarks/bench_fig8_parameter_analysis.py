"""Figure 8: NRP link-prediction AUC vs its four hyperparameters.

Reproduces the paper's parameter study: AUC vs alpha (8a), vs the BKSVD
error eps (8b), vs ell1 (8c), vs ell2 (8d). Expected shapes:
* alpha: best at 0.1-0.2, degrading toward 0.9;
* eps: flat-then-degrading as the SVD gets sloppier;
* ell1: rising steeply to ~10-15, then flat;
* ell2: large jump from 0 (reweighting disabled) to ~5-10, then flat —
  the paper's central ablation.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, format_series_block
from repro.core import NRP
from repro.datasets import load_dataset
from repro.graph import link_prediction_split
from repro.rng import spawn_rngs
from repro.tasks import evaluate_link_prediction

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
EPSES = (0.1, 0.3, 0.5, 0.7, 0.9)
ELL1S = (1, 2, 5, 10, 20, 30)
ELL2S = (0, 1, 2, 5, 10, 20)
DATASETS = ("wiki_sim", "blog_sim")


def _auc(split, **kwargs) -> float:
    defaults = dict(dim=64, lam=0.1, seed=0)
    defaults.update(kwargs)
    model = NRP(**defaults).fit(split.train_graph)
    return evaluate_link_prediction(model, split, seed=1).auc


def test_fig8_parameters(benchmark):
    def run():
        out = {}
        for name in DATASETS:
            data = load_dataset(name, scale=bench_scale() * 0.3)
            split_rng, _ = spawn_rngs(0, 2)
            split = link_prediction_split(data.graph, seed=split_rng)
            out[name] = {
                "alpha": [_auc(split, alpha=a) for a in ALPHAS],
                "eps": [_auc(split, eps=e) for e in EPSES],
                "ell1": [_auc(split, ell1=l) for l in ELL1S],
                "ell2": [_auc(split, ell2=l) for l in ELL2S],
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, series in results.items():
        report(f"fig8a_alpha_{name}", format_series_block(
            f"Figure 8a - AUC vs alpha ({name})", "alpha", ALPHAS,
            {"NRP": series["alpha"]}))
        report(f"fig8b_eps_{name}", format_series_block(
            f"Figure 8b - AUC vs eps ({name})", "eps", EPSES,
            {"NRP": series["eps"]}))
        report(f"fig8c_ell1_{name}", format_series_block(
            f"Figure 8c - AUC vs ell1 ({name})", "ell1", ELL1S,
            {"NRP": series["ell1"]}))
        report(f"fig8d_ell2_{name}", format_series_block(
            f"Figure 8d - AUC vs ell2 ({name})", "ell2", ELL2S,
            {"NRP": series["ell2"]}))

    for name, series in results.items():
        # 8a: small alpha beats large alpha
        assert series["alpha"][0] > series["alpha"][-1]
        # 8c: ell1 = 20 far better than ell1 = 1, then saturates
        assert series["ell1"][4] > series["ell1"][0]
        assert abs(series["ell1"][5] - series["ell1"][4]) < 0.02
        # 8d: reweighting on (ell2 = 10) beats off (ell2 = 0); saturates
        assert series["ell2"][4] > series["ell2"][0]
        assert abs(series["ell2"][5] - series["ell2"][4]) < 0.02
