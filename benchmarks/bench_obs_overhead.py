"""Observability tax on the hot serving path (PR-6 acceptance).

Serves the same Zipf-skewed top-k query mix (caches off) through a
2-way sharded engine twice per round: once with :mod:`repro.obs`
collection disabled — the default, where every instrumented call site
reduces to a single branch — and once with full metrics + span
collection enabled.

Measuring the tax honestly on a small shared CI runner takes some
care: wall-clock legs on a throttled container swing 2x for reasons
that have nothing to do with instrumentation. So each leg is measured
in **process CPU time** (work done, immune to being scheduled out),
the two modes run back-to-back within every round with the order
flipped round to round, and the overhead is the **median of the
per-round enabled/disabled cost ratios**: the two legs of a round
share whatever thermal/frequency state the machine is in, so slow
drift cancels within each pair instead of biasing one mode.

Acceptance: enabled-mode CPU cost stays within ``MAX_OVERHEAD`` (3%)
of disabled mode. Disabled mode *is* the baseline — the guard branch
is the only instruction the instrumentation adds there, which is why
no uninstrumented build is needed for comparison.

Artifacts for CI's slow job:

* ``benchmarks/results/obs_overhead.json`` — per-round leg costs,
  medians, measured overhead;
* ``benchmarks/results/obs_snapshot.json`` / ``.prom`` — the metrics
  snapshot collected during the final enabled leg, so the artifact
  doubles as a living example of the exporter formats.

Runnable standalone (``python benchmarks/bench_obs_overhead.py``) or
via pytest (marked ``slow``).
"""

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests" / "stress"))
from harness import run_storm                               # noqa: E402

from repro import obs                                       # noqa: E402
from repro.bench import bench_scale, format_table           # noqa: E402
from repro.io import EmbeddingBundle                        # noqa: E402
from repro.parallel import available_cpus                   # noqa: E402
from repro.serving import ShardedQueryEngine                # noqa: E402

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

NUM_NODES = 20_000
DIM = 64
K = 10
BATCH = 64
SHARDS = 2
OPS_PER_LEG = 100
ROUNDS = 10
MAX_OVERHEAD = 0.03
RESULTS_DIR = Path(__file__).parent / "results"


def _database(n: int) -> EmbeddingBundle:
    rng = np.random.default_rng(0)
    return EmbeddingBundle(
        name="obs-bench", directional=False,
        embedding=rng.standard_normal((n, DIM)) / np.sqrt(DIM))


def _zipf_batches(n: int, batches: int) -> np.ndarray:
    """Skewed query traffic: a few hot sources dominate, like prod."""
    rng = np.random.default_rng(1)
    ranks = rng.zipf(1.3, size=(batches, BATCH))
    return ((ranks - 1) % n).astype(np.int64)


def _leg_cpu_seconds(engine, batches: np.ndarray, ops: int) -> float:
    """One measured leg: fixed op count, returns process CPU seconds.

    The timed loop runs inline rather than through ``run_storm`` — the
    harness spawns fresh reader threads per call, and on a 1-2 CPU
    runner that scheduler churn swamps the few-percent signal this
    bench exists to resolve. The storm harness still drives the
    (untimed) metric-population pass below and the obs integration
    tests.
    """
    num_batches = len(batches)
    start = time.process_time()
    for i in range(ops):
        ids, _ = engine.topk(batches[i % num_batches], K)
        assert ids.shape == (BATCH, K)
    return time.process_time() - start


def run_bench(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    n = max(1000, int(NUM_NODES * scale))
    engine = ShardedQueryEngine(_database(n), shards=SHARDS, cache_size=0)
    batches = _zipf_batches(n, 128)
    ops = max(10, int(OPS_PER_LEG * min(1.0, scale)))

    # warm both code paths (thread pools, numpy buffers) before timing
    prev = obs.set_enabled(False)
    _leg_cpu_seconds(engine, batches, ops // 2)
    obs.set_enabled(True)
    _leg_cpu_seconds(engine, batches, ops // 2)

    legs = {"disabled": [], "enabled": []}

    def leg(mode: str) -> None:
        obs.set_enabled(mode == "enabled")
        legs[mode].append(_leg_cpu_seconds(engine, batches, ops))

    try:
        for round_idx in range(ROUNDS):
            # flip which mode goes first so slow drift (frequency
            # scaling, cache pressure) cancels instead of biasing
            first, second = (("disabled", "enabled") if round_idx % 2 == 0
                             else ("enabled", "disabled"))
            obs.reset()
            leg(first)
            leg(second)
        # round out the snapshot with the non-serving tiers (untimed:
        # kernel pushes and a cached engine, so the artifact shows
        # per-regime counters and a cache hit rate too)
        obs.set_enabled(True)
        from repro.graph import powerlaw_community
        from repro.ppr import forward_push_batch
        push_graph, _ = powerlaw_community(2000, 12000,
                                           num_communities=4, seed=2)
        forward_push_batch(push_graph, [0, 1, 2, 3], r_max=1e-6)
        cached = ShardedQueryEngine(_database(n), shards=SHARDS,
                                    cache_size=256)

        def storm_work(tid, i, rng):
            cached.topk(batches[i % 4][:8], K)   # repeats become hits

        run_storm(storm_work, threads=2, iterations=10,
                  metrics_label="obs_bench").raise_errors()
        cached.cache_stats()       # publishes the hit-rate gauge
        # export the final enabled leg's series as living format examples
        RESULTS_DIR.mkdir(exist_ok=True)
        obs.write_snapshot(RESULTS_DIR / "obs_snapshot.json",
                           extra={"bench": "obs_overhead"})
        (RESULTS_DIR / "obs_snapshot.prom").write_text(
            obs.to_prometheus_text(), encoding="utf-8")
    finally:
        obs.set_enabled(prev)
        obs.reset()

    median = {mode: float(np.median(vals)) for mode, vals in legs.items()}
    ratios = [e / d for e, d in zip(legs["enabled"], legs["disabled"])]
    overhead = float(np.median(ratios)) - 1.0

    record = {
        "num_nodes": n, "dim": DIM, "k": K, "batch": BATCH,
        "shards": SHARDS, "ops_per_leg": ops, "rounds": ROUNDS,
        "scale": scale, "cpus": available_cpus(),
        "cpu_seconds": {mode: [round(v, 4) for v in vals]
                        for mode, vals in legs.items()},
        "median_cpu_seconds": {mode: round(v, 4)
                               for mode, v in median.items()},
        "round_ratios": [round(r, 4) for r in ratios],
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    (RESULTS_DIR / "obs_overhead.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8")

    title = (f"Observability overhead on sharded top-k "
             f"(n={n:,}, dim={DIM}, batch={BATCH}, {SHARDS} shards, "
             f"{ops} ops/leg, median paired ratio over {ROUNDS} "
             f"interleaved rounds)")
    table = format_table(
        ["mode", "median CPU s/leg", "overhead"],
        [["obs disabled", f"{median['disabled']:.3f}", "baseline"],
         ["obs enabled", f"{median['enabled']:.3f}",
          f"{overhead * 100:+.2f}%"]])
    report("obs_overhead", title + "\n" + table)
    return record


def test_obs_overhead_under_budget():
    record = run_bench()
    assert record["median_cpu_seconds"]["enabled"] > 0
    assert record["overhead"] < MAX_OVERHEAD, (
        f"enabled-mode observability costs "
        f"{record['overhead'] * 100:.2f}% CPU "
        f"(budget {MAX_OVERHEAD * 100:.0f}%)")
    # the enabled legs actually collected: snapshot must show the
    # serving/router series, otherwise the bench measured nothing
    snap = json.loads((RESULTS_DIR / "obs_snapshot.json").read_text())
    counters = {c["name"] for c in snap["counters"]}
    assert {"router_fanout_total", "kernel_regime_iterations_total",
            "serving_cache_hits_total"} <= counters
    [topk] = [h for h in snap["histograms"]
              if h["name"] == "serving_topk_seconds"]
    assert topk["p50"] is not None and topk["p99"] is not None
    prom = (RESULTS_DIR / "obs_snapshot.prom").read_text()
    assert "serving_cache_hit_rate" in prom
    assert 'span_total{name="router.shard"' in prom


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
