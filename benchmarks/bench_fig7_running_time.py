"""Figure 7: embedding construction time vs k (single thread).

Times every scalable method across k and the full roster once at
k = 64. Expected shape: RandNE / ProNE / AROPE / ApproxPPR fastest,
NRP close behind, walk- and neural-based methods orders of magnitude
slower — mirroring the paper's log-scale Figure 7.
"""

import pytest

from conftest import report
from repro.bench import (FULL_METHOD_SET, bench_scale, build_method,
                         fit_timed, format_series_block, format_table)
from repro.datasets import load_dataset

SWEEP_METHODS = ("nrp", "approxppr", "strap", "arope", "randne", "prone")
SWEEP_DIMS = (16, 32, 64, 128, 256)


def test_fig7_time_vs_k(benchmark):
    data = load_dataset("wiki_sim", scale=bench_scale() * 0.35)

    def run():
        series = {}
        for method in SWEEP_METHODS:
            series[method] = [
                fit_timed(build_method(method, k, seed=0),
                          data.graph).seconds
                for k in SWEEP_DIMS]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig7_time_vs_k",
           format_series_block(
               "Figure 7 - construction seconds vs k (wiki_sim)",
               "k", SWEEP_DIMS, series))
    # time grows with k but stays sane
    assert series["nrp"][-1] >= series["nrp"][0]


def test_fig7_full_roster_times(benchmark):
    data = load_dataset("wiki_sim", scale=bench_scale() * 0.35)

    def run():
        rows = []
        for method in FULL_METHOD_SET:
            try:
                rows.append([method,
                             fit_timed(build_method(method, 64, seed=0),
                                       data.graph).seconds])
            except Exception:
                rows.append([method, float("nan")])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rows.sort(key=lambda r: r[1] if r[1] == r[1] else 1e9)
    report("fig7_roster_times",
           "\nFigure 7 - full roster construction seconds (k=64, "
           "wiki_sim)\n" + format_table(["method", "seconds"], rows))
    times = {r[0]: r[1] for r in rows}
    # the paper's headline: NRP orders faster than walk-based learning
    assert times["nrp"] < times["deepwalk"]
    assert times["nrp"] < times["node2vec"]
