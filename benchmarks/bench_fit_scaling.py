"""Fit-pipeline scaling: the seed NRP.fit path vs the chunked engine.

PR-1 moved the serving tier off the hot path; this bench tracks the
remaining bottleneck, offline fitting. At several graph sizes it times

* ``seed`` — ``NRP(dim)`` exactly as the original single-pass path runs
  it (per-node Python sweeps, one-shot sparse products);
* ``chunked`` — ``NRP(dim, chunk_size=8192, workers=4)``: row-chunked
  sparse ApproxPPR plus the chunk-precomputed reweighting sweeps.

Alongside wall-clock it records the parity between the two embeddings
(the chunked engine's contract is <= 1e-8 max abs diff) and writes the
whole trajectory to ``benchmarks/results/fit_scaling.json`` so CI can
archive it. The final asserts pin the acceptance criteria: >= 2x at the
>= 50k-node size, parity within tolerance everywhere.

Runnable standalone (``python benchmarks/bench_fit_scaling.py``) or via
pytest (marked ``slow``).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import NRP
from repro.bench import bench_scale, format_table
from repro.graph import powerlaw_community
from repro.parallel import available_cpus

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

SIZES = (10_000, 25_000, 50_000)
DIM = 32
EDGE_FACTOR = 5
CHUNK_SIZE = 8192
WORKERS = 4
PARITY_TOL = 1e-8
RESULTS_PATH = Path(__file__).parent / "results" / "fit_scaling.json"


def _measure(num_nodes: int, seed: int = 0) -> dict:
    graph, _ = powerlaw_community(num_nodes, EDGE_FACTOR * num_nodes,
                                  num_communities=16, seed=seed)
    start = time.perf_counter()
    seed_model = NRP(dim=DIM, seed=seed).fit(graph)
    seed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    chunked_model = NRP(dim=DIM, seed=seed, chunk_size=CHUNK_SIZE,
                        workers=WORKERS).fit(graph)
    chunked_seconds = time.perf_counter() - start

    max_diff = max(
        float(np.abs(seed_model.forward_ - chunked_model.forward_).max()),
        float(np.abs(seed_model.backward_ - chunked_model.backward_).max()))
    return {"nodes": graph.num_nodes, "edges": graph.num_edges,
            "seed_seconds": round(seed_seconds, 3),
            "chunked_seconds": round(chunked_seconds, 3),
            "speedup": round(seed_seconds / chunked_seconds, 2),
            "max_abs_diff": max_diff}


def run_scaling(sizes=SIZES) -> list[dict]:
    rows = [_measure(n) for n in sizes]
    record = {"dim": DIM, "edge_factor": EDGE_FACTOR,
              "chunk_size": CHUNK_SIZE, "workers": WORKERS,
              "available_cpus": available_cpus(), "rows": rows}
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n",
                            encoding="utf-8")

    title = (f"NRP.fit scaling: seed path vs chunked engine "
             f"(dim={DIM}, chunk={CHUNK_SIZE}, workers={WORKERS})")
    table = format_table(
        ["nodes", "edges", "seed fit (s)", "chunked fit (s)", "speedup",
         "max |diff|"],
        [[f"{r['nodes']:,}", f"{r['edges']:,}", f"{r['seed_seconds']:.2f}",
          f"{r['chunked_seconds']:.2f}", f"{r['speedup']:.2f}x",
          f"{r['max_abs_diff']:.1e}"] for r in rows])
    report("fit_scaling", title + "\n" + table)
    return rows


def test_fit_scaling():
    sizes = tuple(max(2_000, int(n * bench_scale())) for n in SIZES)
    rows = run_scaling(sizes)
    for row in rows:
        assert row["max_abs_diff"] <= PARITY_TOL
    largest = rows[-1]
    if largest["nodes"] >= 50_000:
        # acceptance criterion: >= 2x on a >= 50k-node graph
        assert largest["speedup"] >= 2.0, (
            f"chunked fit only {largest['speedup']}x faster at "
            f"{largest['nodes']} nodes")


if __name__ == "__main__":
    for row in run_scaling():
        print(json.dumps(row))
