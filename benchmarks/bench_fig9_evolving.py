"""Table 4 + Figure 9: link prediction on evolving graphs (VK / Digg
analogues) — embed the old snapshot, predict the genuinely-new edges.

Expected shape: PPR-family methods (NRP, STRAP, APP, VERSE) competitive
on the undirected VK analogue; NRP ahead on the directed Digg analogue
where single-vector methods cannot represent edge direction.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, evolving_auc, format_table
from repro.datasets import load_evolving_dataset

METHODS = ("nrp", "approxppr", "strap", "app", "verse", "arope", "randne")


@pytest.mark.parametrize("dataset_name", ("vk_sim", "digg_sim"))
def test_fig9_evolving(benchmark, dataset_name):
    data = load_evolving_dataset(dataset_name, scale=bench_scale() * 0.3)

    def run():
        rows = []
        for method in METHODS:
            auc = evolving_auc(method, data.old_graph, data.new_src,
                               data.new_dst, 64, seed=0)
            rows.append([method, auc])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rows.sort(key=lambda r: -r[1])
    g = data.old_graph
    report(f"fig9_{dataset_name}",
           f"\nFigure 9 / Table 4 - new-link prediction on {dataset_name} "
           f"(n={g.num_nodes}, |E_old|={g.num_edges}, "
           f"|E_new|={data.num_new_edges})\n"
           + format_table(["method", "AUC"], rows))
    table = {r[0]: r[1] for r in rows}
    assert table["nrp"] > 0.55                       # real signal captured
    assert table["nrp"] >= table["approxppr"] - 0.02  # reweighting no worse
