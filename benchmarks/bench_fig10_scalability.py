"""Figure 10: scalability on Erdos-Renyi graphs.

The paper fixes one of (n, m) and sweeps the other, showing NRP's
running time grows linearly in both. We reproduce the sweep at laptop
scale and check near-linear growth (time ratio between the largest and
smallest configuration stays close to the size ratio).
"""

import pytest

from conftest import report
from repro.bench import bench_scale, fit_timed, format_series_block
from repro.core import NRP
from repro.graph import erdos_renyi

N_SWEEP = (5_000, 10_000, 15_000, 20_000)      # fixed m
M_FIXED = 60_000
M_SWEEP = (30_000, 60_000, 90_000, 120_000)    # fixed n
N_FIXED = 10_000


def _nrp() -> NRP:
    # ell2 reduced to keep the sweep quick; scaling in n is unaffected
    return NRP(dim=32, ell2=5, lam=0.1, seed=0)


def test_fig10a_vary_nodes(benchmark):
    scale = bench_scale()

    def run():
        times = []
        for n in N_SWEEP:
            graph = erdos_renyi(int(n * scale), int(M_FIXED * scale),
                                seed=17)
            times.append(fit_timed(_nrp(), graph).seconds)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig10a_nodes", format_series_block(
        f"Figure 10a - NRP seconds vs n (m={M_FIXED})", "n", N_SWEEP,
        {"NRP": times}))
    # near-linear: 4x nodes should cost well under ~10x time
    assert times[-1] < 10.0 * max(times[0], 1e-3)
    assert times[-1] > times[0] * 0.8              # and it does grow


def test_fig10b_vary_edges(benchmark):
    scale = bench_scale()

    def run():
        times = []
        for m in M_SWEEP:
            graph = erdos_renyi(int(N_FIXED * scale), int(m * scale),
                                seed=23)
            times.append(fit_timed(_nrp(), graph).seconds)
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig10b_edges", format_series_block(
        f"Figure 10b - NRP seconds vs m (n={N_FIXED})", "m", M_SWEEP,
        {"NRP": times}))
    assert times[-1] < 10.0 * max(times[0], 1e-3)
