"""Figure 11: NRP running time vs its hyperparameters.

Expected shapes (matching the complexity
O((log n / eps + ell1) m k' + log n / eps n k'^2 + ell2 n k'^2)):
time grows with ell1 and ell2, shrinks as eps grows (fewer Krylov
iterations), and is nearly flat in alpha.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, fit_timed, format_series_block
from repro.core import NRP
from repro.datasets import load_dataset

ELL1S = (1, 10, 20, 40, 60)
ELL2S = (0, 2, 5, 10, 20)
ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9)
EPSES = (0.1, 0.3, 0.5, 0.7, 0.9)


def test_fig11_runtime_vs_parameters(benchmark):
    # the denser TWeibo analogue, where the ell1 propagation term
    # (ell1 * m * k') is visible next to the BKSVD cost
    data = load_dataset("tweibo_sim", scale=bench_scale() * 0.25)
    graph = data.graph

    def time_with(**kwargs):
        defaults = dict(dim=128, lam=0.1, seed=0)
        defaults.update(kwargs)
        return fit_timed(NRP(**defaults), graph).seconds

    def run():
        return {
            "ell1": [time_with(ell1=v) for v in ELL1S],
            "ell2": [time_with(ell2=v) for v in ELL2S],
            "alpha": [time_with(alpha=v) for v in ALPHAS],
            "eps": [time_with(eps=v) for v in EPSES],
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig11a_ell1", format_series_block(
        "Figure 11a - NRP seconds vs ell1 (tweibo_sim)", "ell1", ELL1S,
        {"NRP": series["ell1"]}))
    report("fig11b_ell2", format_series_block(
        "Figure 11b - NRP seconds vs ell2 (tweibo_sim)", "ell2", ELL2S,
        {"NRP": series["ell2"]}))
    report("fig11c_alpha", format_series_block(
        "Figure 11c - NRP seconds vs alpha (tweibo_sim)", "alpha", ALPHAS,
        {"NRP": series["alpha"]}))
    report("fig11d_eps", format_series_block(
        "Figure 11d - NRP seconds vs eps (tweibo_sim)", "eps", EPSES,
        {"NRP": series["eps"]}))

    assert series["ell1"][-1] > series["ell1"][0]       # grows with ell1
    assert series["ell2"][-1] > series["ell2"][0]       # grows with ell2
    # flat-ish in alpha: max/min well inside the ell2 growth factor
    ratio = max(series["alpha"]) / max(min(series["alpha"]), 1e-6)
    assert ratio < 3.0
