"""Benchmark-suite plumbing.

Each bench registers paper-style result tables via :func:`report`; they
are printed in the terminal summary (so ``pytest benchmarks/
--benchmark-only`` shows them alongside pytest-benchmark's timing table)
and persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

_BLOCKS: list[str] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, block: str) -> None:
    """Register a result table for the terminal summary + results dir."""
    _BLOCKS.append(block)
    _RESULTS_DIR.mkdir(exist_ok=True)
    with open(_RESULTS_DIR / f"{name}.txt", "w", encoding="utf-8") as fh:
        fh.write(block + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _BLOCKS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for block in _BLOCKS:
        terminalreporter.write_line(block)
