"""Figure 5: graph reconstruction precision@K.

All-pairs candidate sweep on the Wiki/BlogCatalog analogues (the
paper's protocol for the small graphs), precision@K for K up to 10^4.
Expected shape: NRP stays high as K grows while PPR-based and
projection-based competitors decay faster.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, build_method, format_series_block
from repro.datasets import load_dataset
from repro.tasks import evaluate_reconstruction

METHODS = ("nrp", "approxppr", "strap", "arope", "randne", "prone", "verse")
KS = (10, 100, 1000, 10_000)
DATASETS = ("wiki_sim", "blog_sim")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig5_reconstruction(benchmark, dataset_name):
    data = load_dataset(dataset_name, scale=bench_scale() * 0.35)

    def run():
        series = {}
        for method in METHODS:
            model = build_method(method, 64, seed=0).fit(data.graph)
            result = evaluate_reconstruction(model, data.graph, ks=KS,
                                             seed=0)
            series[method] = [result.precision[k] for k in KS]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig5_{dataset_name}",
           format_series_block(
               f"Figure 5 - reconstruction precision@K ({dataset_name}, "
               f"all pairs)", "K", KS, series))
    # NRP >= every PPR-based method at the large-K end (paper's margin)
    for rival in ("approxppr", "verse", "strap"):
        assert series["nrp"][-1] >= series[rival][-1] - 0.02
    # precision@10 should be (near-)perfect for NRP
    assert series["nrp"][0] >= 0.8
