"""Figure 4: link-prediction AUC vs embedding dimensionality k.

Two parts, as in the paper:
* the *full roster* (NRP + 18 competitors + ApproxPPR/Spectral) at the
  default k on the two small analogues (Wiki/BlogCatalog stand-ins);
* a k-sweep for the scalable methods on both analogues.

Expected shapes: NRP top or tied-top everywhere, strictly above every
PPR-based method (ApproxPPR, APP, VERSE, STRAP); walk/neural methods
orders slower (that part is Fig. 7's bench).
"""

import pytest

from conftest import report
from repro.bench import (FULL_METHOD_SET, bench_scale, format_series_block,
                         link_prediction_auc)
from repro.datasets import format_dataset_table, load_dataset

SWEEP_METHODS = ("nrp", "approxppr", "strap", "arope", "randne", "prone",
                 "verse", "app")
SWEEP_DIMS = (16, 32, 64, 128)
ROSTER_DIM = 64
DATASETS = ("wiki_sim", "blog_sim")


def _scale() -> float:
    return bench_scale() * 0.35     # Fig. 4 runs every method: keep small


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig4_full_roster(benchmark, dataset_name):
    data = load_dataset(dataset_name, scale=_scale())

    def run():
        rows = []
        for method in FULL_METHOD_SET:
            try:
                auc, secs = link_prediction_auc(method, data, ROSTER_DIM,
                                                seed=0)
                rows.append([method, auc, secs])
            except Exception as exc:   # scale guards (NetMF, GA, ...)
                rows.append([method, float("nan"), float("nan")])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rows.sort(key=lambda r: -(r[1] if r[1] == r[1] else -1))
    from repro.bench import format_table
    block = format_table(["method", "AUC", "fit seconds"], rows)
    report(f"fig4_roster_{dataset_name}",
           f"\nFigure 4 - link prediction, full roster, k={ROSTER_DIM}, "
           f"{dataset_name} (n={data.graph.num_nodes})\n{block}")
    table = {r[0]: r[1] for r in rows}
    # NRP must beat the vanilla-PPR methods (the paper's core claim) ...
    for rival in ("approxppr", "app", "verse"):
        assert table["nrp"] > table[rival] - 1e-9
    # ... and sit in the top group overall. (STRAP with delta ~ exact PPR
    # can edge ahead at toy scale where its proximity matrix is nearly
    # uncompressed - the regime the paper shows it cannot sustain; see
    # EXPERIMENTS.md and the Fig. 7 timing bench.)
    best = max(v for v in table.values() if v == v)
    assert table["nrp"] >= best - 0.02


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig4_k_sweep(benchmark, dataset_name):
    data = load_dataset(dataset_name, scale=_scale())

    def run():
        series = {}
        for method in SWEEP_METHODS:
            series[method] = [link_prediction_auc(method, data, k,
                                                  seed=0)[0]
                              for k in SWEEP_DIMS]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig4_sweep_{dataset_name}",
           format_series_block(
               f"Figure 4 - link prediction AUC vs k ({dataset_name})",
               "k", SWEEP_DIMS, series))
    # AUC should not collapse as k grows (paper: flat-to-rising curves)
    assert series["nrp"][-1] > series["nrp"][0] - 0.03


def test_fig4_table3_statistics(benchmark):
    block = benchmark.pedantic(lambda: format_dataset_table(_scale()),
                               rounds=1, iterations=1)
    report("table3_datasets", f"\nTable 3 - dataset analogues\n{block}")
