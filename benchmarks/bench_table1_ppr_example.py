"""Table 1 + Example 1: exact PPR on the Figure-1 graph and its
rank-k' factorization by ApproxPPR.

Regenerates the paper's Table 1 rows (sources v2, v4, v7, v9 at
alpha = 0.15) and checks the Example-1 score pair
(X_v2 . Y_v4 ~ 0.119, X_v9 . Y_v7 ~ 0.166).
"""

import numpy as np

from conftest import report
from repro.bench import format_table
from repro.core import ApproxPPRConfig, approx_ppr_embeddings
from repro.graph import TABLE1_PPR, figure1_graph
from repro.ppr import ppr_matrix_dense


def test_table1_exact_ppr(benchmark):
    graph = figure1_graph()
    pi = benchmark.pedantic(lambda: ppr_matrix_dense(graph, 0.15),
                            rounds=3, iterations=1)
    rows = []
    for src in (1, 3, 6, 8):
        rows.append([f"pi(v{src + 1}, .) ours",
                     *[round(float(v), 3) for v in pi[src]]])
        rows.append([f"pi(v{src + 1}, .) paper", *TABLE1_PPR[src]])
    block = format_table(["row", *[f"v{i}" for i in range(1, 10)]], rows,
                         float_fmt="{:.3f}")
    report("table1_ppr", f"\nTable 1 (alpha=0.15) - paper vs reproduction\n"
                         f"(paper's v7 row is a known erratum, see "
                         f"EXPERIMENTS.md)\n{block}")
    for src in (1, 3, 8):
        np.testing.assert_allclose(pi[src], TABLE1_PPR[src], atol=1.5e-3)


def test_example1_approxppr_scores(benchmark):
    graph = figure1_graph()
    cfg = ApproxPPRConfig(k_prime=6, svd="exact")
    x, y = benchmark.pedantic(lambda: approx_ppr_embeddings(graph, cfg),
                              rounds=3, iterations=1)
    s24, s97 = float(x[1] @ y[3]), float(x[8] @ y[6])
    block = format_table(
        ["pair", "paper", "ours"],
        [["X_v2 . Y_v4", 0.119, s24], ["X_v9 . Y_v7", 0.166, s97]])
    report("example1_scores", f"\nExample 1 - factorized PPR scores\n{block}")
    assert abs(s24 - 0.119) < 0.02 and abs(s97 - 0.166) < 0.02
