"""Scatter-gather serving throughput vs. shard count (PR-4 acceptance).

Builds one embedding database (default 50k nodes x 64 dims) and serves
an identical batched top-k query storm — generated with the shared
stress harness (``tests/stress/harness.py``) — through engines sharded
1/2/4/8 ways, plus the flat single-index engine as the baseline. The
storm runs several reader threads issuing Zipf-skewed query batches,
matching how production traffic concentrates on hot sources; caches are
disabled so the numbers measure retrieval, not memoization.

Per shard count it records queries/sec, speedup over the 1-shard
engine, and the parity check against the flat engine (ids must match
exactly on a probe batch). Everything lands in
``benchmarks/results/sharded_serving.json`` for CI's slow job to
archive next to the fit-scaling and streaming artifacts.

The acceptance assert — 4 shards >= 1.5x the single-shard engine at
>= 50k nodes — only fires when the machine can actually scatter in
parallel (>= 4 usable CPUs): per-shard GEMMs on one core add up to the
same arithmetic, so a single-core container measures overhead, not
scaling, and just records the numbers.

Runnable standalone (``python benchmarks/bench_sharded_serving.py``)
or via pytest (marked ``slow``).
"""

import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests" / "stress"))
from harness import run_storm                               # noqa: E402

from repro.bench import bench_scale, format_table           # noqa: E402
from repro.io import EmbeddingBundle                        # noqa: E402
from repro.parallel import available_cpus                   # noqa: E402
from repro.serving import (QueryEngine,                     # noqa: E402
                           ShardedQueryEngine)

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

NUM_NODES = 50_000
DIM = 64
K = 10
BATCH = 64
THREADS = 4
STORM_SECONDS = 2.0
SHARD_COUNTS = (1, 2, 4, 8)
SEED = 0
RESULTS_PATH = Path(__file__).parent / "results" / "sharded_serving.json"


def _database(n: int) -> EmbeddingBundle:
    rng = np.random.default_rng(SEED)
    return EmbeddingBundle(
        name="bench", directional=False,
        embedding=rng.standard_normal((n, DIM)) / np.sqrt(DIM))


def _zipf_batches(n: int, batches: int) -> np.ndarray:
    """Skewed query traffic: a few hot sources dominate, like prod."""
    rng = np.random.default_rng(SEED + 1)
    ranks = rng.zipf(1.3, size=(batches, BATCH))
    return ((ranks - 1) % n).astype(np.int64)


def _throughput(engine, batches: np.ndarray) -> float:
    """Batched queries/sec under a multi-threaded storm."""
    num_batches = len(batches)

    def work(tid, i, rng):
        batch = batches[(tid * 7919 + i) % num_batches]
        ids, _ = engine.topk(batch, K)
        assert ids.shape == (BATCH, K)

    result = run_storm(work, threads=THREADS, duration=STORM_SECONDS)
    result.raise_errors()
    return result.total_ops * BATCH / result.seconds


def run_bench(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    n = max(1000, int(NUM_NODES * scale))
    source = _database(n)
    batches = _zipf_batches(n, 256)
    probe = batches[0]

    flat = QueryEngine(source, cache_size=0)
    flat_ids, _ = flat.topk(probe, K)
    flat_qps = _throughput(flat, batches)

    rows = []
    by_shards = {}
    for num_shards in SHARD_COUNTS:
        engine = ShardedQueryEngine(source, shards=num_shards,
                                    cache_size=0)
        ids, _ = engine.topk(probe, K)
        parity = bool(np.array_equal(ids, flat_ids))
        qps = _throughput(engine, batches)
        by_shards[num_shards] = {"qps": round(qps, 1), "parity": parity,
                                 "workers": engine.index.workers}
        rows.append([str(num_shards), f"{qps:,.0f}", "", "yes" if parity
                     else "NO"])

    base_qps = by_shards[SHARD_COUNTS[0]]["qps"]
    for row, num_shards in zip(rows, SHARD_COUNTS):
        entry = by_shards[num_shards]
        entry["speedup_vs_1shard"] = round(entry["qps"] / base_qps, 2)
        row[2] = f"{entry['speedup_vs_1shard']:.2f}x"

    record = {
        "num_nodes": n, "dim": DIM, "k": K, "batch": BATCH,
        "threads": THREADS, "scale": scale, "cpus": available_cpus(),
        "flat_qps": round(flat_qps, 1),
        "by_shards": {str(s): by_shards[s] for s in SHARD_COUNTS},
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n",
                            encoding="utf-8")

    title = (f"Sharded scatter-gather throughput "
             f"(n={n:,}, dim={DIM}, k={K}, batch={BATCH}, "
             f"{THREADS} reader threads, {available_cpus()} CPUs, "
             f"flat engine {flat_qps:,.0f} q/s)")
    table = format_table(["shards", "queries/s", "vs 1 shard", "parity"],
                         rows)
    report("sharded_serving", title + "\n" + table)
    return record


def test_sharded_serving_throughput():
    record = run_bench()
    for entry in record["by_shards"].values():
        assert entry["parity"], "sharded results diverged from flat engine"
        assert entry["qps"] > 0
    if record["num_nodes"] >= 50_000 and record["cpus"] >= 4:
        # acceptance criterion: scatter-gather actually scales once
        # there are cores to scatter onto
        assert record["by_shards"]["4"]["speedup_vs_1shard"] >= 1.5, (
            f"4-shard engine only "
            f"{record['by_shards']['4']['speedup_vs_1shard']}x the "
            f"single-shard engine")


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
