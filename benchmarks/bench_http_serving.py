"""HTTP serving latency: dynamic micro-batching vs unbatched (PR-7).

Boots the real asyncio HTTP server (:mod:`repro.serving.http`) over one
embedding database (default 20k nodes x 64 dims) and storms it with
keep-alive socket clients at several concurrency levels, twice per
level:

* **batched** — the production config (``max_batch=64``,
  ``max_delay=2ms``): concurrent scalar top-k requests coalesce into
  tall GEMMs;
* **unbatched** — ``max_batch=1, max_delay=0``: every request pays for
  its own skinny engine call, the sequential baseline.

Per (mode, concurrency) it records p50/p99 request latency, requests/s,
and the mean observed engine batch size from the
``serving_topk_batch_size`` histogram. Everything lands in
``benchmarks/results/http_serving.json`` for CI's slow job to archive
next to the other serving artifacts; the acceptance assert — batched
p99 <= unbatched p99 at concurrency >= 16, with mean batch size > 1 —
fires at full benchmark scale.

Runnable standalone (``python benchmarks/bench_http_serving.py``) or
via pytest (marked ``slow``).
"""

import http.client
import json
import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "tests" / "stress"))
from harness import LatencyRecorder, http_json, run_storm   # noqa: E402

from repro import obs                                       # noqa: E402
from repro.bench import bench_scale, format_table           # noqa: E402
from repro.io import EmbeddingBundle                        # noqa: E402
from repro.parallel import available_cpus                   # noqa: E402
from repro.serving import (HTTPServingConfig,               # noqa: E402
                           ServingHTTPServer, ServingRegistry)

try:
    from conftest import report
except ImportError:      # standalone script mode
    def report(name, block):
        print(block)

pytestmark = pytest.mark.slow

NUM_NODES = 20_000
DIM = 64
K = 10
STORM_SECONDS = 1.5
CONCURRENCY_LEVELS = (4, 16, 32)
SEED = 0
RESULTS_PATH = Path(__file__).parent / "results" / "http_serving.json"

CONFIGS = {
    "batched": dict(max_batch=64, max_delay=0.002),
    "unbatched": dict(max_batch=1, max_delay=0.0),
}


def _database(n: int) -> EmbeddingBundle:
    rng = np.random.default_rng(SEED)
    return EmbeddingBundle(
        name="bench", directional=False,
        embedding=rng.standard_normal((n, DIM)) / np.sqrt(DIM))


def _measure(source, mode: str, concurrency: int) -> dict:
    """One (config, concurrency) storm against a fresh server."""
    obs.set_enabled(True)
    obs.get_registry().clear()
    registry = ServingRegistry()
    registry.register("bench", source, cache_size=0)
    config = HTTPServingConfig(max_queue=4096, **CONFIGS[mode])
    server = ServingHTTPServer(registry, config=config).start(port=0)
    latency = LatencyRecorder(concurrency)
    conns: dict[int, http.client.HTTPConnection] = {}
    n = source.embedding_.shape[0]

    def work(tid, i, rng):
        conn = conns.get(tid)
        if conn is None:
            conn = conns[tid] = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=30)
        node = int(rng.integers(n))
        with latency.record(tid):
            status, body, _ = http_json(conn, "POST", "/v1/bench/topk",
                                        {"node": node, "k": K})
        assert status == 200, f"{status}: {body}"

    try:
        result = run_storm(work, threads=concurrency,
                           duration=STORM_SECONDS)
    finally:
        for conn in conns.values():
            conn.close()
        server.stop(close_registry=True)
    result.raise_errors()

    batch_hist = obs.get_registry().get("serving_topk_batch_size",
                                        {"engine": "bench"})
    mean_batch = (batch_hist.sum / batch_hist.count
                  if batch_hist is not None and batch_hist.count else 0.0)
    return {"requests": result.total_ops,
            "rps": round(result.total_ops / result.seconds, 1),
            "p50_ms": round(latency.percentile(50) * 1e3, 3),
            "p99_ms": round(latency.percentile(99) * 1e3, 3),
            "mean_batch": round(mean_batch, 2)}


def run_bench(scale: float | None = None) -> dict:
    scale = bench_scale() if scale is None else scale
    n = max(1000, int(NUM_NODES * scale))
    source = _database(n)

    rows = []
    by_concurrency = {}
    for concurrency in CONCURRENCY_LEVELS:
        level = {mode: _measure(source, mode, concurrency)
                 for mode in CONFIGS}
        level["p99_speedup"] = round(
            level["unbatched"]["p99_ms"]
            / max(level["batched"]["p99_ms"], 1e-9), 2)
        by_concurrency[str(concurrency)] = level
        for mode in CONFIGS:
            entry = level[mode]
            rows.append([str(concurrency), mode, f"{entry['rps']:,.0f}",
                         f"{entry['p50_ms']:.2f}",
                         f"{entry['p99_ms']:.2f}",
                         f"{entry['mean_batch']:.2f}"])

    record = {"num_nodes": n, "dim": DIM, "k": K, "scale": scale,
              "cpus": available_cpus(), "storm_seconds": STORM_SECONDS,
              "by_concurrency": by_concurrency}
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n",
                            encoding="utf-8")
    obs.set_enabled(False)
    obs.get_registry().clear()

    title = (f"HTTP serving latency, micro-batched vs unbatched "
             f"(n={n:,}, dim={DIM}, k={K}, {available_cpus()} CPUs)")
    table = format_table(
        ["clients", "mode", "req/s", "p50 ms", "p99 ms", "mean batch"],
        rows)
    report("http_serving", title + "\n" + table)
    return record


def test_http_batching_beats_sequential():
    record = run_bench()
    for concurrency, level in record["by_concurrency"].items():
        assert level["batched"]["requests"] > 0
        assert level["unbatched"]["requests"] > 0
    if record["num_nodes"] >= 10_000:
        for concurrency in (c for c in CONCURRENCY_LEVELS if c >= 16):
            level = record["by_concurrency"][str(concurrency)]
            # the acceptance criteria: coalescing happens, and it pays
            assert level["batched"]["mean_batch"] > 1.0, (
                f"no coalescing at {concurrency} clients: mean batch "
                f"{level['batched']['mean_batch']}")
            assert (level["batched"]["p99_ms"]
                    <= level["unbatched"]["p99_ms"]), (
                f"batched p99 {level['batched']['p99_ms']}ms worse than "
                f"unbatched {level['unbatched']['p99_ms']}ms at "
                f"{concurrency} clients")


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
