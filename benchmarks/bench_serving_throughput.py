"""Serving throughput: queries/sec for exact vs. ANN top-k retrieval.

The serving tier's pitch is that answering ``topk(src, k)`` online does
not require touching all ``n`` scores per query. This bench measures,
at several graph sizes, three ways of answering the same 10-NN queries
over NRP embeddings:

* ``exact/per-query`` — one brute-force scan per query, the naive
  baseline a caller gets from ``argsort(-score_all_from(src))``;
* ``exact/batched`` — one blocked matmul for the whole query batch;
* ``ivf/batched`` — the coarse-quantized index at its defaults
  (``sqrt(n)`` lists, ``nprobe`` = 1/8 of them), with recall@10
  reported next to the speedup so the accuracy cost is visible.

Expected shape: batching alone buys an order of magnitude, IVF
multiplies that; the final assert pins the acceptance criterion (ANN
batched >= 3x exact per-query at the largest size).
"""

import time

import numpy as np
import pytest

from conftest import report
from repro import NRP
from repro.bench import bench_scale, format_table
from repro.graph import powerlaw_community

SIZES = (1000, 3000, 8000)
K = 10
NUM_QUERIES = 200


def _build_engines(num_nodes, seed=0):
    graph, _ = powerlaw_community(num_nodes, num_nodes * 6,
                                  num_communities=8, seed=seed)
    model = NRP(dim=32, seed=seed).fit(graph)
    exact = model.to_serving(index="exact", cache_size=0)
    ivf = model.to_serving(index="ivf", cache_size=0, seed=seed)
    return model, exact, ivf


def _qps(fn, queries) -> float:
    start = time.perf_counter()
    fn(queries)
    return len(queries) / (time.perf_counter() - start)


def _recall(approx_ids, exact_ids) -> float:
    return float(np.mean([len(set(a) & set(b)) / K
                          for a, b in zip(approx_ids, exact_ids)]))


def test_serving_throughput(benchmark):
    sizes = tuple(max(500, int(n * bench_scale())) for n in SIZES)

    def run():
        rows = []
        for n in sizes:
            _, exact, ivf = _build_engines(n)
            rng = np.random.default_rng(1)
            queries = rng.integers(0, n, size=min(NUM_QUERIES, n))

            per_query = _qps(
                lambda q, e=exact: [e.topk(int(node), K) for node in q],
                queries)
            batched = _qps(lambda q, e=exact: e.topk(q, K), queries)
            ann = _qps(lambda q, e=ivf: e.topk(q, K), queries)

            exact_ids, _ = exact.topk(queries, K)
            ivf_ids, _ = ivf.topk(queries, K)
            rows.append([n, round(per_query), round(batched), round(ann),
                         round(ann / per_query, 1),
                         round(_recall(ivf_ids, exact_ids), 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("serving_throughput",
           "\nServing throughput - queries/sec, k=10 (NRP dim=32)\n" +
           format_table(["n", "exact/per-query", "exact/batched",
                         "ivf/batched", "ivf speedup", "recall@10"], rows))
    largest = rows[-1]
    assert largest[4] >= 3.0, \
        f"ANN batched only {largest[4]}x exact per-query at n={largest[0]}"
    assert largest[5] >= 0.8, f"IVF recall collapsed: {largest[5]}"
