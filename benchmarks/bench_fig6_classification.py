"""Figure 6: node classification Micro-F1 vs training fraction.

One-vs-rest logistic regression on each method's node features with the
top-ell multilabel protocol. Expected shapes: NRP/ProNE near the top,
F1 non-decreasing in the training fraction.
"""

import pytest

from conftest import report
from repro.bench import bench_scale, build_method, format_series_block
from repro.datasets import load_dataset
from repro.tasks import evaluate_classification

METHODS = ("nrp", "approxppr", "arope", "randne", "prone", "verse")
FRACTIONS = (0.1, 0.5, 0.9)
DATASETS = ("wiki_sim", "blog_sim")


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_fig6_classification(benchmark, dataset_name):
    data = load_dataset(dataset_name, scale=bench_scale() * 0.35)

    def run():
        micro, macro = {}, {}
        for method in METHODS:
            model = build_method(method, 64, seed=0).fit(data.graph)
            feats = model.node_features()
            micro[method] = []
            macro[method] = []
            for frac in FRACTIONS:
                result = evaluate_classification(feats, data.membership,
                                                 frac, seed=0)
                micro[method].append(result.micro_f1)
                macro[method].append(result.macro_f1)
        return micro, macro

    micro, macro = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig6_micro_{dataset_name}",
           format_series_block(
               f"Figure 6 - Micro-F1 vs train fraction ({dataset_name})",
               "frac", FRACTIONS, micro))
    report(f"fig6_macro_{dataset_name}",
           format_series_block(
               f"Figure 6 - Macro-F1 vs train fraction ({dataset_name})",
               "frac", FRACTIONS, macro))
    # labels come from communities, so every competent method clears chance;
    # NRP must sit in the top group (within 5% of the best)
    best = max(m[-1] for m in micro.values())
    assert micro["nrp"][-1] >= best - 0.05
    # more training data should not hurt
    assert micro["nrp"][-1] >= micro["nrp"][0] - 0.02
