"""Sharded serving end to end: fit -> shard -> query -> hot-swap.

Walks the full lifecycle of a sharded deployment:

1. fit NRP on a synthetic community graph;
2. publish the model as a *sharded* version of a versioned store root
   (four node-range shards, each an ordinary mmap store);
3. open the current version and run scatter-gather top-k queries,
   checking parity against the flat engine;
4. refit (simulating a model refresh) and publish version 2 — also
   sharded — then hot-swap the live registry entry onto it while the
   old engine keeps serving in-flight queries.

Run with::

    PYTHONPATH=src python examples/sharded_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import NRP
from repro.graph import powerlaw_community
from repro.serving import (ServingRegistry, open_current, publish_version)

NUM_SHARDS = 4


def main() -> None:
    graph, _ = powerlaw_community(3000, 18000, num_communities=6, seed=7)
    model = NRP(dim=32, seed=0).fit(graph)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "embeddings"

        # -- publish version 1, sharded ------------------------------
        store = publish_version(root, model, shards=NUM_SHARDS)
        print(f"published v{store.version}: {store.num_nodes} nodes in "
              f"{store.num_shards} shards under {store.root}")
        for i, (lo, hi) in enumerate(zip(store.boundaries[:-1],
                                         store.boundaries[1:])):
            print(f"  shard {i}: nodes [{lo}, {hi})")

        # -- scatter-gather queries, parity vs the flat engine -------
        current = open_current(root)
        engine = current.to_serving(cache_size=256)
        flat = model.to_serving(cache_size=0)
        nodes = [0, 1500, 2999]
        ids, scores = engine.topk(nodes, k=5)
        flat_ids, _ = flat.topk(nodes, k=5)
        assert np.array_equal(ids, flat_ids), "sharded != flat results"
        for node, row_ids, row_scores in zip(nodes, ids, scores):
            pairs = ", ".join(f"{i}:{s:.3f}"
                              for i, s in zip(row_ids, row_scores))
            print(f"top-5 of node {node}: {pairs}")

        # -- serve it under a name, then hot-swap a refreshed model --
        registry = ServingRegistry()
        registry.register("similar-items", engine)
        print("serving:", registry.get("similar-items"))

        refreshed = NRP(dim=32, seed=1).fit(graph)     # the "new" model
        publish_version(root, refreshed, shards=NUM_SHARDS, keep=2)
        new_engine = open_current(root).to_serving(cache_size=256)
        registry.swap("similar-items", new_engine)
        print("after swap:", registry.get("similar-items"))
        ids2, _ = registry.topk("similar-items", nodes, k=5)
        print("post-swap top-5 of node 0:", ids2[0].tolist())


if __name__ == "__main__":
    main()
