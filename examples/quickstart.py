"""Quickstart: embed a graph with NRP and inspect what reweighting does.

Run:  python examples/quickstart.py

Covers the core public API in ~60 lines:
1. build a graph (here: the paper's own Figure-1 example),
2. fit NRP and its un-reweighted baseline ApproxPPR,
3. show the paper's Section-1 motivating comparison — vanilla PPR ranks
   the (v9, v7) pair above (v2, v4), NRP's degree reweighting fixes it.
"""

import numpy as np

from repro import NRP, ApproxPPREmbedder
from repro.graph import figure1_graph
from repro.ppr import ppr_matrix_dense


def main() -> None:
    graph = figure1_graph()
    print(f"Graph: {graph}")
    print(f"Degrees: {graph.out_degrees.tolist()}")

    # --- exact PPR (Table 1 of the paper) -----------------------------
    pi = ppr_matrix_dense(graph, alpha=0.15)
    print("\nExact PPR rows (alpha = 0.15):")
    for src in (1, 8):                       # v2 and v9 in paper notation
        row = ", ".join(f"{v:.3f}" for v in pi[src])
        print(f"  pi(v{src + 1}, .) = [{row}]")
    print(f"\nVanilla PPR ranks (v9,v7)={pi[8, 6]:.3f} above "
          f"(v2,v4)={pi[1, 3]:.3f} - the paper's counter-intuitive case:")
    print("  v2 and v4 share three neighbors; v9 and v7 share only one.")

    # --- embeddings ----------------------------------------------------
    base = ApproxPPREmbedder(dim=8, svd="exact", seed=0).fit(graph)
    nrp = NRP(dim=8, svd="exact", lam=0.1, seed=0).fit(graph)

    def describe(name, model):
        s24 = model.score_pairs([1], [3])[0]     # (v2, v4)
        s97 = model.score_pairs([8], [6])[0]     # (v9, v7)
        winner = "(v2,v4)" if s24 > s97 else "(v9,v7)"
        print(f"  {name:10s} score(v2,v4)={s24:+.4f} "
              f"score(v9,v7)={s97:+.4f} -> predicts {winner}")

    print("\nLink-prediction scores (forward . backward):")
    describe("ApproxPPR", base)
    describe("NRP", nrp)

    print("\nLearned NRP node weights (forward):")
    print("  " + np.array2string(np.round(nrp.w_fwd_, 2)))
    print("High-degree hub nodes (v3, v5) get the largest weights - the")
    print("degree calibration of Eq. (5) in action.")

    # --- feature vectors for downstream ML -----------------------------
    feats = nrp.node_features()
    print(f"\nnode_features() -> {feats.shape} matrix "
          f"(normalized forward || backward), ready for classifiers.")


if __name__ == "__main__":
    main()
