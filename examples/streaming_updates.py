"""Streaming: replay an evolving graph through ``repro-stream`` into
live top-k queries.

Run:  python examples/streaming_updates.py

The paper's Appendix C evaluates NRP on *evolving* graphs (VK, Digg);
this walkthrough turns that experiment into the production loop the
streaming tier exists for:

1. load an evolving dataset and write its old snapshot as a base edge
   list plus its future edges as a ``repro-stream`` delta file, in
   realistic timestamped arrival order (``EvolvingDataset.delta_batches``),
2. run ``repro-stream``: one cold fit, then per-batch incremental PPR
   sketch repair + warm reweighting, each batch published as the next
   immutable version of a store root with an atomic ``CURRENT`` flip,
3. act as the online side: resolve ``CURRENT`` between batches, answer
   top-k queries, and hot-swap a ``ServingRegistry`` name onto each new
   version — queries never see a torn index.

The same loop from the shell:

    repro-stream base.txt deltas.txt store_root/ --batch-size 500
    repro-serve query store_root/v000…/ --nodes 0,1,2 -k 10
"""

import tempfile
from pathlib import Path

from repro.cli_stream import main as repro_stream
from repro.datasets import load_evolving_dataset
from repro.serving import ServingRegistry, list_versions, open_current

DATASET = "vk_sim"
SCALE = 0.05          # ~300 nodes: keep the example quick
NUM_BATCHES = 5
K = 10


def main() -> None:
    data = load_evolving_dataset(DATASET, scale=SCALE)
    graph = data.old_graph
    print(f"Evolving dataset {data.name}: old snapshot {graph}, "
          f"{data.num_new_edges} future edges")

    workdir = Path(tempfile.mkdtemp(prefix="repro_stream_"))
    base_path = workdir / "base.txt"
    delta_path = workdir / "deltas.txt"
    store_root = workdir / "store_root"

    # --- offline artifacts: base edge list + timestamped delta file ----
    src, dst = graph.edges()
    base_path.write_text(
        "".join(f"{u} {v}\n" for u, v in zip(src, dst)), encoding="utf-8")
    batch_size = max(1, data.num_new_edges // NUM_BATCHES)
    with delta_path.open("w", encoding="utf-8") as fh:
        for batch in data.delta_batches(batch_size):
            fh.write(f"# t={batch.timestamp:.3f} ({batch.size} edges)\n")
            for u, v in zip(batch.src, batch.dst):
                fh.write(f"+ {u} {v}\n")

    # --- the streaming pipeline (the repro-stream console script) ------
    code = repro_stream([str(base_path), str(delta_path), str(store_root),
                         "--dim", "32", "--batch-size", str(batch_size),
                         "--keep-versions", "3"])
    assert code == 0, f"repro-stream exited with {code}"
    print(f"\nStore root now holds versions {list_versions(store_root)} "
          f"(pruned to the newest 3)")

    # --- the online side: resolve CURRENT, query, hot-swap -------------
    registry = ServingRegistry()
    store = open_current(store_root)
    registry.register("vk", store, cache_size=0)
    ids, scores = registry.get("vk").topk(0, K)
    print(f"\nv{store.version}: top-{K} of node 0 -> {ids.tolist()}")

    # A fresher version may have been published while we served; flip
    # the name atomically — in-flight queries finish on the old engine.
    latest = open_current(store_root)
    if latest.version != store.version:
        registry.swap("vk", latest, cache_size=0)
    ids, scores = registry.get("vk").topk(0, K)
    print(f"v{latest.version}: top-{K} of node 0 -> {ids.tolist()} "
          f"(after {latest.metadata.get('stream_batches')} streamed "
          f"batches, {latest.metadata.get('stream_escalations')} "
          f"escalations)")


if __name__ == "__main__":
    main()
