"""Extension example: attributed graphs (the paper's future-work item).

Run:  python examples/attributed_graphs.py

Section 6 of the paper leaves attributed graphs to future work. This
example shows the bipartite-augmentation extension shipped in
``repro.core.attributed``: user tags become auxiliary nodes, PPR flows
through shared tags, and NRP reweights the augmented graph. We measure
the effect on link prediction when the graph is sparse but tags are
informative, and persist/reload the embeddings via ``repro.io``.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.attributed import AttributedNRP
from repro.datasets import load_dataset
from repro.graph import link_prediction_split
from repro.io import load_embeddings, save_embeddings
from repro.ml import auc_score
from repro.tasks import evaluate_link_prediction


def main() -> None:
    data = load_dataset("wiki_sim", scale=0.25)
    graph, tags = data.graph, data.membership
    print(f"Graph: {graph}, tag matrix: {tags.shape}")

    split = link_prediction_split(graph, seed=5)

    plain = AttributedNRP(dim=64, attributes=np.zeros_like(tags),
                          lam=0.1, seed=0).fit(split.train_graph)
    tagged = AttributedNRP(dim=64, attributes=tags,
                           lam=0.1, seed=0).fit(split.train_graph)
    auc_plain = evaluate_link_prediction(plain, split, seed=1).auc
    auc_tagged = evaluate_link_prediction(tagged, split, seed=1).auc
    print(f"\nLink prediction AUC without tags: {auc_plain:.4f}")
    print(f"Link prediction AUC with tags:    {auc_tagged:.4f}")
    print("Tags correlate with communities, so attribute hops add real "
          "signal on the sparsified training graph.")

    # persist + reload: the embedding step decouples from downstream tasks
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "nrp_attr.npz"
        save_embeddings(tagged, path, metadata={"dataset": "wiki_sim"})
        bundle = load_embeddings(path)
        src, dst, labels = split.test_pairs
        auc_reloaded = auc_score(labels, bundle.score_pairs(src, dst))
        print(f"\nReloaded-from-disk AUC: {auc_reloaded:.4f} "
              f"(identical scoring path: {np.isclose(auc_reloaded, auc_tagged)})")


if __name__ == "__main__":
    main()
