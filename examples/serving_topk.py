"""Serving: fit -> save -> export an mmap store -> answer top-k queries.

Run:  python examples/serving_topk.py

Walks the full offline-to-online hand-off in ~70 lines:
1. fit NRP on a synthetic community graph,
2. save the bundle and export it as an mmap-able store directory
   (what a fleet of serving workers would open),
3. build exact and IVF-approximate query engines over the store,
4. answer batched ``topk`` queries, compare recall and latency, and
   show the LRU cache absorbing a skewed query stream.

The same store can be queried from the shell:

    repro-serve query /tmp/nrp_store --nodes 0,1,2 -k 10
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import NRP
from repro.graph import powerlaw_community
from repro.io import export_store, load_store, save_embeddings
from repro.serving import DEFAULT_REGISTRY

NUM_NODES = 3000
K = 10


def main() -> None:
    graph, _ = powerlaw_community(NUM_NODES, NUM_NODES * 6,
                                  num_communities=8, seed=7)
    print(f"Graph: {graph}")
    model = NRP(dim=32, seed=0).fit(graph)

    # --- offline artifacts --------------------------------------------
    workdir = Path(tempfile.mkdtemp(prefix="repro_serving_"))
    bundle_path = workdir / "nrp.npz"
    save_embeddings(model, bundle_path, metadata={"dataset": "example"})
    store = export_store(model, workdir / "nrp_store")
    print(f"Store: {store}")

    # Workers reopen the store lazily; pages are shared via the OS cache.
    store = load_store(workdir / "nrp_store")

    # --- online engines ------------------------------------------------
    exact = store.to_serving(index="exact")
    approx = store.to_serving(index="ivf", nprobe=12, seed=0)

    queries = np.arange(0, NUM_NODES, 17)
    t0 = time.perf_counter()
    exact_ids, exact_scores = exact.topk(queries, k=K)
    t_exact = time.perf_counter() - t0
    t0 = time.perf_counter()
    approx_ids, _ = approx.topk(queries, k=K)
    t_approx = time.perf_counter() - t0

    recall = np.mean([len(set(a) & set(b)) / K
                      for a, b in zip(approx_ids, exact_ids)])
    print(f"\n{len(queries)} batched {K}-NN queries:")
    print(f"  exact : {len(queries) / t_exact:8.0f} queries/sec")
    print(f"  ivf   : {len(queries) / t_approx:8.0f} queries/sec "
          f"(recall@{K} = {recall:.3f})")

    print(f"\nTop-{K} for node 0 (exact):")
    for rank, (v, s) in enumerate(zip(exact_ids[0], exact_scores[0]), 1):
        print(f"  {rank:2d}. node {v:5d}  score {s:.4f}")

    # --- several models can serve side by side ------------------------
    DEFAULT_REGISTRY.register("nrp/exact", exact, replace=True)
    DEFAULT_REGISTRY.register("nrp/ivf", approx, replace=True)
    ids, _ = DEFAULT_REGISTRY.topk("nrp/exact", 0, k=3)
    print(f"\nRegistry serves {DEFAULT_REGISTRY.names()}; "
          f"nrp/exact top-3 for node 0: {ids.tolist()}")

    # --- skewed traffic hits the LRU cache ----------------------------
    exact.cache_clear()          # count only the Zipf stream below
    rng = np.random.default_rng(0)
    hot = rng.zipf(1.5, size=2000) % NUM_NODES
    for node in hot:
        exact.topk(int(node), k=K)
    stats = exact.cache_stats()
    print(f"\nZipf traffic, {len(hot)} queries: cache hit rate "
          f"{stats.hit_rate:.1%} ({stats.hits} hits, {stats.misses} misses)")


if __name__ == "__main__":
    main()
