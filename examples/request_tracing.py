"""Request tracing: follow one request through the whole serving path.

Run:  python examples/request_tracing.py

The observability end of the HTTP tier, in four acts:

1. boot :class:`~repro.serving.ServingHTTPServer` with tracing on
   (``trace_sample=1.0``) and a structured JSON access log attached,
2. send a request carrying a W3C ``traceparent`` header and watch the
   server join the caller's trace: the response echoes the inherited
   trace id in ``x-trace-id`` and a fresh ``traceparent``; a malformed
   header starts a new trace instead of failing the request,
3. storm the server from concurrent clients so the micro-batcher
   coalesces strangers into shared batches, then read
   ``/debug/traces`` — every sampled tree shows the
   ``http.request -> http.queue -> http.batch -> serving.engine``
   chain, and the batch span lists the trace ids of every request
   that rode it,
4. read the access log back: one JSON line per request with queue
   wait, batch size, and engine time — the flat-file view of the same
   facts the trace trees show structurally.

The same server from the shell:

    repro-serve serve /tmp/nrp_store --port 8000 \
        --trace-sample 1.0 --access-log /tmp/access.log
    curl -sD - -o /dev/null localhost:8000/v1/nrp/topk \
        -H 'traceparent: 00-00000000000000000000000000abcdef-0000000000abcdef-01' \
        -d '{"node": 7, "k": 5}'
    curl -s 'localhost:8000/debug/traces?limit=3'
"""

import http.client
import io
import json
import threading

import numpy as np

from repro import NRP, obs
from repro.graph import powerlaw_community
from repro.serving import (HTTPServingConfig, ServingHTTPServer,
                           ServingRegistry)

NUM_NODES = 2000
K = 5
CLIENTS = 8
REQUESTS_PER_CLIENT = 10


def call(port: int, method: str, path: str, payload=None,
         headers=None) -> tuple[int, dict, dict]:
    """One JSON request; returns (status, body, response headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = json.dumps(payload) if payload is not None else None
        send = dict(headers or {})
        if body is not None:
            send["content-type"] = "application/json"
        conn.request(method, path, body, send)
        response = conn.getresponse()
        raw = response.read().decode("utf-8")
        resp_headers = dict(response.getheaders())
    finally:
        conn.close()
    try:
        return response.status, json.loads(raw), resp_headers
    except json.JSONDecodeError:
        return response.status, {"raw": raw}, resp_headers


def show_tree(span: dict, depth: int = 0) -> None:
    """Print one span tree the way the request executed."""
    pad = "  " * depth
    extras = []
    for key in ("batch_size", "engine_ms", "shards"):
        if key in span.get("attributes", {}):
            extras.append(f"{key}={span['attributes'][key]}")
    print(f"{pad}{span['name']:<16} "
          f"{span['duration_seconds'] * 1e3:7.2f} ms  "
          f"{' '.join(extras)}".rstrip())
    for child in span.get("children", ()):
        show_tree(child, depth + 1)


def main() -> None:
    # --- act 1: boot with tracing + access log on ----------------------
    graph, _ = powerlaw_community(NUM_NODES, NUM_NODES * 6,
                                  num_communities=8, seed=7)
    model = NRP(dim=32, seed=0).fit(graph)
    obs.set_enabled(True)

    registry = ServingRegistry()
    registry.register("nrp", model.to_serving())
    access_buffer = io.StringIO()
    access_log = obs.RequestLogger(access_buffer, buffer_lines=1)
    config = HTTPServingConfig(max_batch=64, max_delay=0.002,
                               trace_sample=1.0)
    server = ServingHTTPServer(registry, config=config,
                               access_log=access_log).start(port=0)
    print(f"Serving on http://127.0.0.1:{server.port} "
          f"(trace_sample={config.trace_sample})\n")

    try:
        # --- act 2: traceparent in, trace id out -----------------------
        inherited = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        status, _, headers = call(
            server.port, "POST", "/v1/nrp/topk",
            {"node": 7, "k": K}, headers={"traceparent": inherited})
        print(f"traceparent sent:     {inherited}")
        print(f"x-trace-id returned:  {headers['x-trace-id']} "
              f"(status {status})")
        print(f"traceparent returned: {headers['traceparent']}")
        assert headers["x-trace-id"] == "ab" * 16   # joined our trace

        status, _, headers = call(
            server.port, "POST", "/v1/nrp/topk",
            {"node": 7, "k": K}, headers={"traceparent": "garbage"})
        print(f"malformed traceparent -> status {status}, fresh trace "
              f"{headers['x-trace-id']}\n")

        # --- act 3: storm, then read the sampled trace trees -----------
        barrier = threading.Barrier(CLIENTS)

        def client(tid: int) -> None:
            rng = np.random.default_rng(tid)
            barrier.wait()
            for _ in range(REQUESTS_PER_CLIENT):
                node = int(rng.integers(0, NUM_NODES))
                call(server.port, "POST", "/v1/nrp/topk",
                     {"node": node, "k": K})

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        status, debug, _ = call(
            server.port, "GET",
            "/debug/traces?route=/v1/%7Bmodel%7D/topk&limit=3")
        print(f"/debug/traces kept {debug['ring_size']} of "
              f"{debug['recorded']} sampled traces; newest 3:")
        for record in debug["traces"]:
            print(f"- trace {record['trace_id']}  "
                  f"status={record['status']}  "
                  f"queue_wait_ms={record.get('queue_wait_ms')}  "
                  f"batch_size={record.get('batch_size')}")
            show_tree(record["tree"], depth=1)
        batch = next(
            child for child in debug["traces"][0]["tree"]["children"]
            if child["name"] == "http.batch")
        members = batch["attributes"]["member_trace_ids"]
        print(f"\nnewest batch carried {len(members)} sampled "
              f"request(s): {members}\n")

        # --- act 4: the access log, line by line -----------------------
        access_log.flush()
        lines = access_buffer.getvalue().strip().splitlines()
        print(f"access log wrote {len(lines)} JSON lines; last 3:")
        for line in lines[-3:]:
            record = json.loads(line)
            print("  " + json.dumps(
                {key: record[key] for key in
                 ("route", "status", "duration_ms", "trace_id",
                  "queue_wait_ms", "batch_size") if key in record}))

        vars_status, debug_vars, _ = call(server.port, "GET",
                                          "/debug/vars")
        print(f"\n/debug/vars: uptime "
              f"{debug_vars['uptime_seconds']:.1f}s, "
              f"{debug_vars['trace_ring']['recorded']} traces recorded, "
              f"access log written="
              f"{debug_vars['access_log']['written']}")
    finally:
        server.stop(close_registry=True)
        obs.set_enabled(False)
        obs.reset()


if __name__ == "__main__":
    main()
