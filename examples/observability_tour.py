"""Observability tour: watch a fit -> serve -> query loop from inside.

Everything in :mod:`repro.obs` is off by default — instrumented call
sites cost one branch. This tour flips collection on and walks the
pipeline:

1. enable collection (``obs.set_enabled``) and fit NRP on a synthetic
   community graph — the fit leaves a nested span tree (``nrp.fit`` ->
   svd / propagation / reweighting) plus kernel counters behind;
2. serve top-k queries through a sharded engine — per-shard fan-out
   spans, merge/straggler timings, and cache hit/miss counters
   accumulate per query;
3. apply a streaming delta batch — repair-vs-refit counters and the
   drift gauge record how the updater decided;
4. print the trace tree, the Prometheus text exposition, and write a
   JSON snapshot — the same artifact the CLIs produce via
   ``--metrics-json``.

Run with::

    PYTHONPATH=src python examples/observability_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro import NRP, obs
from repro.graph import powerlaw_community
from repro.streaming import StreamingUpdater


def print_span(span: dict, depth: int = 0) -> None:
    millis = span["duration_seconds"] * 1000
    attrs = span.get("attributes")
    print(f"  {'  ' * depth}{span['name']}: {millis:.1f}ms"
          + (f"  {attrs}" if attrs else ""))
    for child in span.get("children", ()):
        print_span(child, depth + 1)


def main() -> None:
    obs.configure_logging("info")
    obs.set_enabled(True)

    # -- 1. fit: spans + kernel metrics accumulate -------------------
    graph, _ = powerlaw_community(2000, 12000, num_communities=5, seed=7)
    model = NRP(dim=32, seed=0, keep_factor_state=True).fit(graph)
    print("== trace tree left behind by fit ==")
    for span in obs.get_registry().spans():
        print_span(span.to_dict())

    # -- 2. serve: per-shard spans + cache counters per query --------
    engine = model.to_serving(shards=2, cache_size=128)
    for _ in range(3):                      # repeats become cache hits
        engine.topk([0, 500, 1999], k=5)
    stats = engine.cache_stats()
    print(f"\nserved 3 identical batches: hits={stats.hits} "
          f"misses={stats.misses} hit_rate={stats.hit_rate:.2f}")

    # -- 3. stream a delta batch: repair-vs-refit bookkeeping --------
    updater = StreamingUpdater(graph, model)
    record = updater.apply_batch(add_src=[0, 1], add_dst=[1998, 1999])
    print(f"streamed one batch: escalated={record['escalated']} "
          f"touched={record['touched']} drift={record['drift']}")

    # -- 4. export: Prometheus text + the CLI-style JSON snapshot ----
    print("\n== Prometheus exposition (counters only; full text also "
          "has gauges + histogram buckets) ==")
    lines = [line for line in obs.to_prometheus_text().splitlines()
             if "_bucket{" not in line and not line.startswith("#")
             and ("_total" in line or "hit_rate" in line)]
    print("\n".join(lines[:12]))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "snapshot.json"
        obs.write_snapshot(path, extra={"example": "observability_tour"})
        snap = json.loads(path.read_text())
        print(f"\nsnapshot -> {len(snap['counters'])} counters, "
              f"{len(snap['gauges'])} gauges, "
              f"{len(snap['histograms'])} histograms, "
              f"{len(snap['traces'])} trace roots")

    obs.set_enabled(False)


if __name__ == "__main__":
    main()
