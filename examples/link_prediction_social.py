"""Domain example: friend recommendation on a social-network analogue.

Run:  python examples/link_prediction_social.py

Reproduces the paper's link-prediction protocol end to end on the
BlogCatalog analogue: hide 30% of friendships, embed the residual
network with several methods, and rank the hidden friendships against
non-friends. This is the "who should I follow?" workload that motivates
the paper's Section 1 argument about mutual friends.
"""

from repro.bench import build_method, format_table
from repro.datasets import load_dataset
from repro.graph import link_prediction_split
from repro.tasks import evaluate_link_prediction

METHODS = ("nrp", "approxppr", "strap", "arope", "randne", "prone", "verse")


def main() -> None:
    data = load_dataset("blog_sim", scale=0.3)
    graph = data.graph
    print(f"Social network analogue: {graph}")

    split = link_prediction_split(graph, test_fraction=0.3, seed=7)
    print(f"Hidden friendships: {len(split.pos_src)}, "
          f"negatives sampled: {len(split.neg_src)}\n")

    rows = []
    for method in METHODS:
        model = build_method(method, 64, seed=0).fit(split.train_graph)
        result = evaluate_link_prediction(model, split, seed=1)
        rows.append([method, result.auc, result.scoring])
    rows.sort(key=lambda r: -r[1])
    print(format_table(["method", "AUC", "scoring"], rows))

    best = rows[0][0]
    print(f"\nBest method: {best}")
    print("Expected: NRP in the top group and strictly above the vanilla-"
          "PPR methods (approxppr, verse) - the effect of node "
          "reweighting. At this reduced scale the near-exact STRAP and "
          "AROPE can tie or edge ahead; the paper's Fig. 7 regime (and our "
          "timing bench) shows why they cannot sustain it at size.")

    # concrete recommendations for one user
    model = build_method("nrp", 64, seed=0).fit(split.train_graph)
    user = int(split.pos_src[0])
    scores = model.score_all_from(user)
    # mask out existing friends and self
    scores[user] = -1e18
    scores[split.train_graph.out_neighbors(user)] = -1e18
    top = scores.argsort()[::-1][:5]
    print(f"\nTop-5 friend recommendations for user {user}: {top.tolist()}")
    hidden = {int(d) for s, d in zip(split.pos_src, split.pos_dst)
              if int(s) == user}
    hidden |= {int(s) for s, d in zip(split.pos_src, split.pos_dst)
               if int(d) == user}
    hits = [int(t) for t in top if int(t) in hidden]
    print(f"Of these, actually hidden friendships: {hits or 'none'}")


if __name__ == "__main__":
    main()
