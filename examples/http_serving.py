"""HTTP serving: boot the async tier, storm it, hot-swap it live.

Run:  python examples/http_serving.py

The network end of the offline-to-online hand-off, in five acts:
1. fit NRP and publish it as version 1 of a versioned store root
   (what ``repro-stream`` emits),
2. boot :class:`~repro.serving.ServingHTTPServer` over it — the same
   server ``repro-serve serve STORE --port 8000`` runs,
3. talk plain HTTP to it: ``/healthz``, ``/v1/models``, scalar and
   batched ``topk``, broadcast ``score``,
4. storm it from concurrent keep-alive clients and read
   ``/metrics`` to watch the dynamic micro-batcher coalesce the
   storm into shared engine calls,
5. publish version 2 and hot-swap the live model mid-traffic —
   zero dropped requests, responses flip to the new version.

The same server from the shell (it hot-swaps on its own with
``--watch``):

    repro-serve serve /tmp/nrp_root --port 8000 --watch 2
    curl -s localhost:8000/v1/nrp/topk -d '{"node": 7, "k": 5}'
"""

import http.client
import json
import tempfile
import threading
from pathlib import Path

from repro import NRP
from repro.graph import powerlaw_community
from repro.serving import (HTTPServingConfig, ServingHTTPServer,
                           ServingRegistry, open_current,
                           publish_version)

NUM_NODES = 2000
K = 5
CLIENTS = 8
REQUESTS_PER_CLIENT = 30


def call(port: int, method: str, path: str, payload=None) -> dict:
    """One JSON request against the local server."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body,
                     {"content-type": "application/json"} if body else {})
        response = conn.getresponse()
        raw = response.read().decode("utf-8")
    finally:
        conn.close()
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return {"raw": raw}


def main() -> None:
    # --- act 1: offline fit -> versioned publish -----------------------
    graph, _ = powerlaw_community(NUM_NODES, NUM_NODES * 6,
                                  num_communities=8, seed=7)
    model = NRP(dim=32, seed=0).fit(graph)
    root = Path(tempfile.mkdtemp(prefix="repro_http_")) / "root"
    publish_version(root, model)
    print(f"Published v1 under {root}")

    # --- act 2: boot the HTTP tier -------------------------------------
    registry = ServingRegistry()
    registry.register("nrp", open_current(root))
    config = HTTPServingConfig(max_batch=64, max_delay=0.002,
                               max_queue=1024)
    server = ServingHTTPServer(registry, config=config).start(port=0)
    print(f"Serving on http://127.0.0.1:{server.port}  "
          f"(max_batch={config.max_batch}, "
          f"max_delay={config.max_delay * 1e3:.0f}ms)")

    try:
        # --- act 3: the routes -----------------------------------------
        print("\n/healthz      ->", call(server.port, "GET", "/healthz"))
        print("/v1/models    ->", call(server.port, "GET", "/v1/models"))
        one = call(server.port, "POST", "/v1/nrp/topk",
                   {"node": 7, "k": K})
        print(f"topk(7)       -> neighbors={one['neighbors']}")
        many = call(server.port, "POST", "/v1/nrp/topk",
                    {"nodes": [0, 1, 2], "k": K})
        print(f"topk([0,1,2]) -> {len(many['results'])} rows")
        fanout = call(server.port, "POST", "/v1/nrp/score",
                      {"src": 7, "dst": one["neighbors"]})
        print(f"score(7, *)   -> {[round(s, 3) for s in fanout['scores']]}")

        # --- act 4: a concurrent storm + /metrics ----------------------
        def client(tid: int) -> None:
            for i in range(REQUESTS_PER_CLIENT):
                call(server.port, "POST", "/v1/nrp/topk",
                     {"node": (tid * 31 + i) % NUM_NODES, "k": K})

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        metrics = call(server.port, "GET", "/metrics")["raw"]
        for line in metrics.splitlines():
            if line.startswith(("serving_topk_batch_size_sum",
                                "serving_topk_batch_size_count",
                                "http_requests_total",
                                "http_batch_requests_sum",
                                "http_batch_requests_count")):
                print("metrics:", line)

        # --- act 5: hot-swap to version 2, mid-traffic -----------------
        model2 = NRP(dim=32, seed=1).fit(graph)
        publish_version(root, model2)
        registry.swap("nrp", open_current(root))
        two = call(server.port, "POST", "/v1/nrp/topk",
                   {"node": 7, "k": K})
        print(f"\nAfter swap to v2: topk(7) -> {two['neighbors']}")
        print("In-flight requests during the swap finish on the old "
              "engine; new ones land on v2.")
    finally:
        server.stop(close_registry=True)
    print("Server stopped (drained gracefully).")


if __name__ == "__main__":
    main()
