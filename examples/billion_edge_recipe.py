"""Scalability recipe: how the paper's billion-edge run maps onto this
library, demonstrated on a growing series of graphs.

Run:  python examples/billion_edge_recipe.py

The paper embeds a 1.2B-edge Twitter graph in under 4 hours on one
core. The same asymptotics — O(k (m + k n) log n) time, O(m + n k)
memory — hold here; this example measures the wall-clock growth across
a 4x size sweep so you can extrapolate to your own hardware, and prints
the knobs that matter at scale.
"""

import time

from repro.bench import format_table
from repro.core import NRP
from repro.graph import erdos_renyi


def main() -> None:
    rows = []
    for n, m in ((5_000, 40_000), (10_000, 80_000), (20_000, 160_000)):
        graph = erdos_renyi(n, m, seed=3)
        start = time.perf_counter()
        NRP(dim=32, ell2=5, lam=0.1, seed=0).fit(graph)
        seconds = time.perf_counter() - start
        rows.append([f"n={n:,} m={m:,}", seconds])
    print(format_table(["graph", "NRP seconds"], rows))
    smallest, largest = rows[0][1], rows[-1][1]
    print(f"\n4x larger graph -> {largest / max(smallest, 1e-9):.1f}x the "
          f"time (linear scaling; the paper's Figure 10).")

    print("""
Knobs for very large graphs:
  * dim:          embedding budget; BKSVD memory is ~ n * dim * (q+1) / 2
  * update_mode:  "sequential" is the paper's Gauss-Seidel loop;
                  "jacobi" vectorizes each epoch (fastest in numpy)
  * ell2:         weight epochs; the paper shows convergence by ~10
  * svd="rsvd":   cheaper sketch when eps can be loose
NRP's per-iteration work is sparse-matrix x dense-block products, the
same primitive the authors' C++ uses - single-core, no training loop.""")


if __name__ == "__main__":
    main()
