"""Domain example: predicting user interest tags from graph structure.

Run:  python examples/node_classification_tags.py

The TWeibo workload of the paper: users carry interest tags correlated
with who they follow; we embed the (directed) follow graph and train a
one-vs-rest logistic regression on a fraction of labeled users, then
predict tags for the rest with the top-ell multilabel rule. Sweeps the
training fraction like the paper's Figure 6.
"""

from repro.bench import build_method, format_series_block
from repro.datasets import load_dataset
from repro.tasks import evaluate_classification

METHODS = ("nrp", "approxppr", "arope", "prone")
FRACTIONS = (0.1, 0.3, 0.5, 0.7, 0.9)


def main() -> None:
    data = load_dataset("wiki_sim", scale=0.3)
    graph = data.graph
    print(f"Directed graph with tags: {graph}, labels={data.num_labels}")
    print(f"Mean tags per node: {data.membership.sum(1).mean():.2f}\n")

    micro = {}
    for method in METHODS:
        model = build_method(method, 64, seed=0).fit(graph)
        feats = model.node_features()
        micro[method] = [
            evaluate_classification(feats, data.membership, frac,
                                    seed=0).micro_f1
            for frac in FRACTIONS]
    print(format_series_block("Micro-F1 vs training fraction (Figure 6 "
                              "protocol)", "frac", FRACTIONS, micro))

    print("Reading: directed-graph-aware methods (NRP, ApproxPPR) keep an")
    print("edge over undirected factorizations on this directed analogue;")
    print("more labeled data helps every method.")


if __name__ == "__main__":
    main()
