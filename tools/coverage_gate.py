#!/usr/bin/env python
"""Dependency-free line-coverage gate for the test suite.

Runs pytest in-process under a ``sys.settrace`` line tracer restricted
to one package and fails when the executed-line percentage drops below
a pinned floor. Exists because the CI image (and the dev container)
carry no ``coverage``/``pytest-cov``; measuring and gating with the
same in-repo tool keeps the pinned number meaningful.

Usage::

    PYTHONPATH=src python tools/coverage_gate.py \
        --package repro --fail-under 80 -- -q -m "not slow"

Everything after ``--`` goes to pytest verbatim.

Method (and its limits):

* *executable lines* come from compiling every ``*.py`` under the
  package and collecting ``co_lines()`` line numbers over all nested
  code objects — the same universe ``coverage.py`` starts from;
* *executed lines* are recorded by a trace function that prunes
  non-package frames at call time (returns no local tracer), so the
  overhead lands only on package code;
* worker threads are traced via ``threading.settrace``; **forked
  worker processes are not traced** (their lines count only if the
  in-process path also runs them — true for this repo's
  ``parallel_map``, which the tests exercise with ``workers=1`` too);
* ``# pragma: no cover`` excludes that physical line.

Numbers from this tool are not comparable with ``coverage.py`` to the
decimal — pin the gate with *this* tool's own measurement.
"""

from __future__ import annotations

import argparse
import sys
import threading
from collections import defaultdict
from pathlib import Path

PRAGMA = "pragma: no cover"


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler can attribute code to, minus pragmas."""
    source = path.read_text(encoding="utf-8")
    try:
        code = compile(source, str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for const in obj.co_consts:
            if type(const).__name__ == "code":
                stack.append(const)
        lines.update(line for _, _, line in obj.co_lines()
                     if line is not None)
    src_lines = source.splitlines()
    skip = {i + 1 for i, text in enumerate(src_lines) if PRAGMA in text}
    # module/def/class lines for the file's own header constants show up
    # at line 0/None already filtered; drop pragma'd lines
    return {line for line in lines if line not in skip
            and 1 <= line <= len(src_lines)}


def collect_universe(pkg_dir: Path) -> dict[str, set[int]]:
    return {str(p): executable_lines(p)
            for p in sorted(pkg_dir.rglob("*.py"))}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run pytest under a package-scoped line tracer "
                    "and gate on coverage %")
    parser.add_argument("--package", default="repro",
                        help="top-level package to measure (default repro)")
    parser.add_argument("--src", default="src",
                        help="source root containing the package")
    parser.add_argument("--fail-under", type=float, required=True,
                        help="minimum line coverage percent")
    parser.add_argument("--report", type=int, default=15, metavar="N",
                        help="print the N least-covered modules")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments after -- go to pytest")
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    src_root = (repo_root / args.src).resolve()
    pkg_dir = src_root / args.package
    if not pkg_dir.is_dir():
        parser.error(f"package dir not found: {pkg_dir}")
    if str(src_root) not in sys.path:
        sys.path.insert(0, str(src_root))

    universe = collect_universe(pkg_dir)
    executed: dict[str, set[int]] = defaultdict(set)
    prefix = str(pkg_dir) + "/"

    def tracer(frame, event, arg):
        # prune at call time: non-package frames get no local tracer,
        # so their lines never pay the tracing cost
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        hit = executed[filename]

        def local(frame, event, arg):
            if event == "line":
                hit.add(frame.f_lineno)
            return local

        if event == "line":       # first line of the call
            hit.add(frame.f_lineno)
        return local

    import pytest
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(list(args.pytest_args))
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    if exit_code != 0:
        print(f"coverage-gate: pytest failed (exit {exit_code}); "
              f"not evaluating coverage", file=sys.stderr)
        return int(exit_code)

    total = sum(len(lines) for lines in universe.values())
    covered = sum(len(universe[f] & executed.get(f, set()))
                  for f in universe)
    percent = 100.0 * covered / total if total else 100.0

    rows = sorted(
        ((100.0 * len(universe[f] & executed.get(f, set()))
          / len(universe[f]) if universe[f] else 100.0,
          f) for f in universe))
    print("\ncoverage-gate: least-covered modules")
    for pct, f in rows[:args.report]:
        rel = Path(f).relative_to(src_root)
        print(f"  {pct:6.1f}%  {rel}")
    print(f"coverage-gate: TOTAL {covered}/{total} lines = "
          f"{percent:.2f}% (floor {args.fail_under:.2f}%)")
    if percent < args.fail_under:
        print(f"coverage-gate: FAIL - coverage {percent:.2f}% fell below "
              f"the {args.fail_under:.2f}% floor", file=sys.stderr)
        return 3
    print("coverage-gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
