#!/usr/bin/env python
"""Perf-regression watchdog: diff benchmark JSON against baselines.

CI runs the ``benchmarks/bench_*.py`` suite and archives one JSON
artifact per benchmark under ``benchmarks/results/``. This tool diffs
those artifacts against the committed baselines in
``benchmarks/baselines/`` and **fails (exit 1) on regressions** beyond
per-metric tolerances, so a PR that quietly doubles serving p99 or
halves kernel throughput turns red instead of landing.

Design points:

* **dependency-free** — stdlib only, runnable on any CI worker;
* **per-metric specs** — each artifact has a list of dotted metric
  paths (``*`` wildcards expand over dict keys and list indices), a
  direction (``lower``/``higher`` is better), and a tolerance, either
  relative (``rel``, fraction of the baseline) or absolute (``abs``,
  for near-zero quantities like the obs overhead fraction);
* **context guards** — a baseline measured at ``num_nodes=20000`` says
  nothing about a run at 5000; when any context key differs the
  artifact is marked ``incomparable`` and skipped rather than
  mis-judged;
* **machine-readable output** — ``--output`` writes every finding
  (ok / regression / improved / missing / no_baseline / incomparable)
  to a JSON report CI uploads next to the artifacts.

Usage::

    python tools/bench_compare.py \
        --results benchmarks/results --baselines benchmarks/baselines \
        --output benchmarks/results/bench_regressions.json

Exit codes: 0 = no regressions, 1 = at least one regression,
2 = usage / IO error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

__all__ = ["SPECS", "compare_artifact", "compare_all", "main"]


#: Per-artifact comparison specs. ``context`` keys must match between
#: baseline and candidate (differences => incomparable, not judged);
#: ``metrics`` entries are (path, direction, tolerance) with ``path``
#: a dotted route into the JSON (``*`` matches any dict key / list
#: index), ``direction`` naming which way is better, and ``tolerance``
#: either ``{"rel": f}`` (fraction of baseline) or ``{"abs": x}``.
SPECS: dict[str, dict] = {
    "http_serving.json": {
        "context": ["num_nodes", "dim", "k", "scale", "cpus"],
        "metrics": [
            ("by_concurrency.*.batched.p99_ms", "lower", {"rel": 0.15}),
            ("by_concurrency.*.batched.rps", "higher", {"rel": 0.15}),
        ],
    },
    "obs_overhead.json": {
        "context": ["num_nodes", "dim", "k", "scale", "cpus"],
        # overhead is a fraction hovering around 0: relative slack on a
        # ~0.001 baseline would flag noise, so the budget is absolute
        "metrics": [
            ("overhead", "lower", {"abs": 0.015}),
        ],
    },
    "push_kernels.json": {
        "context": ["edge_factor", "r_max", "batch", "numba"],
        "metrics": [
            ("rows.*.batch_seconds", "lower", {"rel": 0.25}),
            ("rows.*.backward_batch_seconds", "lower", {"rel": 0.25}),
        ],
    },
    "sharded_serving.json": {
        "context": ["num_nodes", "dim", "k", "scale", "cpus"],
        "metrics": [
            ("flat_qps", "higher", {"rel": 0.25}),
            ("by_shards.*.qps", "higher", {"rel": 0.25}),
        ],
    },
    "streaming.json": {
        "context": ["dataset", "scale", "dim", "num_batches"],
        "metrics": [
            ("stream_seconds", "lower", {"rel": 0.25}),
            ("speedup", "higher", {"rel": 0.25}),
        ],
    },
    "fit_scaling.json": {
        "context": ["dim", "edge_factor", "chunk_size", "workers"],
        "metrics": [
            ("rows.*.chunked_seconds", "lower", {"rel": 0.25}),
        ],
    },
}


# ----------------------------------------------------------------------
# path resolution
# ----------------------------------------------------------------------

def resolve(record, pattern: str) -> list[tuple[str, object]]:
    """Expand a dotted ``*``-wildcard path into ``(path, value)`` pairs.

    Dicts are traversed by key, lists by index; ``*`` fans out over
    every key/index at that level. Paths that dead-end (missing key,
    non-numeric leaf encountered mid-route) simply yield nothing —
    presence is judged by the caller against the baseline's paths.
    """
    parts = pattern.split(".")
    found: list[tuple[str, object]] = []

    def walk(node, index: int, crumbs: list[str]) -> None:
        if index == len(parts):
            found.append((".".join(crumbs), node))
            return
        part = parts[index]
        if isinstance(node, dict):
            keys = list(node) if part == "*" else [part]
            for key in keys:
                if key in node:
                    walk(node[key], index + 1, crumbs + [str(key)])
        elif isinstance(node, list):
            if part == "*":
                for i, item in enumerate(node):
                    walk(item, index + 1, crumbs + [str(i)])
            elif part.isdigit() and int(part) < len(node):
                walk(node[int(part)], index + 1, crumbs + [part])

    walk(record, 0, [])
    return found


# ----------------------------------------------------------------------
# judging
# ----------------------------------------------------------------------

def _judge(base: float, cand: float, direction: str,
           tolerance: dict) -> str:
    """ok / regression / improved for one (baseline, candidate) pair."""
    worse = cand - base if direction == "lower" else base - cand
    if "abs" in tolerance:
        allowed = float(tolerance["abs"])
    else:
        allowed = abs(base) * float(tolerance["rel"])
    if worse > allowed:
        return "regression"
    if worse < -allowed:
        return "improved"
    return "ok"


def compare_artifact(name: str, baseline: dict, candidate: dict,
                     spec: dict) -> list[dict]:
    """Findings for one artifact (one dict per metric path)."""
    findings: list[dict] = []
    mismatched = [key for key in spec.get("context", ())
                  if key in baseline and key in candidate
                  and baseline[key] != candidate[key]]
    if mismatched:
        # measured under different conditions: saying anything about
        # perf would be noise, so every metric is skipped as such
        for pattern, direction, tolerance in spec["metrics"]:
            findings.append(
                {"artifact": name, "metric": pattern,
                 "status": "incomparable",
                 "context_mismatch": {
                     key: {"baseline": baseline[key],
                           "candidate": candidate[key]}
                     for key in mismatched}})
        return findings
    for pattern, direction, tolerance in spec["metrics"]:
        base_values = dict(resolve(baseline, pattern))
        cand_values = dict(resolve(candidate, pattern))
        if not base_values:
            findings.append({"artifact": name, "metric": pattern,
                             "status": "no_baseline"})
            continue
        for path, base in sorted(base_values.items()):
            cand = cand_values.get(path)
            entry = {"artifact": name, "metric": path,
                     "direction": direction, "tolerance": tolerance,
                     "baseline": base, "candidate": cand}
            if not isinstance(base, (int, float)) or isinstance(base, bool):
                continue                  # non-numeric leaf: not judged
            if cand is None or not isinstance(cand, (int, float)) \
                    or isinstance(cand, bool):
                entry["status"] = "missing"
            else:
                entry["status"] = _judge(float(base), float(cand),
                                         direction, tolerance)
                if base:
                    entry["change"] = round((cand - base) / abs(base), 4)
            findings.append(entry)
    return findings


def compare_all(results_dir: Path, baselines_dir: Path,
                artifacts: list[str] | None = None) -> list[dict]:
    """Findings across every spec'd artifact with a committed baseline."""
    findings: list[dict] = []
    names = artifacts if artifacts else sorted(SPECS)
    for name in names:
        spec = SPECS.get(name)
        if spec is None:
            raise KeyError(f"no comparison spec for artifact {name!r}; "
                           f"known: {', '.join(sorted(SPECS))}")
        base_path = baselines_dir / name
        cand_path = results_dir / name
        if not base_path.is_file():
            findings.append({"artifact": name, "metric": None,
                             "status": "no_baseline"})
            continue
        if not cand_path.is_file():
            findings.append({"artifact": name, "metric": None,
                             "status": "missing"})
            continue
        try:
            baseline = json.loads(base_path.read_text(encoding="utf-8"))
            candidate = json.loads(cand_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{name}: unreadable JSON: {exc}") from exc
        findings.extend(compare_artifact(name, baseline, candidate, spec))
    return findings


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _format_row(finding: dict) -> str:
    status = finding["status"]
    metric = finding.get("metric") or "(artifact)"
    extra = ""
    if "change" in finding:
        extra = f"  {finding['change']:+.1%}  " \
                f"{finding['baseline']} -> {finding['candidate']}"
    return f"{status:12s} {finding['artifact']}::{metric}{extra}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_compare",
        description="Diff benchmark JSON artifacts against committed "
                    "baselines; exit 1 on perf regressions.")
    parser.add_argument("--results", default="benchmarks/results",
                        help="directory with fresh benchmark JSON "
                             "(default benchmarks/results)")
    parser.add_argument("--baselines", default="benchmarks/baselines",
                        help="directory with committed baseline JSON "
                             "(default benchmarks/baselines)")
    parser.add_argument("--artifacts", nargs="*", default=None,
                        help="artifact filenames to compare "
                             "(default: every spec'd artifact)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the full findings report as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="only print regressions")
    args = parser.parse_args(argv)

    results_dir = Path(args.results)
    baselines_dir = Path(args.baselines)
    if not baselines_dir.is_dir():
        print(f"bench_compare: baselines directory {baselines_dir} "
              f"does not exist", file=sys.stderr)
        return 2
    try:
        findings = compare_all(results_dir, baselines_dir, args.artifacts)
    except (KeyError, ValueError, OSError) as exc:
        print(f"bench_compare: error: {exc}", file=sys.stderr)
        return 2

    regressions = [f for f in findings if f["status"] == "regression"]
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding["status"]] = counts.get(finding["status"], 0) + 1
    for finding in findings:
        if args.quiet and finding["status"] != "regression":
            continue
        print(_format_row(finding))
    summary = ", ".join(f"{count} {status}"
                        for status, count in sorted(counts.items()))
    print(f"bench_compare: {summary or 'nothing compared'}")

    if args.output:
        report = {"generated_at": time.time(),
                  "results_dir": str(results_dir),
                  "baselines_dir": str(baselines_dir),
                  "counts": counts,
                  "regressions": len(regressions),
                  "findings": findings}
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
