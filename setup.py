"""Package metadata; ``pip install -e .`` works offline (no wheel deps)."""

from pathlib import Path

from setuptools import find_packages, setup

_HERE = Path(__file__).parent
_README = _HERE / "README.md"

setup(
    name="repro-nrp",
    version="1.0.0",
    description=("Reproduction of 'Homogeneous Network Embedding for "
                 "Massive Graphs via Reweighted Personalized PageRank' "
                 "(Yang et al., PVLDB 2020) with online serving and "
                 "streaming-update tiers"),
    long_description=_README.read_text(encoding="utf-8")
    if _README.is_file() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
    extras_require={"test": ["pytest"],
                    "bench": ["pytest", "pytest-benchmark"],
                    # optional njit push kernels (repro.ppr.kernels):
                    # auto-detected at import, REPRO_KERNEL=numba selects
                    "fast": ["numba>=0.57"]},
    entry_points={
        "console_scripts": [
            "repro-serve = repro.serving.cli:main",
            "repro-fit = repro.cli_fit:main",
            "repro-stream = repro.cli_stream:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
