"""Tests for the dataset registry and evolving-graph analogues."""

import numpy as np
import pytest

from repro.datasets import (EVOLVING_SPECS, dataset_names,
                            evolving_dataset_names, format_dataset_table,
                            load_dataset, load_evolving_dataset)
from repro.errors import ParameterError


def test_dataset_names_match_paper_roster():
    assert dataset_names() == ["wiki_sim", "blog_sim", "youtube_sim",
                               "tweibo_sim", "orkut_sim", "twitter_sim",
                               "friendster_sim"]


def test_wiki_sim_properties():
    data = load_dataset("wiki_sim", scale=0.25)
    assert data.graph.directed
    assert data.membership is not None
    assert data.membership.shape[0] == data.graph.num_nodes
    assert data.num_labels == 20


def test_blog_sim_undirected():
    data = load_dataset("blog_sim", scale=0.2)
    assert not data.graph.directed
    assert data.membership is not None


def test_twitter_sim_unlabeled():
    data = load_dataset("twitter_sim", scale=0.02)
    assert data.graph.directed
    assert data.membership is None
    assert data.num_labels == 0


def test_scaling_changes_size():
    small = load_dataset("wiki_sim", scale=0.1)
    big = load_dataset("wiki_sim", scale=0.3)
    assert big.graph.num_nodes > small.graph.num_nodes
    assert big.graph.num_edges > small.graph.num_edges


def test_dataset_cache_returns_same_object():
    a = load_dataset("wiki_sim", scale=0.1)
    b = load_dataset("wiki_sim", scale=0.1)
    assert a is b


def test_unknown_dataset():
    with pytest.raises(ParameterError):
        load_dataset("imaginary_graph")


def test_bad_scale():
    with pytest.raises(ParameterError):
        load_dataset("wiki_sim", scale=0.0)


def test_membership_every_node_labeled():
    data = load_dataset("blog_sim", scale=0.1)
    assert np.all(data.membership.sum(axis=1) >= 1)


def test_format_dataset_table_mentions_paper_sizes():
    table = format_dataset_table(scale=0.05)
    assert "wiki_sim" in table
    assert "1.2B" in table          # paper's Twitter edge count
    assert "directed" in table and "undirected" in table


def test_evolving_names():
    assert evolving_dataset_names() == ["vk_sim", "digg_sim"]
    assert set(EVOLVING_SPECS) == {"vk_sim", "digg_sim"}


def test_evolving_vk_undirected_digg_directed():
    vk = load_evolving_dataset("vk_sim", scale=0.05)
    digg = load_evolving_dataset("digg_sim", scale=0.05)
    assert not vk.old_graph.directed
    assert digg.old_graph.directed


def test_evolving_new_edges_not_in_old(scale=0.05):
    data = load_evolving_dataset("vk_sim", scale=scale)
    for u, v in zip(data.new_src[:100].tolist(), data.new_dst[:100].tolist()):
        assert not data.old_graph.has_edge(u, v)


def test_evolving_new_edges_triadic_bias():
    """Future edges have far more common neighbors than random pairs."""
    data = load_evolving_dataset("vk_sim", scale=0.2)
    g = data.old_graph
    cn = (g.adjacency() @ g.adjacency()).toarray()
    new_cn = np.mean([cn[u, v] for u, v
                      in zip(data.new_src[:300], data.new_dst[:300])])
    rng = np.random.default_rng(0)
    rand_cn = np.mean([cn[rng.integers(0, g.num_nodes),
                          rng.integers(0, g.num_nodes)]
                       for _ in range(300)])
    assert new_cn > 2.0 * rand_cn


def test_unknown_evolving_dataset():
    with pytest.raises(ParameterError):
        load_evolving_dataset("myspace_sim")


def test_delta_batches_cover_stream_in_order():
    data = load_evolving_dataset("vk_sim", scale=0.05)
    batches = list(data.delta_batches(97))
    assert sum(b.size for b in batches) == data.num_new_edges
    assert all(b.size == 97 for b in batches[:-1])
    # timestamps are a monotone virtual clock ending at 1.0
    stamps = [b.timestamp for b in batches]
    assert all(0.0 < a < b for a, b in zip(stamps, stamps[1:]))
    assert stamps[-1] == pytest.approx(1.0)
    # the batched stream is a permutation of the monolithic arrays
    src = np.concatenate([b.src for b in batches])
    dst = np.concatenate([b.dst for b in batches])
    n = data.old_graph.num_nodes
    assert set((src * n + dst).tolist()) \
        == set((data.new_src * n + data.new_dst).tolist())
    # ...but NOT the sorted arc-key order (realistic arrival, not a sweep)
    assert not np.array_equal(src, data.new_src)


def test_delta_batches_deterministic_and_batchsize_invariant():
    data = load_evolving_dataset("vk_sim", scale=0.05)
    a = list(data.delta_batches(50))
    b = list(data.delta_batches(50))
    assert all(np.array_equal(x.src, y.src) for x, y in zip(a, b))
    # a different batch size re-slices the SAME ordered stream
    fine = list(data.delta_batches(25))
    assert np.array_equal(np.concatenate([x.src for x in a]),
                          np.concatenate([x.src for x in fine]))


def test_delta_batches_validate_batch_size():
    data = load_evolving_dataset("vk_sim", scale=0.05)
    with pytest.raises(ParameterError):
        next(data.delta_batches(0))
