"""BlockSparseOperator: bit-identical chunked products, SVD drop-in."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DimensionError, ParameterError
from repro.linalg import BlockSparseOperator, bksvd, randomized_svd
from repro.ppr import iter_chunks, num_chunks, resolve_chunk_size


@pytest.fixture(scope="module")
def csr_and_dense():
    rng = np.random.default_rng(0)
    mat = sp.random(97, 97, density=0.08, random_state=5, format="csr")
    dense = rng.standard_normal((97, 7))
    return mat, dense


@pytest.mark.parametrize("chunk_size", [1, 13, 50, 97, 1000, None])
def test_matmul_bit_identical_for_any_grid(csr_and_dense, chunk_size):
    mat, dense = csr_and_dense
    op = BlockSparseOperator(mat, chunk_size=chunk_size)
    assert np.array_equal(op @ dense, mat @ dense)


def test_transpose_matmul_bit_identical(csr_and_dense):
    mat, dense = csr_and_dense
    op = BlockSparseOperator(mat, chunk_size=20)
    assert np.array_equal(op.T @ dense, np.asarray(mat.T @ dense))
    # double transpose returns the original operator
    assert op.T.T is op


def test_matvec_on_vectors(csr_and_dense):
    mat, _ = csr_and_dense
    vec = np.arange(97, dtype=np.float64)
    op = BlockSparseOperator(mat, chunk_size=11)
    assert np.array_equal(op @ vec, mat @ vec)


def test_shape_and_mismatch(csr_and_dense):
    mat, _ = csr_and_dense
    op = BlockSparseOperator(mat)
    assert op.shape == mat.shape
    with pytest.raises(DimensionError):
        op @ np.ones((5, 3))


def test_bksvd_accepts_operator(csr_and_dense):
    mat, _ = csr_and_dense
    base = bksvd(mat, 5, seed=0)
    via_op = bksvd(BlockSparseOperator(mat, chunk_size=16), 5, seed=0)
    for a, b in zip(base, via_op):
        assert np.array_equal(a, b)


def test_rsvd_accepts_operator(csr_and_dense):
    mat, _ = csr_and_dense
    base = randomized_svd(mat, 5, seed=0)
    via_op = randomized_svd(BlockSparseOperator(mat, chunk_size=16), 5,
                            seed=0)
    for a, b in zip(base, via_op):
        assert np.array_equal(a, b)


def test_operator_with_workers_is_identical(csr_and_dense):
    mat, dense = csr_and_dense
    op1 = BlockSparseOperator(mat, chunk_size=10, workers=1)
    op4 = BlockSparseOperator(mat, chunk_size=10, workers=4)
    assert np.array_equal(op1 @ dense, op4 @ dense)


# ----------------------------------------------------------------------
# the shared chunk grid
# ----------------------------------------------------------------------

def test_iter_chunks_covers_rows_exactly():
    bounds = list(iter_chunks(10, 3))
    assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert list(iter_chunks(0, 4)) == []
    assert list(iter_chunks(5, None))[0][0] == 0


def test_num_chunks_matches_iter():
    for n, size in ((10, 3), (8, 8), (9, 100), (0, 5), (1, 1)):
        assert num_chunks(n, size) == len(list(iter_chunks(n, size)))


def test_resolve_chunk_size_clamps_and_validates():
    assert resolve_chunk_size(10, 100) == 10
    assert resolve_chunk_size(10, 4) == 4
    assert resolve_chunk_size(100000, None) == 8192
    with pytest.raises(ParameterError):
        resolve_chunk_size(10, 0)
    with pytest.raises(ParameterError):
        resolve_chunk_size(10, -5)
    with pytest.raises(ParameterError):
        resolve_chunk_size(-1, 5)
