"""Tests for PPMI transforms, Chebyshev filters, and sparse SVD wrappers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ParameterError
from repro.linalg import (apply_chebyshev_filter, chebyshev_coefficients,
                          deepwalk_matrix_dense, gaussian_projection,
                          orthogonal_projection, ppmi_dense, ppmi_sparse,
                          sparse_eigsh, sparse_svd)


# ---------------------------------------------------------------- PPMI
def test_ppmi_dense_matches_definition():
    counts = np.array([[4.0, 0.0], [1.0, 3.0]])
    out = ppmi_dense(counts)
    total = counts.sum()
    expect = np.log(4 * total / (4 * 5))
    assert out[0, 0] == pytest.approx(max(expect, 0.0))
    assert out[0, 1] == 0.0                     # zero count -> clipped


def test_ppmi_dense_nonnegative():
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 10, size=(20, 20)).astype(float)
    assert np.all(ppmi_dense(counts) >= 0.0)


def test_ppmi_shift_reduces_values():
    counts = np.array([[5.0, 1.0], [1.0, 5.0]])
    assert ppmi_dense(counts, shift=5.0).sum() < ppmi_dense(counts).sum()


def test_ppmi_sparse_matches_dense():
    rng = np.random.default_rng(1)
    counts = rng.integers(0, 4, size=(30, 30)).astype(float)
    dense = ppmi_dense(counts)
    sparse = ppmi_sparse(sp.csr_matrix(counts)).toarray()
    np.testing.assert_allclose(sparse, dense, atol=1e-12)


def test_ppmi_empty_matrix():
    assert ppmi_dense(np.zeros((3, 3))).sum() == 0.0
    assert ppmi_sparse(sp.csr_matrix((3, 3))).nnz == 0


def test_ppmi_rejects_bad_shift():
    with pytest.raises(ParameterError):
        ppmi_dense(np.ones((2, 2)), shift=0.0)


def test_deepwalk_matrix_shape(fig1):
    m = deepwalk_matrix_dense(fig1.adjacency(), window=3)
    assert m.shape == (9, 9)
    assert np.all(m >= 0)


# ----------------------------------------------------------- Chebyshev
def test_chebyshev_coefficients_constant():
    coeffs = chebyshev_coefficients(lambda x: np.ones_like(x), 5, (0, 2))
    assert coeffs[0] == pytest.approx(2.0)      # c0/2 = 1
    np.testing.assert_allclose(coeffs[1:], 0.0, atol=1e-12)


def test_chebyshev_filter_matches_dense_eigendecomposition(fig1):
    a = fig1.adjacency()
    deg = np.asarray(a.sum(axis=1)).ravel()
    inv = sp.diags(1.0 / np.sqrt(deg))
    lap = sp.identity(9) - inv @ a @ inv
    lap_dense = lap.toarray()
    vals, vecs = np.linalg.eigh(lap_dense)

    def heat(lam):
        return np.exp(-0.7 * lam)

    exact = vecs @ np.diag(heat(vals)) @ vecs.T
    coeffs = chebyshev_coefficients(heat, 30, (0.0, 2.0))
    signal = np.eye(9)
    approx = apply_chebyshev_filter(lambda v: lap @ v, signal, coeffs,
                                    (0.0, 2.0))
    np.testing.assert_allclose(approx, exact, atol=1e-8)


def test_chebyshev_filter_identity_function(fig1):
    lap = sp.identity(9) * 0.5
    coeffs = chebyshev_coefficients(lambda x: x, 8, (0.0, 2.0))
    signal = np.random.default_rng(0).standard_normal((9, 3))
    out = apply_chebyshev_filter(lambda v: lap @ v, signal, coeffs, (0.0, 2.0))
    np.testing.assert_allclose(out, 0.5 * signal, atol=1e-10)


def test_chebyshev_rejects_bad_interval():
    with pytest.raises(ParameterError):
        chebyshev_coefficients(np.exp, 4, (2.0, 2.0))


# ------------------------------------------------------------ wrappers
def test_sparse_svd_descending_and_deterministic(fig1):
    a = fig1.adjacency()
    u1, s1, v1 = sparse_svd(a, 4, seed=0)
    u2, s2, v2 = sparse_svd(a, 4, seed=0)
    assert np.all(np.diff(s1) <= 0)
    np.testing.assert_array_equal(s1, s2)
    np.testing.assert_array_equal(u1, u2)


def test_sparse_svd_values_match_dense(fig1):
    a = fig1.adjacency()
    _, s, _ = sparse_svd(a, 4, seed=0)
    dense_s = np.linalg.svd(a.toarray(), compute_uv=False)
    np.testing.assert_allclose(s, dense_s[:4], rtol=1e-8)


def test_sparse_eigsh_matches_dense(fig1):
    a = fig1.adjacency()
    vals, vecs = sparse_eigsh(a, 3, which="LA", seed=0)
    dense_vals = np.sort(np.linalg.eigvalsh(a.toarray()))[::-1]
    np.testing.assert_allclose(vals, dense_vals[:3], rtol=1e-8)
    # eigenvector property
    np.testing.assert_allclose(a @ vecs, vecs * vals, atol=1e-8)


def test_sparse_svd_rejects_full_rank():
    with pytest.raises(ParameterError):
        sparse_svd(sp.identity(4, format="csr"), 4)


# --------------------------------------------------------- projections
def test_gaussian_projection_shape_and_norm():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((500, 50))
    proj = gaussian_projection(x, 25, seed=1)
    assert proj.shape == (500, 25)
    # JL: squared norms preserved in expectation (loose check)
    ratio = np.linalg.norm(proj, axis=1) / np.linalg.norm(x, axis=1)
    assert 0.6 < np.median(ratio) < 1.4


def test_orthogonal_projection_columns_orthonormal_map():
    x = np.eye(40)
    proj = orthogonal_projection(x, 10, seed=2)
    gram = proj.T @ proj
    np.testing.assert_allclose(gram, np.eye(10), atol=1e-10)


def test_projection_rejects_bad_dim():
    with pytest.raises(ParameterError):
        gaussian_projection(np.eye(3), 0)
