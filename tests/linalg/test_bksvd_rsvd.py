"""Tests for the randomized SVD engines (BKSVD and Halko rSVD)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ParameterError
from repro.linalg import bksvd, default_krylov_iterations, randomized_svd


def _low_rank_matrix(n, d, rank, noise, seed):
    rng = np.random.default_rng(seed)
    left = rng.standard_normal((n, rank))
    right = rng.standard_normal((rank, d))
    return left @ right + noise * rng.standard_normal((n, d))


def test_bksvd_recovers_low_rank():
    mat = _low_rank_matrix(120, 100, 5, 0.0, 0)
    u, s, v = bksvd(mat, 5, seed=1)
    np.testing.assert_allclose(u @ np.diag(s) @ v.T, mat, atol=1e-6)


def test_bksvd_matches_exact_singular_values():
    mat = _low_rank_matrix(80, 80, 8, 0.01, 2)
    _, s_exact, _ = np.linalg.svd(mat)
    _, s_approx, _ = bksvd(mat, 8, seed=3)
    np.testing.assert_allclose(s_approx, s_exact[:8], rtol=1e-3)


def test_bksvd_spectral_error_bound():
    """(1 + eps) sigma_{k+1} spectral bound of Musco & Musco."""
    mat = _low_rank_matrix(100, 100, 20, 0.05, 4)
    k, eps = 10, 0.2
    u, s, v = bksvd(mat, k, eps=eps, seed=5)
    _, s_exact, _ = np.linalg.svd(mat)
    residual = mat - u @ np.diag(s) @ v.T
    spectral = np.linalg.norm(residual, 2)
    assert spectral <= (1 + eps) * s_exact[k] * 1.05   # 5% numerical slack


def test_bksvd_sparse_input(fig1):
    a = fig1.adjacency()
    u, s, v = bksvd(a, 4, seed=0)
    dense_u, dense_s, dense_vt = np.linalg.svd(a.toarray())
    np.testing.assert_allclose(s, dense_s[:4], rtol=1e-6)


def test_bksvd_orthonormal_u():
    mat = _low_rank_matrix(60, 50, 10, 0.1, 6)
    u, _, _ = bksvd(mat, 6, seed=7)
    np.testing.assert_allclose(u.T @ u, np.eye(6), atol=1e-8)


def test_bksvd_deterministic_given_seed():
    mat = sp.random(80, 80, density=0.1, random_state=0, format="csr")
    u1, s1, v1 = bksvd(mat, 5, seed=42)
    u2, s2, v2 = bksvd(mat, 5, seed=42)
    np.testing.assert_array_equal(u1, u2)
    np.testing.assert_array_equal(s1, s2)


def test_bksvd_sign_convention():
    mat = _low_rank_matrix(40, 40, 5, 0.0, 8)
    u, _, _ = bksvd(mat, 3, seed=9)
    idx = np.argmax(np.abs(u), axis=0)
    signs = np.sign(u[idx, np.arange(3)])
    assert np.all(signs > 0)


def test_bksvd_memory_guard_reduces_depth():
    mat = _low_rank_matrix(50, 50, 5, 0.1, 10)
    # should not fail even with tiny budget
    u, s, v = bksvd(mat, 8, max_krylov_cols=16, seed=0)
    assert u.shape == (50, 8)


def test_bksvd_rejects_bad_rank():
    mat = np.eye(5)
    with pytest.raises(ParameterError):
        bksvd(mat, 0)
    with pytest.raises(ParameterError):
        bksvd(mat, 10)


def test_default_krylov_iterations_monotone_in_eps():
    n = 10_000
    assert (default_krylov_iterations(n, 0.1)
            >= default_krylov_iterations(n, 0.9))


def test_default_krylov_iterations_bounds():
    assert 4 <= default_krylov_iterations(100, 0.5) <= 15
    with pytest.raises(ParameterError):
        default_krylov_iterations(100, 0.0)


def test_rsvd_recovers_low_rank():
    mat = _low_rank_matrix(100, 90, 6, 0.0, 11)
    u, s, v = randomized_svd(mat, 6, seed=12)
    np.testing.assert_allclose(u @ np.diag(s) @ v.T, mat, atol=1e-5)


def test_rsvd_vs_bksvd_on_noisy_matrix():
    """Block Krylov should match or beat plain power iteration."""
    mat = _low_rank_matrix(150, 150, 30, 0.3, 13)
    _, s_exact, _ = np.linalg.svd(mat)
    _, s_bk, _ = bksvd(mat, 10, num_iters=8, seed=14)
    _, s_rs, _ = randomized_svd(mat, 10, power_iters=2, oversample=2, seed=14)
    err_bk = np.abs(s_bk - s_exact[:10]).max()
    err_rs = np.abs(s_rs - s_exact[:10]).max()
    assert err_bk <= err_rs + 1e-6


def test_rsvd_rejects_bad_rank():
    with pytest.raises(ParameterError):
        randomized_svd(np.eye(4), 9)
