"""Tests for the bench harness plus cross-module integration checks."""

import numpy as np
import pytest

from repro.bench import (BENCH_OVERRIDES, build_method, evolving_auc,
                         fit_timed, format_series_block, format_table,
                         link_prediction_auc)
from repro.core import NRP
from repro.datasets import load_dataset, load_evolving_dataset

# full fit-and-evaluate pipelines over several methods: the heavyweight
# end of the suite, excluded from the tier-1 fast job
pytestmark = pytest.mark.slow


# ---------------------------------------------------------------- tables
def test_format_table_alignment():
    table = format_table(["method", "auc"], [["nrp", 0.9123],
                                             ["arope", 0.8]])
    lines = table.split("\n")
    assert lines[0].startswith("method")
    assert "0.9123" in table and "0.8000" in table
    assert set(lines[1]) <= {"-", " "}


def test_format_series_block():
    block = format_series_block("Figure 4 (wiki_sim)", "k", [16, 32],
                                {"NRP": [0.9, 0.91], "AROPE": [0.88, 0.89]})
    assert "Figure 4 (wiki_sim)" in block
    assert "NRP" in block and "16" in block


# --------------------------------------------------------------- harness
def test_build_method_applies_overrides():
    m = build_method("deepwalk", 16)
    assert m.walks_per_node == BENCH_OVERRIDES["deepwalk"]["walks_per_node"]
    m2 = build_method("deepwalk", 16, walks_per_node=9)
    assert m2.walks_per_node == 9


def test_build_method_nrp_scale_calibration():
    m = build_method("nrp", 16)
    assert m.config.lam == pytest.approx(BENCH_OVERRIDES["nrp"]["lam"])


def test_fit_timed_reports_positive_time(small_undirected):
    result = fit_timed(NRP(dim=8, svd="exact", seed=0), small_undirected)
    assert result.seconds > 0
    assert result.embedder.forward_ is not None


# ---------------------------------------------------------- integration
def test_link_prediction_auc_pipeline():
    data = load_dataset("wiki_sim", scale=0.15)
    auc, seconds = link_prediction_auc("nrp", data, 32, seed=0)
    assert auc > 0.7
    assert seconds > 0.0


def test_nrp_beats_approxppr_on_link_prediction():
    """The paper's core ablation: reweighting improves LP AUC."""
    data = load_dataset("blog_sim", scale=0.15)
    auc_nrp, _ = link_prediction_auc("nrp", data, 64, seed=0)
    auc_base, _ = link_prediction_auc("approxppr", data, 64, seed=0)
    assert auc_nrp > auc_base - 0.005      # ties allowed, regressions not


def test_evolving_auc_pipeline():
    data = load_evolving_dataset("vk_sim", scale=0.2)
    auc = evolving_auc("nrp", data.old_graph, data.new_src, data.new_dst,
                       32, seed=0)
    assert auc > 0.6


def test_full_method_list_importable():
    from repro.bench import FULL_METHOD_SET, SMALL_METHOD_SET
    from repro.baselines import available_methods
    known = set(available_methods())
    assert set(m for m in FULL_METHOD_SET) <= known
    assert set(SMALL_METHOD_SET) <= known


def test_embedding_dimensions_consistent_across_methods():
    data = load_dataset("wiki_sim", scale=0.1)
    for name in ("nrp", "approxppr", "strap"):
        model = build_method(name, 32, seed=0).fit(data.graph)
        assert model.node_features().shape == (data.graph.num_nodes, 32)
