"""repro-fit: edge list in, queryable serving store out."""

import json

import numpy as np
import pytest

from repro import NRP
from repro.cli_fit import build_parser, main
from repro.graph import powerlaw_community
from repro.graph.build import write_edge_list
from repro.io import load_embeddings
from repro.serving import EmbeddingStore
from repro.serving.cli import main as serve_main


@pytest.fixture(scope="module")
def edge_list_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("fit") / "graph.txt"
    graph, _ = powerlaw_community(150, 700, num_communities=3, seed=2)
    write_edge_list(graph, path)
    return path, graph


def test_fit_exports_queryable_store(edge_list_file, tmp_path, capsys):
    path, graph = edge_list_file
    store_dir = tmp_path / "store"
    rc = main([str(path), str(store_dir), "--dim", "16", "--ell2", "2",
               "--chunk-size", "64", "--workers", "2", "--seed", "3"])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out.strip())
    assert summary["num_nodes"] == graph.num_nodes
    assert summary["dim"] == 16

    store = EmbeddingStore.open(store_dir)
    assert store.num_nodes == graph.num_nodes
    assert store.directional
    assert store.metadata["workers"] == 2
    ids, scores = store.to_serving().topk([0, 1], k=5)
    assert ids.shape == (2, 5)
    assert np.all(np.diff(scores, axis=1) <= 1e-12)


def test_fit_store_matches_in_process_fit(edge_list_file, tmp_path, capsys):
    path, graph = edge_list_file
    store_dir = tmp_path / "store"
    rc = main([str(path), str(store_dir), "--dim", "16", "--ell2", "2",
               "--seed", "7"])
    assert rc == 0
    capsys.readouterr()
    model = NRP(dim=16, ell2=2, seed=7).fit(graph)
    store = EmbeddingStore.open(store_dir)
    np.testing.assert_array_equal(np.asarray(store.forward_),
                                  model.forward_)
    np.testing.assert_array_equal(np.asarray(store.backward_),
                                  model.backward_)


def test_fit_bundle_roundtrip_and_serve_query(edge_list_file, tmp_path,
                                              capsys):
    path, _ = edge_list_file
    store_dir = tmp_path / "store"
    bundle = tmp_path / "run.npz"
    rc = main([str(path), str(store_dir), "--dim", "8", "--ell2", "1",
               "--bundle", str(bundle), "--name", "demo"])
    assert rc == 0
    capsys.readouterr()
    loaded = load_embeddings(bundle)
    assert loaded.name == "demo"
    assert loaded.metadata["num_edges"] > 0

    rc = serve_main(["query", str(store_dir), "--nodes", "0,3", "-k", "4"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["node"] == 0


def test_fit_approxppr_method(edge_list_file, tmp_path, capsys):
    path, _ = edge_list_file
    rc = main([str(path), str(tmp_path / "s"), "--dim", "8",
               "--method", "approxppr", "--workers", "2"])
    assert rc == 0
    summary = json.loads(capsys.readouterr().out.strip())
    assert summary["name"] == "ApproxPPR"


def test_missing_edge_list_is_reported(tmp_path, capsys):
    rc = main([str(tmp_path / "nope.txt"), str(tmp_path / "s")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_empty_edge_list_is_reported(tmp_path, capsys):
    empty = tmp_path / "empty.txt"
    empty.write_text("# nothing\n")
    rc = main([str(empty), str(tmp_path / "s")])
    assert rc == 2
    assert "no nodes" in capsys.readouterr().err


def test_invalid_hyperparameters_are_reported(edge_list_file, tmp_path,
                                              capsys):
    path, _ = edge_list_file
    rc = main([str(path), str(tmp_path / "s"), "--dim", "16",
               "--workers", "0"])
    assert rc == 2
    assert "workers" in capsys.readouterr().err


def test_parser_defaults():
    args = build_parser().parse_args(["g.txt", "out"])
    assert args.dim == 128 and args.workers == 1 and args.chunk_size is None
    assert args.metrics_json is None and args.log_level is None


def test_fit_metrics_json_snapshot(edge_list_file, tmp_path, capsys):
    from repro import obs
    path, _ = edge_list_file
    snap_path = tmp_path / "metrics" / "fit.json"
    try:
        rc = main([str(path), str(tmp_path / "store"), "--dim", "8",
                   "--ell2", "1", "--seed", "3",
                   "--metrics-json", str(snap_path),
                   "--log-level", "warning"])
    finally:
        obs.set_enabled(False)
        obs.reset()
    assert rc == 0
    capsys.readouterr()
    snap = json.loads(snap_path.read_text())
    # the fit pipeline leaves its span tree and span metrics behind
    span_names = {c["labels"]["name"] for c in snap["counters"]
                  if c["name"] == "span_total"}
    assert {"nrp.fit", "approx_ppr.svd", "nrp.reweighting"} <= span_names
    [tree] = snap["traces"]
    assert tree["name"] == "nrp.fit"
    assert {c["name"] for c in tree["children"]} >= {"nrp.reweighting"}
    # the CLI folds its printed summary into the snapshot
    assert snap["summary"]["dim"] == 8
