"""The fork-based chunk scheduler: ordering, payload, determinism."""

import numpy as np
import pytest

from repro import parallel
from repro.errors import ParameterError
from repro.parallel import effective_workers, parallel_map, payload


def _square(task):
    return task * task


def _scaled_row(bounds):
    matrix, factor = payload()
    start, stop = bounds
    return matrix[start:stop] * factor


def test_results_preserve_task_order():
    assert parallel_map(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]


def test_payload_is_visible_inline():
    matrix = np.arange(12.0).reshape(6, 2)
    out = parallel_map(_scaled_row, [(0, 3), (3, 6)], payload=(matrix, 2.0))
    np.testing.assert_array_equal(np.concatenate(out), matrix * 2.0)


def test_payload_cleared_after_call():
    parallel_map(_square, [1], payload="something")
    assert payload() is None


def test_force_processes_matches_inline():
    """The real multiprocess path produces the same bits as the loop."""
    matrix = np.random.default_rng(0).standard_normal((40, 3))
    tasks = [(s, min(40, s + 7)) for s in range(0, 40, 7)]
    inline = parallel_map(_scaled_row, tasks, payload=(matrix, 1.5))
    forked = parallel_map(_scaled_row, tasks, workers=2,
                          payload=(matrix, 1.5), force_processes=True)
    for a, b in zip(inline, forked):
        assert np.array_equal(a, b)


def test_workers_capped_by_cpus_and_tasks():
    cpus = parallel.available_cpus()
    assert effective_workers(1000) == cpus
    assert effective_workers(1000, num_tasks=1) == 1
    assert effective_workers(1) == 1


@pytest.mark.parametrize("workers", [0, -1])
def test_invalid_workers_raise(workers):
    with pytest.raises(ParameterError):
        effective_workers(workers)
    with pytest.raises(ParameterError):
        parallel_map(_square, [1, 2], workers=workers)


def test_fractional_workers_raise():
    with pytest.raises(ParameterError):
        effective_workers(2.5)
