"""Tests for the shared Embedder interface."""

import numpy as np
import pytest

from repro.core import NRP, ApproxPPREmbedder
from repro.errors import ParameterError, ReproError


def test_node_features_normalized_halves(small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    feats = model.node_features()
    fwd_norms = np.linalg.norm(feats[:, :8], axis=1)
    bwd_norms = np.linalg.norm(feats[:, 8:], axis=1)
    ok = fwd_norms > 1e-9
    np.testing.assert_allclose(fwd_norms[ok], 1.0, atol=1e-9)
    np.testing.assert_allclose(bwd_norms[ok], 1.0, atol=1e-9)


def test_score_all_from_matches_score_pairs(small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    u = 5
    all_scores = model.score_all_from(u)
    some = np.array([0, 3, 9, 20])
    np.testing.assert_allclose(all_scores[some],
                               model.score_pairs([u] * 4, some), rtol=1e-12)


def test_directional_dim_must_be_even():
    with pytest.raises(ParameterError):
        NRP(dim=7)
    with pytest.raises(ParameterError):
        ApproxPPREmbedder(dim=9)


def test_dim_minimum():
    with pytest.raises(ParameterError):
        NRP(dim=0)


def test_unfitted_node_features_raises():
    with pytest.raises(ReproError):
        ApproxPPREmbedder(dim=8).node_features()


def test_score_pairs_accepts_lists(small_undirected):
    model = ApproxPPREmbedder(dim=8, svd="exact",
                              seed=0).fit(small_undirected)
    out = model.score_pairs([0, 1], [2, 3])
    assert out.shape == (2,)


def test_repr_contains_dim():
    assert "16" in repr(NRP(dim=16))
