"""Utility-module tests and failure-injection edge cases."""

import logging

import numpy as np
import pytest

from repro.core import NRP, ApproxPPRConfig, approx_ppr_embeddings
from repro.errors import ParameterError
from repro.graph import from_edges, link_prediction_split
from repro.logging_utils import Timer, get_logger, timed
from repro.ppr import ppr_row
from repro.rng import ensure_rng, spawn_rngs


# ------------------------------------------------------------------- rng
def test_ensure_rng_from_int_deterministic():
    a = ensure_rng(7).integers(0, 1000, 5)
    b = ensure_rng(7).integers(0, 1000, 5)
    np.testing.assert_array_equal(a, b)


def test_ensure_rng_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_spawn_rngs_independent():
    rngs = spawn_rngs(3, 4)
    assert len(rngs) == 4
    draws = [r.integers(0, 2**32) for r in rngs]
    assert len(set(draws)) == 4          # astronomically unlikely collision


def test_spawn_rngs_deterministic():
    a = [r.integers(0, 100) for r in spawn_rngs(1, 3)]
    b = [r.integers(0, 100) for r in spawn_rngs(1, 3)]
    assert a == b


# ----------------------------------------------------------------- timing
def test_timer_accumulates():
    timer = Timer()
    with timer:
        pass
    first = timer.elapsed
    with timer:
        sum(range(1000))
    assert timer.elapsed >= first


def test_timer_reentrant_counts_outermost_once():
    timer = Timer()
    with timer:
        with timer:                       # nested hold: no double-counting
            sum(range(1000))
        inner_done = timer.elapsed
        assert inner_done == 0.0          # still open at the outer level
    assert timer.elapsed > 0.0
    outer_done = timer.elapsed
    with timer:
        pass
    assert timer.elapsed >= outer_done


def test_timer_unmatched_exit_is_noop():
    timer = Timer()
    timer.__exit__(None, None, None)      # never entered: tolerate
    assert timer.elapsed == 0.0
    with timer:
        pass
    done = timer.elapsed
    timer.__exit__(None, None, None)      # stray extra exit after close
    assert timer.elapsed == done


def test_timed_context_logs(caplog):
    logger = get_logger("test")
    with caplog.at_level(logging.DEBUG, logger="repro.test"):
        with timed("unit-of-work", logger):
            pass
    assert any("unit-of-work" in r.message for r in caplog.records)


def test_timed_logs_duration_on_exception(caplog):
    logger = get_logger("test")
    with caplog.at_level(logging.DEBUG, logger="repro.test"):
        with pytest.raises(RuntimeError):
            with timed("doomed-stage", logger):
                raise RuntimeError("boom")
    [record] = [r for r in caplog.records if "doomed-stage" in r.message]
    assert "(failed)" in record.message


def test_get_logger_hierarchy():
    assert get_logger().name == "repro"
    assert get_logger("sub").name == "repro.sub"


# ----------------------------------------------------- degenerate graphs
def test_graph_with_isolated_nodes_embeds():
    # nodes 4, 5 have no edges at all
    g = from_edges(6, [0, 1, 2], [1, 2, 3], directed=False)
    model = NRP(dim=4, svd="exact", seed=0).fit(g)
    assert np.all(np.isfinite(model.forward_))
    # isolated nodes get (near-)zero forward embeddings
    assert np.abs(model.forward_[4]).sum() < 1e-9


def test_star_graph_hub_gets_large_weight():
    center_to_leaves = list(range(1, 9))
    g = from_edges(9, [0] * 8, center_to_leaves, directed=False)
    model = NRP(dim=4, svd="exact", lam=0.01, seed=0).fit(g)
    assert model.w_fwd_[0] > model.w_fwd_[1]


def test_two_node_graph():
    g = from_edges(2, [0], [1], directed=False)
    row = ppr_row(g, 0, 0.15)
    assert row.sum() == pytest.approx(1.0)
    x, y = approx_ppr_embeddings(g, ApproxPPRConfig(k_prime=1, svd="exact"))
    assert x.shape == (2, 1)


def test_directed_cycle_uniform_ppr():
    n = 5
    g = from_edges(n, list(range(n)), [(i + 1) % n for i in range(n)],
                   directed=True)
    # by symmetry, all nodes have identical PPR mass profiles (rotated)
    r0 = ppr_row(g, 0, 0.3)
    r1 = ppr_row(g, 1, 0.3)
    np.testing.assert_allclose(r0, np.roll(r1, -1), atol=1e-12)


def test_split_fails_gracefully_on_tiny_graph():
    g = from_edges(3, [0], [1], directed=False)
    with pytest.raises(ParameterError):
        link_prediction_split(g, test_fraction=0.9, seed=0)


def test_dense_clique_embedding_symmetric():
    n = 6
    src = [i for i in range(n) for j in range(n) if i < j]
    dst = [j for i in range(n) for j in range(n) if i < j]
    g = from_edges(n, src, dst, directed=False)
    model = NRP(dim=4, svd="exact", lam=0.1, seed=0).fit(g)
    # all nodes are equivalent; the rank-k' truncation breaks the symmetry
    # slightly, so require near-equality (1% relative spread)
    assert model.w_fwd_.std() / model.w_fwd_.mean() < 0.01
    assert model.w_bwd_.std() / model.w_bwd_.mean() < 0.01


def test_nrp_on_disconnected_components():
    # two disjoint triangles
    g = from_edges(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3],
                   directed=False)
    model = NRP(dim=4, svd="exact", lam=0.1, seed=0).fit(g)
    # cross-component proximity must be ~0, intra-component positive
    intra = model.score_pairs([0], [1])[0]
    inter = model.score_pairs([0], [3])[0]
    assert intra > abs(inter)
