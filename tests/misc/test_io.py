"""Tests for embedding persistence."""

import json

import numpy as np
import pytest

from repro.core import NRP
from repro.baselines import make_embedder
from repro.errors import ParameterError, ReproError
from repro.io import (load_embeddings, save_embeddings,
                      validate_embedding_matrices)


def test_roundtrip_directional(tmp_path, small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    path = tmp_path / "nrp.npz"
    save_embeddings(model, path, metadata={"dataset": "test"})
    bundle = load_embeddings(path)
    assert bundle.name == "NRP"
    assert bundle.directional
    np.testing.assert_array_equal(bundle.forward_, model.forward_)
    np.testing.assert_array_equal(bundle.backward_, model.backward_)
    assert bundle.metadata["dataset"] == "test"
    np.testing.assert_array_equal(bundle.metadata["w_fwd"], model.w_fwd_)


def test_roundtrip_single_vector(tmp_path, small_undirected):
    model = make_embedder("randne", 16, seed=0).fit(small_undirected)
    path = tmp_path / "randne.npz"
    save_embeddings(model, path)
    bundle = load_embeddings(path)
    assert not bundle.directional
    np.testing.assert_array_equal(bundle.embedding_, model.embedding_)


def test_loaded_bundle_scores_match(tmp_path, small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    path = tmp_path / "m.npz"
    save_embeddings(model, path)
    bundle = load_embeddings(path)
    src, dst = np.array([0, 5]), np.array([3, 9])
    np.testing.assert_allclose(bundle.score_pairs(src, dst),
                               model.score_pairs(src, dst))
    np.testing.assert_allclose(bundle.node_features(),
                               model.node_features())


def test_save_unfitted_raises(tmp_path):
    with pytest.raises(ReproError):
        save_embeddings(NRP(dim=8), tmp_path / "x.npz")


def test_roundtrip_single_vector_metadata(tmp_path, small_undirected):
    model = make_embedder("spectral", 16, seed=0).fit(small_undirected)
    path = tmp_path / "spectral.npz"
    save_embeddings(model, path, metadata={"dataset": "unit", "run": 3})
    bundle = load_embeddings(path)
    assert bundle.name == model.name
    assert not bundle.directional
    assert bundle.metadata["dataset"] == "unit"
    assert bundle.metadata["run"] == 3
    np.testing.assert_array_equal(bundle.embedding_, model.embedding_)


def test_roundtrip_preserves_lp_scoring(tmp_path, small_undirected):
    """Loaded bundles must keep the method's LP scoring protocol."""
    model = make_embedder("spectral", 16, seed=0).fit(small_undirected)
    assert model.lp_scoring == "edge_features"
    path = tmp_path / "spectral.npz"
    save_embeddings(model, path)
    bundle = load_embeddings(path)
    assert bundle.lp_scoring == "edge_features"
    assert "lp_scoring" not in bundle.metadata


def _write_corrupt_npz(path, *, directional, **arrays):
    meta = {"name": "corrupt", "directional": directional}
    payload = {"metadata": np.frombuffer(json.dumps(meta).encode(),
                                         dtype=np.uint8)}
    payload.update(arrays)
    np.savez(path, **payload)


def test_load_rejects_mismatched_directional_shapes(tmp_path):
    path = tmp_path / "bad.npz"
    _write_corrupt_npz(path, directional=True,
                       forward=np.zeros((10, 8)), backward=np.zeros((9, 8)))
    with pytest.raises(ReproError, match=r"\(10, 8\).*\(9, 8\)"):
        load_embeddings(path)


def test_load_rejects_missing_backward(tmp_path):
    path = tmp_path / "bad.npz"
    _write_corrupt_npz(path, directional=True, forward=np.zeros((10, 8)))
    with pytest.raises(ReproError, match="forward and backward"):
        load_embeddings(path)


def test_load_rejects_non_2d_embedding(tmp_path):
    path = tmp_path / "bad.npz"
    _write_corrupt_npz(path, directional=False, embedding=np.zeros(10))
    with pytest.raises(ReproError, match="2-D"):
        load_embeddings(path)


def test_load_rejects_mismatched_directional_dtypes(tmp_path):
    path = tmp_path / "bad.npz"
    _write_corrupt_npz(path, directional=True,
                       forward=np.zeros((10, 8), dtype=np.float64),
                       backward=np.zeros((10, 8), dtype=np.float32))
    with pytest.raises(ReproError, match="dtypes differ"):
        load_embeddings(path)


def test_load_rejects_integer_matrix(tmp_path):
    path = tmp_path / "bad.npz"
    _write_corrupt_npz(path, directional=False,
                       embedding=np.zeros((10, 4), dtype=np.int32))
    with pytest.raises(ReproError, match="floating"):
        load_embeddings(path)


def test_save_rejects_reserved_metadata_keys(tmp_path, small_undirected):
    model = make_embedder("randne", 16, seed=0).fit(small_undirected)
    for key in ("name", "directional", "lp_scoring"):
        with pytest.raises(ParameterError, match="reserved"):
            save_embeddings(model, tmp_path / "x.npz", metadata={key: "zap"})


def test_load_rejects_non_npz_file(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_text("this is not a zip archive")
    with pytest.raises(ReproError, match="not a valid embedding bundle"):
        load_embeddings(path)


def test_load_rejects_missing_metadata_record(tmp_path):
    path = tmp_path / "nometa.npz"
    np.savez(path, embedding=np.zeros((4, 4)))
    with pytest.raises(ReproError, match="metadata"):
        load_embeddings(path)


def test_load_missing_file_is_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_embeddings(tmp_path / "ghost.npz")


def test_validate_embedding_matrices_accepts_good_input():
    validate_embedding_matrices("ok", directional=False,
                                embedding=np.zeros((5, 3)))
    validate_embedding_matrices("ok", directional=True,
                                forward=np.zeros((5, 3)),
                                backward=np.zeros((5, 3)))
