"""Tests for embedding persistence."""

import numpy as np
import pytest

from repro.core import NRP
from repro.baselines import make_embedder
from repro.errors import ReproError
from repro.io import load_embeddings, save_embeddings


def test_roundtrip_directional(tmp_path, small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    path = tmp_path / "nrp.npz"
    save_embeddings(model, path, metadata={"dataset": "test"})
    bundle = load_embeddings(path)
    assert bundle.name == "NRP"
    assert bundle.directional
    np.testing.assert_array_equal(bundle.forward_, model.forward_)
    np.testing.assert_array_equal(bundle.backward_, model.backward_)
    assert bundle.metadata["dataset"] == "test"
    np.testing.assert_array_equal(bundle.metadata["w_fwd"], model.w_fwd_)


def test_roundtrip_single_vector(tmp_path, small_undirected):
    model = make_embedder("randne", 16, seed=0).fit(small_undirected)
    path = tmp_path / "randne.npz"
    save_embeddings(model, path)
    bundle = load_embeddings(path)
    assert not bundle.directional
    np.testing.assert_array_equal(bundle.embedding_, model.embedding_)


def test_loaded_bundle_scores_match(tmp_path, small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    path = tmp_path / "m.npz"
    save_embeddings(model, path)
    bundle = load_embeddings(path)
    src, dst = np.array([0, 5]), np.array([3, 9])
    np.testing.assert_allclose(bundle.score_pairs(src, dst),
                               model.score_pairs(src, dst))
    np.testing.assert_allclose(bundle.node_features(),
                               model.node_features())


def test_save_unfitted_raises(tmp_path):
    with pytest.raises(ReproError):
        save_embeddings(NRP(dim=8), tmp_path / "x.npz")
