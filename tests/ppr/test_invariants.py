"""Property-based invariants shared by every PPR backend.

The five solvers (power iteration, forward push, backward push, FORA,
Monte-Carlo) estimate the same termination-PPR object, so on random
graphs they must agree within their published error bounds, produce
nonnegative rows that sum to ~1, and treat dangling nodes identically
(a walk at a dangling node terminates there, so ``pi(s, .) = e_s`` for
a dangling source under every backend).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, from_edges
from repro.ppr import (available_kernels, backward_push, fora, forward_push,
                       monte_carlo_ppr, ppr_rows)


@st.composite
def random_graphs(draw):
    """A small random graph plus a source node, deterministic per draw."""
    n = draw(st.integers(5, 40))
    directed = draw(st.booleans())
    max_edges = n * (n - 1) // (1 if directed else 2)
    m = draw(st.integers(n, min(4 * n, max_edges)))
    seed = draw(st.integers(0, 10_000))
    graph = erdos_renyi(n, m, directed=directed, seed=seed)
    source = draw(st.integers(0, n - 1))
    return graph, source


@given(random_graphs(), st.sampled_from([0.1, 0.15, 0.5]))
@settings(max_examples=25, deadline=None)
def test_power_iteration_rows_are_distributions(graph_source, alpha):
    graph, source = graph_source
    row = ppr_rows(graph, np.array([source]), alpha)[0]
    assert np.all(row >= -1e-15)
    assert row.sum() == pytest.approx(1.0, abs=1e-9)


@pytest.mark.parametrize("kernel", available_kernels())
@given(random_graphs())
@settings(max_examples=25, deadline=None)
def test_forward_push_within_additive_bound(kernel, graph_source):
    """``estimate <= pi`` elementwise and ``pi - estimate <= sum(residue)``,
    under every push kernel backend."""
    graph, source = graph_source
    alpha = 0.15
    exact = ppr_rows(graph, np.array([source]), alpha)[0]
    estimate, residue = forward_push(graph, source, alpha, r_max=1e-5,
                                     kernel=kernel)
    assert np.all(estimate >= 0.0)
    assert np.all(residue >= -1e-15)
    assert np.all(estimate <= exact + 1e-10)
    assert np.max(exact - estimate) <= residue.sum() + 1e-10


@pytest.mark.parametrize("kernel", available_kernels())
@given(random_graphs())
@settings(max_examples=20, deadline=None)
def test_backward_push_within_additive_bound(kernel, graph_source):
    """``0 <= pi(., t) - estimate <= r_max`` for every source,
    under every push kernel backend."""
    graph, target = graph_source
    alpha = 0.15
    r_max = 1e-4
    exact_col = ppr_rows(graph, np.arange(graph.num_nodes), alpha)[:, target]
    estimate, residue = backward_push(graph, target, alpha, r_max=r_max,
                                      kernel=kernel)
    assert np.all(estimate >= 0.0)
    assert np.all(estimate <= exact_col + 1e-10)
    assert np.max(exact_col - estimate) <= r_max + 1e-10


@given(random_graphs())
@settings(max_examples=15, deadline=None)
def test_fora_is_a_distribution_close_to_exact(graph_source):
    """FORA conserves probability mass exactly and tracks the exact row."""
    graph, source = graph_source
    alpha = 0.15
    estimate = fora(graph, source, alpha, r_max=1e-4, walks_per_unit=64.0,
                    seed=7)
    assert np.all(estimate >= 0.0)
    # push invariant summed over targets: mass is conserved exactly
    assert estimate.sum() == pytest.approx(1.0, abs=1e-9)
    exact = ppr_rows(graph, np.array([source]), alpha)[0]
    assert np.max(np.abs(estimate - exact)) < 0.1


@given(random_graphs())
@settings(max_examples=10, deadline=None)
def test_monte_carlo_is_a_distribution_close_to_exact(graph_source):
    graph, source = graph_source
    alpha = 0.15
    estimate = monte_carlo_ppr(graph, source, alpha, num_walks=6000, seed=3)
    assert np.all(estimate >= 0.0)
    assert estimate.sum() == pytest.approx(1.0, abs=1e-12)
    exact = ppr_rows(graph, np.array([source]), alpha)[0]
    # 6000 walks: entrywise sampling error O(sqrt(p(1-p)/6000)) ~ 6e-3;
    # a generous 12-sigma band keeps the property deterministic-enough
    assert np.max(np.abs(estimate - exact)) < 0.08


# ----------------------------------------------------------------------
# dangling-node consistency
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def dangling_graph():
    """Directed graph where node 3 has no out-arcs (a dangling node)."""
    edges = [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 4), (4, 0)]
    return from_edges(5, [e[0] for e in edges], [e[1] for e in edges],
                      directed=True)


def test_dangling_source_is_delta_under_every_backend(dangling_graph):
    """A walk from a dangling node terminates immediately: pi(s,.) = e_s."""
    g = dangling_graph
    s = 3
    expected = np.zeros(g.num_nodes)
    expected[s] = 1.0

    exact = ppr_rows(g, np.array([s]), 0.15)[0]
    np.testing.assert_allclose(exact, expected, atol=1e-12)

    estimate, residue = forward_push(g, s, 0.15, r_max=1e-8)
    np.testing.assert_allclose(estimate, expected, atol=1e-12)
    assert residue.sum() == pytest.approx(0.0, abs=1e-15)

    np.testing.assert_allclose(fora(g, s, 0.15, seed=0), expected,
                               atol=1e-12)
    np.testing.assert_allclose(monte_carlo_ppr(g, s, 0.15, num_walks=500,
                                               seed=0), expected, atol=1e-12)


def test_dangling_rows_sum_to_one_everywhere(dangling_graph):
    """Termination-PPR conserves mass even when walks hit dangling nodes."""
    rows = ppr_rows(dangling_graph, np.arange(dangling_graph.num_nodes), 0.15)
    np.testing.assert_allclose(rows.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(rows >= -1e-15)


def test_backward_push_consistent_on_dangling_column(dangling_graph):
    """The column of a dangling node matches power iteration within r_max."""
    g = dangling_graph
    target = 3
    exact_col = ppr_rows(g, np.arange(g.num_nodes), 0.15)[:, target]
    estimate, _ = backward_push(g, target, 0.15, r_max=1e-6)
    assert np.max(np.abs(exact_col - estimate)) <= 1e-6 + 1e-12


@pytest.mark.parametrize("kernel", available_kernels())
def test_push_backends_agree_with_each_other(dangling_graph, kernel):
    """forward push rows vs backward push columns: same matrix,
    whichever kernel backend computes them."""
    g = dangling_graph
    n = g.num_nodes
    fwd = np.array([forward_push(g, s, 0.15, r_max=1e-9, kernel=kernel)[0]
                    for s in range(n)])
    bwd = np.column_stack([backward_push(g, t, 0.15, r_max=1e-9,
                                         kernel=kernel)[0]
                           for t in range(n)])
    np.testing.assert_allclose(fwd, bwd, atol=1e-6)
