"""Property tests for the frontier-synchronous push kernel layer.

Every backend (scalar reference, NumPy frontier, the uncompiled numba
loop bodies, and — when the optional dependency is installed — the
compiled numba kernels) must agree with the seed scalar implementation
within the additive ``r_max`` bounds, on graphs that include dangling
nodes, parallel (multigraph) edges, disconnected sources, exhausted
``max_pushes`` budgets, and empty inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import Graph, erdos_renyi, from_edges
from repro.ppr import (available_kernels, backward_push, backward_push_batch,
                       forward_push, forward_push_batch, ppr_matrix_dense,
                       ppr_rows, resolve_kernel, spread_frontier)
from repro.ppr.kernels import (HAS_NUMBA, _backward_push_loop,
                               _forward_push_loop, _jit_kernels)

VECTOR_KERNELS = [k for k in available_kernels() if k != "scalar"]


@st.composite
def push_graphs(draw):
    """Random graphs with dangling nodes and optional parallel edges."""
    n = draw(st.integers(2, 30))
    directed = draw(st.booleans())
    m = draw(st.integers(0, 3 * n))
    seed = draw(st.integers(0, 10_000))
    dedup = draw(st.booleans())
    rng = np.random.default_rng(seed)
    graph = from_edges(n, rng.integers(0, n, m), rng.integers(0, n, m),
                       directed=directed, dedup=dedup)
    source = draw(st.integers(0, n - 1))
    return graph, source


# ----------------------------------------------------------------------
# forward parity within the additive bound
# ----------------------------------------------------------------------

@given(push_graphs())
@settings(max_examples=40, deadline=None)
def test_forward_kernels_within_additive_bound(graph_source):
    graph, source = graph_source
    alpha = 0.15
    exact = ppr_rows(graph, np.array([source]), alpha)[0]
    for kern in available_kernels():
        estimate, residue = forward_push(graph, source, alpha, r_max=1e-4,
                                         kernel=kern)
        assert np.all(estimate >= 0.0), kern
        assert np.all(residue >= -1e-15), kern
        assert np.all(estimate <= exact + 1e-10), kern
        assert np.max(exact - estimate) <= residue.sum() + 1e-10, kern
        assert estimate.sum() + residue.sum() == pytest.approx(1.0,
                                                               abs=1e-9)


@given(push_graphs())
@settings(max_examples=25, deadline=None)
def test_forward_batch_rows_match_scalar_within_bound(graph_source):
    """Each batch row obeys the same bound the scalar run does."""
    graph, source = graph_source
    alpha = 0.15
    sources = np.array([source, 0, graph.num_nodes - 1])
    est_sc, res_sc = forward_push_batch(graph, sources, alpha, r_max=1e-4,
                                        kernel="scalar")
    for kern in VECTOR_KERNELS:
        est, res = forward_push_batch(graph, sources, alpha, r_max=1e-4,
                                      kernel=kern)
        assert est.shape == (3, graph.num_nodes)
        # both sit within sum(residue) of the same exact row, so they
        # sit within the residue sums of each other
        bound = res.sum(axis=1) + res_sc.sum(axis=1) + 1e-10
        assert np.all(np.abs(est - est_sc) <= bound[:, None]), kern


@given(push_graphs())
@settings(max_examples=20, deadline=None)
def test_forward_kernels_converge_together(graph_source):
    """With a tiny r_max every backend lands on the exact row."""
    graph, source = graph_source
    exact = ppr_rows(graph, np.array([source]), 0.2)[0]
    for kern in available_kernels():
        estimate, _ = forward_push(graph, source, 0.2, r_max=1e-10,
                                   kernel=kern)
        np.testing.assert_allclose(estimate, exact, atol=1e-7,
                                   err_msg=kern)


# ----------------------------------------------------------------------
# backward parity within the additive bound
# ----------------------------------------------------------------------

@given(push_graphs())
@settings(max_examples=25, deadline=None)
def test_backward_kernels_within_additive_bound(graph_source):
    graph, target = graph_source
    alpha = 0.15
    r_max = 1e-4
    exact_col = ppr_rows(graph, np.arange(graph.num_nodes),
                         alpha)[:, target]
    for kern in available_kernels():
        estimate, _ = backward_push(graph, target, alpha, r_max=r_max,
                                    kernel=kern)
        assert np.all(estimate >= 0.0), kern
        assert np.all(estimate <= exact_col + 1e-10), kern
        assert np.max(exact_col - estimate) <= r_max + 1e-10, kern


@given(push_graphs())
@settings(max_examples=15, deadline=None)
def test_backward_batch_columns_converge(graph_source):
    graph, target = graph_source
    targets = np.array([target, graph.num_nodes - 1])
    exact = ppr_rows(graph, np.arange(graph.num_nodes), 0.15)[:, targets].T
    for kern in VECTOR_KERNELS:
        estimate, _ = backward_push_batch(graph, targets, 0.15, r_max=1e-9,
                                          kernel=kern)
        np.testing.assert_allclose(estimate, exact, atol=1e-6, err_msg=kern)


# ----------------------------------------------------------------------
# termination invariants: dangling mass, budget exhaustion, empty input
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def dangling_graph():
    """Node 3 dangling, node 5 fully disconnected."""
    edges = [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 4), (4, 0)]
    return from_edges(6, [e[0] for e in edges], [e[1] for e in edges],
                      directed=True)


@pytest.mark.parametrize("kern", available_kernels())
def test_dangling_and_disconnected_sources(dangling_graph, kern):
    g = dangling_graph
    for s in (3, 5):       # dangling / fully disconnected
        expected = np.zeros(g.num_nodes)
        expected[s] = 1.0
        estimate, residue = forward_push(g, s, 0.15, r_max=1e-8,
                                         kernel=kern)
        np.testing.assert_allclose(estimate, expected, atol=1e-12)
        assert residue.sum() == pytest.approx(0.0, abs=1e-15)


@pytest.mark.parametrize("kern", available_kernels())
def test_dangling_target_column_seeding(dangling_graph, kern):
    """The 1/alpha dangling-target seeding survives every backend."""
    g = dangling_graph
    exact_col = ppr_rows(g, np.arange(g.num_nodes), 0.15)[:, 3]
    estimate, _ = backward_push(g, 3, 0.15, r_max=1e-8, kernel=kern)
    assert np.max(np.abs(exact_col - estimate)) <= 1e-8 + 1e-12


@pytest.mark.parametrize("kern", available_kernels())
def test_budget_exhaustion_preserves_invariant(er_graph, kern):
    """Stopping mid-push keeps p + r @ Pi == pi and conserves mass."""
    pi = ppr_matrix_dense(er_graph, 0.15)
    for budget in (0, 1, 7, 50):
        estimate, residue = forward_push(er_graph, 5, 0.15, r_max=1e-8,
                                         max_pushes=budget, kernel=kern)
        reconstructed = estimate + residue @ pi
        np.testing.assert_allclose(reconstructed, pi[5], atol=1e-9)
        assert estimate.sum() + residue.sum() == pytest.approx(1.0,
                                                               abs=1e-9)
    zero_est, zero_res = forward_push(er_graph, 5, 0.15, max_pushes=0,
                                      kernel=kern)
    assert zero_est.sum() == 0.0
    assert zero_res[5] == 1.0


@pytest.mark.parametrize("kern", available_kernels())
def test_budget_exhaustion_backward(er_graph, kern):
    """Backward budget exhaustion underestimates but never overshoots."""
    exact_col = ppr_rows(er_graph, np.arange(er_graph.num_nodes),
                         0.15)[:, 3]
    estimate, residue = backward_push(er_graph, 3, 0.15, r_max=1e-8,
                                      max_pushes=9, kernel=kern)
    assert np.all(estimate <= exact_col + 1e-10)
    assert np.all(residue >= -1e-15)


@pytest.mark.parametrize("kern", available_kernels())
def test_empty_inputs(kern):
    empty = Graph(np.zeros(1, dtype=np.int64),
                  np.empty(0, dtype=np.int64), directed=True)
    est, res = forward_push_batch(empty, [], kernel=kern)
    assert est.shape == res.shape == (0, 0)
    est, res = backward_push_batch(empty, [], kernel=kern)
    assert est.shape == (0, 0)
    g = erdos_renyi(10, 20, seed=0)
    est, res = forward_push_batch(g, [], kernel=kern)
    assert est.shape == (0, 10)


# ----------------------------------------------------------------------
# multigraph regression: parallel edges must accumulate, not overwrite
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def multigraph():
    """Directed multigraph: the 0->1 and 2->3 arcs are doubled."""
    src = [0, 0, 0, 1, 2, 2, 2, 3]
    dst = [1, 1, 2, 2, 3, 3, 0, 0]
    return from_edges(4, src, dst, directed=True, dedup=False)


@pytest.mark.parametrize("kern", available_kernels())
def test_forward_push_parallel_edges(multigraph, kern):
    """Seed bug: ``residue[neighbors] += share`` dropped repeated
    indices, sending half the mass of a doubled arc into the void."""
    exact = ppr_rows(multigraph, np.array([0]), 0.15)[0]
    estimate, residue = forward_push(multigraph, 0, 0.15, r_max=1e-12,
                                     kernel=kern)
    np.testing.assert_allclose(estimate, exact, atol=1e-9)
    assert estimate.sum() + residue.sum() == pytest.approx(1.0, abs=1e-12)


@pytest.mark.parametrize("kern", available_kernels())
def test_backward_push_parallel_edges(multigraph, kern):
    exact_col = ppr_rows(multigraph, np.arange(4), 0.15)[:, 2]
    estimate, _ = backward_push(multigraph, 2, 0.15, r_max=1e-12,
                                kernel=kern)
    np.testing.assert_allclose(estimate, exact_col, atol=1e-9)


# ----------------------------------------------------------------------
# the numba loop bodies, exercised uncompiled (no optional dep needed)
# ----------------------------------------------------------------------

def test_forward_loop_body_matches_scalar(er_graph):
    g = er_graph
    n = g.num_nodes
    sources = np.array([0, 42], dtype=np.int64)
    estimate = np.zeros(2 * n)
    residue = np.zeros(2 * n)
    _forward_push_loop(g.indptr, g.indices, g.out_degrees, sources, n,
                       0.15, 1e-8, 10_000_000, estimate, residue)
    exact = ppr_rows(g, sources, 0.15)
    np.testing.assert_allclose(estimate.reshape(2, n), exact, atol=1e-5)


def test_backward_loop_body_matches_scalar(er_graph):
    g = er_graph
    n = g.num_nodes
    targets = np.array([7], dtype=np.int64)
    seeds = np.where(g.out_degrees[targets] > 0, 1.0, 1.0 / 0.15)
    transpose = g.transpose()
    estimate = np.zeros(n)
    residue = np.zeros(n)
    _backward_push_loop(transpose.indptr, transpose.indices,
                        g.out_degree_inverse(), seeds, targets, n,
                        0.15, 1e-8, 10_000_000, estimate, residue)
    exact_col = ppr_rows(g, np.arange(n), 0.15)[:, 7]
    np.testing.assert_allclose(estimate, exact_col, atol=1e-6)


@pytest.mark.skipif(not HAS_NUMBA, reason="optional numba not installed")
def test_numba_kernels_compile_and_agree(er_graph):  # pragma: no cover
    est_nb, _ = forward_push_batch(er_graph, [0, 3], r_max=1e-9,
                                   kernel="numba")
    est_np, _ = forward_push_batch(er_graph, [0, 3], r_max=1e-9,
                                   kernel="numpy")
    np.testing.assert_allclose(est_nb, est_np, atol=1e-7)
    est_nb, _ = backward_push_batch(er_graph, [5], r_max=1e-9,
                                    kernel="numba")
    est_np, _ = backward_push_batch(er_graph, [5], r_max=1e-9,
                                    kernel="numpy")
    np.testing.assert_allclose(est_nb, est_np, atol=1e-7)


@pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
def test_jit_kernels_require_numba():
    with pytest.raises(ImportError):
        _jit_kernels()


# ----------------------------------------------------------------------
# frontier spread (streaming repair's inner step)
# ----------------------------------------------------------------------

def test_spread_frontier_matches_dense_product(small_directed):
    g = small_directed
    rng = np.random.default_rng(3)
    frontier = np.unique(rng.integers(0, g.num_nodes, 12))
    delta = rng.standard_normal((len(frontier), 5))
    rows, spread = spread_frontier(g, frontier, delta, decay=0.85)
    p = g.transition_matrix().toarray()
    dense = 0.85 * (p[:, frontier] @ delta)
    full = np.zeros_like(dense)
    full[rows] = spread
    np.testing.assert_allclose(full, dense, atol=1e-12)
    # rows not reported must be exactly untouched
    untouched = np.setdiff1d(np.arange(g.num_nodes), rows)
    assert np.abs(dense[untouched]).max() == 0.0


def test_spread_frontier_validates_shapes(er_graph):
    with pytest.raises(ParameterError):
        spread_frontier(er_graph, [0, 1], np.zeros((3, 2)))
    with pytest.raises(ParameterError):
        spread_frontier(er_graph, [-1], np.zeros((1, 2)))
    rows, spread = spread_frontier(er_graph, [], np.zeros((0, 4)))
    assert len(rows) == 0 and spread.shape == (0, 4)


# ----------------------------------------------------------------------
# kernel selection plumbing
# ----------------------------------------------------------------------

def test_resolve_kernel_names():
    assert resolve_kernel("scalar") == "scalar"
    assert resolve_kernel("NumPy") == "numpy"
    assert resolve_kernel("auto") in ("numpy", "numba")
    with pytest.raises(ParameterError):
        resolve_kernel("cuda")


@pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
def test_resolve_kernel_numba_missing_is_explicit():
    with pytest.raises(ParameterError, match="numba"):
        resolve_kernel("numba")


def test_env_var_selects_kernel(monkeypatch, fig1):
    monkeypatch.setenv("REPRO_KERNEL", "scalar")
    assert resolve_kernel(None) == "scalar"
    est_env, _ = forward_push(fig1, 1, 0.15, r_max=1e-6)
    est_scalar, _ = forward_push(fig1, 1, 0.15, r_max=1e-6,
                                 kernel="scalar")
    np.testing.assert_array_equal(est_env, est_scalar)
    monkeypatch.setenv("REPRO_KERNEL", "warp-drive")
    with pytest.raises(ParameterError):
        resolve_kernel(None)


def test_kwarg_overrides_env(monkeypatch, fig1):
    monkeypatch.setenv("REPRO_KERNEL", "scalar")
    assert resolve_kernel("numpy") == "numpy"


def test_batch_rejects_bad_parameters(fig1):
    with pytest.raises(ParameterError):
        forward_push_batch(fig1, [0], alpha=1.5)
    with pytest.raises(ParameterError):
        forward_push_batch(fig1, [0], r_max=0.0)
    with pytest.raises(ParameterError):
        forward_push_batch(fig1, [99])
    with pytest.raises(ParameterError):
        backward_push_batch(fig1, [0], max_pushes=-1)
    with pytest.raises(ParameterError):
        forward_push_batch(fig1, [0], kernel="fortran")
