"""Cross-validation of the push-based and Monte-Carlo PPR estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import erdos_renyi, from_edges
from repro.ppr import (backward_push, forward_push, monte_carlo_ppr,
                       ppr_matrix_dense, ppr_row, terminate_walks)


def test_forward_push_converges_to_exact(fig1):
    exact = ppr_row(fig1, 1, 0.15)
    estimate, residue = forward_push(fig1, 1, 0.15, r_max=1e-10)
    np.testing.assert_allclose(estimate, exact, atol=1e-7)
    assert residue.sum() < 1e-7


def test_forward_push_underestimates(fig1):
    exact = ppr_row(fig1, 0, 0.15)
    estimate, _ = forward_push(fig1, 0, 0.15, r_max=1e-3)
    assert np.all(estimate <= exact + 1e-12)


def test_forward_push_invariant(fig1):
    """p + sum_v r(v) pi(v, .) == pi(s, .) at any stopping point."""
    estimate, residue = forward_push(fig1, 2, 0.15, r_max=1e-2)
    pi = ppr_matrix_dense(fig1, 0.15)
    reconstructed = estimate + residue @ pi
    np.testing.assert_allclose(reconstructed, pi[2], atol=1e-10)


def test_forward_push_mass_conservation(er_graph):
    estimate, residue = forward_push(er_graph, 0, 0.15, r_max=1e-6)
    assert estimate.sum() + residue.sum() == pytest.approx(1.0, abs=1e-9)


def test_forward_push_dangling():
    g = from_edges(3, [0, 1], [1, 2], directed=True)
    estimate, residue = forward_push(g, 0, 0.15, r_max=1e-10)
    exact = ppr_row(g, 0, 0.15)
    np.testing.assert_allclose(estimate, exact, atol=1e-7)


def test_forward_push_rejects_bad_params(fig1):
    with pytest.raises(ParameterError):
        forward_push(fig1, 0, 0.15, r_max=0.0)
    with pytest.raises(ParameterError):
        forward_push(fig1, 0, 1.5)


def test_backward_push_converges_to_exact(fig1):
    pi = ppr_matrix_dense(fig1, 0.15)
    estimate, _ = backward_push(fig1, 6, 0.15, r_max=1e-10)
    np.testing.assert_allclose(estimate, pi[:, 6], atol=1e-7)


def test_backward_push_additive_guarantee(er_graph):
    pi = ppr_matrix_dense(er_graph, 0.15)
    r_max = 1e-3
    estimate, _ = backward_push(er_graph, 3, 0.15, r_max=r_max)
    errors = pi[:, 3] - estimate
    assert np.all(errors >= -1e-12)
    assert errors.max() <= r_max + 1e-12


def test_backward_push_directed(tiny_directed):
    pi = ppr_matrix_dense(tiny_directed, 0.2)
    estimate, _ = backward_push(tiny_directed, 2, 0.2, r_max=1e-10)
    np.testing.assert_allclose(estimate, pi[:, 2], atol=1e-7)


@given(st.integers(0, 8), st.floats(0.1, 0.5))
@settings(max_examples=10, deadline=None)
def test_push_agree_on_example(source, alpha):
    from repro.graph import figure1_graph
    g = figure1_graph()
    fwd, _ = forward_push(g, source, alpha, r_max=1e-9)
    exact = ppr_row(g, source, alpha)
    np.testing.assert_allclose(fwd, exact, atol=1e-6)


def test_monte_carlo_close_to_exact(fig1):
    exact = ppr_row(fig1, 1, 0.15)
    mc = monte_carlo_ppr(fig1, 1, 0.15, num_walks=100_000, seed=0)
    assert np.abs(mc - exact).max() < 0.01


def test_monte_carlo_is_distribution(fig1):
    mc = monte_carlo_ppr(fig1, 0, 0.15, num_walks=1000, seed=1)
    assert mc.sum() == pytest.approx(1.0)
    assert np.all(mc >= 0)


def test_terminate_walks_start_at_sources(er_graph):
    starts = np.arange(50)
    stops = terminate_walks(er_graph, starts, 0.999, seed=0)
    # with alpha ~ 1 nearly every walk stops at its start
    assert (stops == starts).mean() > 0.95


def test_terminate_walks_deterministic(er_graph):
    a = terminate_walks(er_graph, np.arange(30), 0.15, seed=9)
    b = terminate_walks(er_graph, np.arange(30), 0.15, seed=9)
    assert np.array_equal(a, b)


def test_terminate_walks_seed_stability(er_graph):
    """The blocked draw schedule is part of the seeded contract: these
    stops must stay bit-identical across refactors (regenerate the pin
    only with an intentional, documented stream change)."""
    stops = terminate_walks(er_graph, np.arange(12), 0.3, seed=123)
    assert stops.tolist() == [159, 1, 2, 3, 4, 22, 72, 7, 63, 14, 113, 11]


def test_terminate_walks_block_boundaries(er_graph):
    """Chunked randomness must span max_steps regardless of block size:
    with alpha ~ 0 and max_steps crossing several chunk boundaries the
    walks keep moving (they don't stall at a boundary)."""
    from repro.ppr import monte_carlo
    old = monte_carlo._BLOCK_TARGET
    monte_carlo._BLOCK_TARGET = 8        # force ~1-step blocks
    try:
        a = terminate_walks(er_graph, np.zeros(4, np.int64), 0.15,
                            max_steps=40, seed=5)
    finally:
        monte_carlo._BLOCK_TARGET = old
    b = terminate_walks(er_graph, np.zeros(4, np.int64), 0.15,
                        max_steps=40, seed=5)
    # different chunking => different draw layout is fine, but both are
    # valid terminating walks over the same graph
    assert a.shape == b.shape == (4,)
    assert np.all((0 <= a) & (a < er_graph.num_nodes))
