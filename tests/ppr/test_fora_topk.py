"""Tests for the FORA estimator and top-k PPR."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ppr import fora, ppr_row, top_k_ppr, top_k_ppr_exact


def test_fora_close_to_exact(fig1):
    exact = ppr_row(fig1, 1, 0.15)
    estimate = fora(fig1, 1, 0.15, r_max=1e-3, walks_per_unit=2000, seed=0)
    assert np.abs(estimate - exact).max() < 0.02


def test_fora_mass_conserved(er_graph):
    estimate = fora(er_graph, 0, 0.15, r_max=1e-3, walks_per_unit=500,
                    seed=1)
    assert estimate.sum() == pytest.approx(1.0, abs=1e-9)


def test_fora_with_tiny_rmax_reduces_to_push(fig1):
    exact = ppr_row(fig1, 2, 0.15)
    estimate = fora(fig1, 2, 0.15, r_max=1e-10, seed=2)
    np.testing.assert_allclose(estimate, exact, atol=1e-6)


def test_fora_more_walks_less_error(fig1):
    exact = ppr_row(fig1, 0, 0.15)
    errs = []
    for walks in (20, 5000):
        est = fora(fig1, 0, 0.15, r_max=0.05, walks_per_unit=walks, seed=3)
        errs.append(np.abs(est - exact).max())
    assert errs[1] <= errs[0] + 1e-9


def test_fora_rejects_bad_walks(fig1):
    with pytest.raises(ParameterError):
        fora(fig1, 0, 0.15, walks_per_unit=0.0)


def test_topk_exact_ordering(fig1):
    nodes, values = top_k_ppr_exact(fig1, 1, 3, 0.15)
    # from Table 1, v2's top-3 targets (excluding itself) are v3, v5, v1
    assert nodes.tolist() == [2, 4, 0]
    assert np.all(np.diff(values) <= 0)


def test_topk_exact_excludes_source(er_graph):
    nodes, _ = top_k_ppr_exact(er_graph, 7, 10, 0.15)
    assert 7 not in nodes
    assert len(nodes) == 10


def test_topk_approx_matches_exact_on_example(fig1):
    exact_nodes, _ = top_k_ppr_exact(fig1, 1, 3, 0.15)
    nodes, values = top_k_ppr(fig1, 1, 3, 0.15, r_max=1e-4, seed=0)
    assert set(nodes.tolist()) == set(exact_nodes.tolist())


def test_topk_rejects_bad_k(fig1):
    with pytest.raises(ParameterError):
        top_k_ppr_exact(fig1, 0, 0)
