"""Tests for exact PPR solvers, including the paper's Table 1."""

import numpy as np
import pytest

from repro.graph import TABLE1_PPR, erdos_renyi, from_edges
from repro.ppr import (ppr_matrix_dense, ppr_row, ppr_rows,
                       truncated_ppr_matrix)


def test_table1_rows_match_paper(fig1):
    """Exact reproduction of the paper's Table 1 (alpha = 0.15).

    Rows v2, v4, v9 match the printed values to the printed precision.
    The printed v7 row is a known erratum: it violates the undirected
    reversibility identity d(u) pi(u,v) = d(v) pi(v,u) (checked below).
    """
    pi = ppr_matrix_dense(fig1, 0.15)
    for src in (1, 3, 8):
        np.testing.assert_allclose(pi[src], TABLE1_PPR[src], atol=1.5e-3)


def test_table1_v7_row_erratum(fig1):
    pi = ppr_matrix_dense(fig1, 0.15)
    deg = fig1.out_degrees
    # our computation satisfies reversibility ...
    lhs = deg[6] * pi[6, 8]
    rhs = deg[8] * pi[8, 6]
    assert lhs == pytest.approx(rhs, rel=1e-6)
    # ... while the paper's printed v7 row does not
    paper_lhs = deg[6] * TABLE1_PPR[6][8]
    paper_rhs = deg[8] * TABLE1_PPR[8][6]
    assert abs(paper_lhs - paper_rhs) > 0.05


def test_paper_motivating_inequality(fig1):
    """pi(v9, v7) > pi(v2, v4): the counter-intuitive ranking of Section 1."""
    pi = ppr_matrix_dense(fig1, 0.15)
    assert pi[8, 6] > pi[1, 3]


def test_rows_sum_to_one_without_dangling(fig1):
    pi = ppr_matrix_dense(fig1, 0.15)
    np.testing.assert_allclose(pi.sum(axis=1), 1.0, atol=1e-9)


def test_reversibility_identity_whole_matrix(fig1):
    pi = ppr_matrix_dense(fig1, 0.15)
    deg = fig1.out_degrees.astype(float)
    np.testing.assert_allclose(deg[:, None] * pi, (deg[:, None] * pi).T,
                               atol=1e-9)


def test_ppr_row_matches_matrix(fig1):
    pi = ppr_matrix_dense(fig1, 0.2)
    row = ppr_row(fig1, 4, 0.2)
    np.testing.assert_allclose(row, pi[4], atol=1e-12)


def test_ppr_rows_batch(er_graph):
    sources = np.array([0, 5, 9])
    batch = ppr_rows(er_graph, sources, 0.15)
    for i, s in enumerate(sources):
        np.testing.assert_allclose(batch[i], ppr_row(er_graph, s, 0.15),
                                   atol=1e-12)


def test_self_ppr_at_least_alpha(er_graph):
    pi = ppr_rows(er_graph, np.arange(20), 0.15)
    assert np.all(pi[np.arange(20), np.arange(20)] >= 0.15 - 1e-9)


def test_dangling_absorbs_mass():
    g = from_edges(3, [0, 1], [1, 2], directed=True)   # 2 is dangling
    row = ppr_row(g, 0, 0.15)
    assert row.sum() == pytest.approx(1.0, abs=1e-9)
    assert row[2] > 0.5        # most mass ends in the sink


def test_alpha_extremes(fig1):
    nearly_1 = ppr_row(fig1, 0, 0.999)
    assert nearly_1[0] > 0.99                     # walk stops immediately
    spread = ppr_row(fig1, 0, 0.01)
    assert spread[0] < 0.2                        # walk diffuses widely


def test_invalid_alpha(fig1):
    with pytest.raises(Exception):
        ppr_row(fig1, 0, 0.0)
    with pytest.raises(Exception):
        ppr_row(fig1, 0, 1.0)


def test_truncated_matrix_error_bound(fig1):
    """|Pi - alpha I - Pi'| <= (1-alpha)^(ell+1) elementwise (Eq. 3)."""
    alpha, ell = 0.15, 12
    pi = ppr_matrix_dense(fig1, alpha)
    trunc = truncated_ppr_matrix(fig1, alpha, ell)
    residual = np.abs(pi - alpha * np.eye(9) - trunc)
    assert residual.max() <= (1 - alpha) ** (ell + 1) + 1e-12


def test_truncated_matrix_monotone_in_terms(fig1):
    t5 = truncated_ppr_matrix(fig1, 0.15, 5)
    t20 = truncated_ppr_matrix(fig1, 0.15, 20)
    # adding terms only adds nonnegative mass
    assert np.all(t20 - t5 >= -1e-12)
