"""Socket-level storms against the asyncio HTTP serving tier.

The heavyweight companions (marked ``slow``, run by the CI slow job) to
the deterministic route tests in ``tests/serving/test_http.py``: 32
real keep-alive HTTP connections hammering a live server while the
publish/hot-swap machinery churns underneath. Invariants pinned:

* a storm racing ``publish_version`` + ``ServingRegistry.swap`` (and
  the streaming tier's ``StreamingUpdater.publish`` + ``swap_into``)
  sees **zero 5xx** responses — every answer is a complete 200;
* every answer is **generation-consistent**: the ``(g+1)^2`` score
  scaling of :func:`harness.generation_embedding` proves no response
  row ever mixes two model generations across a hot swap;
* the dynamic micro-batcher actually coalesces under concurrency —
  the ``serving_topk_batch_size`` histogram's mean observed batch size
  is > 1 (the acceptance bar for the batching tier);
* p50/p99 latency SLOs hold while all of the above is happening.
"""

import http.client
import threading
import time

import numpy as np
import pytest
from harness import (LatencyRecorder, generation_embedding, http_json,
                     run_storm)

from repro import NRP, obs
from repro.graph import powerlaw_community
from repro.serving import (HTTPServingConfig, QueryEngine,
                           ServingHTTPServer, ServingRegistry,
                           open_current, publish_version)
from repro.streaming import StreamingConfig, StreamingUpdater

pytestmark = pytest.mark.slow

N, DIM, K = 96, 8, 7
CONCURRENCY = 32
GENERATIONS = 6


def _live_bundle(generation: int):
    """A generation-tagged bundle under one fixed serving name, so all
    generations share one ``serving_topk_batch_size{engine=...}``
    series."""
    bundle = generation_embedding(generation, n=N, dim=DIM)
    bundle.name = "live"
    return bundle


def _connect(server) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", server.port,
                                      timeout=30)


def _assert_whole_generation(scores, base_row) -> None:
    """One response row must be a single generation's answer."""
    ratio = np.asarray(scores, dtype=np.float64) / base_row
    mean = float(ratio.mean())
    generation = np.sqrt(mean) - 1.0
    assert abs(generation - round(generation)) < 1e-6, \
        f"score scaling {mean} is no (g+1)^2: torn swap?"
    assert 0 <= round(generation) <= GENERATIONS
    np.testing.assert_allclose(ratio, mean, rtol=1e-6,
                               err_msg="one row mixes two generations")


def test_storm_survives_publish_swap_churn_with_batching(tmp_path):
    """The acceptance storm: 32 sockets, hot swaps, zero 5xx, batches.

    A publisher thread pushes ``GENERATIONS`` new versions through
    ``publish_version`` + ``open_current`` + ``registry.swap`` — the
    exact pipeline ``repro-stream`` / ``repro-serve serve --watch``
    run — while 32 keep-alive clients storm ``topk``. Every response
    must be a 200 carrying exactly one generation's scores, and the
    micro-batcher must have coalesced (mean observed batch size > 1).
    """
    obs.set_enabled(True)
    obs.get_registry().clear()
    root = tmp_path / "root"
    publish_version(root, _live_bundle(0))

    registry = ServingRegistry()
    registry.register("live", open_current(root), cache_size=0)
    config = HTTPServingConfig(max_delay=0.005, max_batch=64)
    server = ServingHTTPServer(registry, config=config).start(port=0)

    probe = np.arange(12)
    base_ids, base_scores = QueryEngine(_live_bundle(0),
                                        cache_size=0).topk(probe, K)
    latency = LatencyRecorder(CONCURRENCY)
    statuses: list[int] = []
    status_lock = threading.Lock()
    conns: dict[int, http.client.HTTPConnection] = {}
    stop = threading.Event()

    def work(tid, i, rng):
        conn = conns.get(tid)
        if conn is None:
            conn = conns[tid] = _connect(server)
        if i % 7 == 3:       # a minority of batch requests in the mix
            nodes = [int(v) for v in probe]
            with latency.record(tid):
                status, body, _ = http_json(conn, "POST",
                                            "/v1/live/topk",
                                            {"nodes": nodes, "k": K})
            rows = [(node, row["scores"])
                    for node, row in zip(nodes, body.get("results", ()))]
        else:
            node = int(probe[int(rng.integers(len(probe)))])
            with latency.record(tid):
                status, body, _ = http_json(conn, "POST",
                                            "/v1/live/topk",
                                            {"node": node, "k": K})
            rows = [(node, body.get("scores"))]
        with status_lock:
            statuses.append(status)
        assert status == 200, f"non-200 under churn: {status} {body}"
        for node, scores in rows:
            assert len(scores) == K
            _assert_whole_generation(scores, base_scores[node])

    def publisher():
        for generation in range(1, GENERATIONS + 1):
            time.sleep(0.15)
            publish_version(root, _live_bundle(generation))
            registry.swap("live", open_current(root), cache_size=0)
        stop.set()

    flipper = threading.Thread(target=publisher, daemon=True)
    flipper.start()
    try:
        result = run_storm(work, threads=CONCURRENCY, stop=stop,
                           metrics_label="http_topk")
    finally:
        flipper.join()
        for conn in conns.values():
            conn.close()
        server.stop(close_registry=True)

    result.raise_errors()
    assert result.total_ops > CONCURRENCY          # the storm really ran
    assert statuses and all(s == 200 for s in statuses), \
        f"5xx/4xx under churn: {sorted(set(statuses))}"

    # the acceptance bar: the micro-batcher coalesced concurrent
    # requests — mean observed engine batch size above 1
    batch_hist = obs.get_registry().get("serving_topk_batch_size",
                                        {"engine": "live"})
    assert batch_hist is not None and batch_hist.count > 0
    mean_batch = batch_hist.sum / batch_hist.count
    assert mean_batch > 1.0, \
        f"no coalescing: mean engine batch size {mean_batch:.2f}"
    http_hist = obs.get_registry().get("http_batch_requests",
                                       {"model": "live"})
    assert http_hist.sum / http_hist.count > 1.0

    # loose SLOs: the point is "no pathological stall under churn",
    # not a benchmark (benchmarks/bench_http_serving.py measures those)
    latency.assert_slo(p50=0.5, p99=2.0)

    obs.set_enabled(False)
    obs.get_registry().clear()


def _fresh_edges(graph, count: int, seed: int):
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    while len(out) < count:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, 2))
        if u != v and not graph.has_edge(u, v) \
                and (u, v) not in out and (v, u) not in out:
            out.append((u, v))
    return (np.array([u for u, _ in out]),
            np.array([v for _, v in out]))


def test_streaming_updater_publishes_and_swaps_into_live_server(tmp_path):
    """The full streaming -> serving loop under a socket storm.

    A :class:`StreamingUpdater` absorbs edge batches, publishes each
    result as a new version, and ``swap_into``s the live registry —
    while 32 sockets keep querying ``topk``, ``score``, ``/healthz``
    and ``/metrics``. No request may see a 5xx or a malformed answer.
    """
    graph, _ = powerlaw_community(N, 400, num_communities=4, seed=3)
    model = NRP(dim=DIM, svd="exact", seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        graph, model,
        config=StreamingConfig(drift_threshold=None, max_staleness=None))

    registry = ServingRegistry()
    updater.swap_into(registry, "live", cache_size=0)
    config = HTTPServingConfig(max_delay=0.005)
    server = ServingHTTPServer(registry, config=config).start(port=0)

    statuses: list[int] = []
    status_lock = threading.Lock()
    conns: dict[int, http.client.HTTPConnection] = {}
    stop = threading.Event()

    def work(tid, i, rng):
        conn = conns.get(tid)
        if conn is None:
            conn = conns[tid] = _connect(server)
        kind = i % 4
        if kind == 0:
            status, body, _ = http_json(conn, "GET", "/healthz")
            assert body.get("models") == ["live"]
        elif kind == 1:
            src = int(rng.integers(N))
            status, body, _ = http_json(
                conn, "POST", "/v1/live/score",
                {"src": src,
                 "dst": [int(v) for v in rng.integers(0, N, 5)]})
            assert len(body.get("scores", ())) == 5
        elif kind == 2:
            status, body, _ = http_json(conn, "GET", "/metrics")
            assert "http_requests_total" in body.get("raw", "")
        else:
            node = int(rng.integers(N))
            status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                        {"node": node, "k": K})
            scores = body.get("scores", ())
            assert len(scores) == K
            assert list(scores) == sorted(scores, reverse=True)
        with status_lock:
            statuses.append(status)
        assert status == 200, f"non-200 from live streaming: {status}"

    def streamer():
        try:
            for batch in range(3):
                time.sleep(0.1)
                src, dst = _fresh_edges(updater.graph, 10,
                                        seed=500 + batch)
                updater.apply_batch(src, dst)
                updater.publish(root=tmp_path / "root")
                updater.swap_into(registry, "live", cache_size=0)
        finally:
            stop.set()

    flipper = threading.Thread(target=streamer, daemon=True)
    flipper.start()
    try:
        result = run_storm(work, threads=CONCURRENCY, stop=stop)
    finally:
        flipper.join()
        for conn in conns.values():
            conn.close()
        server.stop(close_registry=True)

    result.raise_errors()
    assert statuses and all(s == 200 for s in statuses)
    assert updater.num_batches == 3
    # the publishes really landed as versions on disk
    assert open_current(tmp_path / "root").version == 3
