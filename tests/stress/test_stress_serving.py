"""Concurrency / fault soak tests for sharded + versioned serving.

These are the heavyweight companions to the deterministic race tests
in ``tests/serving/``: real thread storms (marked ``slow``, run by the
CI slow job) hammering a live registry and a versioned store root while
versions are published, swapped, pruned, and damaged underneath them.

Invariants pinned here:

* a query storm through :class:`~repro.serving.ServingRegistry.swap`
  never returns an answer mixing two model generations, sharded or
  flat, and never raises;
* readers racing ``publish_version``/``open_current`` churn (with
  aggressive ``keep`` pruning, flat and sharded versions interleaved)
  always land on a complete version;
* injected shard corruption — truncated matrix, torn shard map, torn
  store manifest — surfaces to concurrent openers as the typed
  :mod:`repro.errors` exceptions and nothing else (no raw OSError, no
  garbled results).
"""

import threading

import numpy as np
import pytest
from harness import (drop_shard_dir, generation_embedding, run_storm,
                     set_current_pointer, tear_json, truncate_file)

from repro.errors import (ShardLayoutError, StalePointerError,
                          StoreCorruptError, StoreError)
from repro.serving import (MANIFEST_NAME, SHARDS_NAME, ServingRegistry,
                           open_current, publish_version, shard_store)

pytestmark = pytest.mark.slow

N, DIM, K = 96, 8, 7
GENERATIONS = 24


def _expected_scores(scores, base_scores):
    """Implied generation per row, from the (g+1)^2 score scaling."""
    return np.sqrt(np.abs(scores / base_scores))


def test_registry_swap_storm_sharded_and_flat():
    """Swap flat->sharded->flat generations under a 6-thread storm."""
    reg = ServingRegistry()
    reg.register("live", generation_embedding(0, n=N, dim=DIM),
                 cache_size=0)
    probe = np.arange(10)
    base = generation_embedding(0, n=N, dim=DIM)
    from repro.serving import QueryEngine
    _, base_scores = QueryEngine(base, cache_size=0).topk(probe, K)
    stop = threading.Event()
    storm_running = threading.Event()

    def work(tid, i, rng):
        storm_running.set()
        ids, scores = reg.topk("live", probe, K)
        assert ids.shape == (len(probe), K)
        implied = _expected_scores(scores, base_scores)
        spread = implied.max() - implied.min()
        assert spread < 1e-6, f"torn answer across generations: {implied}"

    def writer():
        storm_running.wait(timeout=10.0)   # swap under load, not before
        for g in range(1, GENERATIONS):
            # alternate engine flavors so the swap also crosses the
            # flat <-> sharded boundary, not just model generations
            opts = ({"shards": 4, "cache_size": 0} if g % 2
                    else {"cache_size": 0})
            reg.swap("live", generation_embedding(g, n=N, dim=DIM), **opts)
        stop.set()

    w = threading.Thread(target=writer)
    w.start()
    result = run_storm(work, threads=6, stop=stop, duration=30.0)
    w.join()
    result.raise_errors()
    assert result.total_ops > 0
    _, final = reg.topk("live", probe, K)
    np.testing.assert_allclose(final, GENERATIONS ** 2 * base_scores,
                               rtol=1e-9)


def test_publish_churn_storm_versioned_root(tmp_path):
    """open_current readers race publishes with keep=2 pruning."""
    root = tmp_path / "root"
    publish_version(root, generation_embedding(0, n=N, dim=DIM))
    stop = threading.Event()
    storm_running = threading.Event()
    publish_errors = []

    def publisher():
        storm_running.wait(timeout=10.0)
        try:
            for g in range(1, GENERATIONS):
                publish_version(root, generation_embedding(g, n=N, dim=DIM),
                                keep=2, shards=3 if g % 2 else None)
        except BaseException as exc:   # noqa: BLE001
            publish_errors.append(exc)
        finally:
            stop.set()

    def work(tid, i, rng):
        storm_running.set()
        store = open_current(root)
        # every row of the opened version must carry one generation
        rows = store.embedding_[np.arange(8)]
        gen = int(store.name.removeprefix("gen"))
        base = generation_embedding(0, n=N, dim=DIM).embedding_[:8]
        np.testing.assert_allclose(rows, (gen + 1.0) * base, rtol=1e-12)
        engine = store.to_serving(cache_size=0)
        ids, scores = engine.topk(int(rng.integers(0, N)), K)
        assert len(ids) == K

    p = threading.Thread(target=publisher)
    p.start()
    result = run_storm(work, threads=4, stop=stop, duration=60.0)
    p.join()
    assert not publish_errors, publish_errors[:1]
    result.raise_errors()
    assert result.total_ops > 0


def test_truncated_shard_matrix_fails_typed_under_concurrent_opens(
        tmp_path):
    src = generation_embedding(3, n=N, dim=DIM)
    store = shard_store(src, tmp_path / "sh", num_shards=4)
    victim = store.shards[2].root / "embedding.npy"
    truncate_file(victim, keep_fraction=0.4)

    from repro.serving import ShardedEmbeddingStore

    def work(tid, i, rng):
        with pytest.raises(StoreCorruptError, match="truncated"):
            ShardedEmbeddingStore.open(tmp_path / "sh")

    result = run_storm(work, threads=6, iterations=10)
    result.raise_errors()
    assert result.total_ops == 60


def test_torn_shard_map_fails_typed_under_concurrent_opens(tmp_path):
    src = generation_embedding(1, n=N, dim=DIM)
    shard_store(src, tmp_path / "sh", num_shards=3)
    tear_json(tmp_path / "sh" / SHARDS_NAME)

    from repro.serving import ShardedEmbeddingStore

    def work(tid, i, rng):
        with pytest.raises(StoreCorruptError, match="corrupt shard map"):
            ShardedEmbeddingStore.open(tmp_path / "sh")

    run_storm(work, threads=4, iterations=10).raise_errors()


def test_faults_surface_only_typed_errors_during_churn(tmp_path):
    """Mixed fault storm: every failure is a ReproError subclass.

    A publisher keeps publishing clean versions while a saboteur
    truncates matrices, tears manifests, drops shard dirs, and staples
    the CURRENT pointer to garbage. Readers may see clean stores or
    typed errors — never an unhandled OSError/ValueError and never a
    wrong-generation row.
    """
    root = tmp_path / "root"
    publish_version(root, generation_embedding(0, n=N, dim=DIM), shards=3)
    stop = threading.Event()
    storm_running = threading.Event()
    chaos_errors = []

    def saboteur():
        storm_running.wait(timeout=10.0)
        try:
            for g in range(1, 12):
                store = publish_version(
                    root, generation_embedding(g, n=N, dim=DIM),
                    keep=3, shards=3 if g % 2 else None)
                fault = g % 4
                if fault == 0:
                    set_current_pointer(root, "v999999")
                elif fault == 1 and hasattr(store, "shards"):
                    truncate_file(store.shards[0].root / "embedding.npy")
                elif fault == 2 and hasattr(store, "shards"):
                    drop_shard_dir(store.root, 1)
                elif fault == 3:
                    target = (store.root / MANIFEST_NAME
                              if not hasattr(store, "shards")
                              else store.root / SHARDS_NAME)
                    tear_json(target)
        except BaseException as exc:   # noqa: BLE001
            chaos_errors.append(exc)
        finally:
            stop.set()

    def work(tid, i, rng):
        storm_running.set()
        try:
            store = open_current(root)
            rows = store.embedding_[np.arange(4)]
            gen = int(store.name.removeprefix("gen"))
            base = generation_embedding(0, n=N, dim=DIM).embedding_[:4]
            np.testing.assert_allclose(rows, (gen + 1.0) * base, rtol=1e-12)
        except (StoreError, StoreCorruptError, ShardLayoutError,
                StalePointerError):
            pass        # typed failure: exactly what faults must produce

    s = threading.Thread(target=saboteur)
    s.start()
    result = run_storm(work, threads=4, stop=stop, duration=60.0)
    s.join()
    assert not chaos_errors, chaos_errors[:1]
    result.raise_errors()       # anything untyped escaped the open paths
    assert result.total_ops > 0
