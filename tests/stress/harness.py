"""Reusable concurrency / fault stress harness for the serving tier.

The serving stack's correctness claims are concurrent claims — "a hot
swap never tears an answer", "a reader racing the publisher lands on a
complete version", "a corrupt shard fails typed, not garbled" — so the
tests that pin them need machinery beyond one-shot asserts. This module
is that machinery, shared by the stress tests under ``tests/stress/``,
the deterministic race tests in ``tests/serving/``, and
``benchmarks/bench_sharded_serving.py``:

* :func:`run_storm` — run a query function from many threads at once
  (optionally rate-free soak by duration), collecting every exception
  and per-thread op counts instead of dying on the first;
* :class:`BarrierSchedule` — a named-rendezvous wrapper over
  :class:`threading.Barrier` for *deterministic* interleavings: every
  party calls ``sync("tag")`` at the scripted points, so a swap is
  guaranteed to happen between two specific queries rather than
  whenever the scheduler feels like it;
* fault injectors (:func:`truncate_file`, :func:`tear_json`,
  :func:`set_current_pointer`, :func:`drop_shard_dir`) — the on-disk
  damage the open paths must answer with typed
  :mod:`repro.errors` exceptions.

Knobs are documented in ``tests/stress/README.md``.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["StormResult", "run_storm", "BarrierSchedule", "truncate_file",
           "tear_json", "set_current_pointer", "drop_shard_dir",
           "generation_embedding", "http_json", "LatencyRecorder"]


# ----------------------------------------------------------------------
# query storms
# ----------------------------------------------------------------------

@dataclass
class StormResult:
    """What a storm did: per-thread op counts and every exception."""

    ops: list[int] = field(default_factory=list)
    errors: list[BaseException] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def total_ops(self) -> int:
        return int(sum(self.ops))

    def raise_errors(self, *, allowed: tuple[type, ...] = ()) -> None:
        """Fail loudly unless every collected error is an allowed type.

        ``allowed`` whitelists exception types a scenario *expects*
        (e.g. a typed corruption error while a fault is injected);
        anything else re-raises the first offender with the full count
        in its chain.
        """
        unexpected = [e for e in self.errors
                      if not isinstance(e, allowed)]
        if unexpected:
            raise AssertionError(
                f"storm hit {len(unexpected)} unexpected error(s), "
                f"first: {unexpected[0]!r}") from unexpected[0]


def run_storm(work, *, threads: int = 4, iterations: int | None = None,
              duration: float | None = None,
              stop: threading.Event | None = None,
              metrics_label: str | None = None) -> StormResult:
    """Hammer ``work`` from ``threads`` threads; collect, don't crash.

    ``work(thread_index, iteration, rng)`` is called in a loop from
    every thread — it should perform one operation (a query, an open,
    a validation) and raise on any violation. The loop ends after
    ``iterations`` calls per thread, after ``duration`` seconds,
    or when ``stop`` is set, whichever comes first (at least one of
    the three must be given). ``rng`` is a per-thread
    ``numpy.random.Generator`` seeded by thread index, so storms are
    as reproducible as the interleaving allows.

    ``metrics_label`` feeds per-op latencies into the
    ``storm_op_seconds{storm=...}`` histogram when :mod:`repro.obs`
    collection is enabled (no-op otherwise), so storm runs show up in
    metrics snapshots next to the serving series they exercised.

    Threads start behind a barrier so the contention window opens for
    all of them at once; every exception is captured into the returned
    :class:`StormResult` rather than tearing down the storm.
    """
    if iterations is None and duration is None and stop is None:
        raise ValueError("give iterations=, duration=, or stop=")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    from repro import obs
    histogram = None
    if metrics_label is not None and obs.enabled():
        histogram = obs.get_registry().histogram(
            "storm_op_seconds", {"storm": metrics_label})
    result = StormResult(ops=[0] * threads)
    start_line = threading.Barrier(threads + 1)
    deadline = None

    def runner(tid: int) -> None:
        rng = np.random.default_rng(tid)
        start_line.wait()
        i = 0
        while True:
            if iterations is not None and i >= iterations:
                break
            if deadline is not None and time.perf_counter() >= deadline:
                break
            if stop is not None and stop.is_set():
                break
            try:
                if histogram is not None:
                    op_start = time.perf_counter()
                    work(tid, i, rng)
                    histogram.observe(time.perf_counter() - op_start)
                else:
                    work(tid, i, rng)
            except BaseException as exc:   # noqa: BLE001 - harness collects
                result.errors.append(exc)
                break
            result.ops[tid] = i = i + 1

    workers = [threading.Thread(target=runner, args=(tid,), daemon=True)
               for tid in range(threads)]
    for t in workers:
        t.start()
    start_line.wait()          # release everyone together
    started = time.perf_counter()
    if duration is not None:
        deadline = started + duration
    for t in workers:
        t.join()
    result.seconds = time.perf_counter() - started
    return result


class BarrierSchedule:
    """Named rendezvous points shared by the parties of a race test.

    Every party calls :meth:`sync` with the same tags in the same
    order; the call returns only once all ``parties`` arrived, which
    turns "hopefully the swap lands mid-stream" into "the swap happens
    exactly between tag ``before`` and tag ``after``". A generous
    timeout converts a deadlocked schedule into a test failure instead
    of a hung suite.
    """

    def __init__(self, parties: int, *, timeout: float = 30.0) -> None:
        self._barrier = threading.Barrier(parties)
        self._timeout = timeout
        self.trace: list[str] = []
        self._lock = threading.Lock()

    def sync(self, tag: str = "") -> None:
        with self._lock:
            self.trace.append(tag)
        self._barrier.wait(timeout=self._timeout)

    def abort(self) -> None:
        """Break every waiting party out (used on failure paths)."""
        self._barrier.abort()


# ----------------------------------------------------------------------
# real-socket HTTP storms
# ----------------------------------------------------------------------

def http_json(conn, method: str, path: str, payload=None, *,
              headers: dict | None = None) -> tuple[int, dict, dict]:
    """One JSON exchange on a persistent ``http.client`` connection.

    Returns ``(status, body, headers)``; non-JSON bodies come back as
    ``{"raw": text}``. ``headers=`` adds request headers (e.g. a
    ``traceparent`` for propagation tests). Storm work functions keep
    one connection per thread (HTTP keep-alive), which is both faster
    and exactly how a production client pool behaves.
    """
    body = None
    send_headers = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload)
        send_headers["content-type"] = "application/json"
    conn.request(method, path, body, send_headers)
    response = conn.getresponse()
    raw = response.read()
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        parsed = {"raw": raw.decode("utf-8", "replace")}
    return response.status, parsed, dict(response.getheaders())


class LatencyRecorder:
    """Per-thread latency collection with percentile/SLO asserts.

    ``record(tid)`` is a context manager a storm work function wraps
    one operation in; lists are per-thread so recording takes no lock.
    """

    def __init__(self, threads: int) -> None:
        self._lists: list[list[float]] = [[] for _ in range(threads)]

    class _Timed:
        __slots__ = ("sink", "start")

        def __init__(self, sink: list) -> None:
            self.sink = sink

        def __enter__(self) -> "LatencyRecorder._Timed":
            self.start = time.perf_counter()
            return self

        def __exit__(self, exc_type, *exc_info) -> None:
            if exc_type is None:
                self.sink.append(time.perf_counter() - self.start)

    def record(self, tid: int) -> "_Timed":
        return self._Timed(self._lists[tid])

    @property
    def samples(self) -> np.ndarray:
        merged = [v for sink in self._lists for v in sink]
        return np.asarray(merged, dtype=np.float64)

    def percentile(self, q: float) -> float:
        samples = self.samples
        if not len(samples):
            raise AssertionError("no latencies recorded")
        return float(np.percentile(samples, q))

    def assert_slo(self, *, p50: float | None = None,
                   p99: float | None = None) -> None:
        """Fail with the measured numbers when a percentile SLO breaks."""
        if p50 is not None and self.percentile(50) > p50:
            raise AssertionError(
                f"p50 SLO broken: {self.percentile(50):.4f}s > {p50}s")
        if p99 is not None and self.percentile(99) > p99:
            raise AssertionError(
                f"p99 SLO broken: {self.percentile(99):.4f}s > {p99}s")


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------

def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Chop a file down to ``keep_fraction`` of its bytes; returns kept.

    Models a crashed copy / out-of-space export: the ``.npy`` header
    survives but the payload it promises does not.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep


def tear_json(path: str | Path, *, keep_fraction: float = 0.5) -> None:
    """Leave a half-written JSON file, as a torn manifest write would.

    The kept prefix is byte-truncated mid-document, so ``json.load``
    fails the way it does on a real torn write (no closing brace), not
    with a tidy empty object.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    path.write_text(text[:max(1, int(len(text) * keep_fraction))],
                    encoding="utf-8")


def set_current_pointer(root: str | Path, target: str) -> None:
    """Aim a versioned root's ``CURRENT`` pointer at ``target``.

    Pointing it at a version that does not exist models the stale
    pointer left behind by hand-pruning version directories.
    """
    from repro.serving.store import CURRENT_NAME
    (Path(root) / CURRENT_NAME).write_text(target + "\n", encoding="utf-8")


def drop_shard_dir(root: str | Path, index: int) -> None:
    """Delete shard ``index``'s directory under a sharded store root.

    Models a lost disk / partial rsync: the shard map still names the
    directory, the bytes are gone.
    """
    from repro.serving.sharding import _shard_dir_name
    shutil.rmtree(Path(root) / _shard_dir_name(index))


# ----------------------------------------------------------------------
# generation-tagged sources
# ----------------------------------------------------------------------

def generation_embedding(generation: int, *, n: int = 64, dim: int = 8):
    """An :class:`~repro.io.EmbeddingBundle` whose scores reveal its gen.

    Every generation shares one random geometry scaled by
    ``generation + 1``, so any answer mixing rows of two generations is
    detectable from score ratios alone — the torn-swap detector used
    across the concurrency tests (``score(gen g) = (g+1)^2 *
    score(gen 0)``).
    """
    from repro.io import EmbeddingBundle
    rng = np.random.default_rng(7)          # same geometry every gen
    base = rng.standard_normal((n, dim))
    return EmbeddingBundle(name=f"gen{generation}", directional=False,
                           embedding=(generation + 1.0) * base)


def _manifest_of(path: str | Path) -> dict:
    """Parse a JSON manifest (test convenience, not a public API)."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
