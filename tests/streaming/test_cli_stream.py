"""Tests for the repro-stream command line interface."""

import json

import numpy as np
import pytest

from repro.cli_stream import main, parse_delta_line
from repro.graph import powerlaw_community, write_edge_list
from repro.serving import list_versions, open_current


@pytest.fixture(scope="module")
def stream_inputs(tmp_path_factory):
    """Base edge list + a delta file of genuinely new edges."""
    tmp = tmp_path_factory.mktemp("stream")
    graph, _ = powerlaw_community(80, 400, num_communities=4, seed=3)
    base_path = tmp / "base.txt"
    write_edge_list(graph, base_path)
    rng = np.random.default_rng(17)
    new = []
    while len(new) < 30:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, 2))
        if u != v and not graph.has_edge(u, v) \
                and (u, v) not in new and (v, u) not in new:
            new.append((u, v))
    old_src, old_dst = graph.edges()
    delta_path = tmp / "deltas.txt"
    with open(delta_path, "w", encoding="utf-8") as fh:
        fh.write("# streaming deltas\n")
        for u, v in new[:10]:
            fh.write(f"{u} {v}\n")               # bare lines = inserts
        for u, v in new[10:]:
            fh.write(f"+ {u} {v}\n")
        fh.write(f"- {old_src[0]} {old_dst[0]}\n")
        fh.write(f"- {old_src[1]} {old_dst[1]}\n")
    return graph, base_path, delta_path, new


def test_parse_delta_line():
    assert parse_delta_line("3 5", 1) == (1, 3, 5)
    assert parse_delta_line("+ 3 5", 1) == (1, 3, 5)
    assert parse_delta_line("- 3 5", 1) == (-1, 3, 5)
    assert parse_delta_line("# comment", 1) is None
    assert parse_delta_line("   ", 1) is None
    from repro.errors import ReproError
    with pytest.raises(ReproError, match="line 7"):
        parse_delta_line("3", 7)
    with pytest.raises(ReproError, match="non-integer"):
        parse_delta_line("+ a b", 2)


def test_stream_end_to_end(stream_inputs, tmp_path, capsys):
    graph, base_path, delta_path, new = stream_inputs
    root = tmp_path / "root"
    rc = main([str(base_path), str(delta_path), str(root),
               "--dim", "16", "--ell2", "2", "--batch-size", "16",
               "--drift-threshold", "0", "--max-staleness", "0"])
    assert rc == 0
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    kinds = [e["event"] for e in events]
    assert kinds[0] == "fit" and kinds[1] == "publish"
    assert kinds[-1] == "done"
    batches = [e for e in events if e["event"] == "batch"]
    # 32 deltas / batch-size 16 -> exactly two batches
    assert len(batches) == 2
    assert batches[0]["version"] == 2 and batches[1]["version"] == 3
    done = events[-1]
    assert done["batches"] == 2
    assert done["num_edges"] == graph.num_edges + 30 - 2

    # the store root holds three complete versions; CURRENT -> newest
    assert list_versions(root) == [1, 2, 3]
    store = open_current(root)
    assert store.version == 3
    assert store.num_nodes == graph.num_nodes
    assert store.metadata["stream_batches"] == 2
    # the freshest version scores the newly inserted edges
    u, v = new[0]
    engine = store.to_serving(cache_size=0)
    assert engine.score([u], [v])[0] != 0.0


def test_stream_publishes_sharded_versions(stream_inputs, tmp_path,
                                           capsys):
    from repro.serving import ShardedEmbeddingStore, ShardedQueryEngine
    graph, base_path, delta_path, new = stream_inputs
    root = tmp_path / "root"
    rc = main([str(base_path), str(delta_path), str(root),
               "--dim", "16", "--ell2", "2", "--batch-size", "16",
               "--drift-threshold", "0", "--max-staleness", "0",
               "--shards", "3"])
    assert rc == 0
    capsys.readouterr()
    assert list_versions(root) == [1, 2, 3]
    store = open_current(root)
    assert isinstance(store, ShardedEmbeddingStore)
    assert store.version == 3 and store.num_shards == 3
    assert store.metadata["stream_batches"] == 2
    engine = store.to_serving(cache_size=0)
    assert isinstance(engine, ShardedQueryEngine)
    u, v = new[0]
    assert engine.score([u], [v])[0] != 0.0


def test_stream_rejects_bad_shards(stream_inputs, tmp_path, capsys):
    graph, base_path, delta_path, new = stream_inputs
    rc = main([str(base_path), str(delta_path), str(tmp_path / "r"),
               "--shards", "0"])
    assert rc == 2
    assert "--shards" in capsys.readouterr().err


def test_stream_keep_versions_and_max_batches(stream_inputs, tmp_path,
                                              capsys):
    _, base_path, delta_path, _ = stream_inputs
    root = tmp_path / "root"
    rc = main([str(base_path), str(delta_path), str(root),
               "--dim", "16", "--ell2", "2", "--batch-size", "8",
               "--max-batches", "2", "--keep-versions", "1"])
    assert rc == 0
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    assert [e["event"] for e in events if e["event"] == "batch"] \
        == ["batch", "batch"]
    assert list_versions(root) == [3]
    assert open_current(root).version == 3


def test_stream_bad_delta_file(stream_inputs, tmp_path, capsys):
    _, base_path, _, _ = stream_inputs
    bad = tmp_path / "bad.txt"
    bad.write_text("1 2 3 4\n", encoding="utf-8")
    rc = main([str(base_path), str(bad), str(tmp_path / "root"),
               "--dim", "16", "--ell2", "0"])
    assert rc == 2
    assert "delta line 1" in capsys.readouterr().err


def test_stream_missing_edgelist(tmp_path, capsys):
    rc = main([str(tmp_path / "none.txt"), str(tmp_path / "d.txt"),
               str(tmp_path / "root")])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_stream_delete_then_reinsert_in_one_batch(stream_inputs, tmp_path,
                                                  capsys):
    """Order-dependent sequences net out instead of crashing the stream."""
    graph, base_path, _, _ = stream_inputs
    old_src, old_dst = graph.edges()
    u, v = int(old_src[3]), int(old_dst[3])
    deltas = tmp_path / "churn.txt"
    deltas.write_text(f"- {u} {v}\n+ {u} {v}\n", encoding="utf-8")
    root = tmp_path / "root"
    rc = main([str(base_path), str(deltas), str(root),
               "--dim", "16", "--ell2", "2", "--batch-size", "16"])
    assert rc == 0
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    batch = next(e for e in events if e["event"] == "batch")
    assert batch["arc_deltas"] == 0          # netted to a no-op
    assert events[-1]["num_edges"] == graph.num_edges


def test_stream_double_insert_in_one_batch_rejected(stream_inputs, tmp_path,
                                                    capsys):
    _, base_path, _, _ = stream_inputs
    deltas = tmp_path / "dup.txt"
    deltas.write_text("+ 1 2\n+ 1 2\n", encoding="utf-8")
    rc = main([str(base_path), str(deltas), str(tmp_path / "root"),
               "--dim", "16", "--ell2", "2"])
    assert rc == 2
    assert "twice in a row" in capsys.readouterr().err


def test_stream_metrics_json_and_interval(stream_inputs, tmp_path, capsys):
    from repro import obs
    _, base_path, delta_path, _ = stream_inputs
    snap_path = tmp_path / "stream.json"
    try:
        rc = main([str(base_path), str(delta_path), str(tmp_path / "root"),
                   "--dim", "16", "--ell2", "2", "--batch-size", "16",
                   "--metrics-json", str(snap_path),
                   "--metrics-interval", "0"])
    finally:
        obs.set_enabled(False)
        obs.reset()
    assert rc == 0
    err = capsys.readouterr().err
    # interval 0 -> a Prometheus text dump after every batch
    assert "# TYPE streaming_batches_total counter" in err
    snap = json.loads(snap_path.read_text())
    counters = {c["name"]: c["value"] for c in snap["counters"]}
    assert counters["streaming_batches_total"] == 2
    hists = {h["name"] for h in snap["histograms"]}
    assert "streaming_publish_seconds" in hists
