"""StreamingUpdater: incremental-vs-refit parity, escalation, publish.

Parity contract (documented here and in the README): after absorbing N
delta batches, the streaming path serves from the *old* SVD basis with
locally repaired sketches, so it is not bitwise-equal to a cold refit
on the final graph — but the served results must agree closely. On the
small test config (120-node community graph, ~9% of edges changed,
dim=16) basis staleness dominates and mean top-10 overlap saturates
near 0.89 regardless of warm epochs or dim, so we pin overlap >= 0.85
and score correlation >= 0.98; ``bench_streaming.py`` pins the
acceptance-scale contract (>= 0.95 overlap on ``vk_sim``), where each
node's neighborhood perturbation is relatively far smaller.
"""

import numpy as np
import pytest

from repro import NRP
from repro.errors import ParameterError, ReproError
from repro.serving import ServingRegistry, list_versions, open_current
from repro.streaming import StreamingConfig, StreamingUpdater

DIM = 16
ELL2 = 4


def _random_new_edges(graph, count, seed):
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < count:
        u, v = (int(x) for x in rng.integers(0, graph.num_nodes, 2))
        if u != v and not graph.has_edge(u, v) \
                and (u, v) not in out and (v, u) not in out:
            out.append((u, v))
    return (np.array([u for u, _ in out]), np.array([v for _, v in out]))


@pytest.fixture(scope="module")
def streamed(small_undirected):
    """Apply 4 insert batches + 1 delete batch through the updater."""
    model = NRP(dim=DIM, ell2=ELL2, seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        small_undirected, model,
        config=StreamingConfig(drift_threshold=None, max_staleness=None))
    records = []
    for i in range(4):
        src, dst = _random_new_edges(updater.graph, 12, seed=100 + i)
        records.append(updater.apply_batch(src, dst))
    old_src, old_dst = small_undirected.edges()
    records.append(updater.apply_batch(
        remove_src=old_src[:5], remove_dst=old_dst[:5]))
    return updater, records


def test_batches_absorbed(streamed, small_undirected):
    updater, records = streamed
    assert updater.num_batches == 5
    assert updater.graph.num_edges == small_undirected.num_edges + 48 - 5
    for rec in records:
        assert rec["touched"] > 0 and rec["sweeps"] > 0
        assert not rec["escalated"]


def test_streaming_parity_with_cold_refit(streamed):
    """Documented tolerance: top-10 overlap >= 0.85, score corr >= 0.98."""
    updater, _ = streamed
    cold = NRP(dim=DIM, ell2=ELL2, seed=0).fit(updater.graph)
    es = updater.model.to_serving(cache_size=0)
    ec = cold.to_serving(cache_size=0)
    nodes = np.arange(updater.graph.num_nodes)
    ids_s, _ = es.topk(nodes, 10)
    ids_c, _ = ec.topk(nodes, 10)
    overlap = np.mean([len(set(a.tolist()) & set(b.tolist())) / 10
                       for a, b in zip(ids_s, ids_c)])
    assert overlap >= 0.85, f"top-10 overlap {overlap:.3f} < 0.85"
    rng = np.random.default_rng(0)
    src = rng.integers(0, updater.graph.num_nodes, 400)
    dst = rng.integers(0, updater.graph.num_nodes, 400)
    s_scores = updater.model.score_pairs(src, dst)
    c_scores = cold.score_pairs(src, dst)
    corr = np.corrcoef(s_scores, c_scores)[0, 1]
    assert corr >= 0.98, f"score correlation {corr:.4f} < 0.98"


def test_model_serves_new_edges(streamed, small_undirected):
    """The refreshed model must rank a freshly inserted neighbor higher
    than it did before the insert (the Figure-9 signal, online)."""
    updater, _ = streamed
    stale = NRP(dim=DIM, ell2=ELL2, seed=0).fit(small_undirected)
    src, dst, _ = updater.delta.pending_arcs()
    assert len(src) == 0                # everything compacted
    # pick an edge present now but not in the original snapshot
    new_s, new_d = None, None
    cur_src, cur_dst = updater.graph.edges()
    for u, v in zip(cur_src.tolist(), cur_dst.tolist()):
        if not small_undirected.has_edge(u, v):
            new_s, new_d = u, v
            break
    assert new_s is not None
    fresh_score = updater.model.score_pairs([new_s], [new_d])[0]
    stale_score = stale.score_pairs([new_s], [new_d])[0]
    assert fresh_score > stale_score


def test_drift_escalation_full_refit(small_undirected):
    """An absurdly low drift threshold forces escalation; the updater
    rebases its sketches onto the fresh factorization."""
    model = NRP(dim=DIM, ell2=ELL2, seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        small_undirected, model,
        config=StreamingConfig(drift_threshold=1e-12, max_staleness=None))
    src, dst = _random_new_edges(small_undirected, 10, seed=5)
    rec = updater.apply_batch(src, dst)
    assert rec["escalated"]
    assert "drift" in rec["reason"]
    assert updater.num_escalations == 1
    assert updater.ppr.basis_staleness == 0.0
    # escalated state == cold fit on the new graph, bit for bit
    cold = NRP(dim=DIM, ell2=ELL2, seed=0).fit(updater.graph)
    np.testing.assert_array_equal(updater.model.forward_, cold.forward_)
    np.testing.assert_array_equal(updater.model.backward_, cold.backward_)


def test_staleness_escalation(small_undirected):
    model = NRP(dim=DIM, ell2=ELL2, seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        small_undirected, model,
        config=StreamingConfig(drift_threshold=None, max_staleness=1e-6))
    src, dst = _random_new_edges(small_undirected, 5, seed=9)
    rec = updater.apply_batch(src, dst)
    assert rec["escalated"]
    assert "staleness" in rec["reason"]


def test_no_escalation_under_loose_thresholds(small_undirected):
    model = NRP(dim=DIM, ell2=ELL2, seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        small_undirected, model,
        config=StreamingConfig(drift_threshold=10.0, max_staleness=10.0))
    src, dst = _random_new_edges(small_undirected, 5, seed=9)
    rec = updater.apply_batch(src, dst)
    assert not rec["escalated"]
    assert rec["drift"] < 10.0


def test_publish_versions_and_current_pointer(tmp_path, streamed):
    updater, _ = streamed
    root = tmp_path / "root"
    first = updater.publish(root)
    second = updater.publish(root, metadata={"note": "second"})
    assert first.version == 1 and second.version == 2
    assert list_versions(root) == [1, 2]
    current = open_current(root)
    assert current.version == 2
    assert current.metadata["note"] == "second"
    assert current.metadata["stream_batches"] == updater.num_batches
    # pruning keeps the newest N (current pointer stays valid)
    updater.publish(root, keep=2)
    assert list_versions(root) == [2, 3]
    assert open_current(root).version == 3


def test_swap_into_registry(streamed):
    updater, _ = streamed
    reg = ServingRegistry()
    e1 = updater.swap_into(reg, "live")
    e2 = updater.swap_into(reg, "live")
    assert reg.get("live") is e2 and e1 is not e2


def test_updater_requires_factor_state(small_undirected):
    model = NRP(dim=DIM, ell2=ELL2, seed=0)
    with pytest.raises(ParameterError, match="keep_factor_state"):
        StreamingUpdater(small_undirected, model)


def test_updater_rejects_foreign_model(small_undirected):
    from repro import ApproxPPREmbedder
    with pytest.raises(ParameterError, match="NRP"):
        StreamingUpdater(small_undirected, ApproxPPREmbedder(dim=DIM))


def test_updater_rejects_mismatched_fit(small_undirected, tiny_directed):
    model = NRP(dim=4, ell2=0, seed=0, keep_factor_state=True)
    model.fit(tiny_directed)
    with pytest.raises(ParameterError, match="nodes"):
        StreamingUpdater(small_undirected, model)


def test_streaming_config_validation():
    with pytest.raises(ParameterError):
        StreamingConfig(refresh_tol=0.0).validate()
    with pytest.raises(ParameterError):
        StreamingConfig(drift_threshold=-1.0).validate()
    with pytest.raises(ParameterError):
        StreamingConfig(max_staleness=0.0).validate()
    with pytest.raises(ParameterError):
        StreamingConfig(warm_epochs=-1).validate()
    StreamingConfig().validate()


def test_warm_refit_requires_fit(small_undirected):
    with pytest.raises(ReproError, match="fit"):
        NRP(dim=DIM, seed=0).warm_refit(small_undirected)


def test_warm_refit_validates_args(small_undirected):
    model = NRP(dim=DIM, ell2=ELL2, seed=0).fit(small_undirected)
    with pytest.raises(ParameterError, match="both x and y"):
        model.warm_refit(small_undirected, x=model.base_forward_)
    with pytest.raises(ParameterError, match="epochs"):
        model.warm_refit(small_undirected, epochs=-1)
    with pytest.raises(ParameterError, match="drift_threshold"):
        model.warm_refit(small_undirected, drift_threshold=0.0)


def test_warm_refit_node_count_change_escalates(small_undirected,
                                                small_directed):
    model = NRP(dim=DIM, ell2=ELL2, seed=0).fit(small_undirected)
    model.warm_refit(small_directed)
    assert model.last_warm_refit_["escalated"]
    assert model.last_warm_refit_["reason"] == "node count changed"
    assert model.forward_.shape[0] == small_directed.num_nodes


def test_warm_refit_converged_weights_barely_drift(small_undirected):
    """On an unchanged graph the warm sweeps stay near the optimum."""
    model = NRP(dim=DIM, ell2=10, seed=0).fit(small_undirected)
    w_before = model.w_fwd_.copy()
    model.warm_refit(small_undirected, epochs=1, drift_threshold=0.05)
    assert not model.last_warm_refit_["escalated"]
    assert model.last_warm_refit_["drift"] < 0.05
    # weights moved a little (more sweeps), but stayed close
    assert np.abs(model.w_fwd_ - w_before).sum() / w_before.sum() < 0.05
