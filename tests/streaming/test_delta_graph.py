"""Tests for graph.ops.add_arcs and the DeltaGraph edge log."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import add_arcs, from_edges, remove_arcs
from repro.streaming import DeltaGraph


# ---------------------------------------------------------------- add_arcs
def test_add_arcs_undirected(fig1):
    assert not fig1.has_edge(1, 3)
    g = add_arcs(fig1, [1], [3])
    assert g.has_arc(1, 3) and g.has_arc(3, 1)
    assert g.num_edges == fig1.num_edges + 1
    assert not g.directed
    g._validate()                      # CSR sorted/unique invariants hold


def test_add_arcs_directed(tiny_directed):
    assert not tiny_directed.has_arc(1, 0)
    g = add_arcs(tiny_directed, [1, 3], [0, 0])
    assert g.has_arc(1, 0) and g.has_arc(3, 0)
    assert not g.has_arc(0, 3)         # no silent symmetrization
    assert g.num_arcs == tiny_directed.num_arcs + 2
    g._validate()


def test_add_arcs_roundtrips_with_remove(fig1):
    g = remove_arcs(fig1, [0, 0], [1, 2])
    back = add_arcs(g, [0, 0], [1, 2])
    assert np.array_equal(back.indptr, fig1.indptr)
    assert np.array_equal(back.indices, fig1.indices)


def test_add_arcs_empty_is_copy(fig1):
    g = add_arcs(fig1, [], [])
    assert g is not fig1
    assert np.array_equal(g.indices, fig1.indices)


def test_add_arcs_rejects_existing(fig1):
    with pytest.raises(ParameterError, match="already present"):
        add_arcs(fig1, [0], [1])


def test_add_arcs_rejects_reverse_of_existing_undirected(fig1):
    # (1, 0) aliases the existing undirected edge {0, 1}
    with pytest.raises(ParameterError, match="already present"):
        add_arcs(fig1, [1], [0])


def test_add_arcs_rejects_duplicates_in_request(fig1):
    with pytest.raises(ParameterError, match="duplicate"):
        add_arcs(fig1, [1, 1], [3, 3])
    # undirected: (u, v) and (v, u) in one request alias one edge
    with pytest.raises(ParameterError, match="duplicate"):
        add_arcs(fig1, [1, 3], [3, 1])


def test_add_arcs_rejects_out_of_range_and_self_loops(fig1):
    with pytest.raises(ParameterError, match="out of range"):
        add_arcs(fig1, [0], [fig1.num_nodes])
    with pytest.raises(ParameterError, match="out of range"):
        add_arcs(fig1, [-1], [0])
    with pytest.raises(ParameterError, match="self loop"):
        add_arcs(fig1, [2], [2])


def test_add_arcs_mismatched_lengths(fig1):
    with pytest.raises(ParameterError, match="equal length"):
        add_arcs(fig1, [0, 1], [3])


# ---------------------------------------------------------------- DeltaGraph
def test_delta_log_and_compact_undirected(fig1):
    dg = DeltaGraph(fig1)
    dg.add_edges([1], [3])
    dg.remove_edges([0], [1])
    assert dg.num_pending == 4          # two edges = four arcs
    assert set(dg.touched_nodes().tolist()) == {0, 1, 3}
    g = dg.compact()
    assert g.has_edge(1, 3) and not g.has_edge(0, 1)
    assert g.num_edges == fig1.num_edges
    assert dg.num_pending == 0 and dg.base is g
    g._validate()


def test_delta_compact_directed(tiny_directed):
    dg = DeltaGraph(tiny_directed)
    dg.add_edges([1], [0])
    dg.remove_edges([0], [1])
    g = dg.compact()
    assert g.has_arc(1, 0) and not g.has_arc(0, 1)
    assert g.num_arcs == tiny_directed.num_arcs


def test_delta_insert_then_delete_cancels(fig1):
    dg = DeltaGraph(fig1)
    dg.add_edges([1], [3])
    dg.remove_edges([1], [3])
    assert dg.num_pending == 0
    g = dg.compact()
    assert np.array_equal(g.indices, fig1.indices)


def test_delta_delete_then_insert_restores(fig1):
    dg = DeltaGraph(fig1)
    dg.remove_edges([0], [1])
    dg.add_edges([0], [1])
    assert dg.num_pending == 0


def test_delta_rejects_double_insert(fig1):
    dg = DeltaGraph(fig1)
    dg.add_edges([1], [3])
    with pytest.raises(ParameterError, match="already present"):
        dg.add_edges([1], [3])
    with pytest.raises(ParameterError, match="already present"):
        dg.add_edges([3], [1])          # reverse aliases the same edge
    # existing base edges are also rejected
    with pytest.raises(ParameterError, match="already present"):
        dg.add_edges([0], [1])


def test_delta_rejects_deleting_absent(fig1):
    dg = DeltaGraph(fig1)
    with pytest.raises(ParameterError, match="not present"):
        dg.remove_edges([1], [3])
    dg.remove_edges([0], [1])
    with pytest.raises(ParameterError, match="not present"):
        dg.remove_edges([0], [1])


def test_delta_rejected_call_leaves_log_untouched(fig1):
    dg = DeltaGraph(fig1)
    with pytest.raises(ParameterError):
        dg.add_edges([1, 0], [3, 1])    # second pair already present
    assert dg.num_pending == 0
    assert len(dg.touched_nodes()) == 0


def test_delta_validates_endpoints(fig1):
    dg = DeltaGraph(fig1)
    with pytest.raises(ParameterError, match="out of range"):
        dg.add_edges([0], [99])
    with pytest.raises(ParameterError, match="self loop"):
        dg.add_edges([4], [4])


def test_delta_matches_batch_rebuild():
    rng = np.random.default_rng(7)
    n = 40
    src = rng.integers(0, n, 120)
    dst = rng.integers(0, n, 120)
    keep = src != dst
    base = from_edges(n, src[keep], dst[keep], directed=True)
    dg = DeltaGraph(base)
    all_src, all_dst = base.arcs()
    dg.remove_edges(all_src[:5], all_dst[:5])
    new = [(0, 39), (39, 0), (17, 23)]
    new = [(u, v) for u, v in new if not base.has_arc(u, v)]
    dg.add_edges([u for u, _ in new], [v for _, v in new])
    g = dg.compact()
    ref_src = np.concatenate([all_src[5:], [u for u, _ in new]])
    ref_dst = np.concatenate([all_dst[5:], [v for _, v in new]])
    ref = from_edges(n, ref_src, ref_dst, directed=True)
    assert np.array_equal(g.indptr, ref.indptr)
    assert np.array_equal(g.indices, ref.indices)
