"""Tests for IncrementalPPR: local sketch repair vs. ground truth.

The documented semantics (see the module docstring of
``repro.streaming.incremental``): a refresh drives the retained iterate
toward the *fixed point* of ``x = (1 - alpha) P' x + x1'`` within the
frozen SVD basis, pruning residues below ``tol`` (final-embedding
units). The tests pin (a) exact no-op on zero deltas, (b) convergence
to an independently computed fixed point after deltas, (c) the
truncation-tail tolerance against the cold ``ell1``-truncated path on
an *unchanged* basis, and (d) staleness accounting.
"""

import numpy as np
import pytest

from repro.core import ApproxPPRConfig, approx_ppr_state
from repro.errors import ParameterError, ReproError
from repro.graph import add_arcs, from_edges, remove_arcs
from repro.streaming import DeltaGraph, IncrementalPPR, changed_rows

CFG = dict(k_prime=8, alpha=0.15, ell1=20, eps=0.2, svd="bksvd", seed=0)


def _fixed_point(graph, x1, alpha, iters=300):
    """Reference: iterate x = (1 - alpha) P x + x1 to stationarity."""
    p = graph.transition_matrix()
    x = np.zeros_like(x1)
    for _ in range(iters):
        x = (1.0 - alpha) * (p @ x) + x1
    return x


@pytest.fixture(scope="module")
def base(small_undirected):
    return small_undirected


@pytest.fixture()
def inc(base):
    return IncrementalPPR(base, ApproxPPRConfig(**CFG), tol=1e-12)


# ---------------------------------------------------------------- helpers
def test_changed_rows(base):
    g = remove_arcs(base, [0], [base.out_neighbors(0)[0]])
    rows = changed_rows(base, g)
    assert set(rows.tolist()) == {0, int(base.out_neighbors(0)[0])}
    assert len(changed_rows(base, base)) == 0


def test_changed_rows_size_mismatch(base, tiny_directed):
    with pytest.raises(ParameterError, match="node counts"):
        changed_rows(base, tiny_directed)


# ---------------------------------------------------------------- refresh
def test_zero_delta_refresh_is_noop(inc, base):
    before = inc.x_iter.copy()
    stats = inc.refresh(base, np.empty(0, dtype=np.int64))
    assert stats["touched"] == 0 and stats["sweeps"] == 0
    np.testing.assert_array_equal(inc.x_iter, before)


def test_refresh_matches_exact_residue_series(inc, base):
    """The repair equals the closed-form residue propagation series.

    Refresh seeds ``r = (map_new(x_old) - x_old)`` on the touched rows
    and pushes it through ``sum_i ((1 - alpha) P')^i r``; with a tight
    tolerance the result must match that series computed densely.
    Untouched rows keep their truncated-tail semantics by design — the
    global fixed point is NOT the reference (see the tail-bound test).
    """
    dg = DeltaGraph(base)
    rng = np.random.default_rng(3)
    added = []
    while len(added) < 15:
        u, v = rng.integers(0, base.num_nodes, 2)
        if u != v and not base.has_edge(u, v) and (u, v) not in added \
                and (v, u) not in added:
            added.append((int(u), int(v)))
    dg.add_edges([u for u, _ in added], [v for _, v in added])
    src, dst = base.arcs()
    dg.remove_edges(src[:3], dst[:3])
    touched = dg.touched_nodes()
    new_graph = dg.compact()

    x_old = inc.x_iter.copy()
    x1_old = inc.x1.copy()
    stats = inc.refresh(new_graph, touched, max_sweeps=400)
    assert stats["touched"] == len(touched)
    assert stats["sweeps"] > 0

    # dense reference: repaired x1, seeded residue, geometric series
    alpha = CFG["alpha"]
    ref_inc = IncrementalPPR.__new__(IncrementalPPR)  # reuse _repair_x1
    ref_inc.graph = base
    ref_inc.x1 = x1_old
    ref_inc.v_scaled = inc.v_scaled
    ref_inc.arcs_changed_since_basis = 0
    ref_inc._repair_x1(new_graph, touched)
    p_new = new_graph.transition_matrix()
    seed = np.zeros_like(x_old)
    seed[touched] = ((1.0 - alpha) * (p_new[touched] @ x_old)
                     + ref_inc.x1[touched]) - x_old[touched]
    acc = seed.copy()
    term = seed
    for _ in range(300):
        term = (1.0 - alpha) * (p_new @ term)
        acc += term
    ref = x_old + acc
    scale = alpha * (1.0 - alpha)
    assert np.abs(inc.x_iter - ref).max() * scale < 1e-9
    np.testing.assert_allclose(inc.x1, ref_inc.x1, rtol=1e-12, atol=1e-15)


def test_refresh_x1_matches_identity(inc, base):
    """Repaired x1 rows equal (A'[v] @ v_scaled) / d'(v) exactly."""
    dg = DeltaGraph(base)
    dg.add_edges([0], [base.num_nodes - 1]) if not base.has_edge(
        0, base.num_nodes - 1) else dg.remove_edges([0],
                                                    [base.out_neighbors(0)[0]])
    touched = dg.touched_nodes()
    new_graph = dg.compact()
    # expected from the identity, built on the OLD x1 numerators
    expected = {}
    for v in touched.tolist():
        numer = base.out_degrees[v] * inc.x1[v].copy()
        old_nb = set(base.out_neighbors(v).tolist())
        new_nb = set(new_graph.out_neighbors(v).tolist())
        for w in sorted(new_nb - old_nb):
            numer += inc.v_scaled[w]
        for w in sorted(old_nb - new_nb):
            numer -= inc.v_scaled[w]
        d = new_graph.out_degrees[v]
        expected[v] = numer / d if d else np.zeros_like(numer)
    inc.refresh(new_graph, touched)
    for v, row in expected.items():
        np.testing.assert_allclose(inc.x1[v], row, rtol=1e-12, atol=1e-15)


def test_fixed_point_vs_truncated_tail_bound(base):
    """Fixed-point and ell1-truncated semantics differ by the documented
    geometric tail — on an unchanged graph, refresh-from-scratch-seeded
    state stays within (1 - alpha)^ell1 / alpha of the cold iterate."""
    cfg = ApproxPPRConfig(**CFG)
    state = approx_ppr_state(base, cfg)
    ref = _fixed_point(base, state.x1, cfg.alpha)
    tail = (1.0 - cfg.alpha) ** cfg.ell1 / cfg.alpha
    bound = tail * np.abs(state.x1).max() * 1.5
    assert np.abs(ref - state.x_iter).max() <= bound


def test_refresh_rejects_node_growth(inc):
    bigger = from_edges(inc.num_nodes + 1, [0], [1], directed=False)
    with pytest.raises(ReproError, match="fixed node set"):
        inc.refresh(bigger)


def test_refresh_computes_touched_when_omitted(inc, base):
    u = 0
    w = int(base.out_neighbors(u)[0])
    new_graph = remove_arcs(base, [u], [w])
    stats = inc.refresh(new_graph)
    assert stats["touched"] == 2        # both endpoints (undirected)


def test_staleness_accounting_and_rebase(inc, base):
    u, w = 0, int(base.out_neighbors(0)[0])
    new_graph = remove_arcs(base, [u], [w])
    inc.refresh(new_graph)
    assert inc.arcs_changed_since_basis == 2
    assert 0 < inc.basis_staleness < 1e-2
    fresh = approx_ppr_state(new_graph, ApproxPPRConfig(**CFG))
    inc.rebase(fresh, new_graph)
    assert inc.basis_staleness == 0.0
    np.testing.assert_array_equal(inc.x_iter, fresh.x_iter)


def test_tol_prunes_propagation(base):
    """A loose tolerance stops the frontier early; a tight one pushes on."""
    cfg = ApproxPPRConfig(**CFG)
    u, w = 0, int(base.out_neighbors(0)[0])
    new_graph = remove_arcs(base, [u], [w])
    loose = IncrementalPPR(base, cfg, tol=1e-2)
    tight = IncrementalPPR(base, cfg, tol=1e-12)
    s_loose = loose.refresh(new_graph)
    s_tight = tight.refresh(new_graph)
    assert s_loose["sweeps"] <= s_tight["sweeps"]
    assert sum(s_loose["frontier"]) <= sum(s_tight["frontier"])


def test_invalid_construction(base):
    cfg = ApproxPPRConfig(**CFG)
    with pytest.raises(ParameterError, match="tol"):
        IncrementalPPR(base, cfg, tol=0.0)
    state = approx_ppr_state(base, cfg)
    smaller = from_edges(3, [0, 1], [1, 2], directed=False)
    with pytest.raises(ParameterError, match="rows"):
        IncrementalPPR(smaller, cfg, state=state)
