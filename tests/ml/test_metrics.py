"""Tests for the from-scratch metrics, pinned against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, ParameterError
from repro.ml import accuracy, auc_score, macro_f1, micro_f1, precision_at_k


def _brute_auc(labels, scores):
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = ties = 0
    for p in pos:
        for q in neg:
            wins += p > q
            ties += p == q
    return (wins + 0.5 * ties) / (len(pos) * len(neg))


def test_auc_perfect_ranking():
    assert auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0


def test_auc_inverted_ranking():
    assert auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0


def test_auc_random_is_half():
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 2, size=4000)
    scores = rng.random(4000)
    assert auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)


def test_auc_handles_ties():
    labels = np.array([1, 0, 1, 0])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert auc_score(labels, scores) == pytest.approx(0.5)


@given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 2 ** 30))
@settings(max_examples=25, deadline=None)
def test_auc_matches_bruteforce(num_pos, num_neg, seed):
    rng = np.random.default_rng(seed)
    labels = np.concatenate([np.ones(num_pos, int), np.zeros(num_neg, int)])
    # quantized scores force tie handling
    scores = rng.integers(0, 5, size=num_pos + num_neg).astype(float)
    assert auc_score(labels, scores) == pytest.approx(
        _brute_auc(labels, scores), abs=1e-12)


def test_auc_requires_both_classes():
    with pytest.raises(ParameterError):
        auc_score([1, 1], [0.5, 0.6])


def test_auc_rejects_mismatched_shapes():
    with pytest.raises(DimensionError):
        auc_score(np.ones(3), np.ones(4))


def test_precision_at_k_basic():
    labels = np.array([1, 0, 1, 0, 0])
    scores = np.array([0.9, 0.8, 0.7, 0.2, 0.1])
    assert precision_at_k(labels, scores, 1) == 1.0
    assert precision_at_k(labels, scores, 2) == 0.5
    assert precision_at_k(labels, scores, 3) == pytest.approx(2 / 3)


def test_precision_at_k_exceeding_length():
    labels = np.array([1, 0])
    scores = np.array([0.5, 0.4])
    # K > candidates: K stays in the denominator, as in the paper's plots
    assert precision_at_k(labels, scores, 4) == pytest.approx(0.25)
    assert precision_at_k(labels, scores, 2) == pytest.approx(0.5)


def test_precision_at_k_rejects_bad_k():
    with pytest.raises(ParameterError):
        precision_at_k(np.array([1]), np.array([0.5]), 0)


def test_micro_macro_f1_perfect():
    true = np.array([[1, 0], [0, 1]])
    assert micro_f1(true, true) == 1.0
    assert macro_f1(true, true) == 1.0


def test_micro_f1_matches_manual():
    true = np.array([[1, 0, 1], [0, 1, 0], [1, 1, 0]])
    pred = np.array([[1, 0, 0], [0, 1, 1], [1, 0, 0]])
    tp, fp, fn = 3, 1, 2
    assert micro_f1(true, pred) == pytest.approx(2 * tp / (2 * tp + fp + fn))


def test_macro_f1_zero_support_label():
    true = np.array([[1, 0], [1, 0]])
    pred = np.array([[1, 0], [1, 0]])
    # second label has no positives anywhere -> per-label F1 defined as 0
    assert macro_f1(true, pred) == pytest.approx(0.5)


def test_micro_f1_all_wrong():
    true = np.array([[1, 0], [0, 1]])
    pred = 1 - true
    assert micro_f1(true, pred) == 0.0


def test_f1_shape_mismatch():
    with pytest.raises(DimensionError):
        micro_f1(np.ones((2, 2)), np.ones((2, 3)))


def test_accuracy():
    assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)
