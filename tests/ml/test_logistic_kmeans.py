"""Tests for logistic regression, preprocessing, and k-means."""

import numpy as np
import pytest

from repro.errors import DimensionError, ParameterError
from repro.ml import (LogisticRegression, OneVsRestLogistic, concat_features,
                      hadamard_features, normalize_rows, standardize_columns)
from repro.ml.kmeans import kmeans


# --------------------------------------------------------------- logistic
def _separable_data(seed=0, n=200):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 2))
    y = (x[:, 0] + 2 * x[:, 1] > 0).astype(float)
    return x, y


def test_logistic_fits_separable_data():
    x, y = _separable_data()
    model = LogisticRegression(reg=0.01).fit(x, y)
    assert (model.predict(x) == y).mean() > 0.97


def test_logistic_probabilities_calibrated_direction():
    x, y = _separable_data(1)
    model = LogisticRegression().fit(x, y)
    probs = model.predict_proba(x)
    assert probs[y == 1].mean() > probs[y == 0].mean() + 0.3


def test_logistic_regularization_shrinks_weights():
    x, y = _separable_data(2)
    loose = LogisticRegression(reg=0.001).fit(x, y)
    tight = LogisticRegression(reg=100.0).fit(x, y)
    assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


def test_logistic_requires_fit():
    with pytest.raises(ParameterError):
        LogisticRegression().decision_function(np.ones((2, 2)))


def test_logistic_rejects_mismatched_inputs():
    with pytest.raises(DimensionError):
        LogisticRegression().fit(np.ones((3, 2)), np.ones(4))


def test_logistic_rejects_negative_reg():
    with pytest.raises(ParameterError):
        LogisticRegression(reg=-1.0)


def test_one_vs_rest_multilabel():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((300, 4))
    membership = np.stack([(x[:, 0] > 0), (x[:, 1] > 0.2),
                           (x[:, 2] + x[:, 3] > 0)], axis=1).astype(int)
    model = OneVsRestLogistic(reg=0.1).fit(x, membership)
    probs = model.predict_proba(x)
    assert probs.shape == (300, 3)
    # per-label ranking quality
    for j in range(3):
        pos = probs[membership[:, j] == 1, j].mean()
        neg = probs[membership[:, j] == 0, j].mean()
        assert pos > neg + 0.2


def test_one_vs_rest_constant_label():
    x = np.random.default_rng(4).standard_normal((20, 3))
    membership = np.zeros((20, 2), dtype=int)
    membership[:, 0] = 1          # constant positive, constant negative
    model = OneVsRestLogistic().fit(x, membership)
    probs = model.predict_proba(x)
    np.testing.assert_allclose(probs[:, 0], 1.0)
    np.testing.assert_allclose(probs[:, 1], 0.0)


def test_one_vs_rest_requires_fit():
    with pytest.raises(ParameterError):
        OneVsRestLogistic().predict_proba(np.ones((2, 2)))


# ----------------------------------------------------------- preprocessing
def test_normalize_rows_unit_norm():
    x = np.array([[3.0, 4.0], [0.0, 0.0]])
    out = normalize_rows(x)
    assert np.linalg.norm(out[0]) == pytest.approx(1.0)
    np.testing.assert_array_equal(out[1], [0.0, 0.0])


def test_standardize_columns():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((100, 3)) * [1, 10, 100] + [5, -3, 0]
    out = standardize_columns(x)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)


def test_edge_feature_builders():
    feats = np.arange(12).reshape(4, 3).astype(float)
    src = np.array([0, 1])
    dst = np.array([2, 3])
    cat = concat_features(feats, src, dst)
    assert cat.shape == (2, 6)
    np.testing.assert_array_equal(cat[0], [0, 1, 2, 6, 7, 8])
    had = hadamard_features(feats, src, dst)
    np.testing.assert_array_equal(had[0], feats[0] * feats[2])


# ---------------------------------------------------------------- k-means
def test_kmeans_recovers_clear_clusters():
    rng = np.random.default_rng(6)
    pts = np.vstack([rng.normal(0, 0.1, (50, 2)),
                     rng.normal(5, 0.1, (50, 2))])
    assign, centroids = kmeans(pts, 2, seed=0)
    assert len(set(assign[:50])) == 1
    assert len(set(assign[50:])) == 1
    assert assign[0] != assign[50]


def test_kmeans_centroids_are_means():
    rng = np.random.default_rng(7)
    pts = rng.standard_normal((60, 3))
    assign, centroids = kmeans(pts, 4, seed=1)
    for c in range(4):
        members = pts[assign == c]
        if len(members):
            np.testing.assert_allclose(centroids[c], members.mean(axis=0),
                                       atol=1e-9)


def test_kmeans_rejects_bad_k():
    with pytest.raises(ParameterError):
        kmeans(np.ones((3, 2)), 5)
