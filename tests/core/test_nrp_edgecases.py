"""NRP edge cases: ell2=0 unit weights, dangling clamp, objective
monotonicity, and the chunk/worker/alpha configuration validation."""

import numpy as np
import pytest

from repro.core import NRP, NRPConfig
from repro.core.reweighting import update_backward_weights
from repro.errors import ParameterError
from repro.graph import from_edges


@pytest.fixture(scope="module")
def dangling_directed():
    """Directed graph whose last 3 nodes have no out-arcs."""
    rng = np.random.default_rng(9)
    n = 60
    src = rng.integers(0, n - 3, 300)
    dst = rng.integers(0, n, 300)
    g = from_edges(n, src, dst, directed=True)
    assert np.any(g.out_degrees == 0)
    return g


# ----------------------------------------------------------------------
# ell2 = 0: reweighting disabled (Section 5.6)
# ----------------------------------------------------------------------

def test_ell2_zero_uses_unit_weights(small_undirected):
    model = NRP(dim=16, seed=0, ell2=0).fit(small_undirected)
    np.testing.assert_array_equal(model.w_fwd_, 1.0)
    np.testing.assert_array_equal(model.w_bwd_, 1.0)


def test_ell2_zero_embeddings_equal_base_factorization(small_undirected):
    model = NRP(dim=16, seed=0, ell2=0).fit(small_undirected)
    np.testing.assert_array_equal(model.forward_, model.base_forward_)
    np.testing.assert_array_equal(model.backward_, model.base_backward_)


def test_ell2_zero_skips_degree_initialization(small_undirected):
    """ell2=0 must NOT start from w_fwd = d_out (the Line-4 init)."""
    model = NRP(dim=16, seed=0, ell2=0).fit(small_undirected)
    d_out = small_undirected.out_degrees.astype(float)
    assert not np.allclose(model.w_fwd_, np.maximum(d_out, 1.0 / 120))


# ----------------------------------------------------------------------
# dangling-node weight clamp
# ----------------------------------------------------------------------

def test_dangling_nodes_respect_weight_floor(dangling_directed):
    """Line 4 starts w_fwd at d_out; dangling nodes are clamped to 1/n,
    and every sweep keeps all weights at or above that floor."""
    n = dangling_directed.num_nodes
    model = NRP(dim=12, seed=0, ell2=3).fit(dangling_directed)
    assert np.all(model.w_fwd_ >= 1.0 / n - 1e-15)
    assert np.all(model.w_bwd_ >= 1.0 / n - 1e-15)
    assert np.all(np.isfinite(model.forward_))
    assert np.all(np.isfinite(model.backward_))


def test_dangling_clamp_matches_documented_initialization(dangling_directed):
    """With ell2 > 0 the initial forward weights are max(d_out, 1/n); one
    backward sweep leaves w_fwd untouched, making the clamp observable."""
    n = dangling_directed.num_nodes
    d_out = dangling_directed.out_degrees.astype(np.float64)
    expected_init = np.maximum(d_out, 1.0 / n)

    # replicate fit up to (but not including) the first forward sweep
    from repro.core.approx_ppr import ApproxPPRConfig, approx_ppr_embeddings
    from repro.rng import spawn_rngs
    svd_rng, sweep_rng = spawn_rngs(0, 2)
    x, y = approx_ppr_embeddings(dangling_directed, ApproxPPRConfig(
        k_prime=6, seed=svd_rng))
    d_in = dangling_directed.in_degrees.astype(np.float64)
    w_bwd = update_backward_weights(x, y, expected_init, np.ones(n), d_out,
                                    d_in, 10.0, seed=sweep_rng)
    assert np.all(w_bwd >= 1.0 / n - 1e-15)
    # dangling nodes start exactly at the floor, not at zero
    dangling = d_out == 0
    assert np.all(expected_init[dangling] == 1.0 / n)


# ----------------------------------------------------------------------
# objective tracking
# ----------------------------------------------------------------------

def test_objective_history_monotone_nonincreasing(small_undirected):
    model = NRP(dim=16, seed=0, ell2=5, exact_b1=True,
                track_objective=True).fit(small_undirected)
    hist = model.objective_history_
    assert len(hist) == 6           # initial value + one per epoch
    diffs = np.diff(hist)
    assert np.all(diffs <= 1e-9)


def test_objective_history_empty_without_tracking(small_undirected):
    model = NRP(dim=16, seed=0, ell2=2).fit(small_undirected)
    assert model.objective_history_ == []


def test_objective_history_monotone_with_chunked_engine(small_undirected):
    model = NRP(dim=16, seed=0, ell2=4, exact_b1=True, chunk_size=32,
                workers=2, track_objective=True).fit(small_undirected)
    assert np.all(np.diff(model.objective_history_) <= 1e-9)


# ----------------------------------------------------------------------
# configuration validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("alpha", [0.0, 1.0, -0.1, 1.5])
def test_config_rejects_alpha_outside_open_interval(alpha):
    with pytest.raises(ParameterError, match="alpha"):
        NRPConfig(alpha=alpha).validate()


@pytest.mark.parametrize("chunk_size", [0, -1, -100])
def test_config_rejects_nonpositive_chunk_size(chunk_size):
    with pytest.raises(ParameterError, match="chunk_size"):
        NRPConfig(chunk_size=chunk_size).validate()


@pytest.mark.parametrize("workers", [0, -2])
def test_config_rejects_nonpositive_workers(workers):
    with pytest.raises(ParameterError, match="workers"):
        NRPConfig(workers=workers).validate()


def test_config_rejects_fractional_workers():
    with pytest.raises(ParameterError, match="workers"):
        NRPConfig(workers=1.5).validate()


def test_nrp_constructor_validates_chunk_arguments():
    with pytest.raises(ParameterError, match="chunk_size"):
        NRP(dim=16, chunk_size=0)
    with pytest.raises(ParameterError, match="workers"):
        NRP(dim=16, workers=0)
    with pytest.raises(ParameterError, match="alpha"):
        NRP(dim=16, alpha=1.0)


def test_chunked_engine_rejects_exact_svd():
    with pytest.raises(ParameterError, match="exact"):
        NRP(dim=16, svd="exact", chunk_size=64)


def test_default_config_remains_valid():
    NRPConfig().validate()
    NRPConfig(chunk_size=4096, workers=8).validate()


def test_update_functions_validate_chunk_arguments(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    with pytest.raises(ParameterError, match="chunk_size"):
        update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.1,
                                chunk_size=0)
    with pytest.raises(ParameterError, match="workers"):
        update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.1,
                                workers=0)
    with pytest.raises(ParameterError):
        update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.1,
                                mode="chaotic", chunk_size=8)
