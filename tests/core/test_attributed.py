"""Tests for the attributed-graph NRP extension (paper future work)."""

import numpy as np
import pytest

from repro.core.attributed import AttributedNRP, augment_with_attributes
from repro.errors import DimensionError
from repro.graph import from_edges


def _attr_graph():
    # two 3-cliques connected by one bridge edge
    g = from_edges(6, [0, 1, 2, 3, 4, 5, 2],
                   [1, 2, 0, 4, 5, 3, 3], directed=False)
    # attribute 0 shared by nodes {0, 5} across the two cliques
    attrs = np.zeros((6, 2), dtype=int)
    attrs[[0, 5], 0] = 1
    attrs[[1, 4], 1] = 1
    return g, attrs


def test_augmentation_adds_attribute_nodes():
    g, attrs = _attr_graph()
    aug = augment_with_attributes(g, attrs)
    assert aug.num_nodes == 8
    assert aug.has_edge(0, 6) and aug.has_edge(5, 6)
    assert aug.has_edge(1, 7) and aug.has_edge(4, 7)
    # original topology preserved
    assert aug.has_edge(0, 1) and aug.has_edge(2, 3)


def test_augmentation_directed():
    g = from_edges(3, [0, 1], [1, 2], directed=True)
    attrs = np.array([[1], [0], [1]])
    aug = augment_with_attributes(g, attrs)
    assert aug.directed
    assert aug.has_arc(0, 3) and aug.has_arc(3, 0)
    assert aug.has_arc(2, 3) and aug.has_arc(3, 2)
    assert aug.has_arc(0, 1) and not aug.has_arc(1, 0)


def test_augmentation_rejects_bad_shape():
    g, _ = _attr_graph()
    with pytest.raises(DimensionError):
        augment_with_attributes(g, np.ones((4, 2)))


def test_attributed_nrp_shapes():
    g, attrs = _attr_graph()
    model = AttributedNRP(dim=8, attributes=attrs, svd="exact",
                          lam=0.1, seed=0).fit(g)
    assert model.forward_.shape == (6, 4)
    assert model.attribute_forward_.shape == (2, 4)
    assert np.all(np.isfinite(model.node_features()))


def test_shared_attribute_raises_cross_clique_proximity():
    """Nodes sharing an attribute gain proximity over equal-role peers."""
    g, _ = _attr_graph()
    # a single attribute shared by node 0 (clique A) and node 5 (clique B)
    attrs = np.zeros((6, 1), dtype=int)
    attrs[[0, 5], 0] = 1
    plain = AttributedNRP(dim=12, attributes=np.zeros((6, 1), dtype=int),
                          svd="exact", lam=0.1, seed=0).fit(g)
    attributed = AttributedNRP(dim=12, attributes=attrs, svd="exact",
                               lam=0.1, seed=0).fit(g)

    def gap(model):
        # proximity of the attribute-sharing pair (0, 5) relative to the
        # structurally comparable non-sharing pair (0, 4)
        return (model.score_pairs([0], [5])[0]
                - model.score_pairs([0], [4])[0])

    assert gap(attributed) > gap(plain)


def test_attribute_rows_must_match_nodes():
    g, attrs = _attr_graph()
    model = AttributedNRP(dim=8, attributes=attrs[:4], seed=0)
    with pytest.raises(DimensionError):
        model.fit(g)
