"""Tests for the Eq. (6) objective and the complete NRP pipeline."""

import numpy as np
import pytest

from repro.core import (NRP, ApproxPPREmbedder, NRPConfig,
                        reweighting_objective, strength_vectors)
from repro.errors import DimensionError, ParameterError
from repro.ppr import ppr_matrix_dense


# ------------------------------------------------------------- objective
def test_objective_matches_bruteforce(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    lam = 0.7
    n = x.shape[0]
    # brute force straight from Eq. (6)
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    np.fill_diagonal(g, 0.0)
    brute = (((g.sum(axis=0) - d_in) ** 2).sum()
             + ((g.sum(axis=1) - d_out) ** 2).sum()
             + lam * (w_fwd @ w_fwd + w_bwd @ w_bwd))
    fast = reweighting_objective(x, y, w_fwd, w_bwd, d_out, d_in, lam)
    assert fast == pytest.approx(brute, rel=1e-10)


def test_strength_vectors_match_bruteforce(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    np.fill_diagonal(g, 0.0)
    out_strength, in_strength = strength_vectors(x, y, w_fwd, w_bwd)
    np.testing.assert_allclose(out_strength, g.sum(axis=1), rtol=1e-10)
    np.testing.assert_allclose(in_strength, g.sum(axis=0), rtol=1e-10)


def test_objective_rejects_bad_shapes():
    with pytest.raises(DimensionError):
        reweighting_objective(np.ones((3, 2)), np.ones((3, 2)),
                              np.ones(2), np.ones(3),
                              np.ones(3), np.ones(3), 0.0)


# ------------------------------------------------------------------- NRP
def test_nrp_shapes_and_finiteness(small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    n = small_undirected.num_nodes
    assert model.forward_.shape == (n, 8)
    assert model.backward_.shape == (n, 8)
    assert np.all(np.isfinite(model.forward_))
    assert model.node_features().shape == (n, 16)


def test_nrp_weights_above_floor(small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    n = small_undirected.num_nodes
    assert np.all(model.w_fwd_ >= 1.0 / n - 1e-12)
    assert np.all(model.w_bwd_ >= 1.0 / n - 1e-12)


def test_nrp_objective_decreases_over_epochs(small_undirected):
    model = NRP(dim=16, svd="exact", lam=0.1, ell2=6, seed=0,
                track_objective=True).fit(small_undirected)
    history = model.objective_history_
    assert len(history) == 7
    assert history[-1] < history[0]
    # by far most of the improvement happens in the first epochs (Fig. 8d)
    assert history[1] - history[-1] < history[0] - history[1]


def test_nrp_final_embeddings_are_weighted_base(small_undirected):
    """Lines 8-9 of Algorithm 3."""
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    np.testing.assert_allclose(
        model.forward_, model.w_fwd_[:, None] * model.base_forward_,
        rtol=1e-12)
    np.testing.assert_allclose(
        model.backward_, model.w_bwd_[:, None] * model.base_backward_,
        rtol=1e-12)


def test_nrp_ell2_zero_is_conventional_ppr(small_undirected):
    """ell2 = 0 disables reweighting entirely (paper Section 5.6): the
    embeddings coincide with ApproxPPR's."""
    model = NRP(dim=16, svd="exact", ell2=0, seed=0).fit(small_undirected)
    np.testing.assert_allclose(model.w_fwd_, 1.0, rtol=1e-12)
    np.testing.assert_allclose(model.w_bwd_, 1.0, rtol=1e-12)
    np.testing.assert_allclose(model.forward_, model.base_forward_,
                               rtol=1e-12)


def test_nrp_reverses_counterintuitive_ppr_ranking(fig1):
    """The headline fix: PPR prefers (v9,v7); NRP prefers (v2,v4)."""
    pi = ppr_matrix_dense(fig1, 0.15)
    assert pi[8, 6] > pi[1, 3]            # vanilla PPR: wrong order
    model = NRP(dim=8, svd="exact", lam=0.1, seed=0).fit(fig1)
    s_24 = model.score_pairs([1], [3])[0]
    s_97 = model.score_pairs([8], [6])[0]
    assert s_24 > s_97                    # NRP: intuitive order


def test_approxppr_keeps_counterintuitive_ranking(fig1):
    model = ApproxPPREmbedder(dim=8, svd="exact", seed=0).fit(fig1)
    s_24 = model.score_pairs([1], [3])[0]
    s_97 = model.score_pairs([8], [6])[0]
    assert s_97 > s_24


def test_nrp_total_strength_tracks_degrees(small_undirected):
    """Eq. (5): reweighted strengths approximate in/out degrees."""
    from repro.core import strength_vectors
    model = NRP(dim=32, svd="exact", lam=0.01, ell2=15,
                seed=0).fit(small_undirected)
    out_strength, in_strength = strength_vectors(
        model.base_forward_, model.base_backward_,
        model.w_fwd_, model.w_bwd_)
    d = small_undirected.out_degrees.astype(float)
    base_out, base_in = strength_vectors(
        model.base_forward_, model.base_backward_,
        np.maximum(d, 1.0 / small_undirected.num_nodes),
        np.ones(small_undirected.num_nodes))
    # reweighting brings strengths much closer to degrees than the init
    assert (np.abs(out_strength - d).mean()
            < np.abs(base_out - d).mean() * 0.8)


def test_nrp_directed(small_directed):
    model = NRP(dim=16, seed=0).fit(small_directed)
    assert np.all(np.isfinite(model.forward_))
    # forward and backward sides differ on directed graphs
    assert not np.allclose(model.forward_, model.backward_)


def test_nrp_jacobi_mode_runs(small_undirected):
    model = NRP(dim=16, svd="exact", update_mode="jacobi",
                seed=0).fit(small_undirected)
    assert np.all(np.isfinite(model.forward_))


def test_nrp_deterministic(small_undirected):
    a = NRP(dim=16, seed=123).fit(small_undirected)
    b = NRP(dim=16, seed=123).fit(small_undirected)
    np.testing.assert_array_equal(a.forward_, b.forward_)
    np.testing.assert_array_equal(a.backward_, b.backward_)


def test_nrp_config_validation():
    with pytest.raises(ParameterError):
        NRP(dim=15)                       # odd dim
    with pytest.raises(ParameterError):
        NRP(dim=16, ell2=-1)
    with pytest.raises(ParameterError):
        NRP(dim=16, lam=-2.0)
    with pytest.raises(ParameterError):
        NRP(dim=16, update_mode="nope").fit            # validated in ctor


def test_nrp_score_pairs_requires_fit():
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        NRP(dim=8).score_pairs([0], [1])


def test_nrpconfig_defaults_match_paper():
    cfg = NRPConfig()
    assert cfg.dim == 128 and cfg.alpha == 0.15
    assert cfg.ell1 == 20 and cfg.ell2 == 10
    assert cfg.eps == 0.2 and cfg.lam == 10.0
