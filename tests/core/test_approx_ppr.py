"""Tests for Algorithm 1 (ApproxPPR) including the Theorem 1 bound."""

import numpy as np
import pytest

from repro.core import (ApproxPPRConfig, approx_ppr_embeddings,
                        theorem1_bound)
from repro.errors import ParameterError
from repro.graph import erdos_renyi
from repro.ppr import truncated_ppr_matrix


def test_factorization_approximates_truncated_ppr(fig1):
    """X Y^T ~= Pi' when the SVD is (nearly) exact."""
    cfg = ApproxPPRConfig(k_prime=6, svd="exact")
    x, y = approx_ppr_embeddings(fig1, cfg)
    target = truncated_ppr_matrix(fig1, cfg.alpha, cfg.ell1)
    err = np.abs(x @ y.T - target)
    np.fill_diagonal(err, 0.0)            # the objective ignores self pairs
    assert err.max() < 0.05


def test_full_rank_exact_recovery(fig1):
    """With k' = n the factorization must reproduce Pi' exactly."""
    cfg = ApproxPPRConfig(k_prime=9, svd="exact")
    x, y = approx_ppr_embeddings(fig1, cfg)
    target = truncated_ppr_matrix(fig1, cfg.alpha, cfg.ell1)
    np.testing.assert_allclose(x @ y.T, target, atol=1e-10)


def test_theorem1_bound_holds(fig1):
    """Entrywise error within the Theorem 1 guarantee."""
    alpha, ell1, eps, k_prime = 0.15, 20, 0.2, 4
    cfg = ApproxPPRConfig(k_prime=k_prime, alpha=alpha, ell1=ell1, eps=eps,
                          svd="bksvd", seed=0)
    x, y = approx_ppr_embeddings(fig1, cfg)
    from repro.ppr import ppr_matrix_dense
    pi = ppr_matrix_dense(fig1, alpha)
    sigma = np.linalg.svd(fig1.adjacency().toarray(), compute_uv=False)
    bound = theorem1_bound(sigma[k_prime], alpha, ell1, eps)
    err = np.abs(pi - alpha * np.eye(9) - x @ y.T)
    np.fill_diagonal(err, 0.0)
    assert err.max() <= bound + 1e-9


def test_bksvd_and_exact_agree_at_full_precision(fig1):
    exact = approx_ppr_embeddings(fig1, ApproxPPRConfig(k_prime=4,
                                                        svd="exact"))
    approx = approx_ppr_embeddings(fig1, ApproxPPRConfig(k_prime=4,
                                                         svd="bksvd",
                                                         seed=0))
    np.testing.assert_allclose(exact[0] @ exact[1].T,
                               approx[0] @ approx[1].T, atol=1e-6)


def test_increasing_ell1_improves_accuracy(fig1):
    from repro.ppr import ppr_matrix_dense
    pi = ppr_matrix_dense(fig1, 0.15) - 0.15 * np.eye(9)

    def max_err(ell1):
        cfg = ApproxPPRConfig(k_prime=9, ell1=ell1, svd="exact")
        x, y = approx_ppr_embeddings(fig1, cfg)
        e = np.abs(pi - x @ y.T)
        np.fill_diagonal(e, 0.0)
        return e.max()

    assert max_err(20) < max_err(3) - 1e-6


def test_example1_score_comparison(fig1):
    """Example 1's outcome: the factorized scores track the PPR values.

    The paper's printed rank-2 matrices depend on BKSVD's random basis
    (an exact rank-2 SVD concentrates on the dense v1..v5 cluster and
    misses the peripheral chain), so we assert the example's *numbers*
    at a rank where the factorization provably covers both regions:
    score(v2,v4) ~ pi(v2,v4) ~ 0.118, score(v9,v7) ~ pi(v9,v7) ~ 0.166,
    and vanilla PPR's counter-intuitive ordering between them.
    """
    cfg = ApproxPPRConfig(k_prime=6, alpha=0.15, ell1=20, svd="exact")
    x, y = approx_ppr_embeddings(fig1, cfg)
    score_24 = float(x[1] @ y[3])
    score_97 = float(x[8] @ y[6])
    assert score_24 == pytest.approx(0.119, abs=0.02)
    assert score_97 == pytest.approx(0.166, abs=0.02)
    assert score_97 > score_24            # vanilla PPR's counterintuitive order


def test_directed_graph_supported(tiny_directed):
    cfg = ApproxPPRConfig(k_prime=3, svd="exact")
    x, y = approx_ppr_embeddings(tiny_directed, cfg)
    assert x.shape == (6, 3) and y.shape == (6, 3)
    target = truncated_ppr_matrix(tiny_directed, cfg.alpha, cfg.ell1)
    err = np.abs(x @ y.T - target)
    np.fill_diagonal(err, 0.0)
    assert err.max() < 0.2


def test_rsvd_backend_runs(er_graph):
    cfg = ApproxPPRConfig(k_prime=8, svd="rsvd", seed=0)
    x, y = approx_ppr_embeddings(er_graph, cfg)
    assert np.all(np.isfinite(x)) and np.all(np.isfinite(y))


def test_config_validation():
    with pytest.raises(ParameterError):
        ApproxPPRConfig(k_prime=0).validate()
    with pytest.raises(ParameterError):
        ApproxPPRConfig(k_prime=2, alpha=1.5).validate()
    with pytest.raises(ParameterError):
        ApproxPPRConfig(k_prime=2, ell1=0).validate()
    with pytest.raises(ParameterError):
        ApproxPPRConfig(k_prime=2, svd="magic").validate()


def test_k_prime_larger_than_n_rejected(fig1):
    with pytest.raises(ParameterError):
        approx_ppr_embeddings(fig1, ApproxPPRConfig(k_prime=50, svd="exact"))
