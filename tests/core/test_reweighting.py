"""Tests for Algorithms 2/4: fast aggregate formulas vs the naive Eq. (7)
and Eq. (23) definitions, coordinate optimality, and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (backward_aggregates, forward_aggregates,
                        naive_backward_terms, naive_forward_terms,
                        reweighting_objective, update_backward_weights,
                        update_forward_weights)
from repro.core.reweighting import _solve
from repro.errors import DimensionError, ParameterError


def _fast_backward_terms(x, y, w_fwd, w_bwd, d_out, d_in, v):
    """Recompute the Eq. (9)/(10) fast terms for a single node (exact b1)."""
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    xy = np.einsum("ij,ij->i", x, y)
    yv, xv = y[v], x[v]
    lam_yv = agg.lam_mat @ yv
    a1 = float(agg.xi @ yv)
    proj = float(agg.chi @ yv) - w_fwd[v] * xy[v]
    a2 = d_in[v] * proj
    b2 = proj * proj
    a3 = (float(agg.rho1 @ lam_yv) - w_bwd[v] * float(yv @ lam_yv)
          - float(agg.rho2 @ yv) + w_bwd[v] * w_fwd[v] ** 2 * xy[v] ** 2)
    b1 = float(yv @ lam_yv) - w_fwd[v] ** 2 * xy[v] ** 2
    return a1, a2, a3, b1, b2


def _fast_forward_terms(x, y, w_fwd, w_bwd, d_out, d_in, u):
    agg = forward_aggregates(x, y, w_fwd, w_bwd, d_in)
    xy = np.einsum("ij,ij->i", x, y)
    xu, yu = x[u], y[u]
    lam_xu = agg.lam_mat @ xu
    a1 = float(agg.xi @ xu)
    proj = float(agg.chi @ xu) - w_bwd[u] * xy[u]
    a2 = d_out[u] * proj
    b2 = proj * proj
    a3 = (float(agg.rho1 @ lam_xu) - w_fwd[u] * float(xu @ lam_xu)
          - float(agg.rho2 @ xu) + w_fwd[u] * w_bwd[u] ** 2 * xy[u] ** 2)
    b1 = float(xu @ lam_xu) - w_bwd[u] ** 2 * xy[u] ** 2
    return a1, a2, a3, b1, b2


def test_fast_backward_terms_match_naive(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    for v in range(x.shape[0]):
        fast = _fast_backward_terms(x, y, w_fwd, w_bwd, d_out, d_in, v)
        naive = naive_backward_terms(x, y, w_fwd, w_bwd, d_out, d_in, v)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)


def test_fast_forward_terms_match_naive(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    for u in range(x.shape[0]):
        fast = _fast_forward_terms(x, y, w_fwd, w_bwd, d_out, d_in, u)
        naive = naive_forward_terms(x, y, w_fwd, w_bwd, d_out, d_in, u)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-9)


def test_b1_amgm_sandwich(random_embeddings):
    """Eq. (12): mid <= k' * mid bounds the Eq. (14) approximation."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    k_prime = x.shape[1]
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    for v in range(x.shape[0]):
        yv, xv = y[v], x[v]
        mid = float((yv * yv) @ agg.phi) \
            - w_fwd[v] ** 2 * float(((yv * xv) ** 2).sum())
        approx = 0.5 * k_prime * mid
        # the approximation lies inside [mid/ (k'/... ), k' mid]: concretely
        # it is within the sandwich [mid, k' mid] for k' >= 2
        assert mid - 1e-12 <= approx <= k_prime * mid + 1e-12


def test_phi_is_diagonal_of_lambda(random_embeddings):
    """Fig. 3's structural identity: phi == diag(Lambda)."""
    x, y, w_fwd, w_bwd, d_out, _ = random_embeddings
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    np.testing.assert_allclose(agg.phi, np.diag(agg.lam_mat), rtol=1e-12)


def _corrected_backward_minimizer(x, y, w_fwd, w_bwd, d_out, d_in, v, lam):
    """The true coordinate minimizer of Eq. (6) w.r.t. w_bwd[v].

    The paper's a1/a3 (Eq. 7) sum over *all* u including u = v, whose
    objective term does not actually contain w_bwd[v]; this helper
    excludes those self terms, yielding the exact minimizer. The
    discrepancy vanishes when out-strengths match out-degrees, which is
    why the paper's faithful update still descends (tested separately).
    """
    n = x.shape[0]
    s = x @ y[v]
    ws = w_fwd * s
    a2 = d_in[v] * (ws.sum() - ws[v])
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    a1 = a3 = 0.0
    for u in range(n):
        if u == v:
            continue
        t_excl = g[u].sum() - g[u, u] - g[u, v]
        a1 += d_out[u] * ws[u]
        a3 += t_excl * ws[u]
    b1 = float((ws * ws).sum() - ws[v] * ws[v])
    b2 = float((ws.sum() - ws[v]) ** 2)
    return (a1 + a2 - a3) / (b1 + b2 + lam)


def test_corrected_coordinate_update_is_exact_minimizer(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    lam = 0.5
    v = 7
    best = _corrected_backward_minimizer(x, y, w_fwd, w_bwd, d_out, d_in,
                                         v, lam)

    def objective_at(wv):
        trial = w_bwd.copy()
        trial[v] = wv
        return reweighting_objective(x, y, w_fwd, trial, d_out, d_in, lam)

    center = objective_at(best)
    for delta in (-0.05, 0.05, -0.5, 0.5):
        assert objective_at(best + delta) >= center - 1e-9


def test_paper_update_close_to_exact_minimizer(random_embeddings):
    """The Eq. (8) update differs from the exact coordinate minimizer only
    by the u = v self terms — quantified here to stay small relative to
    the weight scale."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    lam = 0.5
    for v in (0, 7, 13):
        a1, a2, a3, b1, b2 = naive_backward_terms(x, y, w_fwd, w_bwd,
                                                  d_out, d_in, v)
        paper = (a1 + a2 - a3) / (b1 + b2 + lam)
        exact = _corrected_backward_minimizer(x, y, w_fwd, w_bwd,
                                              d_out, d_in, v, lam)
        assert abs(paper - exact) < 0.5 * (1.0 + abs(exact))


def test_sequential_sweep_decreases_objective(random_embeddings):
    """Gauss-Seidel epochs with exact b1 never increase Eq. (6)."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    lam = 0.2
    before = reweighting_objective(x, y, w_fwd, w_bwd, d_out, d_in, lam)
    bw = update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, lam,
                                 exact_b1=True, seed=0)
    mid = reweighting_objective(x, y, w_fwd, bw, d_out, d_in, lam)
    fw = update_forward_weights(x, y, w_fwd, bw, d_out, d_in, lam,
                                exact_b1=True, seed=0)
    after = reweighting_objective(x, y, fw, bw, d_out, d_in, lam)
    assert mid <= before + 1e-9
    assert after <= mid + 1e-9


def test_weights_respect_floor(random_embeddings):
    """Constraint of Eq. (6): every weight >= 1/n."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    n = x.shape[0]
    for mode in ("sequential", "jacobi"):
        bw = update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.1,
                                     mode=mode, seed=1)
        fw = update_forward_weights(x, y, w_fwd, bw, d_out, d_in, 0.1,
                                    mode=mode, seed=1)
        assert np.all(bw >= 1.0 / n - 1e-15)
        assert np.all(fw >= 1.0 / n - 1e-15)


def test_incremental_rho_matches_recompute(random_embeddings):
    """Eq. (11): after a sequential sweep, rho recomputed from scratch on
    the final weights equals what a fresh aggregate computation gives."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    bw_new = update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.3,
                                     seed=2)
    # rerun manually with incremental updates and compare final rho values
    agg = backward_aggregates(x, y, w_fwd, bw_new, d_out)
    expect_rho1 = bw_new @ y
    np.testing.assert_allclose(agg.rho1, expect_rho1, rtol=1e-10)


def test_jacobi_and_sequential_agree_for_single_node():
    """With n = 1 the two update modes coincide."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 4))
    y = rng.standard_normal((1, 4))
    w = np.ones(1)
    d = np.array([3.0])
    seq = update_backward_weights(x, y, w, w, d, d, 0.1, mode="sequential",
                                  seed=0)
    jac = update_backward_weights(x, y, w, w, d, d, 0.1, mode="jacobi")
    np.testing.assert_allclose(seq, jac, rtol=1e-12)


def test_jacobi_matches_formula_elementwise(random_embeddings):
    """Jacobi updates equal the closed form computed per node from the
    *initial* weights (no sequential coupling)."""
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    lam = 0.4
    n = x.shape[0]
    jac = update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, lam,
                                  mode="jacobi", exact_b1=True)
    for v in range(n):
        a1, a2, a3, b1, b2 = naive_backward_terms(x, y, w_fwd, w_bwd,
                                                  d_out, d_in, v)
        expect = max(1.0 / n, (a1 + a2 - a3) / (b1 + b2 + lam))
        assert jac[v] == pytest.approx(expect, rel=1e-9)


def test_update_rejects_unknown_mode(random_embeddings):
    x, y, w_fwd, w_bwd, d_out, d_in = random_embeddings
    with pytest.raises(ParameterError):
        update_backward_weights(x, y, w_fwd, w_bwd, d_out, d_in, 0.1,
                                mode="chaotic")


def test_update_rejects_bad_shapes():
    x = np.ones((3, 2))
    y = np.ones((4, 2))
    w = np.ones(3)
    with pytest.raises(DimensionError):
        update_backward_weights(x, y, w, w, w, w, 0.1)


def test_solve_guards_zero_denominator():
    assert _solve(5.0, 0.0, 0.25) == 0.25
    assert _solve(-5.0, 1.0, 0.25) == 0.25
    assert _solve(5.0, 2.0, 0.25) == 2.5


@given(st.integers(2, 12), st.integers(1, 5),
       st.floats(0.0, 5.0), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_property_fast_equals_naive(n, k, lam, seed):
    """Randomized agreement between fast and naive term computation."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, k))
    y = rng.standard_normal((n, k))
    w_fwd = rng.uniform(0.1, 2.0, n)
    w_bwd = rng.uniform(0.1, 2.0, n)
    d_out = rng.integers(1, 8, n).astype(float)
    d_in = rng.integers(1, 8, n).astype(float)
    v = int(rng.integers(0, n))
    fast = _fast_backward_terms(x, y, w_fwd, w_bwd, d_out, d_in, v)
    naive = naive_backward_terms(x, y, w_fwd, w_bwd, d_out, d_in, v)
    np.testing.assert_allclose(fast, naive, rtol=1e-8, atol=1e-8)
