"""Parity suite: the chunked/parallel fit pipeline vs the seed path.

Three guarantees are pinned here, matching the engine's contract:

* the default configuration (``chunk_size=None, workers=1``) runs the
  original single-pass path **bit-for-bit**;
* the chunked engine is deterministic given ``seed`` regardless of
  ``workers`` — worker counts 1/2/4 produce bit-identical embeddings;
* the chunked trajectory tracks the seed path to ``<= 1e-8`` max abs
  diff (the sparse products are bit-identical; the reweighting fast
  path reassociates a handful of dot products, observed ``~1e-14``).
"""

import numpy as np
import pytest

from repro.core import (ApproxPPRConfig, ApproxPPREmbedder, NRP,
                        approx_ppr_embeddings)

PARITY_TOL = 1e-8


def _embeddings(model):
    return model.forward_, model.backward_


def _max_diff(a, b):
    return max(np.abs(a[0] - b[0]).max(), np.abs(a[1] - b[1]).max())


@pytest.fixture(scope="module")
def seed_models(small_undirected):
    return {mode: _embeddings(NRP(dim=16, seed=0, update_mode=mode,
                                  ell2=4).fit(small_undirected))
            for mode in ("sequential", "jacobi")}


@pytest.mark.parametrize("mode", ["sequential", "jacobi"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_chunked_fit_matches_seed_within_tolerance(small_undirected,
                                                   seed_models, mode,
                                                   workers):
    chunked = _embeddings(NRP(dim=16, seed=0, update_mode=mode, ell2=4,
                              chunk_size=32, workers=workers,
                              ).fit(small_undirected))
    assert _max_diff(chunked, seed_models[mode]) <= PARITY_TOL


@pytest.mark.parametrize("mode", ["sequential", "jacobi"])
def test_chunked_fit_bit_identical_across_worker_counts(small_undirected,
                                                        mode):
    runs = [_embeddings(NRP(dim=16, seed=0, update_mode=mode, ell2=3,
                            chunk_size=32, workers=w).fit(small_undirected))
            for w in (1, 2, 4)]
    for other in runs[1:]:
        assert np.array_equal(runs[0][0], other[0])
        assert np.array_equal(runs[0][1], other[1])


def test_default_config_is_bit_identical_to_seed_path(small_undirected,
                                                      seed_models):
    """workers=1, chunk_size=None is the original code path, exactly."""
    again = _embeddings(NRP(dim=16, seed=0, ell2=4).fit(small_undirected))
    assert np.array_equal(again[0], seed_models["sequential"][0])
    assert np.array_equal(again[1], seed_models["sequential"][1])


def test_chunked_jacobi_is_bit_identical_to_seed_jacobi(small_undirected,
                                                        seed_models):
    """Jacobi is row-parallel, so chunking does not even reassociate."""
    chunked = _embeddings(NRP(dim=16, seed=0, update_mode="jacobi", ell2=4,
                              chunk_size=32, workers=2).fit(small_undirected))
    assert np.array_equal(chunked[0], seed_models["jacobi"][0])
    assert np.array_equal(chunked[1], seed_models["jacobi"][1])


@pytest.mark.parametrize("chunk_size", [7, 32, 1000])
def test_parity_holds_across_chunk_grids(small_undirected, seed_models,
                                         chunk_size):
    chunked = _embeddings(NRP(dim=16, seed=0, ell2=4, chunk_size=chunk_size,
                              ).fit(small_undirected))
    assert _max_diff(chunked, seed_models["sequential"]) <= PARITY_TOL


def test_parity_on_directed_graph_with_dangling_nodes():
    from repro.graph import from_edges
    rng = np.random.default_rng(5)
    n = 90
    src = rng.integers(0, n - 5, 400)        # last 5 nodes are dangling
    dst = rng.integers(0, n, 400)
    g = from_edges(n, src, dst, directed=True)
    assert np.any(g.out_degrees == 0)
    seed = _embeddings(NRP(dim=12, seed=3, ell2=3).fit(g))
    for workers in (1, 2):
        chunked = _embeddings(NRP(dim=12, seed=3, ell2=3, chunk_size=16,
                                  workers=workers).fit(g))
        assert _max_diff(chunked, seed) <= PARITY_TOL


def test_chunked_approx_ppr_stage_is_bit_identical(small_undirected):
    """The sparse-product stages never reassociate: exact equality."""
    base = approx_ppr_embeddings(small_undirected,
                                 ApproxPPRConfig(k_prime=8, seed=0))
    for chunk_size, workers in ((16, 1), (50, 2), (None, 4)):
        x, y = approx_ppr_embeddings(
            small_undirected,
            ApproxPPRConfig(k_prime=8, seed=0, chunk_size=chunk_size,
                            workers=workers))
        assert np.array_equal(x, base[0])
        assert np.array_equal(y, base[1])


def test_chunked_approx_ppr_embedder_matches_seed(small_directed):
    base = ApproxPPREmbedder(dim=16, seed=1).fit(small_directed)
    chunked = ApproxPPREmbedder(dim=16, seed=1, chunk_size=33,
                                workers=2).fit(small_directed)
    assert np.array_equal(chunked.forward_, base.forward_)
    assert np.array_equal(chunked.backward_, base.backward_)


def test_chunked_rsvd_backend_matches_seed(small_undirected):
    base = _embeddings(NRP(dim=16, seed=0, svd="rsvd", ell2=2,
                           ).fit(small_undirected))
    chunked = _embeddings(NRP(dim=16, seed=0, svd="rsvd", ell2=2,
                              chunk_size=40, workers=2).fit(small_undirected))
    assert _max_diff(chunked, base) <= PARITY_TOL


def test_learned_weights_track_seed(small_undirected):
    seed_model = NRP(dim=16, seed=0, ell2=4).fit(small_undirected)
    chunked_model = NRP(dim=16, seed=0, ell2=4, chunk_size=32,
                        workers=2).fit(small_undirected)
    assert np.abs(seed_model.w_fwd_ - chunked_model.w_fwd_).max() <= PARITY_TOL
    assert np.abs(seed_model.w_bwd_ - chunked_model.w_bwd_).max() <= PARITY_TOL
