"""Tests for the repro-serve command line interface."""

import json

import numpy as np
import pytest

from repro import NRP
from repro.io import save_embeddings
from repro.serving.cli import main


@pytest.fixture(scope="module")
def bundle_path(small_undirected, tmp_path_factory):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    path = tmp_path_factory.mktemp("cli") / "nrp.npz"
    save_embeddings(model, path, metadata={"dataset": "unit"})
    return path, model


def test_export_info_query_round_trip(bundle_path, tmp_path, capsys):
    path, model = bundle_path
    store_dir = tmp_path / "store"

    assert main(["export", str(path), str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "NRP" in out and str(model.forward_.shape[0]) in out

    assert main(["info", str(store_dir)]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["directional"] is True
    assert info["num_nodes"] == model.forward_.shape[0]
    assert info["metadata"]["dataset"] == "unit"

    assert main(["query", str(store_dir), "--nodes", "0,7", "-k", "5"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    for line, node in zip(lines, (0, 7)):
        row = json.loads(line)
        assert row["node"] == node
        ref = np.argsort(-model.score_all_from(node), kind="stable")[:5]
        assert row["neighbors"] == [int(v) for v in ref]
        assert len(row["scores"]) == 5


def test_sharded_export_shard_info_query(bundle_path, tmp_path, capsys):
    path, model = bundle_path
    n = model.forward_.shape[0]

    assert main(["export", str(path), str(tmp_path / "sh"),
                 "--shards", "3"]) == 0
    assert "3 shards" in capsys.readouterr().out

    assert main(["info", str(tmp_path / "sh")]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["num_shards"] == 3
    assert info["shard_ranges"][0][0] == 0
    assert info["shard_ranges"][-1][1] == n

    # sharded query bit-matches the flat CLI ranking
    assert main(["query", str(tmp_path / "sh"), "--nodes", "0,7",
                 "-k", "5", "--workers", "2"]) == 0
    for line, node in zip(capsys.readouterr().out.strip().splitlines(),
                          (0, 7)):
        row = json.loads(line)
        ref = np.argsort(-model.score_all_from(node), kind="stable")[:5]
        assert row["neighbors"] == [int(v) for v in ref]

    # re-shard an existing store with the shard subcommand
    assert main(["export", str(path), str(tmp_path / "flat")]) == 0
    capsys.readouterr()
    assert main(["shard", str(tmp_path / "flat"), str(tmp_path / "re"),
                 "--shards", "5"]) == 0
    assert "5 shards" in capsys.readouterr().out
    assert main(["info", str(tmp_path / "re")]) == 0
    assert json.loads(capsys.readouterr().out)["num_shards"] == 5


def test_workers_flag_requires_sharded_store(bundle_path, tmp_path,
                                             capsys):
    path, _ = bundle_path
    assert main(["export", str(path), str(tmp_path / "flat")]) == 0
    capsys.readouterr()
    assert main(["query", str(tmp_path / "flat"), "--nodes", "0",
                 "--workers", "2"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_query_ivf_backend(bundle_path, tmp_path, capsys):
    path, _ = bundle_path
    store_dir = tmp_path / "store"
    main(["export", str(path), str(store_dir)])
    capsys.readouterr()
    rc = main(["query", str(store_dir), "--nodes", "3", "-k", "4",
               "--index", "ivf", "--num-lists", "8", "--nprobe", "8"])
    assert rc == 0
    row = json.loads(capsys.readouterr().out)
    assert len(row["neighbors"]) == 4


def test_query_bad_nodes_arg(bundle_path, tmp_path, capsys):
    path, _ = bundle_path
    store_dir = tmp_path / "store"
    main(["export", str(path), str(store_dir)])
    capsys.readouterr()
    assert main(["query", str(store_dir), "--nodes", "a,b"]) == 2
    assert "error" in capsys.readouterr().err


def test_ivf_flags_require_ivf_index(bundle_path, tmp_path, capsys):
    path, _ = bundle_path
    store_dir = tmp_path / "store"
    main(["export", str(path), str(store_dir)])
    capsys.readouterr()
    rc = main(["query", str(store_dir), "--nodes", "0", "--nprobe", "8"])
    assert rc == 2
    assert "--nprobe requires --index ivf" in capsys.readouterr().err


def test_missing_store_is_an_error(tmp_path, capsys):
    assert main(["info", str(tmp_path / "ghost")]) == 2
    assert "error" in capsys.readouterr().err


def test_query_metrics_json_snapshot(bundle_path, tmp_path, capsys):
    from repro import obs
    path, _ = bundle_path
    store_dir = tmp_path / "store"
    assert main(["export", str(path), str(store_dir),
                 "--shards", "2"]) == 0
    snap_path = tmp_path / "query.json"
    try:
        # shared flags sit on the main parser, before the subcommand
        rc = main(["--metrics-json", str(snap_path),
                   "query", str(store_dir), "--nodes", "0,7", "-k", "5"])
    finally:
        obs.set_enabled(False)
        obs.reset()
    assert rc == 0
    capsys.readouterr()
    snap = json.loads(snap_path.read_text())
    counters = {c["name"] for c in snap["counters"]}
    assert "router_fanout_total" in counters
    hists = {h["name"] for h in snap["histograms"]}
    assert "serving_topk_seconds" in hists and "router_merge_seconds" in hists
