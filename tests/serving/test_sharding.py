"""Sharded store + scatter-gather router: parity, layout, faults.

Three layers of guarantees:

* **merge correctness** (property tests): for randomized ``(n, d, k,
  num_shards)`` — including ``k`` larger than every shard and more
  shards than nodes (empty shards) — the sharded engine's top-k ids
  bit-match the unsharded exact index, and the scores match to within
  a few ulp. (Not bit-for-bit by construction: BLAS selects different
  — equally correct — microkernels for different GEMM shapes, so a
  per-shard product can differ from the full product in the last bits;
  the seed's own blocked ``ExactIndex`` behaves identically across its
  block boundary.);
* **layout validation**: the shard map must tile the id space and
  agree with the directories on disk, else
  :class:`~repro.errors.ShardLayoutError`;
* **fault injection**: each way a store can rot on disk (truncated
  matrix, torn manifest, shard-count mismatch, stale ``CURRENT``)
  raises its typed :mod:`repro.errors` exception with an actionable
  message, never a raw ``ValueError``/``OSError``.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from harness import (drop_shard_dir, set_current_pointer, tear_json,
                     truncate_file)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NRP
from repro.errors import (ParameterError, ReproError, ShardLayoutError,
                          StalePointerError, StoreCorruptError, StoreError)
from repro.io import EmbeddingBundle
from repro.serving import (SHARDS_NAME, EmbeddingStore, QueryEngine,
                           ServingRegistry, ShardedEmbeddingStore,
                           ShardedQueryEngine, make_engine, open_current,
                           open_store, publish_version, shard_boundaries,
                           shard_store)


def assert_scores_match(actual, desired):
    """Scores equal up to BLAS kernel-shape wiggle (a few ulp).

    Different GEMM shapes select different accumulation orders, so the
    per-shard products can differ from the full product in the last
    bits; 1e-12 absolute / 1e-9 relative is ~1000x tighter than any
    ranking-relevant difference while robust to that wiggle.
    """
    np.testing.assert_allclose(np.asarray(actual), np.asarray(desired),
                               rtol=1e-9, atol=1e-12)


def _bundle(n, d, seed, directional=False):
    rng = np.random.default_rng(seed)
    if directional:
        return EmbeddingBundle(
            name="dir", directional=True,
            forward=rng.standard_normal((n, d)),
            backward=rng.standard_normal((n, d)))
    return EmbeddingBundle(name="flat", directional=False,
                           embedding=rng.standard_normal((n, d)))


# ----------------------------------------------------------------------
# shard boundaries
# ----------------------------------------------------------------------

@given(st.integers(0, 500), st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_shard_boundaries_tile_exactly(n, num_shards):
    bounds = shard_boundaries(n, num_shards)
    assert bounds[0] == 0 and bounds[-1] == n
    sizes = np.diff(bounds)
    assert len(sizes) == num_shards
    assert np.all(sizes >= 0)
    assert sizes.max() - sizes.min() <= 1 if n else True


def test_shard_boundaries_validation():
    with pytest.raises(ParameterError, match="num_shards"):
        shard_boundaries(10, 0)
    with pytest.raises(ParameterError, match="num_nodes"):
        shard_boundaries(-1, 2)


# ----------------------------------------------------------------------
# property tests: merge parity with the unsharded exact path
# ----------------------------------------------------------------------

@st.composite
def parity_cases(draw):
    n = draw(st.integers(3, 120))
    d = draw(st.integers(2, 12))
    # deliberately allow k > n (result narrows) and shards > n (empties)
    k = draw(st.integers(1, 2 * n))
    num_shards = draw(st.integers(1, min(3 * n, 24)))
    directional = draw(st.booleans())
    seed = draw(st.integers(0, 10_000))
    return n, d, k, num_shards, directional, seed


@given(parity_cases())
@settings(max_examples=40, deadline=None)
def test_sharded_topk_bitmatches_unsharded_exact(case):
    n, d, k, num_shards, directional, seed = case
    source = _bundle(n, d, seed, directional)
    flat = QueryEngine(source, cache_size=0)
    sharded = ShardedQueryEngine(source, shards=num_shards, cache_size=0,
                                 workers=2)
    rng = np.random.default_rng(seed + 1)
    nodes = rng.integers(0, n, size=min(n, 16))
    flat_ids, flat_scores = flat.topk(nodes, k)
    sh_ids, sh_scores = sharded.topk(nodes, k)
    np.testing.assert_array_equal(sh_ids, flat_ids)
    assert_scores_match(sh_scores, flat_scores)
    assert sh_ids.shape == (len(nodes), min(k, n))


@given(parity_cases())
@settings(max_examples=12, deadline=None)
def test_on_disk_sharded_store_bitmatches_unsharded(case):
    n, d, k, num_shards, directional, seed = case
    source = _bundle(n, d, seed, directional)
    with tempfile.TemporaryDirectory() as tmp:
        store = shard_store(source, Path(tmp) / "s",
                            num_shards=num_shards)
        flat = QueryEngine(source, cache_size=0)
        engine = store.to_serving(cache_size=0)
        assert isinstance(engine, ShardedQueryEngine)
        nodes = np.arange(0, n, max(1, n // 7))
        flat_ids, flat_scores = flat.topk(nodes, k)
        sh_ids, sh_scores = engine.topk(nodes, k)
        np.testing.assert_array_equal(sh_ids, flat_ids)
        assert_scores_match(sh_scores, flat_scores)
        # pair scores go through the virtual gather path and ARE
        # bit-identical (same einsum over the same gathered rows)
        src = np.arange(min(n, 5))
        dst = np.arange(min(n, 5))[::-1].copy()
        np.testing.assert_array_equal(engine.score(src, dst),
                                      flat.score(src, dst))


def test_k_larger_than_every_shard(tmp_path):
    source = _bundle(60, 6, seed=3)
    store = shard_store(source, tmp_path / "s", num_shards=10)  # 6/shard
    flat = QueryEngine(source, cache_size=0)
    engine = store.to_serving(cache_size=0)
    ids, scores = engine.topk([0, 30, 59], k=25)      # k >> shard size
    ref_ids, ref_scores = flat.topk([0, 30, 59], k=25)
    np.testing.assert_array_equal(ids, ref_ids)
    assert_scores_match(scores, ref_scores)


def test_more_shards_than_nodes_roundtrip(tmp_path):
    source = _bundle(5, 4, seed=9)
    store = shard_store(source, tmp_path / "s", num_shards=9)
    assert store.num_shards == 9
    assert sum(s is None for s in store.shards) == 4     # empty shards
    engine = store.to_serving(cache_size=0)
    ids, _ = engine.topk(2, k=5)
    ref, _ = QueryEngine(source, cache_size=0).topk(2, k=5)
    np.testing.assert_array_equal(ids, ref)


# ----------------------------------------------------------------------
# store mechanics
# ----------------------------------------------------------------------

def test_shard_store_from_fitted_model_and_reshard(small_undirected,
                                                   tmp_path):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    store = shard_store(model, tmp_path / "s3", num_shards=3)
    assert store.directional and store.dim == 16
    # per-node extras (reweighting vectors) ride along, sliced per shard
    w = np.concatenate([np.asarray(s.metadata["w_fwd"])
                        for s in store.shards])
    np.testing.assert_array_equal(w, model.w_fwd_)
    # the sharded store re-exposes the stitched extras itself
    np.testing.assert_array_equal(np.asarray(store.metadata["w_fwd"]),
                                  model.w_fwd_)
    # shard an existing flat store via the method
    flat = model.export_store(tmp_path / "flat")
    sharded = flat.shard(tmp_path / "s4", 4)
    assert sharded.num_shards == 4
    # reshard a sharded store: matrices AND extras survive
    re2 = shard_store(sharded, tmp_path / "s2", num_shards=2)
    np.testing.assert_array_equal(np.asarray(re2.forward_),
                                  model.forward_)
    np.testing.assert_array_equal(np.asarray(re2.metadata["w_fwd"]),
                                  model.w_fwd_)
    assert store.shard_of(0) == 0
    assert store.shard_of(store.num_nodes - 1) == store.num_shards - 1
    with pytest.raises(ParameterError, match="out of range"):
        store.shard_of(store.num_nodes)


def test_reshard_onto_same_root_with_fewer_shards(tmp_path):
    """Regression: stale shard dirs from a previous export must go.

    Re-running ``repro-serve shard`` (or shard_store) onto the same
    target with a smaller shard count used to commit a map naming 2
    directories while 3 remained on disk — making the root fail its own
    layout validation forever after.
    """
    source = _bundle(48, 5, seed=4)
    shard_store(source, tmp_path / "s", num_shards=3)
    store = shard_store(source, tmp_path / "s", num_shards=2)
    assert store.num_shards == 2
    reopened = ShardedEmbeddingStore.open(tmp_path / "s")
    np.testing.assert_array_equal(np.asarray(reopened.embedding_),
                                  source.embedding_)


def test_sharded_publish_keeps_structured_metadata(tmp_path):
    # list/dict metadata survives the sharded path like the flat one
    store = publish_version(tmp_path / "root", _bundle(20, 4, seed=6),
                            metadata={"tags": ["a", "b"],
                                      "params": {"lam": 10}},
                            shards=2)
    reopened = open_current(tmp_path / "root")
    assert reopened.metadata["tags"] == ["a", "b"]
    assert reopened.metadata["params"] == {"lam": 10}


def test_publish_version_shards_one_and_invalid(tmp_path):
    # shards=1 publishes a real (one-shard) sharded root, like every
    # other shards entry point; invalid counts raise instead of
    # silently degrading to a flat store
    store = publish_version(tmp_path / "root", _bundle(20, 4, seed=6),
                            shards=1)
    assert isinstance(store, ShardedEmbeddingStore)
    assert store.num_shards == 1
    assert isinstance(open_current(tmp_path / "root"),
                      ShardedEmbeddingStore)
    with pytest.raises(ParameterError, match="num_shards"):
        publish_version(tmp_path / "root", _bundle(20, 4, seed=6),
                        shards=0)


def test_open_store_dispatches_by_manifest(tmp_path, small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    model.export_store(tmp_path / "flat")
    shard_store(model, tmp_path / "sh", num_shards=2)
    assert isinstance(open_store(tmp_path / "flat"), EmbeddingStore)
    assert isinstance(open_store(tmp_path / "sh"), ShardedEmbeddingStore)
    with pytest.raises(StoreError, match="missing"):
        open_store(tmp_path / "nope")


def test_sharded_matrix_access_patterns(tmp_path):
    source = _bundle(40, 5, seed=2)
    store = shard_store(source, tmp_path / "s", num_shards=3)
    virt = store.embedding_
    assert virt.shape == (40, 5)
    np.testing.assert_array_equal(virt[7], source.embedding_[7])
    np.testing.assert_array_equal(virt[[39, 0, 13]],
                                  source.embedding_[[39, 0, 13]])
    np.testing.assert_array_equal(virt[5:20], source.embedding_[5:20])
    vec = np.arange(5, dtype=float)
    np.testing.assert_allclose(virt @ vec, source.embedding_ @ vec)
    np.testing.assert_array_equal(np.asarray(virt), source.embedding_)
    with pytest.raises(ParameterError, match="out of range"):
        virt[[40]]


def test_registry_and_make_engine_flavors(tmp_path):
    source = _bundle(30, 4, seed=5)
    store = shard_store(source, tmp_path / "s", num_shards=2)
    reg = ServingRegistry()
    engine = reg.register("sharded", store, cache_size=0)
    assert isinstance(engine, ShardedQueryEngine)
    flat = reg.register("flat", source, cache_size=0)
    assert type(flat) is QueryEngine
    swapped = reg.swap("flat", source, shards=2, cache_size=0)
    assert isinstance(swapped, ShardedQueryEngine)

    assert isinstance(make_engine(source, shards=1), ShardedQueryEngine)
    with pytest.raises(ParameterError, match="sharded"):
        make_engine(store, engine="flat")
    with pytest.raises(ParameterError, match="shards"):
        make_engine(source, engine="flat", shards=2)
    with pytest.raises(ParameterError, match="workers"):
        make_engine(source, engine="flat", workers=2)
    with pytest.raises(ParameterError, match="unknown engine"):
        make_engine(source, engine="hybrid")
    with pytest.raises(ParameterError, match="shards=N is required"):
        make_engine(source, engine="sharded")
    with pytest.raises(ParameterError, match="cannot re-shard"):
        make_engine(store, shards=5)


def test_to_serving_shards_param(small_undirected):
    model = NRP(dim=16, svd="exact", seed=0).fit(small_undirected)
    engine = model.to_serving(shards=4, workers=1, cache_size=0)
    assert isinstance(engine, ShardedQueryEngine)
    assert engine.num_shards == 4
    ids, scores = engine.topk(11, k=8)
    flat_ids, flat_scores = model.to_serving(cache_size=0).topk(11, k=8)
    np.testing.assert_array_equal(ids, flat_ids)
    assert_scores_match(scores, flat_scores)


def test_sharded_ivf_runs_and_is_plausible(tmp_path):
    source = _bundle(300, 8, seed=11)
    store = shard_store(source, tmp_path / "s", num_shards=3)
    engine = store.to_serving(index="ivf", cache_size=0, num_lists=8,
                              nprobe=8)   # probe all lists: exact
    ids, scores = engine.topk([1, 100, 299], k=5)
    ref_ids, _ = QueryEngine(source, cache_size=0).topk([1, 100, 299], k=5)
    np.testing.assert_array_equal(ids, ref_ids)


# ----------------------------------------------------------------------
# fault injection -> typed errors
# ----------------------------------------------------------------------

def test_truncated_shard_matrix_is_typed(tmp_path):
    store = shard_store(_bundle(50, 6, seed=0), tmp_path / "s",
                        num_shards=2)
    truncate_file(store.shards[1].root / "embedding.npy")
    with pytest.raises(StoreCorruptError, match="truncated|re-export"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_truncated_flat_matrix_is_typed(tmp_path):
    store = shard_store(_bundle(50, 6, seed=0), tmp_path / "s",
                        num_shards=2)
    # the same fault against the flat open path directly
    truncate_file(store.shards[0].root / "embedding.npy")
    with pytest.raises(StoreCorruptError, match="truncated|re-export"):
        EmbeddingStore.open(store.shards[0].root)


def test_missing_shard_dir_is_layout_error(tmp_path):
    shard_store(_bundle(50, 6, seed=0), tmp_path / "s", num_shards=3)
    drop_shard_dir(tmp_path / "s", 1)
    with pytest.raises(ShardLayoutError, match="exist on disk"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_extra_shard_dir_is_layout_error(tmp_path):
    store = shard_store(_bundle(50, 6, seed=0), tmp_path / "s",
                        num_shards=2)
    import shutil
    shutil.copytree(store.shards[0].root, tmp_path / "s" / "shard-00009")
    with pytest.raises(ShardLayoutError, match="exist on disk"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_shard_count_mismatch_in_map_is_layout_error(tmp_path):
    shard_store(_bundle(50, 6, seed=0), tmp_path / "s", num_shards=2)
    map_path = tmp_path / "s" / SHARDS_NAME
    manifest = json.loads(map_path.read_text())
    manifest["num_shards"] = 5
    map_path.write_text(json.dumps(manifest))
    with pytest.raises(ShardLayoutError, match="num_shards=5"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_broken_range_tiling_is_layout_error(tmp_path):
    shard_store(_bundle(50, 6, seed=0), tmp_path / "s", num_shards=2)
    map_path = tmp_path / "s" / SHARDS_NAME
    manifest = json.loads(map_path.read_text())
    manifest["shards"][1]["start"] += 1          # gap between shards
    map_path.write_text(json.dumps(manifest))
    with pytest.raises(ShardLayoutError, match="tile"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_stale_shard_range_is_layout_error(tmp_path):
    shard_store(_bundle(50, 6, seed=0), tmp_path / "s", num_shards=2)
    map_path = tmp_path / "s" / SHARDS_NAME
    manifest = json.loads(map_path.read_text())
    for entry in manifest["shards"]:             # shift the split point
        entry["start"] = 0 if entry["start"] == 0 else 20
        entry["stop"] = 20 if entry["stop"] == 25 else 50
    map_path.write_text(json.dumps(manifest))
    with pytest.raises(ShardLayoutError, match="stale"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_torn_shard_map_is_typed(tmp_path):
    shard_store(_bundle(50, 6, seed=0), tmp_path / "s", num_shards=2)
    tear_json(tmp_path / "s" / SHARDS_NAME)
    with pytest.raises(StoreCorruptError, match="corrupt shard map"):
        ShardedEmbeddingStore.open(tmp_path / "s")


def test_stale_current_pointer_is_typed(tmp_path):
    publish_version(tmp_path / "root", _bundle(30, 4, seed=1), shards=2)
    set_current_pointer(tmp_path / "root", "v000042")
    with pytest.raises(StalePointerError, match="v000042"):
        open_current(tmp_path / "root")


def test_fault_errors_are_repro_errors():
    # callers catching the base class keep working across the new types
    for exc_type in (StoreError, StoreCorruptError, ShardLayoutError,
                     StalePointerError):
        assert issubclass(exc_type, ReproError)


def test_versioned_sharded_roundtrip(tmp_path):
    root = tmp_path / "root"
    publish_version(root, _bundle(30, 4, seed=1), shards=2)
    publish_version(root, _bundle(30, 4, seed=2))            # flat v2
    store = publish_version(root, _bundle(30, 4, seed=3), shards=3)
    assert isinstance(store, ShardedEmbeddingStore)
    current = open_current(root)
    assert isinstance(current, ShardedEmbeddingStore)
    assert current.version == 3 and current.num_shards == 3
