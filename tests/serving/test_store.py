"""Tests for the mmap embedding store."""

import json

import numpy as np
import pytest

from repro import NRP
from repro.baselines import make_embedder
from repro.errors import ReproError
from repro.io import export_store, load_embeddings, load_store, save_embeddings
from repro.serving import MANIFEST_NAME, EmbeddingStore


@pytest.fixture(scope="module")
def nrp_model(small_undirected):
    return NRP(dim=16, svd="exact", seed=0).fit(small_undirected)


def test_export_and_open_directional(tmp_path, nrp_model):
    store = export_store(nrp_model, tmp_path / "store",
                         metadata={"dataset": "unit"})
    assert store.mmapped
    assert store.directional
    assert store.num_nodes == nrp_model.forward_.shape[0]
    assert store.dim == 16
    assert store.metadata["dataset"] == "unit"
    np.testing.assert_array_equal(np.asarray(store.forward_),
                                  nrp_model.forward_)
    np.testing.assert_array_equal(np.asarray(store.backward_),
                                  nrp_model.backward_)
    # the NRP reweighting vectors ride along as extras
    np.testing.assert_array_equal(np.asarray(store.metadata["w_fwd"]),
                                  nrp_model.w_fwd_)


def test_store_scores_like_model(tmp_path, nrp_model):
    store = export_store(nrp_model, tmp_path / "store")
    src, dst = np.array([0, 5]), np.array([3, 9])
    np.testing.assert_allclose(store.score_pairs(src, dst),
                               nrp_model.score_pairs(src, dst))
    np.testing.assert_allclose(store.score_all_from(4),
                               nrp_model.score_all_from(4))
    engine = store.to_serving()
    ids, _ = engine.topk(4, k=6)
    ref = np.argsort(-nrp_model.score_all_from(4), kind="stable")[:6]
    np.testing.assert_array_equal(ids, ref)


def test_export_from_saved_bundle(tmp_path, nrp_model):
    npz = tmp_path / "bundle.npz"
    save_embeddings(nrp_model, npz, metadata={"run": "r1"})
    bundle = load_embeddings(npz)
    store = export_store(bundle, tmp_path / "store")
    assert store.metadata["run"] == "r1"
    np.testing.assert_array_equal(np.asarray(store.forward_),
                                  nrp_model.forward_)


def test_single_vector_store(tmp_path, small_undirected):
    model = make_embedder("randne", 16, seed=0).fit(small_undirected)
    store = export_store(model, tmp_path / "store")
    assert not store.directional
    assert store.forward_ is None
    np.testing.assert_array_equal(np.asarray(store.embedding_),
                                  model.embedding_)


def test_store_preserves_lp_scoring(tmp_path, small_undirected):
    model = make_embedder("spectral", 16, seed=0).fit(small_undirected)
    store = export_store(model, tmp_path / "store")
    assert store.lp_scoring == "edge_features"
    # and survives a bundle -> store hop too
    save_embeddings(model, tmp_path / "b.npz")
    via_bundle = export_store(load_embeddings(tmp_path / "b.npz"),
                              tmp_path / "store2")
    assert via_bundle.lp_scoring == "edge_features"


def test_ivf_over_mmap_store_does_not_copy_database(tmp_path, nrp_model):
    store = export_store(nrp_model, tmp_path / "store")
    engine = store.to_serving(index="ivf", seed=0)
    assert engine.index._vecs is None          # gathers from the mmap
    heap_engine = nrp_model.to_serving(index="ivf", seed=0)
    assert heap_engine.index._vecs is not None  # in-heap default copies
    np.testing.assert_array_equal(engine.topk(3, k=5)[0],
                                  heap_engine.topk(3, k=5)[0])


def test_load_store_without_mmap(tmp_path, nrp_model):
    export_store(nrp_model, tmp_path / "store")
    store = load_store(tmp_path / "store", mmap=False)
    assert not store.mmapped
    np.testing.assert_array_equal(store.forward_, nrp_model.forward_)


def test_open_errors(tmp_path, nrp_model):
    with pytest.raises(ReproError, match="missing"):
        EmbeddingStore.open(tmp_path / "nope")
    root = tmp_path / "store"
    export_store(nrp_model, root)

    (root / "backward.npy").unlink()
    with pytest.raises(ReproError, match="backward"):
        EmbeddingStore.open(root)

    (root / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
    with pytest.raises(ReproError, match="corrupt"):
        EmbeddingStore.open(root)


def test_open_rejects_manifest_matrix_disagreement(tmp_path, nrp_model):
    root = tmp_path / "store"
    export_store(nrp_model, root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    manifest["num_nodes"] = 7
    (root / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ReproError, match="disagrees"):
        EmbeddingStore.open(root)


def test_open_rejects_unknown_format(tmp_path, nrp_model):
    root = tmp_path / "store"
    export_store(nrp_model, root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    manifest["format"] = 99
    (root / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ReproError, match="format"):
        EmbeddingStore.open(root)


def test_reexport_store_onto_itself(tmp_path, nrp_model):
    """In-place re-export (e.g. to refresh metadata) must not corrupt."""
    root = tmp_path / "store"
    export_store(nrp_model, root, metadata={"v": 1})
    store = EmbeddingStore.open(root)
    updated = export_store(store, root, metadata={"v": 2})
    assert updated.metadata["v"] == 2
    np.testing.assert_array_equal(np.asarray(updated.forward_),
                                  nrp_model.forward_)
    np.testing.assert_array_equal(np.asarray(updated.backward_),
                                  nrp_model.backward_)


def test_export_unfitted_raises(tmp_path):
    with pytest.raises(ReproError):
        export_store(NRP(dim=8), tmp_path / "store")


# ---------------------------------------------------------------- versions
def test_export_store_version_stamp(tmp_path, nrp_model):
    from repro.serving import export_store as serving_export
    store = serving_export(nrp_model, tmp_path / "s", version=7)
    assert store.version == 7
    plain = serving_export(nrp_model, tmp_path / "p")
    assert plain.version is None
    from repro.errors import ParameterError
    with pytest.raises(ParameterError, match="version"):
        serving_export(nrp_model, tmp_path / "bad", version=0)


def test_publish_version_sequence_and_pointer(tmp_path, nrp_model):
    from repro.serving import (CURRENT_NAME, list_versions, open_current,
                               publish_version)
    root = tmp_path / "root"
    assert list_versions(root) == []
    first = publish_version(root, nrp_model)
    assert first.version == 1 and first.root == root / "v000001"
    second = publish_version(root, nrp_model, metadata={"gen": 2})
    assert list_versions(root) == [1, 2]
    assert (root / CURRENT_NAME).read_text().strip() == "v000002"
    current = open_current(root)
    assert current.version == 2 and current.metadata["gen"] == 2
    # older versions remain intact and openable (immutable segments)
    assert EmbeddingStore.open(root / "v000001").version == 1


def test_publish_version_keep_prunes(tmp_path, nrp_model):
    from repro.serving import list_versions, open_current, publish_version
    root = tmp_path / "root"
    for _ in range(4):
        publish_version(root, nrp_model, keep=2)
    assert list_versions(root) == [3, 4]
    assert open_current(root).version == 4
    from repro.errors import ParameterError
    with pytest.raises(ParameterError, match="keep"):
        publish_version(root, nrp_model, keep=0)


def test_open_current_requires_pointer(tmp_path, nrp_model):
    from repro.serving import open_current
    with pytest.raises(ReproError, match="CURRENT"):
        open_current(tmp_path / "nowhere")
    # a corrupt pointer is rejected rather than path-traversed
    root = tmp_path / "root"
    root.mkdir()
    (root / "CURRENT").write_text("../evil\n")
    with pytest.raises(ReproError, match="corrupt"):
        open_current(root)
