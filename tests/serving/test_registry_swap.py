"""Thread-safety of the serving registry under hot swaps.

The satellite contract: hot-swapping a model mid-query-stream never
raises and never serves a torn store — every answer a query thread gets
is internally consistent with exactly one registered model generation.
Generations are made distinguishable by construction: generation ``g``
embeds node ``v`` as a one-hot-ish vector scaled by ``g + 1``, so any
mixing of generations inside one answer is detectable from the scores.

The ``test_scheduled_*`` cases below use the stress harness's
:class:`BarrierSchedule` to make the races *deterministic*: readers and
the writer rendezvous around every swap / publish, so each flip is
guaranteed to land between two specific queries instead of wherever the
scheduler happens to put it. The free-running soak versions live in
``tests/stress/test_stress_serving.py`` (slow job).
"""

import threading

import numpy as np
import pytest
from harness import BarrierSchedule, generation_embedding, run_storm

from repro.errors import ReproError
from repro.io import EmbeddingBundle
from repro.serving import (QueryEngine, ServingRegistry, open_current,
                           publish_version)


def _generation_bundle(generation: int, n: int = 64, dim: int = 8):
    rng = np.random.default_rng(7)          # same geometry every gen
    base = rng.standard_normal((n, dim))
    z = (generation + 1.0) * base
    return EmbeddingBundle(name=f"gen{generation}", directional=False,
                           embedding=z)


def test_swap_requires_registered_name():
    reg = ServingRegistry()
    with pytest.raises(ReproError, match="register"):
        reg.swap("live", _generation_bundle(0))
    reg.register("live", _generation_bundle(0))
    engine = reg.swap("live", _generation_bundle(1))
    assert reg.get("live") is engine
    assert isinstance(engine, QueryEngine)


def test_swap_passes_engine_through():
    reg = ServingRegistry()
    reg.register("live", _generation_bundle(0))
    prebuilt = QueryEngine(_generation_bundle(1))
    assert reg.swap("live", prebuilt) is prebuilt


def test_hot_swap_mid_query_stream_is_never_torn():
    """Readers hammer topk/score while a writer swaps generations."""
    n, k = 64, 5
    generations = 30
    reg = ServingRegistry()
    reg.register("live", _generation_bundle(0))
    probe = np.arange(8)
    base_engine = QueryEngine(_generation_bundle(0), cache_size=0)
    _, base_scores = base_engine.topk(probe, k)

    errors: list[BaseException] = []
    stop = threading.Event()

    def reader():
        rng = np.random.default_rng()
        try:
            while not stop.is_set():
                ids, scores = reg.topk("live", probe, k)
                assert ids.shape == (len(probe), k)
                # scores of one answer must all come from ONE generation:
                # score(gen g) = (g+1)^2 * score(gen 0), so the implied
                # generation per row must agree across the whole batch.
                ratio = scores / base_scores
                implied = np.sqrt(np.abs(ratio))
                spread = implied.max() - implied.min()
                assert spread < 1e-6, f"torn answer: {implied}"
                src = rng.integers(0, n, 4)
                dst = rng.integers(0, n, 4)
                reg.score("live", src, dst)
        except BaseException as exc:   # noqa: BLE001 - collected for assert
            errors.append(exc)

    def writer():
        try:
            for g in range(1, generations):
                reg.swap("live", _generation_bundle(g), cache_size=0)
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    w = threading.Thread(target=writer)
    for t in readers:
        t.start()
    w.start()
    w.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors, f"hot swap raced a query: {errors[:1]}"
    # the registry settled on the last generation
    _, final_scores = reg.topk("live", probe, k)
    np.testing.assert_allclose(final_scores,
                               generations ** 2 * base_scores, rtol=1e-9)


def _implied_generations(scores, base_scores):
    return np.sqrt(np.abs(scores / base_scores))


@pytest.mark.parametrize("engine_options", [
    {"cache_size": 0},                             # flat engine
    {"cache_size": 0, "shards": 3},                # sharded engine
], ids=["flat", "sharded"])
def test_scheduled_swap_race_never_mixes_generations(engine_options):
    """Every swap is barrier-scheduled to land between two queries.

    Two readers and one writer march through a fixed schedule: query,
    rendezvous, (writer swaps), rendezvous, query — for each
    generation. Each query's answer must be internally one generation,
    and the post-swap query must be internally consistent too (either
    generation is legal: an engine resolved before the flip may finish
    on the old one).
    """
    n, k, gens, readers = 64, 5, 6, 2
    reg = ServingRegistry()
    reg.register("live", generation_embedding(0, n=n), **engine_options)
    probe = np.arange(8)
    _, base_scores = QueryEngine(generation_embedding(0, n=n),
                                 cache_size=0).topk(probe, k)
    sched = BarrierSchedule(parties=readers + 1)
    errors: list[BaseException] = []

    def reader():
        try:
            for g in range(1, gens):
                _, scores = reg.topk("live", probe, k)
                implied = _implied_generations(scores, base_scores)
                assert implied.max() - implied.min() < 1e-6
                sched.sync(f"pre-swap-{g}")
                sched.sync(f"post-swap-{g}")
                _, scores = reg.topk("live", probe, k)
                implied = _implied_generations(scores, base_scores)
                assert implied.max() - implied.min() < 1e-6
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)
            sched.abort()

    def writer():
        try:
            for g in range(1, gens):
                sched.sync(f"pre-swap-{g}")
                reg.swap("live", generation_embedding(g, n=n),
                         **engine_options)
                sched.sync(f"post-swap-{g}")
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)
            sched.abort()

    threads = [threading.Thread(target=reader) for _ in range(readers)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"scheduled swap race failed: {errors[:1]}"
    _, final = reg.topk("live", probe, k)
    np.testing.assert_allclose(final, gens ** 2 * base_scores, rtol=1e-9)


@pytest.mark.parametrize("shards", [None, 3], ids=["flat", "sharded"])
def test_scheduled_publish_open_current_race(tmp_path, shards):
    """open_current around barrier-scheduled publish_version flips.

    The reader opens the root before and after every publish; each
    opened store must be a complete single-generation version (rows
    scale exactly by gen + 1), for flat and sharded versions alike.
    """
    n, gens = 48, 5
    root = tmp_path / "root"
    publish_version(root, generation_embedding(0, n=n), shards=shards)
    base_rows = generation_embedding(0, n=n).embedding_[:6]
    sched = BarrierSchedule(parties=2)
    errors: list[BaseException] = []

    def check_open():
        store = open_current(root)
        gen = int(store.name.removeprefix("gen"))
        rows = store.embedding_[np.arange(6)]
        np.testing.assert_allclose(rows, (gen + 1.0) * base_rows,
                                   rtol=1e-12)
        ids, _ = store.to_serving(cache_size=0).topk(0, 4)
        assert len(ids) == 4

    def reader():
        try:
            for g in range(1, gens):
                check_open()
                sched.sync(f"pre-publish-{g}")
                sched.sync(f"post-publish-{g}")
                check_open()
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)
            sched.abort()

    def publisher():
        try:
            for g in range(1, gens):
                sched.sync(f"pre-publish-{g}")
                publish_version(root, generation_embedding(g, n=n),
                                keep=2, shards=shards)
                sched.sync(f"post-publish-{g}")
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)
            sched.abort()

    threads = [threading.Thread(target=reader),
               threading.Thread(target=publisher)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"publish/open race failed: {errors[:1]}"
    assert open_current(root).name == f"gen{gens - 1}"


def test_storm_through_swaps_with_harness_sharded():
    """Free-running (but bounded) storm: sharded swaps under load."""
    n, k, gens = 64, 5, 8
    reg = ServingRegistry()
    reg.register("live", generation_embedding(0, n=n), cache_size=0,
                 shards=2)
    probe = np.arange(6)
    _, base_scores = QueryEngine(generation_embedding(0, n=n),
                                 cache_size=0).topk(probe, k)
    stop = threading.Event()
    storm_running = threading.Event()

    def work(tid, i, rng):
        storm_running.set()
        _, scores = reg.topk("live", probe, k)
        implied = _implied_generations(scores, base_scores)
        assert implied.max() - implied.min() < 1e-6

    def writer():
        storm_running.wait(timeout=10.0)   # swap under load, not before
        for g in range(1, gens):
            reg.swap("live", generation_embedding(g, n=n), cache_size=0,
                     shards=2)
        stop.set()

    w = threading.Thread(target=writer)
    w.start()
    result = run_storm(work, threads=3, stop=stop, duration=20.0)
    w.join()
    result.raise_errors()
    assert result.total_ops > 0


def test_concurrent_register_replace_and_get():
    reg = ServingRegistry()
    reg.register("m", _generation_bundle(0))
    errors = []

    def churn(i):
        try:
            for _ in range(20):
                reg.register("m", _generation_bundle(i), replace=True,
                             cache_size=0)
                assert "m" in reg
                assert reg.names() == ["m"]
                reg.get("m")
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(reg) == 1


# ----------------------------------------------------------------------
# engine lifecycle: hot swaps must not strand router threads
# ----------------------------------------------------------------------

def _router_threads() -> int:
    return sum(t.name.startswith("shard-router")
               for t in threading.enumerate())


def _wait_router_threads(at_most: int, timeout: float = 10.0) -> int:
    """Poll until the shard-router thread count settles at ``at_most``.

    close() uses shutdown(wait=False), so pool threads exit
    asynchronously — the count converges, it does not drop instantly.
    """
    import time
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        count = _router_threads()
        if count <= at_most:
            return count
        time.sleep(0.05)
    return _router_threads()


def test_swap_does_not_leak_router_threads():
    """Regression: 50 hot swaps of a sharded engine used to strand 50
    idle shard-router pools until GC; swap must close the old engine."""
    workers = 2
    reg = ServingRegistry()
    reg.register("live", _generation_bundle(0), shards=4, workers=workers,
                 cache_size=0)
    for g in range(1, 51):
        reg.topk("live", [g % 64], k=3)   # force pool threads to spawn
        reg.swap("live", _generation_bundle(g), shards=4, workers=workers,
                 cache_size=0)
    reg.topk("live", [0], k=3)
    # only the live engine's pool may remain
    assert _wait_router_threads(workers) <= workers
    reg.unregister("live")
    assert _wait_router_threads(0) == 0


def test_closed_router_degrades_to_serial_search():
    """A reader holding a swapped-out engine keeps getting answers."""
    reg = ServingRegistry()
    engine = reg.register("live", _generation_bundle(0), shards=4,
                          workers=2, cache_size=0)
    before_ids, before_scores = engine.topk([1, 2, 3], k=5)
    reg.swap("live", _generation_bundle(1), cache_size=0)  # closes old
    after_ids, after_scores = engine.topk([1, 2, 3], k=5)  # serial path
    np.testing.assert_array_equal(before_ids, after_ids)
    np.testing.assert_allclose(before_scores, after_scores)


def test_registry_close_empties_and_closes():
    reg = ServingRegistry()
    reg.register("a", _generation_bundle(0), shards=2, workers=2,
                 cache_size=0)
    reg.register("b", _generation_bundle(1), cache_size=0)
    reg.topk("a", [0], k=2)
    reg.close()
    assert len(reg) == 0
    assert reg.names() == []
    assert _wait_router_threads(0) == 0
    reg.register("a", _generation_bundle(2))   # registry stays usable
    assert "a" in reg
