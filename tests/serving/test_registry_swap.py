"""Thread-safety of the serving registry under hot swaps.

The satellite contract: hot-swapping a model mid-query-stream never
raises and never serves a torn store — every answer a query thread gets
is internally consistent with exactly one registered model generation.
Generations are made distinguishable by construction: generation ``g``
embeds node ``v`` as a one-hot-ish vector scaled by ``g + 1``, so any
mixing of generations inside one answer is detectable from the scores.
"""

import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.io import EmbeddingBundle
from repro.serving import QueryEngine, ServingRegistry


def _generation_bundle(generation: int, n: int = 64, dim: int = 8):
    rng = np.random.default_rng(7)          # same geometry every gen
    base = rng.standard_normal((n, dim))
    z = (generation + 1.0) * base
    return EmbeddingBundle(name=f"gen{generation}", directional=False,
                           embedding=z)


def test_swap_requires_registered_name():
    reg = ServingRegistry()
    with pytest.raises(ReproError, match="register"):
        reg.swap("live", _generation_bundle(0))
    reg.register("live", _generation_bundle(0))
    engine = reg.swap("live", _generation_bundle(1))
    assert reg.get("live") is engine
    assert isinstance(engine, QueryEngine)


def test_swap_passes_engine_through():
    reg = ServingRegistry()
    reg.register("live", _generation_bundle(0))
    prebuilt = QueryEngine(_generation_bundle(1))
    assert reg.swap("live", prebuilt) is prebuilt


def test_hot_swap_mid_query_stream_is_never_torn():
    """Readers hammer topk/score while a writer swaps generations."""
    n, k = 64, 5
    generations = 30
    reg = ServingRegistry()
    reg.register("live", _generation_bundle(0))
    probe = np.arange(8)
    base_engine = QueryEngine(_generation_bundle(0), cache_size=0)
    _, base_scores = base_engine.topk(probe, k)

    errors: list[BaseException] = []
    stop = threading.Event()

    def reader():
        rng = np.random.default_rng()
        try:
            while not stop.is_set():
                ids, scores = reg.topk("live", probe, k)
                assert ids.shape == (len(probe), k)
                # scores of one answer must all come from ONE generation:
                # score(gen g) = (g+1)^2 * score(gen 0), so the implied
                # generation per row must agree across the whole batch.
                ratio = scores / base_scores
                implied = np.sqrt(np.abs(ratio))
                spread = implied.max() - implied.min()
                assert spread < 1e-6, f"torn answer: {implied}"
                src = rng.integers(0, n, 4)
                dst = rng.integers(0, n, 4)
                reg.score("live", src, dst)
        except BaseException as exc:   # noqa: BLE001 - collected for assert
            errors.append(exc)

    def writer():
        try:
            for g in range(1, generations):
                reg.swap("live", _generation_bundle(g), cache_size=0)
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(4)]
    w = threading.Thread(target=writer)
    for t in readers:
        t.start()
    w.start()
    w.join()
    stop.set()
    for t in readers:
        t.join()
    assert not errors, f"hot swap raced a query: {errors[:1]}"
    # the registry settled on the last generation
    _, final_scores = reg.topk("live", probe, k)
    np.testing.assert_allclose(final_scores,
                               generations ** 2 * base_scores, rtol=1e-9)


def test_concurrent_register_replace_and_get():
    reg = ServingRegistry()
    reg.register("m", _generation_bundle(0))
    errors = []

    def churn(i):
        try:
            for _ in range(20):
                reg.register("m", _generation_bundle(i), replace=True,
                             cache_size=0)
                assert "m" in reg
                assert reg.names() == ["m"]
                reg.get("m")
        except BaseException as exc:   # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(reg) == 1
