"""Tests for the top-k index backends."""

import numpy as np
import pytest

from repro import NRP
from repro.errors import ParameterError
from repro.graph import powerlaw_community
from repro.serving import ExactIndex, IVFIndex, build_index


@pytest.fixture(scope="module")
def random_db():
    rng = np.random.default_rng(0)
    return rng.standard_normal((500, 24))


@pytest.fixture(scope="module")
def random_queries():
    rng = np.random.default_rng(1)
    return rng.standard_normal((40, 24))


def brute_topk(queries, db, k):
    scores = queries @ db.T
    order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(scores, order, axis=1)


def test_exact_matches_argsort(random_db, random_queries):
    idx = ExactIndex(random_db)
    ids, scores = idx.search(random_queries, 15)
    ref_ids, ref_scores = brute_topk(random_queries, random_db, 15)
    np.testing.assert_array_equal(ids, ref_ids)
    np.testing.assert_allclose(scores, ref_scores)


def test_exact_blocked_matches_unblocked(random_db, random_queries):
    blocked = ExactIndex(random_db, block_rows=64)
    ids, scores = blocked.search(random_queries, 12)
    ref_ids, ref_scores = brute_topk(random_queries, random_db, 12)
    np.testing.assert_array_equal(ids, ref_ids)
    np.testing.assert_allclose(scores, ref_scores)


def test_k_capped_at_num_items(random_db):
    idx = ExactIndex(random_db[:7])
    ids, scores = idx.search(random_db[:3], 50)
    assert ids.shape == (3, 7)
    assert scores.shape == (3, 7)


def test_single_query_row(random_db):
    idx = ExactIndex(random_db)
    ids, scores = idx.search(random_db[3], 5)
    assert ids.shape == (1, 5)
    assert ids[0, 0] == 3      # a vector's best inner-product match is itself


def test_invalid_inputs(random_db):
    with pytest.raises(ParameterError):
        ExactIndex(random_db[:0])
    with pytest.raises(ParameterError):
        ExactIndex(random_db[0])
    with pytest.raises(ParameterError):
        ExactIndex(random_db).search(random_db[:2], 0)
    with pytest.raises(ParameterError):
        ExactIndex(random_db).search(np.zeros((2, 5)), 3)
    with pytest.raises(ParameterError):
        build_index(random_db, "annoy")


def test_ivf_full_probe_equals_exact(random_db, random_queries):
    """Probing every list makes IVF exhaustive, hence exact."""
    ivf = IVFIndex(random_db, num_lists=12, nprobe=12, seed=0)
    ids, scores = ivf.search(random_queries, 10)
    ref_ids, ref_scores = brute_topk(random_queries, random_db, 10)
    np.testing.assert_allclose(scores, ref_scores)
    np.testing.assert_array_equal(ids, ref_ids)


def test_ivf_no_copy_matches_copy(random_db, random_queries):
    kwargs = dict(num_lists=16, nprobe=5, seed=3)
    fast = IVFIndex(random_db, copy_vectors=True, **kwargs)
    lean = IVFIndex(random_db, copy_vectors=False, **kwargs)
    ids_a, scores_a = fast.search(random_queries, 8)
    ids_b, scores_b = lean.search(random_queries, 8)
    np.testing.assert_array_equal(ids_a, ids_b)
    np.testing.assert_allclose(scores_a, scores_b)


def test_ivf_pads_when_probes_are_small(random_db):
    """If the probed lists hold fewer than k rows, -1 / -inf pad the tail."""
    ivf = IVFIndex(random_db, num_lists=100, nprobe=1, seed=0)
    ids, scores = ivf.search(random_db[:4], 60)
    assert (ids == -1).any()
    assert np.isneginf(scores[ids == -1]).all()
    for row_ids in ids:
        real = row_ids[row_ids >= 0]
        assert len(np.unique(real)) == len(real)


def test_ivf_defaults_reasonable(random_db):
    ivf = IVFIndex(random_db, seed=0)
    assert 1 <= ivf.nprobe <= ivf.num_lists <= len(random_db)


def test_ivf_num_lists_exceeding_train_size(random_db):
    """num_lists > train_size must grow the k-means sample, not crash."""
    ivf = IVFIndex(random_db, num_lists=80, train_size=20, seed=0)
    assert ivf.num_lists == 80
    ids, _ = ivf.search(random_db[:3], 5)
    assert ids.shape == (3, 5)


@pytest.mark.slow
def test_ivf_recall_on_5k_graph():
    """Acceptance: default IVF reaches recall@10 >= 0.9 vs exact at 5k nodes."""
    graph, _ = powerlaw_community(5000, 30000, num_communities=8, seed=7)
    model = NRP(dim=32, seed=0).fit(graph)
    queries = model.forward_[np.arange(0, 5000, 25)]
    exact_ids, _ = ExactIndex(model.backward_).search(queries, 10)
    ivf_ids, _ = IVFIndex(model.backward_, seed=0).search(queries, 10)
    recall = np.mean([len(set(a) & set(b)) / 10.0
                      for a, b in zip(ivf_ids, exact_ids)])
    assert recall >= 0.9, f"recall@10 = {recall}"
