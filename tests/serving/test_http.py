"""Tests for the asyncio HTTP serving tier (:mod:`repro.serving.http`).

Fast, in-process companions to the socket storms in
``tests/stress/test_http_serving.py``: every route, every error status
the tier promises (400/404/405/413/429/503/504), the micro-batcher's
coalescing, hot-swap consistency mid-traffic, and the ``repro-serve
serve`` subcommand end to end (run in-thread so the coverage gate's
``threading.settrace`` hook sees it).
"""

import http.client
import json
import socket
import threading
import time

import numpy as np
import pytest
from harness import generation_embedding, http_json

from repro import obs
from repro.errors import ParameterError, ReproError
from repro.serving import (HTTPServingConfig, QueryEngine,
                           ServingHTTPServer, ServingRegistry,
                           publish_version)
from repro.serving.cli import main
from repro.serving.store import export_store

N, DIM = 64, 8


class SlowEngine(QueryEngine):
    """A QueryEngine whose topk dawdles — for queue/deadline tests."""

    delay = 0.3

    def topk(self, src_nodes, k=10):
        time.sleep(self.delay)
        return super().topk(src_nodes, k)


def _conn(server) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)


def _header(headers: dict, name: str) -> str | None:
    for key, value in headers.items():
        if key.lower() == name:
            return value
    return None


@pytest.fixture(scope="module")
def served():
    """One module-wide server over a gen-0 embedding named ``live``."""
    registry = ServingRegistry()
    registry.register("live", generation_embedding(0, n=N, dim=DIM),
                      cache_size=0)
    server = ServingHTTPServer(registry).start(port=0)
    yield server
    server.stop(close_registry=True)
    obs.set_enabled(False)
    obs.get_registry().clear()


@pytest.fixture(scope="module")
def reference():
    """A private engine over the same embedding, for expected answers."""
    return QueryEngine(generation_embedding(0, n=N, dim=DIM), cache_size=0)


# ----------------------------------------------------------------------
# read-only routes
# ----------------------------------------------------------------------

def test_healthz_and_models(served):
    conn = _conn(served)
    try:
        status, body, headers = http_json(conn, "GET", "/healthz")
        assert status == 200
        assert body == {"status": "ok", "models": ["live"]}
        assert _header(headers, "content-type") == "application/json"

        status, body, _ = http_json(conn, "GET", "/v1/models")
        assert status == 200
        (info,) = body["models"]
        assert info["name"] == "live"
        assert info["num_nodes"] == N
        assert info["index"] == "exact"
    finally:
        conn.close()


def test_metrics_exposition(served):
    conn = _conn(served)
    try:
        http_json(conn, "POST", "/v1/live/topk", {"node": 1, "k": 3})
        status, body, headers = http_json(conn, "GET", "/metrics")
        assert status == 200
        assert _header(headers, "content-type").startswith("text/plain")
        text = body["raw"]
        assert "http_requests_total" in text
        assert "http_request_seconds" in text
        assert "serving_topk_batch_size" in text
    finally:
        conn.close()


# ----------------------------------------------------------------------
# /v1/{model}/topk
# ----------------------------------------------------------------------

def test_topk_scalar_matches_engine(served, reference):
    ids, scores = reference.topk(7, 5)
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                    {"node": 7, "k": 5})
    finally:
        conn.close()
    assert status == 200
    assert body["model"] == "live" and body["k"] == 5
    assert body["node"] == 7
    assert body["neighbors"] == [int(v) for v in ids]
    np.testing.assert_allclose(body["scores"], scores)


def test_topk_batch_matches_engine(served, reference):
    nodes = [3, 1, 4, 1, 59]
    ids, scores = reference.topk(nodes, 6)
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                    {"nodes": nodes, "k": 6})
    finally:
        conn.close()
    assert status == 200
    assert len(body["results"]) == len(nodes)
    for row, row_ids, row_scores in zip(body["results"], ids, scores):
        assert row["neighbors"] == [int(v) for v in row_ids]
        np.testing.assert_allclose(row["scores"], row_scores)


def test_topk_k_wider_than_model_clamps(served):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                    {"node": 0, "k": N + 100})
    finally:
        conn.close()
    assert status == 200
    assert len(body["neighbors"]) == N      # -1 padding filtered, if any


def test_topk_empty_nodes_is_empty_200(served):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                    {"nodes": [], "k": 5})
    finally:
        conn.close()
    assert status == 200 and body["results"] == []


@pytest.mark.parametrize("payload, fragment", [
    ({}, "exactly one"),
    ({"node": 1, "nodes": [2]}, "exactly one"),
    ({"node": "seven"}, "integer node"),
    ({"nodes": [[0, 1]]}, "flat list"),
    ({"node": 0, "k": 0}, '"k" must be >= 1'),
    ({"node": 0, "k": "ten"}, '"k" must be an integer'),
    ({"node": 0, "timeout": 0}, '"timeout" must be > 0'),
    ({"node": 0, "timeout": "fast"}, "number of seconds"),
    ({"node": N}, f"[0, {N})"),
    ({"nodes": [0, -3]}, f"[0, {N})"),
])
def test_topk_bad_requests_are_400(served, payload, fragment):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk", payload)
    finally:
        conn.close()
    assert status == 400
    assert fragment in body["error"]


# ----------------------------------------------------------------------
# /v1/{model}/score
# ----------------------------------------------------------------------

def test_score_pairs_and_broadcast(served, reference):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/score",
                                    {"src": [0, 5, 9], "dst": [7, 2, 11]})
        assert status == 200
        np.testing.assert_allclose(
            body["scores"], reference.score([0, 5, 9], [7, 2, 11]))

        # scalar src fans out against a dst list
        status, body, _ = http_json(conn, "POST", "/v1/live/score",
                                    {"src": 3, "dst": [7, 2, 11]})
        assert status == 200
        np.testing.assert_allclose(
            body["scores"], reference.score([3, 3, 3], [7, 2, 11]))

        # scalar/scalar returns one number under "score"
        status, body, _ = http_json(conn, "POST", "/v1/live/score",
                                    {"src": 3, "dst": 7})
        assert status == 200
        assert body["score"] == pytest.approx(
            float(reference.score([3], [7])[0]))
    finally:
        conn.close()


@pytest.mark.parametrize("payload, fragment", [
    ({"src": [0, 1]}, '"src" and "dst"'),
    ({"src": [0, 1], "dst": [2]}, "aligned pairs"),
    ({"src": "zero", "dst": 1}, "integer node ids"),
    ({"src": 0, "dst": N + 5}, "out of range"),
])
def test_score_bad_requests_are_400(served, payload, fragment):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/score", payload)
    finally:
        conn.close()
    assert status == 400
    assert fragment in body["error"]


# ----------------------------------------------------------------------
# protocol errors
# ----------------------------------------------------------------------

def test_unknown_model_is_404(served):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/nope/topk",
                                    {"node": 0})
        assert status == 404 and "nope" in body["error"]
        status, body, _ = http_json(conn, "POST", "/v1/nope/score",
                                    {"src": 0, "dst": 1})
        assert status == 404
    finally:
        conn.close()


def test_unknown_route_is_404(served):
    conn = _conn(served)
    try:
        status, _, _ = http_json(conn, "GET", "/v2/anything")
        assert status == 404
    finally:
        conn.close()


def test_wrong_method_is_405(served):
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "GET", "/v1/live/topk")
        assert status == 405 and "POST" in body["error"]
        status, body, _ = http_json(conn, "POST", "/healthz", {})
        assert status == 405 and "GET" in body["error"]
    finally:
        conn.close()


def test_malformed_json_body_is_400(served):
    conn = _conn(served)
    try:
        conn.request("POST", "/v1/live/topk", "{not json",
                     {"content-type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "not valid JSON" in body["error"]

        # a JSON body that is not an object is equally rejected
        conn.request("POST", "/v1/live/topk", "[1, 2]",
                     {"content-type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert "JSON object" in json.loads(response.read())["error"]
    finally:
        conn.close()


def test_malformed_request_line_is_400(served):
    with socket.create_connection(("127.0.0.1", served.port),
                                  timeout=5) as sock:
        sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
        reply = sock.recv(65536)
    assert reply.split(b" ", 2)[1] == b"400"


def test_oversized_body_is_413():
    registry = ServingRegistry()
    registry.register("m", generation_embedding(0, n=N, dim=DIM))
    config = HTTPServingConfig(max_body=64)
    server = ServingHTTPServer(registry, config=config,
                               metrics=False).start(port=0)
    try:
        conn = _conn(server)
        try:
            status, body, _ = http_json(
                conn, "POST", "/v1/m/topk",
                {"nodes": list(range(N)), "k": 5, "pad": "x" * 256})
        finally:
            conn.close()
        assert status == 413
        assert "64 bytes" in body["error"]
    finally:
        server.stop(close_registry=True)


def test_shutting_down_sheds_with_503(served):
    served._closing = True
    conn = _conn(served)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/live/topk",
                                    {"node": 0})
        assert status == 503 and "shutting down" in body["error"]
        # liveness stays answerable while draining
        status, _, _ = http_json(conn, "GET", "/healthz")
        assert status == 200
    finally:
        served._closing = False
        conn.close()


# ----------------------------------------------------------------------
# backpressure + deadlines (dedicated slow-engine servers)
# ----------------------------------------------------------------------

def _slow_server(**config_kwargs):
    registry = ServingRegistry()
    engine = SlowEngine(generation_embedding(0, n=N, dim=DIM),
                        cache_size=0)
    registry.register("slow", engine)
    config = HTTPServingConfig(max_delay=0.0, **config_kwargs)
    return ServingHTTPServer(registry, config=config,
                             metrics=False).start(port=0)


def test_queue_full_is_429_with_retry_after():
    server = _slow_server(max_queue=1, retry_after=0.125)
    try:
        first: list = []

        def occupant():
            conn = _conn(server)
            try:
                first.append(http_json(conn, "POST", "/v1/slow/topk",
                                       {"node": 0, "k": 3}))
            finally:
                conn.close()

        thread = threading.Thread(target=occupant)
        thread.start()
        time.sleep(0.1)            # the occupant is mid-engine-call
        conn = _conn(server)
        try:
            status, body, headers = http_json(conn, "POST",
                                              "/v1/slow/topk",
                                              {"node": 1, "k": 3})
        finally:
            conn.close()
        thread.join()
        assert status == 429
        assert "queue full" in body["error"]
        assert _header(headers, "retry-after") == "0.125"
        assert first[0][0] == 200       # the occupant was served fine
    finally:
        server.stop(close_registry=True)


def test_expired_deadline_is_shed_with_504():
    server = _slow_server(max_queue=64)
    try:
        first: list = []

        def occupant():
            conn = _conn(server)
            try:
                first.append(http_json(conn, "POST", "/v1/slow/topk",
                                       {"node": 0, "k": 3}))
            finally:
                conn.close()

        thread = threading.Thread(target=occupant)
        thread.start()
        time.sleep(0.1)
        # queued behind a 0.3s engine call with a 0.05s budget: by the
        # time its batch could dispatch, the deadline has passed — shed
        # before wasting an engine call on it.
        conn = _conn(server)
        try:
            status, body, _ = http_json(
                conn, "POST", "/v1/slow/topk",
                {"node": 1, "k": 3, "timeout": 0.05})
        finally:
            conn.close()
        thread.join()
        assert status == 504
        assert "deadline" in body["error"]
        assert first[0][0] == 200
    finally:
        server.stop(close_registry=True)


# ----------------------------------------------------------------------
# the micro-batcher
# ----------------------------------------------------------------------

def test_concurrent_requests_coalesce_into_batches(served):
    """Concurrent same-(model, k) requests share engine calls.

    8 keep-alive clients hammer one model: with a 50ms coalescing
    window the collector must pack >1 request into typical engine
    calls, visible in both the HTTP tier's batch histogram and the
    engine's ``serving_topk_batch_size`` series.
    """
    registry = ServingRegistry()
    registry.register("co", generation_embedding(5, n=N, dim=DIM),
                      cache_size=0)
    config = HTTPServingConfig(max_delay=0.05, max_batch=64)
    server = ServingHTTPServer(registry, config=config).start(port=0)
    try:
        errors: list = []
        gate = threading.Barrier(8)

        def client(tid: int) -> None:
            conn = _conn(server)
            try:
                gate.wait(timeout=10)
                for i in range(4):
                    status, body, _ = http_json(
                        conn, "POST", "/v1/co/topk",
                        {"node": (tid * 4 + i) % N, "k": 5})
                    assert status == 200, body
            except BaseException as exc:   # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                conn.close()

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        http_hist = obs.get_registry().get("http_batch_requests",
                                           {"model": "co"})
        assert http_hist is not None and http_hist.count >= 1
        assert http_hist.sum / http_hist.count > 1.0
        engine_hist = obs.get_registry().get("serving_topk_batch_size",
                                             {"engine": "gen5"})
        assert engine_hist is not None
        assert engine_hist.sum / engine_hist.count > 1.0
        # fewer engine calls than requests is the whole point
        assert http_hist.count < 32
    finally:
        server.stop(close_registry=True)


def test_hot_swap_mid_traffic_stays_generation_consistent():
    """Responses during a swap are whole-generation, never torn."""
    registry = ServingRegistry()
    registry.register("hot", generation_embedding(0, n=N, dim=DIM),
                      cache_size=0)
    server = ServingHTTPServer(registry, metrics=False).start(port=0)
    try:
        _, base_scores = QueryEngine(
            generation_embedding(0, n=N, dim=DIM),
            cache_size=0).topk(7, 5)
        results: list = []
        errors: list = []
        stop = threading.Event()

        def client() -> None:
            conn = _conn(server)
            try:
                while not stop.is_set():
                    status, body, _ = http_json(conn, "POST",
                                                "/v1/hot/topk",
                                                {"node": 7, "k": 5})
                    assert status == 200, body
                    results.append(body["scores"])
            except BaseException as exc:   # noqa: BLE001 - collected
                errors.append(exc)
            finally:
                conn.close()

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        registry.swap("hot", generation_embedding(1, n=N, dim=DIM),
                      cache_size=0)
        time.sleep(0.1)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert results
        for scores in results:
            ratio = np.asarray(scores) / base_scores
            # gen g scales every score by (g+1)^2: a row is all-gen0
            # (ratio 1) or all-gen1 (ratio 4), never a mixture
            assert (np.allclose(ratio, 1.0) or np.allclose(ratio, 4.0)), \
                f"torn generation in {scores}"

        conn = _conn(server)
        try:
            _, body, _ = http_json(conn, "POST", "/v1/hot/topk",
                                   {"node": 7, "k": 5})
        finally:
            conn.close()
        np.testing.assert_allclose(
            np.asarray(body["scores"]) / base_scores, 4.0)
    finally:
        server.stop(close_registry=True)


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------

def test_start_twice_and_port_conflict_raise(served):
    with pytest.raises(ReproError, match="already started"):
        served.start(port=0)
    registry = ServingRegistry()
    registry.register("m", generation_embedding(0, n=N, dim=DIM))
    clash = ServingHTTPServer(registry, metrics=False)
    with pytest.raises(ReproError, match="failed to bind"):
        clash.start(port=served.port)


@pytest.mark.parametrize("kwargs", [
    {"max_batch": 0}, {"max_delay": -0.1}, {"max_queue": 0},
    {"default_deadline": 0.0}, {"retry_after": -1.0}, {"max_body": 0},
    {"workers": 0}, {"workers": 1.5},
])
def test_config_validation(kwargs):
    with pytest.raises(ParameterError):
        HTTPServingConfig(**kwargs)


# ----------------------------------------------------------------------
# the `repro-serve serve` subcommand
# ----------------------------------------------------------------------

def _serve_in_thread(argv: list) -> tuple[threading.Thread, list]:
    codes: list = []
    thread = threading.Thread(target=lambda: codes.append(main(argv)),
                              daemon=True)
    thread.start()
    return thread, codes


def _wait_ready(path, timeout: float = 15.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.is_file():
            return json.loads(path.read_text(encoding="utf-8"))
        time.sleep(0.05)
    raise AssertionError(f"server never wrote {path}")


def test_cli_serve_flat_store(tmp_path, capsys):
    export_store(generation_embedding(0, n=N, dim=DIM),
                 tmp_path / "store")
    ready = tmp_path / "ready.json"
    thread, codes = _serve_in_thread(
        ["serve", str(tmp_path / "store"), "--port", "0", "--name", "m",
         "--max-seconds", "2", "--max-delay", "0.001",
         "--ready-file", str(ready)])
    info = _wait_ready(ready)
    assert info["model"] == "m" and info["num_nodes"] == N
    conn = http.client.HTTPConnection(info["host"], info["port"],
                                      timeout=10)
    try:
        status, body, _ = http_json(conn, "GET", "/healthz")
        assert status == 200 and body["models"] == ["m"]
        status, body, _ = http_json(conn, "POST", "/v1/m/topk",
                                    {"node": 3, "k": 4})
        assert status == 200 and len(body["neighbors"]) == 4
    finally:
        conn.close()
    thread.join(timeout=30)
    assert codes == [0]
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    assert [e["event"] for e in events] == ["serving", "stopped"]


def test_cli_serve_watch_hot_swaps_published_versions(tmp_path, capsys):
    root = tmp_path / "root"
    publish_version(root, generation_embedding(0, n=N, dim=DIM))
    ready = tmp_path / "ready.json"
    thread, codes = _serve_in_thread(
        ["serve", str(root), "--port", "0", "--name", "m",
         "--watch", "0.1", "--max-seconds", "6", "--max-delay", "0.001",
         "--ready-file", str(ready)])
    info = _wait_ready(ready)
    assert info["version"] == 1
    _, base_scores = QueryEngine(generation_embedding(0, n=N, dim=DIM),
                                 cache_size=0).topk(7, 5)
    conn = http.client.HTTPConnection(info["host"], info["port"],
                                      timeout=10)
    try:
        status, body, _ = http_json(conn, "POST", "/v1/m/topk",
                                    {"node": 7, "k": 5})
        assert status == 200
        np.testing.assert_allclose(body["scores"], base_scores)

        publish_version(root, generation_embedding(1, n=N, dim=DIM))
        deadline = time.monotonic() + 5.0
        swapped = False
        while time.monotonic() < deadline and not swapped:
            status, body, _ = http_json(conn, "POST", "/v1/m/topk",
                                        {"node": 7, "k": 5})
            assert status == 200
            swapped = np.allclose(np.asarray(body["scores"]) / base_scores,
                                  4.0)
            if not swapped:
                time.sleep(0.05)
        assert swapped, "serve --watch never hot-swapped onto v2"
    finally:
        conn.close()
    thread.join(timeout=30)
    assert codes == [0]
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    assert [e["event"] for e in events] == ["serving", "swap", "stopped"]
    assert events[1]["version"] == 2


def test_cli_serve_flag_validation(tmp_path, capsys):
    export_store(generation_embedding(0, n=N, dim=DIM),
                 tmp_path / "flat")
    # --watch needs a versioned root
    assert main(["serve", str(tmp_path / "flat"), "--watch", "1",
                 "--max-seconds", "0"]) == 2
    assert "versioned store root" in capsys.readouterr().err
    # --workers needs a sharded store
    assert main(["serve", str(tmp_path / "flat"), "--workers", "2",
                 "--max-seconds", "0"]) == 2
    assert "sharded store" in capsys.readouterr().err
    # ivf knobs need --index ivf
    assert main(["serve", str(tmp_path / "flat"), "--nprobe", "4",
                 "--max-seconds", "0"]) == 2
    assert "--index ivf" in capsys.readouterr().err
