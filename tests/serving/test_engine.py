"""Tests for QueryEngine, the serving registry, and task parity."""

import numpy as np
import pytest

from repro import NRP
from repro.baselines import make_embedder
from repro.errors import ParameterError, ReproError
from repro.graph import link_prediction_split
from repro.serving import (DEFAULT_REGISTRY, ExactIndex, QueryEngine,
                           ServingRegistry)
from repro.tasks import evaluate_link_prediction, evaluate_reconstruction


@pytest.fixture(scope="module")
def nrp_model(small_undirected):
    return NRP(dim=16, svd="exact", seed=0).fit(small_undirected)


@pytest.fixture(scope="module")
def single_model(small_undirected):
    return make_embedder("randne", 16, seed=0).fit(small_undirected)


def full_ranking(model, node):
    return np.argsort(-model.score_all_from(node), kind="stable")


def test_exact_topk_matches_argsort_directional(nrp_model):
    engine = nrp_model.to_serving()
    for node in (0, 17, 63):
        ids, scores = engine.topk(node, k=10)
        np.testing.assert_array_equal(ids, full_ranking(nrp_model, node)[:10])
        np.testing.assert_allclose(
            scores, np.sort(nrp_model.score_all_from(node))[::-1][:10])


def test_exact_topk_matches_argsort_single_vector(single_model):
    engine = single_model.to_serving()
    for node in (1, 40, 99):
        ids, _ = engine.topk(node, k=10)
        np.testing.assert_array_equal(ids,
                                      full_ranking(single_model, node)[:10])


def test_batched_topk_shapes(nrp_model):
    engine = nrp_model.to_serving()
    ids, scores = engine.topk([3, 1, 4], k=5)
    assert ids.shape == scores.shape == (3, 5)
    one_ids, one_scores = engine.topk(1, k=5)
    np.testing.assert_array_equal(ids[1], one_ids)
    np.testing.assert_allclose(scores[1], one_scores)
    empty_ids, empty_scores = engine.topk([], k=5)
    assert empty_ids.shape == empty_scores.shape == (0, 5)


def test_score_matches_embedder(nrp_model):
    engine = nrp_model.to_serving()
    src = np.array([0, 5, 9])
    dst = np.array([7, 2, 11])
    np.testing.assert_allclose(engine.score(src, dst),
                               nrp_model.score_pairs(src, dst))
    np.testing.assert_allclose(engine.score_pairs(src, dst),
                               nrp_model.score_pairs(src, dst))


def test_topk_validation(nrp_model):
    engine = nrp_model.to_serving()
    with pytest.raises(ParameterError):
        engine.topk(0, k=0)
    with pytest.raises(ParameterError):
        engine.topk(engine.num_nodes, k=5)
    with pytest.raises(ParameterError):
        engine.topk(-1, k=5)


def test_score_mismatched_lengths_raise_parameter_error(nrp_model):
    """Regression: misaligned pairs used to surface a raw einsum
    ValueError; the HTTP /score route needs a typed 400, not a 500."""
    engine = nrp_model.to_serving()
    with pytest.raises(ParameterError, match="aligned pairs"):
        engine.score([0, 1, 2], [3, 4])
    with pytest.raises(ParameterError, match="aligned pairs"):
        engine.score([0], [1, 2, 3])
    with pytest.raises(ParameterError, match="1-D"):
        engine.score([[0, 1]], [[2, 3]])


def test_score_scalar_broadcast(nrp_model):
    """A scalar endpoint broadcasts against the other side's array."""
    engine = nrp_model.to_serving()
    fanout = engine.score(3, [0, 5, 9])
    np.testing.assert_allclose(fanout, engine.score([3, 3, 3], [0, 5, 9]))
    fanin = engine.score([0, 5, 9], 3)
    np.testing.assert_allclose(fanin, engine.score([0, 5, 9], [3, 3, 3]))
    both = engine.score(2, 7)
    np.testing.assert_allclose(both, engine.score([2], [7]))
    # broadcast still range-checks the scalar side
    with pytest.raises(ParameterError, match="out of range"):
        engine.score(engine.num_nodes, [0, 1])


@pytest.mark.parametrize("make_engine_fn", [
    lambda m: m.to_serving(),
    lambda m: m.to_serving(index="ivf", num_lists=4, nprobe=4),
    lambda m: m.to_serving(shards=3),
], ids=["flat", "ivf", "sharded"])
def test_empty_batch_topk_width_matches_backend(nrp_model, make_engine_fn):
    """Regression: the empty-batch path used its own column convention
    (min(k, num_nodes)); it must match the index's min(k, num_items)."""
    engine = make_engine_fn(nrp_model)
    for k in (5, engine.num_nodes, engine.num_nodes + 50):
        full_ids, full_scores = engine.topk([0, 1], k=k)
        empty_ids, empty_scores = engine.topk([], k=k)
        assert empty_ids.shape == (0, full_ids.shape[1])
        assert empty_scores.shape == (0, full_scores.shape[1])
        assert empty_ids.shape[1] == min(k, engine.index.num_items)
        assert empty_ids.dtype == full_ids.dtype


def test_score_validation(nrp_model):
    engine = nrp_model.to_serving()
    with pytest.raises(ParameterError, match="src"):
        engine.score([-1], [0])
    with pytest.raises(ParameterError, match="dst"):
        engine.score([0], [engine.num_nodes])


def test_cache_entries_do_not_pin_batch_arrays(nrp_model):
    """A cached row must be an owning copy, not a view of the batch."""
    engine = nrp_model.to_serving()
    engine.topk(np.arange(50), k=5)
    entry_ids, entry_scores = engine._cache[(3, 5)]
    assert entry_ids.base is None
    assert entry_scores.base is None


def test_unfitted_source_raises():
    with pytest.raises(ReproError):
        QueryEngine(NRP(dim=8))


def test_non_inner_product_model_rejected(small_undirected, tmp_path):
    """RaRE overrides score_pairs; serving dot products would be wrong."""
    from repro.io import export_store, load_embeddings, save_embeddings
    model = make_embedder("rare", 16, seed=0, epochs=1).fit(small_undirected)
    with pytest.raises(ParameterError, match="non-inner-product"):
        model.to_serving()
    # the marker must survive the save/export round-trips too
    save_embeddings(model, tmp_path / "rare.npz")
    bundle = load_embeddings(tmp_path / "rare.npz")
    with pytest.raises(ParameterError, match="non-inner-product"):
        bundle.to_serving()
    store = export_store(bundle, tmp_path / "store")
    with pytest.raises(ParameterError, match="non-inner-product"):
        store.to_serving()


def test_cache_hits_and_eviction(nrp_model):
    engine = nrp_model.to_serving(cache_size=2)
    a1, s1 = engine.topk(0, k=5)
    a2, s2 = engine.topk(0, k=5)           # hit
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_allclose(s1, s2)
    stats = engine.cache_stats()
    assert stats.hits == 1 and stats.misses == 1
    engine.topk(1, k=5)
    engine.topk(2, k=5)                    # evicts node 0
    engine.topk(0, k=5)                    # miss again
    assert engine.cache_stats().misses == 4
    assert engine.cache_stats().size == 2
    engine.cache_clear()
    assert engine.cache_stats().hits == 0
    assert engine.cache_stats().size == 0


@pytest.mark.parametrize("shards", [None, 3], ids=["flat", "sharded"])
def test_cache_key_includes_k(nrp_model, shards):
    """Regression: a cached k=10 answer must never serve a k=50 query.

    The LRU key is ``(node, k)``; if ``k`` ever fell out of the key, a
    hot node primed at a small ``k`` would truncate every later larger-
    ``k`` query for it. Checked against the exact ranking in both
    directions (grow k, then shrink it) and for both engine flavors.
    """
    engine = nrp_model.to_serving(cache_size=16, shards=shards)
    ref = full_ranking(nrp_model, 3)
    ids10, scores10 = engine.topk(3, k=10)         # primes the cache
    assert len(ids10) == 10
    ids50, scores50 = engine.topk(3, k=50)         # same node, larger k
    assert len(ids50) == 50, "cached k=10 entry served for k=50"
    np.testing.assert_array_equal(ids50, ref[:50])
    ids5, _ = engine.topk(3, k=5)                  # same node, smaller k
    assert len(ids5) == 5
    np.testing.assert_array_equal(ids5, ref[:5])
    # the k=10 entry is still present and still correct
    again10, again_scores10 = engine.topk(3, k=10)
    np.testing.assert_array_equal(again10, ids10)
    np.testing.assert_array_equal(again_scores10, scores10)
    # and the batched path keys by k too
    batch_ids, _ = engine.topk([3, 3, 7], k=25)
    assert batch_ids.shape == (3, 25)
    np.testing.assert_array_equal(batch_ids[0], ref[:25])


def test_duplicate_nodes_searched_once_per_batch(nrp_model):
    engine = nrp_model.to_serving()
    seen_rows = []
    real_search = engine.index.search
    engine.index.search = lambda q, k: (seen_rows.append(len(q)),
                                        real_search(q, k))[1]
    ids, _ = engine.topk([5, 5, 5, 2], k=4)
    assert seen_rows == [2]                    # two unique nodes, one search
    np.testing.assert_array_equal(ids[0], ids[1])
    np.testing.assert_array_equal(ids[0], full_ranking(nrp_model, 5)[:4])
    np.testing.assert_array_equal(ids[3], full_ranking(nrp_model, 2)[:4])


def test_cache_disabled_fast_path_results_match(nrp_model):
    fast = nrp_model.to_serving(cache_size=0)
    slow = nrp_model.to_serving(cache_size=16)
    ids_a, scores_a = fast.topk([5, 5, 2], k=4)
    ids_b, scores_b = slow.topk([5, 5, 2], k=4)
    np.testing.assert_array_equal(ids_a, ids_b)
    np.testing.assert_allclose(scores_a, scores_b)
    assert fast.cache_stats().misses == 3


def test_cache_disabled(nrp_model):
    engine = nrp_model.to_serving(cache_size=0)
    engine.topk(0, k=5)
    engine.topk(0, k=5)
    stats = engine.cache_stats()
    assert stats.hits == 0 and stats.size == 0


def test_cached_results_are_isolated_copies(nrp_model):
    """Mutating a returned array must not poison the cache."""
    engine = nrp_model.to_serving()
    ids, _ = engine.topk(4, k=5)
    ids[:] = -7
    again, _ = engine.topk(4, k=5)
    assert (again >= 0).all()


def test_engine_accepts_prebuilt_index(nrp_model):
    index = ExactIndex(nrp_model.backward_, block_rows=50)
    engine = QueryEngine(nrp_model, index=index)
    ids, _ = engine.topk(5, k=8)
    np.testing.assert_array_equal(ids, full_ranking(nrp_model, 5)[:8])
    with pytest.raises(ParameterError):
        QueryEngine(nrp_model, index=index, block_rows=10)
    wrong_size = ExactIndex(np.zeros((7, 8)))
    with pytest.raises(ParameterError, match="prebuilt index"):
        QueryEngine(nrp_model, index=wrong_size)


# ---------------------------------------------------------------- registry
def test_registry_round_trip(nrp_model, single_model):
    reg = ServingRegistry()
    reg.register("nrp", nrp_model)
    reg.register("randne", single_model, index="exact")
    assert reg.names() == ["nrp", "randne"]
    assert "nrp" in reg and len(reg) == 2
    ids, _ = reg.topk("nrp", 3, k=4)
    np.testing.assert_array_equal(ids, full_ranking(nrp_model, 3)[:4])
    np.testing.assert_allclose(reg.score("randne", [0], [5]),
                               single_model.score_pairs([0], [5]))
    with pytest.raises(ReproError):
        reg.register("nrp", single_model)
    reg.register("nrp", single_model, replace=True)
    assert reg.get("nrp").name == single_model.name
    reg.unregister("randne")
    with pytest.raises(ReproError):
        reg.get("randne")


def test_default_registry_exists():
    assert isinstance(DEFAULT_REGISTRY, ServingRegistry)


# ------------------------------------------------------------- task parity
def test_link_prediction_parity_through_engine(small_undirected):
    split = link_prediction_split(small_undirected, test_fraction=0.3, seed=1)
    model = NRP(dim=16, svd="exact", seed=0).fit(split.train_graph)
    offline = evaluate_link_prediction(model, split, seed=2)
    online = evaluate_link_prediction(model, split, seed=2,
                                      engine=model.to_serving())
    assert online.auc == pytest.approx(offline.auc)


def test_engine_over_wrong_graph_rejected(small_undirected, small_directed,
                                          nrp_model):
    """A parity engine sized for a different graph must be refused."""
    split = link_prediction_split(small_undirected, test_fraction=0.3, seed=1)
    model = NRP(dim=16, svd="exact", seed=0).fit(split.train_graph)
    wrong = NRP(dim=16, svd="exact", seed=0).fit(small_directed)
    with pytest.raises(ParameterError, match="different model"):
        evaluate_link_prediction(model, split, engine=wrong.to_serving())
    with pytest.raises(ParameterError, match="different model"):
        evaluate_reconstruction(nrp_model, small_undirected, ks=(10,),
                                engine=wrong.to_serving())


def test_engine_rejected_for_edge_features_methods(small_undirected):
    """engine= must not silently no-op for non-inner scoring methods."""
    split = link_prediction_split(small_undirected, test_fraction=0.3, seed=1)
    model = make_embedder("spectral", 16, seed=0).fit(split.train_graph)
    assert model.lp_scoring == "edge_features"
    with pytest.raises(ParameterError, match="inner-product"):
        evaluate_link_prediction(model, split, seed=2,
                                 engine=model.to_serving())


def test_reconstruction_parity_through_engine(small_undirected, nrp_model):
    offline = evaluate_reconstruction(nrp_model, small_undirected,
                                      ks=(10, 100), seed=0)
    online = evaluate_reconstruction(nrp_model, small_undirected,
                                     ks=(10, 100), seed=0,
                                     engine=nrp_model.to_serving())
    assert online.precision == offline.precision
