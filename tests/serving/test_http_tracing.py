"""End-to-end request tracing through the HTTP serving tier.

The PR-8 acceptance surface: W3C ``traceparent`` in/out, per-response
trace ids, the root -> queue -> batch -> engine span chain under
micro-batched fan-in (batch span linked to every member request),
``/debug/traces`` / ``/debug/vars``, structured access-log lines, and
the ``repro-serve serve`` SIGTERM drain that flushes them.
"""

import http.client
import io
import json
import signal
import threading
import time

import pytest
from harness import generation_embedding, http_json

from repro import obs
from repro.obs.requestlog import RequestLogger
from repro.serving import (HTTPServingConfig, ServingHTTPServer,
                           ServingRegistry)
from repro.serving.cli import main
from repro.serving.store import export_store

N, DIM = 64, 8
HEX = set("0123456789abcdef")


def _conn(server) -> http.client.HTTPConnection:
    return http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)


def _header(headers: dict, name: str) -> str | None:
    for key, value in headers.items():
        if key.lower() == name:
            return value
    return None


def _span_names(tree: dict) -> list:
    """Flatten a span tree into (depth-first) names."""
    names = [tree["name"]]
    for child in tree.get("children", ()):
        names.extend(_span_names(child))
    return names


def _find_span(tree: dict, name: str) -> dict | None:
    if tree["name"] == name:
        return tree
    for child in tree.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


@pytest.fixture(scope="module")
def access_buffer():
    return io.StringIO()


@pytest.fixture(scope="module")
def served(access_buffer):
    """A traced server: sampling on, access log into a StringIO."""
    registry = ServingRegistry()
    registry.register("live", generation_embedding(0, n=N, dim=DIM),
                      cache_size=0)
    config = HTTPServingConfig(max_delay=0.005)
    logger = RequestLogger(access_buffer, buffer_lines=1)
    server = ServingHTTPServer(registry, config=config,
                               access_log=logger).start(port=0)
    yield server
    server.stop(close_registry=True)
    obs.set_enabled(False)
    obs.get_registry().clear()


# ----------------------------------------------------------------------
# response identity headers
# ----------------------------------------------------------------------

def test_every_response_carries_trace_headers(served):
    conn = _conn(served)
    try:
        for method, path, payload, expected in [
                ("GET", "/healthz", None, 200),
                ("POST", "/v1/live/topk", {"node": 1, "k": 3}, 200),
                ("POST", "/v1/live/topk", {"node": "x"}, 400),
                ("GET", "/nope", None, 404)]:
            status, _, headers = http_json(conn, method, path, payload)
            assert status == expected
            trace_id = _header(headers, "x-trace-id")
            request_id = _header(headers, "x-request-id")
            parent = _header(headers, "traceparent")
            assert len(trace_id) == 32 and set(trace_id) <= HEX
            assert len(request_id) == 16 and set(request_id) <= HEX
            assert parent == f"00-{trace_id}-{request_id}-01"
    finally:
        conn.close()


def test_incoming_traceparent_continued(served):
    trace_id, remote_span = "ab" * 16, "cd" * 8
    conn = _conn(served)
    try:
        status, _, headers = http_json(
            conn, "POST", "/v1/live/topk", {"node": 2},
            headers={"traceparent": f"00-{trace_id}-{remote_span}-01"})
        assert status == 200
        assert _header(headers, "x-trace-id") == trace_id
        # the local hop got its own span id, not the remote one
        assert _header(headers, "x-request-id") != remote_span
    finally:
        conn.close()


def test_incoming_unsampled_flag_honored(served):
    trace_id = "ef" * 16
    conn = _conn(served)
    try:
        status, _, headers = http_json(
            conn, "POST", "/v1/live/topk", {"node": 2},
            headers={"traceparent": f"00-{trace_id}-{'cd' * 8}-00"})
        assert status == 200
        assert _header(headers, "traceparent").endswith("-00")
        # unsampled requests never reach the /debug/traces ring
        status, body, _ = http_json(conn, "GET", "/debug/traces?limit=256")
        assert status == 200
        assert trace_id not in {t["trace_id"] for t in body["traces"]}
    finally:
        conn.close()


@pytest.mark.parametrize("header", [
    "garbage", "00-zz-xx-01", "00-" + "0" * 32 + "-" + "1" * 16 + "-01",
    "ff-" + "a" * 32 + "-" + "b" * 16 + "-01"])
def test_malformed_traceparent_starts_fresh_trace_not_500(served, header):
    conn = _conn(served)
    try:
        status, body, headers = http_json(
            conn, "POST", "/v1/live/topk", {"node": 3, "k": 2},
            headers={"traceparent": header})
        assert status == 200
        assert len(body["neighbors"]) == 2
        trace_id = _header(headers, "x-trace-id")
        assert len(trace_id) == 32 and set(trace_id) <= HEX
        assert trace_id not in header
    finally:
        conn.close()


# ----------------------------------------------------------------------
# /debug endpoints
# ----------------------------------------------------------------------

def test_debug_traces_records_span_chain(served):
    conn = _conn(served)
    try:
        status, _, headers = http_json(conn, "POST", "/v1/live/topk",
                                       {"node": 5, "k": 3})
        assert status == 200
        trace_id = _header(headers, "x-trace-id")
        status, body, _ = http_json(conn, "GET", "/debug/traces?limit=256")
        assert status == 200
        record = next(t for t in body["traces"]
                      if t["trace_id"] == trace_id)
        assert record["route"] == "/v1/{model}/topk"
        assert record["status"] == 200
        assert record["duration_ms"] > 0
        assert record["queue_wait_ms"] >= 0
        assert record["batch_size"] >= 1
        names = _span_names(record["tree"])
        for expected in ("http.request", "http.queue", "http.batch",
                         "serving.engine"):
            assert expected in names, names
        batch = _find_span(record["tree"], "http.batch")
        assert trace_id in batch["attributes"]["member_trace_ids"]
        engine = _find_span(batch, "serving.engine")
        assert engine is not None          # engine nests under the batch
    finally:
        conn.close()


def test_debug_traces_filters(served):
    conn = _conn(served)
    try:
        http_json(conn, "POST", "/v1/live/topk", {"node": 6})
        http_json(conn, "GET", "/healthz")
        status, body, _ = http_json(
            conn, "GET", "/debug/traces?route=/healthz&limit=5")
        assert status == 200
        assert body["traces"]
        assert all(t["route"] == "/healthz" for t in body["traces"])
        status, body, _ = http_json(
            conn, "GET", "/debug/traces?status=200&min_ms=0.0&limit=2")
        assert status == 200
        assert len(body["traces"]) <= 2
        status, body, _ = http_json(
            conn, "GET", "/debug/traces?min_ms=1e9")
        assert status == 200 and body["traces"] == []
        status, _, _ = http_json(conn, "GET", "/debug/traces?limit=junk")
        assert status == 400
        status, _, _ = http_json(conn, "POST", "/debug/traces")
        assert status == 405
    finally:
        conn.close()


def test_debug_vars_surface(served):
    conn = _conn(served)
    try:
        http_json(conn, "POST", "/v1/live/topk", {"node": 7})
        status, body, _ = http_json(conn, "GET", "/debug/vars")
        assert status == 200
        assert body["models"] == ["live"]
        assert body["obs_enabled"] is True
        assert body["config"]["max_batch"] == 64
        assert body["config"]["trace_sample"] == 1.0
        assert body["uptime_seconds"] >= 0
        assert body["trace_ring"]["recorded"] >= 1
        assert body["access_log"]["written"] >= 1
        assert any(b["model"] == "live" for b in body["batchers"])
        names = {c["name"] for c in body["metrics"]["counters"]}
        assert "http_requests_total" in names
    finally:
        conn.close()


def test_latency_histograms_carry_exemplars(served):
    conn = _conn(served)
    try:
        status, _, headers = http_json(conn, "POST", "/v1/live/topk",
                                       {"node": 9, "k": 2})
        assert status == 200
        trace_id = _header(headers, "x-trace-id")
    finally:
        conn.close()
    snapshot = obs.snapshot(spans=False)
    by_name = {}
    for hist in snapshot["histograms"]:
        for ex in hist.get("exemplars", ()):
            by_name.setdefault(hist["name"], set()).add(
                ex["labels"]["trace_id"])
    assert trace_id in by_name["http_request_seconds"]
    assert trace_id in by_name["serving_topk_seconds"]
    assert trace_id in by_name["http_queue_wait_seconds"]


# ----------------------------------------------------------------------
# access log
# ----------------------------------------------------------------------

def test_access_log_lines_are_complete_json(served, access_buffer):
    conn = _conn(served)
    try:
        status, _, headers = http_json(conn, "POST", "/v1/live/topk",
                                       {"node": 11, "k": 4})
        assert status == 200
        trace_id = _header(headers, "x-trace-id")
    finally:
        conn.close()
    served.access_log.flush()
    records = [json.loads(line)
               for line in access_buffer.getvalue().splitlines()]
    record = next(r for r in records if r.get("trace_id") == trace_id)
    assert record["route"] == "/v1/{model}/topk"
    assert record["method"] == "POST"
    assert record["status"] == 200
    assert record["model"] == "live" and record["k"] == 4
    assert record["queue_wait_ms"] >= 0
    assert record["batch_size"] >= 1
    assert record["engine_ms"] > 0
    assert record["duration_ms"] > 0


def test_sampling_off_keeps_serving_but_skips_ring():
    registry = ServingRegistry()
    registry.register("m", generation_embedding(0, n=N, dim=DIM),
                      cache_size=0)
    server = ServingHTTPServer(
        registry, config=HTTPServingConfig(trace_sample=0.0)).start(port=0)
    try:
        conn = _conn(server)
        try:
            for _ in range(5):
                status, _, headers = http_json(conn, "POST", "/v1/m/topk",
                                               {"node": 1})
                assert status == 200
                assert _header(headers, "traceparent").endswith("-00")
            status, body, _ = http_json(conn, "GET", "/debug/traces")
            assert status == 200 and body["traces"] == []
        finally:
            conn.close()
    finally:
        server.stop(close_registry=True)


# ----------------------------------------------------------------------
# the acceptance storm: >= 32 concurrent requests
# ----------------------------------------------------------------------

def test_storm_traces_batches_and_logs(served, access_buffer):
    clients = 32
    results: list = [None] * clients
    barrier = threading.Barrier(clients, timeout=30)

    def one(i):
        conn = _conn(served)
        try:
            barrier.wait()
            results[i] = http_json(conn, "POST", "/v1/live/topk",
                                   {"node": i % N, "k": 5})
        finally:
            conn.close()

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)

    # every 2xx response carries a trace id
    trace_ids = set()
    for status, body, headers in results:
        assert status == 200
        trace_id = _header(headers, "x-trace-id")
        assert len(trace_id) == 32 and set(trace_id) <= HEX
        trace_ids.add(trace_id)
    assert len(trace_ids) == clients

    # sampled traces show the full chain, and at least one batch span
    # is linked to >= 2 member requests (32 clients vs max_delay=5ms
    # on one event loop guarantees coalescing)
    conn = _conn(served)
    try:
        status, body, _ = http_json(
            conn, "GET", "/debug/traces?route=/v1/{model}/topk&limit=256")
    finally:
        conn.close()
    assert status == 200
    mine = [t for t in body["traces"] if t["trace_id"] in trace_ids]
    assert len(mine) == clients
    max_members = 0
    for record in mine:
        names = _span_names(record["tree"])
        for expected in ("http.request", "http.queue", "http.batch",
                         "serving.engine"):
            assert expected in names, names
        batch = _find_span(record["tree"], "http.batch")
        members = batch["attributes"]["member_trace_ids"]
        assert record["trace_id"] in members
        assert len(members) == batch["attributes"]["batch_size"]
        max_members = max(max_members, len(members))
    assert max_members >= 2, "no batch span linked to >=2 member requests"

    # one valid-JSON access-log line per request, queue wait + batch
    # size attached
    served.access_log.flush()
    records = [json.loads(line)
               for line in access_buffer.getvalue().splitlines()]
    mine_logs = [r for r in records if r.get("trace_id") in trace_ids]
    assert len(mine_logs) == clients
    for record in mine_logs:
        assert record["status"] == 200
        assert record["queue_wait_ms"] >= 0
        assert record["batch_size"] >= 1
    assert any(r["batch_size"] >= 2 for r in mine_logs)


# ----------------------------------------------------------------------
# `repro-serve serve`: SIGTERM drain flushes buffers
# ----------------------------------------------------------------------

def _wait_ready(path, timeout: float = 15.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.is_file():
            return json.loads(path.read_text(encoding="utf-8"))
        time.sleep(0.05)
    raise AssertionError(f"server never wrote {path}")


def test_cli_serve_sigterm_drains_and_flushes(tmp_path, capsys):
    if threading.current_thread() is not threading.main_thread():
        pytest.skip("signal handlers need the main thread")
    export_store(generation_embedding(0, n=N, dim=DIM),
                 tmp_path / "store")
    ready = tmp_path / "ready.json"
    access = tmp_path / "access.log"
    metrics_path = tmp_path / "metrics.json"
    failures: list = []

    def client_then_sigterm():
        try:
            info = _wait_ready(ready)
            conn = http.client.HTTPConnection(info["host"], info["port"],
                                              timeout=10)
            try:
                status, _, headers = http_json(conn, "POST", "/v1/m/topk",
                                               {"node": 1, "k": 3})
                assert status == 200
                assert _header(headers, "x-trace-id")
            finally:
                conn.close()
        except Exception as exc:   # surface in the main thread's assert
            failures.append(exc)
        finally:
            signal.raise_signal(signal.SIGTERM)

    helper = threading.Thread(target=client_then_sigterm, daemon=True)
    helper.start()
    # main() runs in the pytest main thread so _cmd_serve installs its
    # SIGTERM handler; --max-seconds is only the safety net
    code = main(["--metrics-json", str(metrics_path),
                 "serve", str(tmp_path / "store"), "--port", "0",
                 "--name", "m", "--max-seconds", "30",
                 "--max-delay", "0.001", "--ready-file", str(ready),
                 "--access-log", str(access),
                 "--trace-sample", "1.0"])
    helper.join(timeout=10)
    assert not failures, failures
    assert code == 0
    events = [json.loads(line)
              for line in capsys.readouterr().out.strip().splitlines()]
    assert [e["event"] for e in events] == ["serving", "stopped"]

    # the drain path flushed the access log buffers to disk...
    records = [json.loads(line)
               for line in access.read_text().strip().splitlines()]
    topk = [r for r in records if r["route"] == "/v1/{model}/topk"]
    assert topk and topk[0]["status"] == 200
    assert "trace_id" in topk[0] and "batch_size" in topk[0]
    # ...and --metrics-json still wrote the final snapshot
    snapshot = json.loads(metrics_path.read_text())
    names = {c["name"] for c in snapshot["counters"]}
    assert "http_requests_total" in names
    obs.set_enabled(False)
    obs.get_registry().clear()
