"""Tests for graph ops (removal, subgraph, CC) and task splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import (arc_ids, arc_index_of, erdos_renyi, from_edges,
                         largest_connected_component, link_prediction_split,
                         remove_arcs, sample_non_edges, subgraph,
                         train_test_nodes)


def test_remove_arcs_undirected(fig1):
    g = remove_arcs(fig1, [0], [1])
    assert not g.has_edge(0, 1)
    assert not g.has_arc(1, 0)
    assert g.num_edges == fig1.num_edges - 1
    assert not g.directed


def test_remove_arcs_directed(tiny_directed):
    g = remove_arcs(tiny_directed, [0], [1])
    assert not g.has_arc(0, 1)
    assert g.num_arcs == tiny_directed.num_arcs - 1


def test_remove_missing_arc_is_noop(fig1):
    g = remove_arcs(fig1, [1], [3])     # (v2, v4) is not an edge
    assert g.num_edges == fig1.num_edges


def test_arc_ids_unique(fig1):
    ids = arc_ids(fig1)
    assert len(np.unique(ids)) == fig1.num_arcs


def test_arc_index_of(fig1):
    src, dst = fig1.arcs()
    idx = arc_index_of(fig1, src[:5], dst[:5])
    assert np.array_equal(idx, np.arange(5))
    missing = arc_index_of(fig1, np.array([1]), np.array([3]))
    assert missing[0] == -1


def test_subgraph_remaps_ids(fig1):
    sub = subgraph(fig1, [0, 1, 2, 3, 4])    # the dense v1..v5 cluster
    assert sub.num_nodes == 5
    assert sub.num_edges == 8                # 12 total - 4 path edges


def test_subgraph_directed(tiny_directed):
    sub = subgraph(tiny_directed, [0, 1, 2])
    assert sub.directed
    assert sub.has_arc(0, 1) and sub.has_arc(2, 0)


def test_largest_connected_component():
    # two components: a triangle and an edge
    g = from_edges(5, [0, 1, 2, 3], [1, 2, 0, 4], directed=False)
    cc = largest_connected_component(g)
    assert cc.num_nodes == 3
    assert cc.num_edges == 3


def test_sample_non_edges_are_not_edges(fig1):
    src, dst = sample_non_edges(fig1, 10, seed=0)
    assert len(src) == 10
    for u, v in zip(src.tolist(), dst.tolist()):
        assert not fig1.has_edge(u, v)
        assert u != v


def test_sample_non_edges_distinct(er_graph):
    src, dst = sample_non_edges(er_graph, 500, seed=1)
    keys = src * er_graph.num_nodes + dst
    assert len(np.unique(keys)) == 500


def test_sample_non_edges_respects_forbidden(er_graph):
    forbidden_src, forbidden_dst = sample_non_edges(er_graph, 50, seed=2)
    fkeys = np.sort(forbidden_src * er_graph.num_nodes + forbidden_dst)
    src, dst = sample_non_edges(er_graph, 200, seed=3, forbidden_keys=fkeys)
    keys = src * er_graph.num_nodes + dst
    assert len(np.intersect1d(keys, fkeys)) == 0


def test_sample_non_edges_too_many():
    g = from_edges(3, [0], [1], directed=False)
    with pytest.raises(ParameterError):
        sample_non_edges(g, 100, seed=0)


def test_link_prediction_split_counts(er_graph):
    split = link_prediction_split(er_graph, test_fraction=0.3, seed=0)
    expect = int(round(er_graph.num_edges * 0.3))
    assert len(split.pos_src) == expect
    assert len(split.neg_src) == expect
    assert split.train_graph.num_edges == er_graph.num_edges - expect


def test_link_prediction_split_positives_removed(er_graph):
    split = link_prediction_split(er_graph, seed=1)
    for u, v in zip(split.pos_src[:50].tolist(), split.pos_dst[:50].tolist()):
        assert er_graph.has_edge(u, v)
        assert not split.train_graph.has_edge(u, v)


def test_link_prediction_split_negatives_not_in_original(er_graph):
    split = link_prediction_split(er_graph, seed=2)
    for u, v in zip(split.neg_src[:50].tolist(), split.neg_dst[:50].tolist()):
        assert not er_graph.has_edge(u, v)


def test_link_prediction_test_pairs_labels(er_graph):
    split = link_prediction_split(er_graph, seed=3)
    src, dst, labels = split.test_pairs
    assert len(src) == len(dst) == len(labels)
    assert labels.sum() == len(split.pos_src)


def test_link_prediction_split_directed(small_directed):
    split = link_prediction_split(small_directed, seed=4)
    assert split.train_graph.directed
    # ordered pairs: the reverse arc may legitimately remain
    u, v = int(split.pos_src[0]), int(split.pos_dst[0])
    assert not split.train_graph.has_arc(u, v)


def test_link_prediction_rejects_bad_fraction(er_graph):
    with pytest.raises(ParameterError):
        link_prediction_split(er_graph, test_fraction=0.0)


@given(st.floats(0.1, 0.9))
@settings(max_examples=10, deadline=None)
def test_train_test_nodes_partition(frac):
    train, test = train_test_nodes(100, frac, seed=0)
    assert len(train) + len(test) == 100
    assert len(np.intersect1d(train, test)) == 0
    assert abs(len(train) - 100 * frac) <= 1


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 4), st.booleans(), st.integers(0, 2**31 - 1))
def test_add_arcs_inverts_remove_arcs(count, directed, seed):
    """Property: removing arcs then re-adding them restores the CSR."""
    graph = erdos_renyi(30, 120, directed=directed, seed=7)
    rng = np.random.default_rng(seed)
    src, dst = graph.edges()
    pick = rng.choice(len(src), size=min(count, len(src)), replace=False)
    removed = remove_arcs(graph, src[pick], dst[pick])
    from repro.graph import add_arcs
    restored = add_arcs(removed, src[pick], dst[pick])
    assert np.array_equal(restored.indptr, graph.indptr)
    assert np.array_equal(restored.indices, graph.indices)
    restored._validate()
