"""Tests for community-correlated label generation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graph import community_labels, labels_to_membership


def test_membership_shape_and_nonempty():
    comm = np.repeat([0, 1, 2], 40)
    mem = community_labels(comm, 10, seed=0)
    assert mem.shape == (120, 10)
    assert np.all(mem.sum(axis=1) >= 1)


def test_membership_binary():
    comm = np.repeat([0, 1], 30)
    mem = community_labels(comm, 5, seed=1)
    assert set(np.unique(mem)) <= {0, 1}


def test_labels_correlate_with_communities():
    comm = np.repeat([0, 1, 2, 3], 50)
    mem = community_labels(comm, 12, noise=0.05, seed=2)
    # nodes of the same community should share labels far more often
    same, diff = [], []
    rng = np.random.default_rng(0)
    for _ in range(400):
        i, j = rng.integers(0, 200, size=2)
        overlap = int((mem[i] & mem[j]).sum() > 0)
        (same if comm[i] == comm[j] else diff).append(overlap)
    assert np.mean(same) > np.mean(diff) + 0.2


def test_labels_deterministic():
    comm = np.repeat([0, 1], 25)
    a = community_labels(comm, 6, seed=3)
    b = community_labels(comm, 6, seed=3)
    assert np.array_equal(a, b)


def test_rejects_single_label():
    with pytest.raises(ParameterError):
        community_labels(np.zeros(10, dtype=int), 1)


def test_labels_to_membership():
    mem = labels_to_membership(np.array([0, 2, 1]), 3)
    assert mem.shape == (3, 3)
    assert mem.sum() == 3
    assert mem[1, 2] == 1


def test_labels_to_membership_infers_count():
    mem = labels_to_membership(np.array([0, 4]))
    assert mem.shape == (2, 5)
