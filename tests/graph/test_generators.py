"""Tests for the synthetic graph generators, incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import (barabasi_albert, chung_lu, erdos_renyi,
                         powerlaw_community, powerlaw_weights, rmat, sbm,
                         watts_strogatz)


def test_erdos_renyi_exact_edge_count():
    g = erdos_renyi(100, 300, seed=0)
    assert g.num_nodes == 100
    assert g.num_edges == 300


def test_erdos_renyi_directed():
    g = erdos_renyi(50, 200, directed=True, seed=1)
    assert g.directed and g.num_edges == 200


def test_erdos_renyi_deterministic():
    a = erdos_renyi(60, 150, seed=7)
    b = erdos_renyi(60, 150, seed=7)
    assert np.array_equal(a.indices, b.indices)


def test_erdos_renyi_rejects_too_many_edges():
    with pytest.raises(ParameterError):
        erdos_renyi(4, 100, seed=0)


def test_erdos_renyi_no_self_loops():
    g = erdos_renyi(30, 100, seed=2)
    src, dst = g.arcs()
    assert np.all(src != dst)


@given(st.integers(10, 60), st.integers(20, 80), st.booleans())
@settings(max_examples=15, deadline=None)
def test_erdos_renyi_property(n, m, directed):
    limit = n * (n - 1) // (1 if directed else 2)
    m = min(m, limit)
    g = erdos_renyi(n, m, directed=directed, seed=3)
    assert g.num_edges == m
    src, dst = g.arcs()
    assert np.all(src != dst)
    if not directed:
        a = g.adjacency()
        assert (a != a.T).nnz == 0


def test_powerlaw_weights_heavy_tail():
    w = powerlaw_weights(5000, exponent=2.2, seed=0)
    assert w.min() >= 1.0
    assert w.max() / np.median(w) > 5.0      # heavy tail exists


def test_powerlaw_weights_rejects_bad_exponent():
    with pytest.raises(ParameterError):
        powerlaw_weights(10, exponent=0.9)


def test_chung_lu_respects_weights():
    w = np.ones(100)
    w[:5] = 50.0
    g = chung_lu(w, 400, seed=0)
    deg = g.out_degrees
    assert deg[:5].mean() > 4 * deg[5:].mean()


def test_powerlaw_community_returns_communities():
    g, comm = powerlaw_community(300, 1500, num_communities=6, seed=0)
    assert g.num_edges == 1500
    assert comm.shape == (300,)
    assert set(np.unique(comm)) <= set(range(6))


def test_powerlaw_community_mixing_controls_locality():
    g_lo, comm = powerlaw_community(400, 2000, num_communities=4,
                                    mixing=0.05, seed=1)
    g_hi, comm_hi = powerlaw_community(400, 2000, num_communities=4,
                                       mixing=0.9, seed=1)

    def intra_fraction(g, c):
        src, dst = g.edges()
        return float((c[src] == c[dst]).mean())

    assert intra_fraction(g_lo, comm) > intra_fraction(g_hi, comm_hi) + 0.2


def test_powerlaw_community_rejects_bad_mixing():
    with pytest.raises(ParameterError):
        powerlaw_community(50, 100, mixing=1.5)


def test_sbm_blocks():
    g, block = sbm([30, 30], 0.3, 0.01, seed=0)
    src, dst = g.edges()
    intra = (block[src] == block[dst]).mean()
    assert intra > 0.8


def test_barabasi_albert_degree_skew():
    g = barabasi_albert(300, 2, seed=0)
    deg = np.sort(g.out_degrees)[::-1]
    assert deg[0] > 4 * np.median(deg)
    assert g.num_nodes == 300


def test_barabasi_albert_rejects_bad_attach():
    with pytest.raises(ParameterError):
        barabasi_albert(10, 0)


def test_watts_strogatz_degree():
    g = watts_strogatz(100, 4, 0.0, seed=0)
    assert np.all(g.out_degrees >= 2)
    assert g.num_edges == 200


def test_watts_strogatz_rejects_odd_degree():
    with pytest.raises(ParameterError):
        watts_strogatz(20, 3, 0.1)


def test_rmat_size_and_skew():
    g = rmat(8, 1000, seed=0)
    assert g.num_nodes == 256
    assert g.num_edges == 1000
    deg = np.sort(np.asarray(g.out_degrees))[::-1]
    assert deg[0] >= 4 * max(np.median(deg), 1)


def test_rmat_rejects_bad_probs():
    with pytest.raises(ParameterError):
        rmat(5, 10, a=0.5, b=0.4, c=0.3)
