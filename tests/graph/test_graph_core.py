"""Unit tests for the CSR Graph class."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph, from_edges


def test_num_nodes_edges_undirected(fig1):
    assert fig1.num_nodes == 9
    assert fig1.num_edges == 12
    assert fig1.num_arcs == 24
    assert not fig1.directed


def test_degree_sequence_matches_paper(fig1):
    # Example 2 initializes forward weights to d_out = [3,3,4,3,4,2,2,2,1]
    assert fig1.out_degrees.tolist() == [3, 3, 4, 3, 4, 2, 2, 2, 1]
    assert fig1.in_degrees.tolist() == fig1.out_degrees.tolist()


def test_out_neighbors_sorted(fig1):
    for v in range(fig1.num_nodes):
        row = fig1.out_neighbors(v)
        assert np.all(np.diff(row) > 0)


def test_has_edge_and_arc(fig1):
    assert fig1.has_edge(0, 1)
    assert fig1.has_edge(1, 0)          # undirected: order-insensitive
    assert not fig1.has_edge(1, 3)      # the (v2, v4) non-edge of the paper
    assert not fig1.has_edge(0, 0)


def test_directed_has_arc(tiny_directed):
    assert tiny_directed.has_arc(0, 1)
    assert not tiny_directed.has_arc(1, 0)
    assert tiny_directed.has_edge(2, 0) and tiny_directed.has_arc(0, 2)


def test_in_degrees_directed(tiny_directed):
    src, dst = tiny_directed.arcs()
    expect = np.bincount(dst, minlength=6)
    assert tiny_directed.in_degrees.tolist() == expect.tolist()


def test_arcs_roundtrip(fig1):
    src, dst = fig1.arcs()
    rebuilt = from_edges(9, *fig1.edges(), directed=False)
    assert np.array_equal(rebuilt.indptr, fig1.indptr)
    assert np.array_equal(rebuilt.indices, fig1.indices)
    assert len(src) == fig1.num_arcs


def test_edges_unique_undirected(fig1):
    src, dst = fig1.edges()
    assert len(src) == 12
    assert np.all(src <= dst)


def test_adjacency_symmetric_for_undirected(fig1):
    a = fig1.adjacency()
    assert (a != a.T).nnz == 0


def test_transition_matrix_rows_sum_to_one(fig1):
    p = fig1.transition_matrix()
    rows = np.asarray(p.sum(axis=1)).ravel()
    assert np.allclose(rows, 1.0)


def test_transition_matrix_dangling_rows_zero():
    g = from_edges(3, [0], [1], directed=True)   # node 1, 2 dangling
    p = g.transition_matrix()
    rows = np.asarray(p.sum(axis=1)).ravel()
    assert rows[0] == pytest.approx(1.0)
    assert rows[1] == 0.0 and rows[2] == 0.0


def test_out_degree_inverse_handles_dangling():
    g = from_edges(3, [0], [1], directed=True)
    inv = g.out_degree_inverse()
    assert inv[0] == pytest.approx(1.0)
    assert inv[1] == 0.0


def test_transpose_reverses_arcs(tiny_directed):
    t = tiny_directed.transpose()
    src, dst = tiny_directed.arcs()
    for u, v in zip(src.tolist(), dst.tolist()):
        assert t.has_arc(v, u)
    assert t.num_arcs == tiny_directed.num_arcs


def test_transpose_of_undirected_is_self(fig1):
    assert fig1.transpose() is fig1


def test_transpose_cached(tiny_directed):
    assert tiny_directed.transpose() is tiny_directed.transpose()


def test_as_undirected(tiny_directed):
    und = tiny_directed.as_undirected()
    assert not und.directed
    a = und.adjacency()
    assert (a != a.T).nnz == 0
    # every original arc survives as an undirected edge
    src, dst = tiny_directed.arcs()
    for u, v in zip(src.tolist(), dst.tolist()):
        assert und.has_edge(u, v)


def test_validate_rejects_bad_indptr():
    with pytest.raises(GraphFormatError):
        Graph(np.array([0, 2, 1]), np.array([1, 0]), directed=True,
              validate=True)


def test_validate_rejects_out_of_range():
    with pytest.raises(GraphFormatError):
        Graph(np.array([0, 1]), np.array([5]), directed=True, validate=True)
