"""Tests for graph constructors and edge-list IO."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (from_edges, from_scipy, read_edge_list,
                         write_edge_list)


def test_from_edges_dedup():
    g = from_edges(4, [0, 0, 0], [1, 1, 2], directed=True)
    assert g.num_arcs == 2
    assert g.out_neighbors(0).tolist() == [1, 2]


def test_from_edges_drops_self_loops():
    g = from_edges(3, [0, 1], [0, 2], directed=True)
    assert g.num_arcs == 1
    assert g.has_arc(1, 2)


def test_from_edges_keeps_self_loops_when_asked():
    g = from_edges(3, [0], [0], directed=True, drop_self_loops=False)
    assert g.has_arc(0, 0)


def test_from_edges_symmetrizes_undirected():
    g = from_edges(3, [0], [1], directed=False)
    assert g.has_arc(0, 1) and g.has_arc(1, 0)
    assert g.num_edges == 1


def test_from_edges_rejects_out_of_range():
    with pytest.raises(GraphFormatError):
        from_edges(2, [0], [5], directed=True)


def test_from_edges_rejects_mismatched_lengths():
    with pytest.raises(GraphFormatError):
        from_edges(3, [0, 1], [1], directed=True)


def test_from_scipy_roundtrip(fig1):
    g = from_scipy(fig1.adjacency(), directed=False)
    assert np.array_equal(g.indptr, fig1.indptr)
    assert np.array_equal(g.indices, fig1.indices)


def test_from_scipy_rejects_nonsquare():
    import scipy.sparse as sp
    with pytest.raises(GraphFormatError):
        from_scipy(sp.csr_matrix((2, 3)), directed=True)


def test_edge_list_roundtrip(tmp_path, fig1):
    path = tmp_path / "graph.txt"
    write_edge_list(fig1, path)
    g = read_edge_list(path, directed=False, num_nodes=9)
    assert np.array_equal(g.indptr, fig1.indptr)
    assert np.array_equal(g.indices, fig1.indices)


def test_read_edge_list_from_stream():
    g = read_edge_list(io.StringIO("# comment\n0 1\n1 2\n"), directed=True)
    assert g.num_nodes == 3
    assert g.has_arc(0, 1) and g.has_arc(1, 2)


def test_read_edge_list_rejects_garbage():
    with pytest.raises(GraphFormatError):
        read_edge_list(io.StringIO("0 x\n"), directed=True)


def test_read_edge_list_rejects_short_line():
    with pytest.raises(GraphFormatError):
        read_edge_list(io.StringIO("42\n"), directed=True)
