"""Tests for the 18 competitor methods: registry, interface contract,
and method-specific behaviors."""

import numpy as np
import pytest

from repro.baselines import (BASELINE_REGISTRY, STRAP, AROPE,
                             available_methods, make_embedder,
                             pruned_ppr_matrix, pruned_ppr_matrix_push)
from repro.errors import ParameterError, ReproError
from repro.ppr import ppr_matrix_dense

#: every registered method, fitted once per session on the shared graphs
CHEAP_METHODS = ["arope", "randne", "prone", "strap", "spectral", "nethiex",
                 "netmf", "netsmf", "drne", "ga", "graphwave", "rare",
                 "app", "verse", "pbg", "line", "graphgan", "dngr"]
WALK_METHODS = ["deepwalk", "node2vec"]

# fits the entire 18-method roster: the heavyweight baseline suite,
# excluded from the tier-1 fast job
pytestmark = pytest.mark.slow


def test_registry_contains_paper_roster():
    expect = {"arope", "randne", "netmf", "netsmf", "prone", "strap",
              "deepwalk", "line", "node2vec", "pbg", "app", "verse",
              "dngr", "drne", "graphgan", "ga", "rare", "nethiex",
              "graphwave", "spectral"}
    assert expect <= set(BASELINE_REGISTRY)


def test_available_methods_includes_core():
    methods = available_methods()
    assert "nrp" in methods and "approxppr" in methods


def test_make_embedder_unknown_name():
    with pytest.raises(ParameterError):
        make_embedder("word2vec-classic")


def test_make_embedder_passes_overrides():
    m = make_embedder("deepwalk", 16, walks_per_node=2)
    assert m.walks_per_node == 2


@pytest.mark.parametrize("name", CHEAP_METHODS)
def test_interface_contract_undirected(name, small_undirected):
    """Every method: fits, finite features of the right shape, scores."""
    kwargs = {"samples_per_node": 10} if name in ("app", "verse") else {}
    if name == "deepwalk":
        kwargs = {"walks_per_node": 2, "walk_length": 10}
    model = make_embedder(name, 16, seed=0, **kwargs).fit(small_undirected)
    feats = model.node_features()
    assert feats.shape == (small_undirected.num_nodes, 16)
    assert np.all(np.isfinite(feats))
    scores = model.score_pairs([0, 1, 2], [3, 4, 5])
    assert scores.shape == (3,)
    assert np.all(np.isfinite(scores))


@pytest.mark.parametrize("name", WALK_METHODS)
def test_walk_methods_contract(name, small_undirected):
    model = make_embedder(name, 16, seed=0, walks_per_node=2,
                          walk_length=10, epochs=1).fit(small_undirected)
    feats = model.node_features()
    assert feats.shape == (small_undirected.num_nodes, 16)
    assert np.all(np.isfinite(feats))


@pytest.mark.parametrize("name", ["strap", "app", "ga"])
def test_directional_methods_emit_two_sides(name, small_directed):
    kwargs = {"samples_per_node": 10} if name == "app" else {}
    model = make_embedder(name, 16, seed=0, **kwargs).fit(small_directed)
    assert model.directional
    assert model.forward_.shape == (small_directed.num_nodes, 8)
    assert model.backward_.shape == (small_directed.num_nodes, 8)


def test_score_before_fit_raises():
    with pytest.raises(ReproError):
        make_embedder("arope", 8).score_pairs([0], [1])


def test_lp_scoring_declarations():
    assert make_embedder("arope", 8).lp_scoring == "inner"
    assert make_embedder("deepwalk", 8).lp_scoring == "edge_features"
    assert make_embedder("verse", 8).lp_scoring == "auto"
    assert make_embedder("pbg", 8).lp_scoring == "auto"


# ----------------------------------------------------------------- STRAP
def test_pruned_ppr_matrix_close_to_exact(fig1):
    pi = ppr_matrix_dense(fig1, 0.15)
    approx = pruned_ppr_matrix(fig1, 0.15, delta=1e-7).toarray()
    assert np.abs(pi - approx).max() < 1e-4


def test_pruned_ppr_matrix_threshold(fig1):
    delta = 1e-2
    approx = pruned_ppr_matrix(fig1, 0.15, delta=delta)
    assert approx.data.min() >= delta / 2.0


def test_pruned_ppr_agrees_with_backward_push(fig1):
    """The STRAP substitution: pruned power iteration vs per-node push."""
    from repro.ppr import backward_push
    approx = pruned_ppr_matrix(fig1, 0.15, delta=1e-6).toarray()
    for target in range(9):
        push, _ = backward_push(fig1, target, 0.15, r_max=1e-8)
        np.testing.assert_allclose(approx[:, target], push, atol=1e-4)


def test_strap_uses_transpose_proximity(small_directed):
    """STRAP's scores must rank high-transpose-proximity pairs first."""
    model = STRAP(dim=32, delta=1e-5, seed=0).fit(small_directed)
    pi = ppr_matrix_dense(small_directed, 0.15)
    target = pi + pi.T
    n = small_directed.num_nodes
    rng = np.random.default_rng(0)
    idx = rng.integers(0, n, size=(800, 2))
    scores = model.score_pairs(idx[:, 0], idx[:, 1])
    truth = np.array([target[i, j] for i, j in idx])
    # the top-decile target pairs must receive clearly higher scores
    hi = truth >= np.quantile(truth, 0.9)
    assert scores[hi].mean() > scores[~hi].mean() + 1e-4
    # and the linear correlation should be decidedly positive
    assert np.corrcoef(scores, truth)[0, 1] > 0.4


def test_strap_rejects_bad_delta(fig1):
    with pytest.raises(ParameterError):
        pruned_ppr_matrix(fig1, 0.15, delta=0.0)
    with pytest.raises(ParameterError):
        pruned_ppr_matrix_push(fig1, 0.15, delta=0.0)
    with pytest.raises(ParameterError):
        pruned_ppr_matrix_push(fig1, 0.15, delta=1e-4, batch_size=0)
    with pytest.raises(ParameterError):
        STRAP(dim=8, solver="quantum")


def test_pruned_push_matrix_matches_exact_within_delta(fig1):
    """The kernel-backed per-target push matrix: entries within the
    additive backward-push bound (delta/2), nothing kept below delta/2."""
    delta = 1e-4
    pi = ppr_matrix_dense(fig1, 0.15)
    approx = pruned_ppr_matrix_push(fig1, 0.15, delta=delta, batch_size=4)
    dense = approx.toarray()
    assert np.all(dense <= pi + 1e-10)
    assert np.max(pi - dense) <= delta + 1e-10
    assert approx.data.min() >= delta / 2.0


def test_pruned_push_agrees_with_power_solver(fig1):
    """Both STRAP matrix builders approximate the same Pi."""
    power = pruned_ppr_matrix(fig1, 0.15, delta=1e-6).toarray()
    push = pruned_ppr_matrix_push(fig1, 0.15, delta=1e-6).toarray()
    np.testing.assert_allclose(power, push, atol=1e-4)


def test_strap_push_solver_embeds_like_power(small_directed):
    """STRAP(solver='push') trains on the push-built matrix and ranks
    transpose-proximity pairs just like the power-iteration solver."""
    model = STRAP(dim=32, delta=1e-4, solver="push", seed=0)
    model.fit(small_directed)
    pi = ppr_matrix_dense(small_directed, 0.15)
    target = pi + pi.T
    n = small_directed.num_nodes
    rng = np.random.default_rng(0)
    idx = rng.integers(0, n, size=(800, 2))
    scores = model.score_pairs(idx[:, 0], idx[:, 1])
    truth = np.array([target[i, j] for i, j in idx])
    assert np.corrcoef(scores, truth)[0, 1] > 0.4


# ----------------------------------------------------------------- AROPE
def test_arope_order_weights_change_embedding(small_undirected):
    a = AROPE(dim=16, order_weights=(1.0,), seed=0).fit(small_undirected)
    b = AROPE(dim=16, order_weights=(0.0, 0.0, 1.0),
              seed=0).fit(small_undirected)
    assert not np.allclose(a.embedding_, b.embedding_)


def test_arope_first_order_matches_eigsh(small_undirected):
    """With weights (1,), AROPE reduces to adjacency eigen-embedding."""
    model = AROPE(dim=8, order_weights=(1.0,), seed=0).fit(small_undirected)
    recon = model.embedding_ @ model.embedding_.T
    a = small_undirected.adjacency().toarray()
    # reconstruction error no worse than twice the optimal rank-8 error
    from repro.linalg import sparse_eigsh
    vals, vecs = sparse_eigsh(small_undirected.adjacency(), 8, which="LM")
    best = vecs @ np.diag(vals) @ vecs.T
    assert (np.linalg.norm(a - np.abs(recon) * np.sign(recon), "fro")
            <= 2.0 * np.linalg.norm(a - best, "fro") + 1e-6)


def test_arope_rejects_empty_weights():
    with pytest.raises(ParameterError):
        AROPE(dim=8, order_weights=())


# ------------------------------------------------------------ guard rails
def test_netmf_refuses_huge_graph(small_undirected):
    model = make_embedder("netmf", 8, max_dense_nodes=10)
    with pytest.raises(ParameterError):
        model.fit(small_undirected)


def test_ga_refuses_huge_graph(small_undirected):
    model = make_embedder("ga", 8, max_dense_nodes=10)
    with pytest.raises(ParameterError):
        model.fit(small_undirected)


def test_ga_attention_is_distribution(small_undirected):
    model = make_embedder("ga", 8, seed=0).fit(small_undirected)
    att = model.attention_
    assert att.min() >= 0
    assert att.sum() == pytest.approx(1.0)


def test_rare_scores_are_probabilities(small_undirected):
    model = make_embedder("rare", 16, epochs=2, seed=0).fit(small_undirected)
    scores = model.score_pairs(np.arange(10), np.arange(10, 20))
    assert np.all((scores >= 0) & (scores <= 1))


def test_rare_popularity_tracks_degree(small_undirected):
    model = make_embedder("rare", 16, epochs=3, seed=0).fit(small_undirected)
    deg = small_undirected.out_degrees
    # popularity should correlate positively with degree
    corr = np.corrcoef(model.popularity_, deg)[0, 1]
    assert corr > 0.3


def test_nethiex_taxonomy_levels(small_undirected):
    model = make_embedder("nethiex", 16, branches=4,
                          seed=0).fit(small_undirected)
    level1, level2 = model.taxonomy_
    assert len(np.unique(level1)) <= 4
    assert (level2 // 4 == level1).all()


def test_methods_deterministic(small_undirected):
    for name in ("arope", "randne", "prone", "strap"):
        a = make_embedder(name, 16, seed=5).fit(small_undirected)
        b = make_embedder(name, 16, seed=5).fit(small_undirected)
        np.testing.assert_array_equal(a.node_features(), b.node_features())
