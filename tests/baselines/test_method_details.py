"""Finer-grained behavioral tests for individual baseline methods."""

import numpy as np
import pytest

from repro.baselines import make_embedder
from repro.graph import from_edges, powerlaw_community


def test_line_concatenates_two_halves(small_undirected):
    model = make_embedder("line", 32, samples_per_edge=10,
                          seed=0).fit(small_undirected)
    emb = model.embedding_
    assert emb.shape == (small_undirected.num_nodes, 32)
    # the two halves are trained independently and must differ
    assert not np.allclose(emb[:, :16], emb[:, 16:])


def test_line_first_order_pulls_neighbors_together(small_undirected):
    model = make_embedder("line", 32, samples_per_edge=40,
                          seed=0).fit(small_undirected)
    first = model.embedding_[:, :16]
    src, dst = small_undirected.edges()
    rng = np.random.default_rng(0)
    rand_dst = rng.integers(0, small_undirected.num_nodes, size=len(src))
    edge_sim = np.einsum("ij,ij->i", first[src], first[dst]).mean()
    rand_sim = np.einsum("ij,ij->i", first[src], first[rand_dst]).mean()
    assert edge_sim > rand_sim


def test_deepwalk_community_structure():
    graph, comm = powerlaw_community(150, 900, num_communities=3,
                                     mixing=0.05, seed=3)
    model = make_embedder("deepwalk", 16, walks_per_node=4, walk_length=15,
                          epochs=1, seed=0).fit(graph)
    emb = model.embedding_
    rng = np.random.default_rng(1)
    same, diff = [], []
    for _ in range(500):
        i, j = rng.integers(0, 150, size=2)
        sim = float(emb[i] @ emb[j])
        (same if comm[i] == comm[j] else diff).append(sim)
    assert np.mean(same) > np.mean(diff)


def test_verse_alpha_controls_locality(small_undirected):
    """Higher alpha -> shorter walks -> embeddings hug direct neighbors."""
    local = make_embedder("verse", 16, alpha=0.5, samples_per_node=50,
                          seed=0).fit(small_undirected)
    assert local.embedding_.shape == (small_undirected.num_nodes, 16)


def test_dngr_surfing_matrix_prunes(small_undirected):
    from repro.baselines.dngr import DNGR
    model = DNGR(dim=8, steps=4, prune=1e-2, epochs=1, seed=0)
    surf = model._surfing_matrix(small_undirected)
    assert surf.nnz < small_undirected.num_nodes ** 2
    assert surf.min() >= 0


def test_netsmf_embedding_sparsifier_nonneg(small_undirected):
    model = make_embedder("netsmf", 16, samples_per_edge=5,
                          seed=0).fit(small_undirected)
    assert np.all(np.isfinite(model.embedding_))


def test_graphwave_structural_equivalence():
    """Structurally identical nodes get (near-)identical GraphWave
    embeddings even when far apart — the method's defining property."""
    # two disjoint identical triangles
    g = from_edges(6, [0, 1, 2, 3, 4, 5], [1, 2, 0, 4, 5, 3],
                   directed=False)
    model = make_embedder("graphwave", 16, seed=0).fit(g)
    emb = model.embedding_
    np.testing.assert_allclose(emb[0], emb[3], atol=1e-8)
    np.testing.assert_allclose(emb[1], emb[4], atol=1e-8)


def test_prone_propagation_changes_base(small_undirected):
    from repro.baselines.prone import ProNE
    plain = make_embedder("randne", 16, seed=0).fit(small_undirected)
    prone = ProNE(dim=16, seed=0).fit(small_undirected)
    assert prone.embedding_.shape == plain.embedding_.shape
    assert np.all(np.isfinite(prone.embedding_))


def test_pbg_single_vector(small_directed):
    model = make_embedder("pbg", 16, epochs=1, seed=0).fit(small_directed)
    assert not model.directional
    assert model.embedding_.shape == (small_directed.num_nodes, 16)


def test_app_directionality(small_directed):
    model = make_embedder("app", 16, samples_per_node=20,
                          seed=0).fit(small_directed)
    fwd_score = model.score_pairs([0], [1])[0]
    bwd_score = model.score_pairs([1], [0])[0]
    # asymmetric by construction (different tables); scores rarely equal
    assert fwd_score != pytest.approx(bwd_score, abs=1e-12)


def test_drne_structural_feature_column(small_undirected):
    model = make_embedder("drne", 16, seed=0).fit(small_undirected)
    log_deg = np.log1p(small_undirected.out_degrees)
    np.testing.assert_allclose(model.embedding_[:, 0], log_deg, rtol=1e-12)


def test_graphgan_generator_scores_edges(small_undirected):
    model = make_embedder("graphgan", 16, rounds=10,
                          seed=0).fit(small_undirected)
    src, dst = small_undirected.edges()
    rng = np.random.default_rng(2)
    rand_dst = rng.integers(0, small_undirected.num_nodes, size=len(src))
    pos = model.score_pairs(src, dst).mean()
    neg = model.score_pairs(src, rand_dst).mean()
    assert pos > neg
