"""Tests for the numpy neural substrate (layers, optim, AE, SGNS)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.neural import (ACTIVATIONS, SGD, Adam, Autoencoder, Dense, SGNS,
                          unigram_noise)


# ------------------------------------------------------------------ layers
def test_dense_forward_shape():
    layer = Dense(4, 3, "relu", seed=0)
    out = layer.forward(np.ones((5, 4)))
    assert out.shape == (5, 3)
    assert np.all(out >= 0)


def test_dense_gradient_check():
    """Numerical gradient check of the dense layer backprop."""
    rng = np.random.default_rng(0)
    layer = Dense(3, 2, "tanh", seed=1)
    x = rng.standard_normal((4, 3))
    target = rng.standard_normal((4, 2))

    def loss():
        out = layer.forward(x)
        return 0.5 * float(((out - target) ** 2).sum())

    base = loss()
    out = layer.forward(x)
    layer.zero_grad()
    grad_in = layer.backward(out - target)

    eps = 1e-6
    # check weight gradient entries
    for i, j in [(0, 0), (2, 1), (1, 0)]:
        layer.weight[i, j] += eps
        up = loss()
        layer.weight[i, j] -= eps
        numeric = (up - base) / eps
        assert numeric == pytest.approx(layer.grad_weight[i, j], rel=1e-3)
    # check input gradient
    x2 = x.copy()
    x2[0, 1] += eps
    out2 = layer.forward(x2)
    up = 0.5 * float(((out2 - target) ** 2).sum())
    numeric = (up - base) / eps
    assert numeric == pytest.approx(grad_in[0, 1], rel=1e-3)


def test_dense_rejects_unknown_activation():
    with pytest.raises(ParameterError):
        Dense(2, 2, "gelu-ish")


def test_all_activations_defined():
    assert set(ACTIVATIONS) == {"relu", "sigmoid", "tanh", "identity"}
    for name, (fn, grad) in ACTIVATIONS.items():
        z = np.linspace(-2, 2, 11)
        out = fn(z)
        g = grad(z, out)
        assert out.shape == z.shape and g.shape == z.shape


# ------------------------------------------------------------------- optim
def test_sgd_step_direction():
    value = np.array([1.0, -1.0])
    grad = np.array([0.5, -0.5])
    SGD(lr=0.1).step([(value, grad)])
    np.testing.assert_allclose(value, [0.95, -0.95])


def test_sgd_momentum_accumulates():
    value = np.zeros(1)
    opt = SGD(lr=0.1, momentum=0.9)
    for _ in range(3):
        opt.step([(value, np.ones(1))])
    # velocity compounds: steps of 0.1, 0.19, 0.271
    assert value[0] == pytest.approx(-(0.1 + 0.19 + 0.271))


def test_adam_converges_on_quadratic():
    value = np.array([5.0])
    opt = Adam(lr=0.3)
    for _ in range(200):
        opt.step([(value, 2.0 * value)])
    assert abs(value[0]) < 1e-2


def test_optimizers_reject_bad_lr():
    with pytest.raises(ParameterError):
        SGD(lr=0.0)
    with pytest.raises(ParameterError):
        Adam(lr=-1.0)


# ------------------------------------------------------------- autoencoder
def test_autoencoder_reduces_loss():
    rng = np.random.default_rng(0)
    # low-rank data is compressible
    data = rng.standard_normal((200, 3)) @ rng.standard_normal((3, 20))
    data /= np.abs(data).max()           # keep tanh units in range
    auto = Autoencoder(20, (10, 3), lr=1e-2, seed=1)
    losses = auto.fit(data, epochs=80, seed=2)
    assert losses[-1] < 0.5 * losses[0]


def test_autoencoder_encode_shape():
    auto = Autoencoder(16, (8, 4), seed=0)
    codes = auto.encode(np.zeros((7, 16)))
    assert codes.shape == (7, 4)


def test_autoencoder_rejects_empty_hidden():
    with pytest.raises(ParameterError):
        Autoencoder(8, ())


# -------------------------------------------------------------------- SGNS
def test_sgns_separates_clustered_pairs():
    """Pairs within two disjoint clusters must embed closer intra-cluster."""
    rng = np.random.default_rng(0)
    n = 20
    centers, contexts = [], []
    for _ in range(4000):
        cluster = rng.integers(0, 2)
        a, b = rng.integers(0, 10, size=2) + cluster * 10
        centers.append(a)
        contexts.append(b)
    model = SGNS(n, 8, seed=1)
    noise = unigram_noise(np.ones(n))
    model.train(np.array(centers), np.array(contexts), noise=noise,
                epochs=3, seed=2)
    emb = model.input_vectors
    intra = np.mean([emb[i] @ emb[j] for i in range(10) for j in range(10)
                     if i != j])
    inter = np.mean([emb[i] @ emb[j] for i in range(10)
                     for j in range(10, 20)])
    assert intra > inter


def test_sgns_shared_tables_tied():
    model = SGNS(5, 4, shared=True, seed=0)
    assert model.input_vectors is model.output_vectors


def test_sgns_learns_positive_pairs():
    """After training, observed pairs must outscore random pairs."""
    rng = np.random.default_rng(3)
    centers = rng.integers(0, 10, size=5000)
    contexts = (centers + 1) % 10
    model = SGNS(10, 6, seed=4)
    noise = unigram_noise(np.ones(10))
    model.train(centers, contexts, noise=noise, epochs=4, seed=5)
    w, c = model.input_vectors, model.output_vectors
    pos = np.mean([w[i] @ c[(i + 1) % 10] for i in range(10)])
    neg = np.mean([w[i] @ c[(i + 5) % 10] for i in range(10)])
    assert pos > neg


def test_sgns_empty_corpus_is_noop():
    model = SGNS(5, 4, seed=0)
    noise = unigram_noise(np.ones(5))
    assert model.train(np.empty(0, dtype=int), np.empty(0, dtype=int),
                       noise=noise) == 0.0


def test_sgns_rejects_mismatched_pairs():
    from repro.errors import DimensionError
    model = SGNS(5, 4, seed=0)
    noise = unigram_noise(np.ones(5))
    with pytest.raises(DimensionError):
        model.train(np.array([1, 2]), np.array([1]), noise=noise)


def test_unigram_noise_smoothing():
    sampler = unigram_noise(np.array([1.0, 16.0]), power=0.75)
    draws = sampler.sample(100_000, seed=0)
    freq = np.bincount(draws, minlength=2) / 100_000
    expect = np.array([1.0, 8.0])
    expect /= expect.sum()
    np.testing.assert_allclose(freq, expect, atol=0.02)
