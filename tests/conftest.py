"""Shared fixtures: small deterministic graphs and embeddings."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.graph import (erdos_renyi, figure1_graph, from_edges,
                         powerlaw_community)

# The stress harness (tests/stress/harness.py) is shared by test files
# in other directories and by benchmarks/; pytest only puts each test
# file's own directory on sys.path, so add the harness dir here.
_STRESS_DIR = str(Path(__file__).parent / "stress")
if _STRESS_DIR not in sys.path:
    sys.path.insert(0, _STRESS_DIR)


@pytest.fixture(scope="session")
def fig1():
    """The paper's Figure-1 example graph (9 nodes, undirected)."""
    return figure1_graph()


@pytest.fixture(scope="session")
def small_undirected():
    """A 120-node community graph, undirected."""
    graph, _ = powerlaw_community(120, 600, num_communities=4, seed=11)
    return graph


@pytest.fixture(scope="session")
def small_directed():
    """A 150-node community graph, directed."""
    graph, _ = powerlaw_community(150, 900, num_communities=5, directed=True,
                                  seed=12)
    return graph


@pytest.fixture(scope="session")
def tiny_directed():
    """A hand-built 6-node directed graph with known structure."""
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 0)]
    src = [e[0] for e in edges]
    dst = [e[1] for e in edges]
    return from_edges(6, src, dst, directed=True)


@pytest.fixture(scope="session")
def er_graph():
    """A 200-node Erdos-Renyi graph."""
    return erdos_renyi(200, 800, seed=5)


@pytest.fixture()
def random_embeddings():
    """Matched (X, Y) embedding pair plus weights for reweighting tests."""
    rng = np.random.default_rng(42)
    n, k = 30, 6
    x = rng.standard_normal((n, k)) * 0.3
    y = rng.standard_normal((n, k)) * 0.3
    w_fwd = rng.uniform(0.5, 3.0, size=n)
    w_bwd = rng.uniform(0.5, 3.0, size=n)
    d_out = rng.integers(1, 10, size=n).astype(np.float64)
    d_in = rng.integers(1, 10, size=n).astype(np.float64)
    return x, y, w_fwd, w_bwd, d_out, d_in
