"""Tests for the perf-regression watchdog (tools/bench_compare.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py")
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)

BASELINES = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"


def _http_record(p99_scale=1.0, rps_scale=1.0, **overrides):
    record = {
        "num_nodes": 20000, "dim": 64, "k": 10, "scale": 1.0, "cpus": 1,
        "by_concurrency": {
            str(c): {"batched": {"p99_ms": round(10.0 * c * p99_scale, 3),
                                 "rps": round(1000.0 / c * rps_scale, 1)}}
            for c in (4, 16, 32)},
    }
    record.update(overrides)
    return record


def _statuses(findings):
    return {f["metric"]: f["status"] for f in findings
            if f.get("metric")}


# ------------------------------------------------------------- resolve()
def test_resolve_wildcards_dicts_and_lists():
    record = {"rows": [{"s": 1.0}, {"s": 2.0}],
              "by": {"a": {"v": 3.0}, "b": {"v": 4.0}}}
    assert dict(bench_compare.resolve(record, "rows.*.s")) == {
        "rows.0.s": 1.0, "rows.1.s": 2.0}
    assert dict(bench_compare.resolve(record, "by.*.v")) == {
        "by.a.v": 3.0, "by.b.v": 4.0}
    assert bench_compare.resolve(record, "by.c.v") == []
    assert bench_compare.resolve(record, "rows.1.s") == [("rows.1.s", 2.0)]


# ------------------------------------------------------ compare_artifact
def test_identical_records_are_all_ok():
    spec = bench_compare.SPECS["http_serving.json"]
    findings = bench_compare.compare_artifact(
        "http_serving.json", _http_record(), _http_record(), spec)
    assert findings
    assert set(_statuses(findings).values()) == {"ok"}


def test_20_percent_p99_regression_detected():
    spec = bench_compare.SPECS["http_serving.json"]
    findings = bench_compare.compare_artifact(
        "http_serving.json", _http_record(), _http_record(p99_scale=1.2),
        spec)
    statuses = _statuses(findings)
    for c in (4, 16, 32):
        assert statuses[f"by_concurrency.{c}.batched.p99_ms"] \
            == "regression"
        assert statuses[f"by_concurrency.{c}.batched.rps"] == "ok"


def test_throughput_drop_is_a_regression_speedup_is_improved():
    spec = bench_compare.SPECS["http_serving.json"]
    findings = bench_compare.compare_artifact(
        "http_serving.json", _http_record(),
        _http_record(rps_scale=0.5, p99_scale=0.5), spec)
    statuses = _statuses(findings)
    assert statuses["by_concurrency.4.batched.rps"] == "regression"
    assert statuses["by_concurrency.4.batched.p99_ms"] == "improved"


def test_within_tolerance_noise_is_ok():
    spec = bench_compare.SPECS["http_serving.json"]
    findings = bench_compare.compare_artifact(
        "http_serving.json", _http_record(),
        _http_record(p99_scale=1.1, rps_scale=0.9), spec)
    assert set(_statuses(findings).values()) == {"ok"}


def test_context_mismatch_is_incomparable_not_judged():
    spec = bench_compare.SPECS["http_serving.json"]
    findings = bench_compare.compare_artifact(
        "http_serving.json", _http_record(),
        _http_record(p99_scale=3.0, num_nodes=5000), spec)
    assert all(f["status"] == "incomparable" for f in findings)
    assert findings[0]["context_mismatch"]["num_nodes"] == {
        "baseline": 20000, "candidate": 5000}


def test_absolute_tolerance_for_obs_overhead():
    spec = bench_compare.SPECS["obs_overhead.json"]
    base = {"num_nodes": 20000, "dim": 64, "k": 10, "scale": 1.0,
            "cpus": 1, "overhead": 0.001}
    ok = bench_compare.compare_artifact(
        "obs_overhead.json", base, {**base, "overhead": 0.012}, spec)
    assert _statuses(ok)["overhead"] == "ok"         # within +0.015 abs
    bad = bench_compare.compare_artifact(
        "obs_overhead.json", base, {**base, "overhead": 0.05}, spec)
    assert _statuses(bad)["overhead"] == "regression"


def test_missing_candidate_metric_is_reported():
    spec = {"context": [], "metrics": [("a.b", "lower", {"rel": 0.1})]}
    findings = bench_compare.compare_artifact(
        "x.json", {"a": {"b": 1.0}}, {"a": {}}, spec)
    assert _statuses(findings)["a.b"] == "missing"


# --------------------------------------------------------------- main()
def _write(path: Path, record: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record), encoding="utf-8")


def test_main_exits_zero_without_regressions(tmp_path, capsys):
    _write(tmp_path / "base" / "http_serving.json", _http_record())
    _write(tmp_path / "res" / "http_serving.json", _http_record())
    code = bench_compare.main(
        ["--results", str(tmp_path / "res"),
         "--baselines", str(tmp_path / "base"),
         "--output", str(tmp_path / "report.json")])
    assert code == 0
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["regressions"] == 0
    assert report["counts"]["ok"] == 6
    assert "ok" in capsys.readouterr().out


def test_main_exits_nonzero_on_regression(tmp_path, capsys):
    _write(tmp_path / "base" / "http_serving.json", _http_record())
    _write(tmp_path / "res" / "http_serving.json",
           _http_record(p99_scale=1.2))
    code = bench_compare.main(
        ["--results", str(tmp_path / "res"),
         "--baselines", str(tmp_path / "base"),
         "--output", str(tmp_path / "report.json"), "--quiet"])
    assert code == 1
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["regressions"] == 3
    out = capsys.readouterr().out
    assert "regression" in out


def test_main_usage_errors_exit_two(tmp_path, capsys):
    assert bench_compare.main(
        ["--baselines", str(tmp_path / "nope")]) == 2
    capsys.readouterr()
    (tmp_path / "base").mkdir()
    assert bench_compare.main(
        ["--baselines", str(tmp_path / "base"),
         "--artifacts", "unknown.json"]) == 2
    assert "no comparison spec" in capsys.readouterr().err


def test_main_tolerates_absent_artifacts(tmp_path, capsys):
    (tmp_path / "base").mkdir()
    (tmp_path / "res").mkdir()
    code = bench_compare.main(["--results", str(tmp_path / "res"),
                               "--baselines", str(tmp_path / "base")])
    assert code == 0                    # nothing to compare != regression
    assert "no_baseline" in capsys.readouterr().out


# -------------------------------------------- the committed baselines
@pytest.mark.skipif(not BASELINES.is_dir(),
                    reason="no committed baselines")
def test_committed_baselines_compare_clean_against_themselves(capsys):
    code = bench_compare.main(["--results", str(BASELINES),
                               "--baselines", str(BASELINES)])
    assert code == 0
    out = capsys.readouterr().out
    assert "regression" not in out.replace("bench_compare:", "")


def test_every_spec_metric_path_is_wildcard_parseable():
    for name, spec in bench_compare.SPECS.items():
        for pattern, direction, tolerance in spec["metrics"]:
            assert direction in ("lower", "higher"), (name, pattern)
            assert ("rel" in tolerance) != ("abs" in tolerance), \
                (name, pattern)
            assert all(part == "*" or part for part in pattern.split("."))
