"""Tests for the three evaluation tasks and the scoring conventions."""

import numpy as np
import pytest

from repro.baselines import make_embedder
from repro.core import NRP
from repro.errors import ParameterError
from repro.graph import link_prediction_split
from repro.tasks import (evaluate_classification, evaluate_link_prediction,
                         evaluate_reconstruction, resolve_scoring,
                         run_link_prediction, top_ell_predict)


# ------------------------------------------------------- link prediction
def test_link_prediction_beats_random(small_undirected):
    result = run_link_prediction(NRP(dim=16, svd="exact", lam=0.1, seed=0),
                                 small_undirected, seed=0)
    assert result.auc > 0.65
    assert result.scoring == "inner"
    assert result.num_test_pairs > 0


def test_link_prediction_random_embedding_is_half(small_undirected):
    """A method with random scores must sit near AUC 0.5."""

    class RandomEmbedder(NRP):
        def fit(self, graph):
            rng = np.random.default_rng(0)
            self.forward_ = rng.standard_normal((graph.num_nodes, 4))
            self.backward_ = rng.standard_normal((graph.num_nodes, 4))
            return self

    result = run_link_prediction(RandomEmbedder(dim=8), small_undirected,
                                 seed=1)
    assert 0.3 < result.auc < 0.7


def test_resolve_scoring_rules(small_directed, small_undirected):
    verse = make_embedder("verse", 8)
    assert resolve_scoring(verse, small_directed) == "edge_features"
    assert resolve_scoring(verse, small_undirected) == "inner"
    assert resolve_scoring(make_embedder("arope", 8),
                           small_directed) == "inner"
    deep = make_embedder("deepwalk", 8)
    assert resolve_scoring(deep, small_undirected) == "edge_features"


def test_edge_features_scoring_pipeline(small_undirected):
    """The LR-on-concatenated-features path must run and discriminate."""
    split = link_prediction_split(small_undirected, seed=0)
    model = make_embedder("spectral", 16, seed=0).fit(split.train_graph)
    result = evaluate_link_prediction(model, split, seed=1)
    assert result.scoring == "edge_features"
    assert 0.0 <= result.auc <= 1.0


def test_evaluate_uses_method_convention(small_undirected):
    split = link_prediction_split(small_undirected, seed=2)
    nrp = NRP(dim=16, svd="exact", seed=0).fit(split.train_graph)
    result = evaluate_link_prediction(nrp, split, seed=3)
    assert result.scoring == "inner"


# -------------------------------------------------------- reconstruction
def test_reconstruction_perfect_oracle(small_undirected):
    """An oracle scoring edges highest achieves precision 1 up to |E|."""

    class Oracle:
        name = "oracle"
        directional = False

        def __init__(self, graph):
            self.graph = graph

        def score_pairs(self, src, dst):
            return np.array([float(self.graph.has_edge(int(u), int(v)))
                             for u, v in zip(src, dst)])

    oracle = Oracle(small_undirected)
    result = evaluate_reconstruction(oracle, small_undirected, ks=(10, 100))
    assert result.precision[10] == 1.0
    assert result.precision[100] == 1.0


def test_reconstruction_nrp_beats_random(small_undirected):
    model = NRP(dim=16, svd="exact", lam=0.1, seed=0).fit(small_undirected)
    result = evaluate_reconstruction(model, small_undirected, ks=(10, 100))
    m = small_undirected.num_edges
    n = small_undirected.num_nodes
    density = m / (n * (n - 1) / 2)
    assert result.precision[10] > 10 * density
    # precision decreases (weakly) with K on a good method
    assert result.precision[10] >= result.precision[100] - 0.2


def test_reconstruction_candidate_count_all_pairs(fig1):
    model = NRP(dim=4, svd="exact", seed=0).fit(fig1)
    result = evaluate_reconstruction(model, fig1, ks=(10,))
    assert result.num_candidates == 9 * 8 // 2


def test_reconstruction_sampled_candidates(small_undirected):
    model = NRP(dim=8, svd="exact", seed=0).fit(small_undirected)
    result = evaluate_reconstruction(model, small_undirected, ks=(10,),
                                     sample_fraction=0.05, seed=0)
    n = small_undirected.num_nodes
    assert result.num_candidates <= 0.07 * n * (n - 1) / 2


def test_reconstruction_directed_counts(tiny_directed):
    model = NRP(dim=4, svd="exact", seed=0).fit(tiny_directed)
    result = evaluate_reconstruction(model, tiny_directed, ks=(5,))
    assert result.num_candidates == 6 * 5


def test_reconstruction_rejects_bad_k(fig1):
    model = NRP(dim=4, svd="exact", seed=0).fit(fig1)
    with pytest.raises(ParameterError):
        evaluate_reconstruction(model, fig1, ks=(0,))


# ------------------------------------------------------- classification
def _clustered_features_and_labels(seed=0):
    rng = np.random.default_rng(seed)
    n_per, k = 60, 3
    feats, labels = [], []
    for c in range(k):
        feats.append(rng.normal(c * 3.0, 0.5, size=(n_per, 4)))
        lab = np.zeros((n_per, k), dtype=int)
        lab[:, c] = 1
        labels.append(lab)
    return np.vstack(feats), np.vstack(labels)


def test_classification_on_separable_features():
    feats, labels = _clustered_features_and_labels()
    result = evaluate_classification(feats, labels, 0.5, seed=0)
    assert result.micro_f1 > 0.9
    assert result.macro_f1 > 0.9


def test_classification_random_features_weak():
    rng = np.random.default_rng(1)
    feats = rng.standard_normal((180, 4))
    _, labels = _clustered_features_and_labels()
    result = evaluate_classification(feats, labels, 0.5, seed=0)
    assert result.micro_f1 < 0.6


def test_classification_more_training_helps():
    feats, labels = _clustered_features_and_labels(2)
    feats += np.random.default_rng(3).normal(0, 1.2, feats.shape)
    lo = evaluate_classification(feats, labels, 0.1, seed=4).micro_f1
    hi = evaluate_classification(feats, labels, 0.9, seed=4).micro_f1
    assert hi >= lo - 0.05


def test_classification_rejects_bad_fraction():
    feats, labels = _clustered_features_and_labels()
    with pytest.raises(ParameterError):
        evaluate_classification(feats, labels, 1.5)


def test_top_ell_predict_counts():
    probs = np.array([[0.9, 0.5, 0.1], [0.2, 0.3, 0.4]])
    pred = top_ell_predict(probs, np.array([2, 1]))
    assert pred[0].tolist() == [1, 1, 0]
    assert pred[1].tolist() == [0, 0, 1]


def test_top_ell_predict_zero_labels():
    probs = np.array([[0.9, 0.5]])
    pred = top_ell_predict(probs, np.array([0]))
    assert pred.sum() == 0
