"""Tests for the random-walk substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.graph import from_edges
from repro.walks import (PAD, AliasSampler, cooccurrence_counts,
                         node2vec_walks, ppr_walks, skipgram_pairs,
                         uniform_walks, walk_starts)


# ------------------------------------------------------------------ alias
def test_alias_sampler_matches_distribution():
    weights = np.array([1.0, 2.0, 3.0, 4.0])
    sampler = AliasSampler(weights)
    draws = sampler.sample(200_000, seed=0)
    freq = np.bincount(draws, minlength=4) / 200_000
    np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.01)


def test_alias_sampler_single_outcome():
    sampler = AliasSampler(np.array([5.0]))
    assert np.all(sampler.sample(100, seed=1) == 0)


def test_alias_sampler_zero_weight_never_sampled():
    sampler = AliasSampler(np.array([1.0, 0.0, 1.0]))
    draws = sampler.sample(50_000, seed=2)
    assert not np.any(draws == 1)


def test_alias_sampler_rejects_bad_weights():
    with pytest.raises(ParameterError):
        AliasSampler(np.array([-1.0, 2.0]))
    with pytest.raises(ParameterError):
        AliasSampler(np.array([0.0, 0.0]))
    with pytest.raises(ParameterError):
        AliasSampler(np.empty(0))


@given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=20))
@settings(max_examples=15, deadline=None)
def test_alias_sampler_property(weights):
    weights = np.asarray(weights)
    sampler = AliasSampler(weights)
    draws = sampler.sample(20_000, seed=3)
    freq = np.bincount(draws, minlength=len(weights)) / 20_000
    np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.04)


# ------------------------------------------------------------------ walks
def test_uniform_walks_follow_edges(er_graph):
    walks = uniform_walks(er_graph, np.arange(50), 8, seed=0)
    for row in walks:
        for a, b in zip(row[:-1], row[1:]):
            if a == PAD or b == PAD:
                break
            assert er_graph.has_arc(int(a), int(b))


def test_uniform_walks_shape_and_starts(er_graph):
    starts = np.array([3, 4, 5])
    walks = uniform_walks(er_graph, starts, 5, seed=1)
    assert walks.shape == (3, 6)
    assert np.array_equal(walks[:, 0], starts)


def test_uniform_walks_pad_after_dangling():
    g = from_edges(3, [0], [1], directed=True)     # 1 is dangling
    walks = uniform_walks(g, np.array([0]), 4, seed=0)
    assert walks[0, 0] == 0 and walks[0, 1] == 1
    assert np.all(walks[0, 2:] == PAD)


def test_uniform_walks_deterministic(er_graph):
    a = uniform_walks(er_graph, np.arange(10), 6, seed=7)
    b = uniform_walks(er_graph, np.arange(10), 6, seed=7)
    assert np.array_equal(a, b)


def test_walk_starts_covers_every_node(er_graph):
    starts = walk_starts(er_graph, 3, seed=0)
    counts = np.bincount(starts, minlength=er_graph.num_nodes)
    assert np.all(counts == 3)


def test_ppr_walks_geometric_length(er_graph):
    alpha = 0.25
    walks = ppr_walks(er_graph, np.arange(200).repeat(20) % 200, alpha,
                      seed=0)
    lengths = (walks != PAD).sum(axis=1) - 1      # steps after the start
    # mean steps of a geometric stop ~ (1 - alpha) / alpha
    expect = (1 - alpha) / alpha
    assert abs(lengths.mean() - expect) < 0.4


def test_ppr_walks_edges_valid(er_graph):
    walks = ppr_walks(er_graph, np.arange(30), 0.15, seed=1)
    for row in walks:
        for a, b in zip(row[:-1], row[1:]):
            if a == PAD or b == PAD:
                break
            assert er_graph.has_arc(int(a), int(b))


def test_node2vec_walks_valid_edges(er_graph):
    walks = node2vec_walks(er_graph, np.arange(40), 8, p=0.5, q=2.0, seed=0)
    for row in walks:
        for a, b in zip(row[:-1], row[1:]):
            if a == PAD or b == PAD:
                break
            assert er_graph.has_arc(int(a), int(b))


def test_node2vec_return_bias():
    """p << 1 makes walks return to the previous node far more often."""
    g = from_edges(40, np.arange(40), (np.arange(40) + 1) % 40,
                   directed=False)   # ring
    returny = node2vec_walks(g, np.zeros(400, dtype=np.int64), 6,
                             p=0.05, q=1.0, seed=0)
    wandery = node2vec_walks(g, np.zeros(400, dtype=np.int64), 6,
                             p=20.0, q=1.0, seed=0)

    def return_rate(walks):
        hits = total = 0
        for row in walks:
            for i in range(2, len(row)):
                if row[i] == PAD:
                    break
                total += 1
                hits += int(row[i] == row[i - 2])
        return hits / max(total, 1)

    assert return_rate(returny) > return_rate(wandery) + 0.2


def test_node2vec_rejects_bad_params(er_graph):
    with pytest.raises(ParameterError):
        node2vec_walks(er_graph, np.arange(3), 5, p=0.0)


# ----------------------------------------------------------------- corpus
def test_skipgram_pairs_window_one():
    walks = np.array([[0, 1, 2]])
    centers, contexts = skipgram_pairs(walks, 1)
    pairs = set(zip(centers.tolist(), contexts.tolist()))
    assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}


def test_skipgram_pairs_directed_context():
    walks = np.array([[0, 1, 2]])
    centers, contexts = skipgram_pairs(walks, 2, directed_context=True)
    pairs = set(zip(centers.tolist(), contexts.tolist()))
    assert pairs == {(0, 1), (1, 2), (0, 2)}


def test_skipgram_pairs_skip_pad():
    walks = np.array([[0, 1, PAD, PAD]])
    centers, contexts = skipgram_pairs(walks, 2)
    assert PAD not in centers and PAD not in contexts
    assert len(centers) == 2        # (0,1) and (1,0)


def test_skipgram_rejects_bad_window():
    with pytest.raises(ParameterError):
        skipgram_pairs(np.array([[0, 1]]), 0)


def test_cooccurrence_counts_symmetric_for_undirected_context():
    walks = np.array([[0, 1, 2], [2, 1, 0]])
    counts = cooccurrence_counts(walks, 1, 3)
    dense = counts.toarray()
    np.testing.assert_array_equal(dense, dense.T)
    assert dense[0, 1] == 2
