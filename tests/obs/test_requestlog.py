"""Unit tests for repro.obs.requestlog: access logs + the trace ring."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs.requestlog import RequestLogger, TraceRing


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


# ---------------------------------------------------------- RequestLogger
def test_lines_are_json_with_sorted_keys_and_ts():
    buf = io.StringIO()
    logger = RequestLogger(buf, buffer_lines=1)
    assert logger.log(route="/x", status=200, b=1, a=2)
    line = buf.getvalue().strip()
    record = json.loads(line)
    assert record["route"] == "/x" and record["status"] == 200
    assert "ts" in record
    keys = list(record)
    assert keys == sorted(keys)


def test_none_fields_are_elided():
    buf = io.StringIO()
    logger = RequestLogger(buf, buffer_lines=1)
    logger.log(route="/x", status=200, shed=None, batch_size=None)
    record = json.loads(buf.getvalue())
    assert "shed" not in record and "batch_size" not in record


def test_buffering_and_flush():
    buf = io.StringIO()
    logger = RequestLogger(buf, buffer_lines=10)
    for _ in range(9):
        logger.log(n=1)
    assert buf.getvalue() == ""                 # still buffered
    logger.log(n=2)                             # 10th line: auto-flush
    assert len(buf.getvalue().splitlines()) == 10
    logger.log(n=3)
    logger.flush()                              # explicit drain-path flush
    assert len(buf.getvalue().splitlines()) == 11


def test_rate_limit_drops_and_counts():
    clock = FakeClock()
    buf = io.StringIO()
    logger = RequestLogger(buf, max_per_second=5.0, burst=5,
                           buffer_lines=1, clock=clock)
    accepted = sum(logger.log(n=i) for i in range(20))
    assert accepted == 5                        # burst capacity
    assert logger.dropped == 15
    clock.now += 1.0                            # refill ~5 tokens
    accepted2 = sum(logger.log(n=i) for i in range(20))
    assert accepted2 == 5
    stats = logger.stats()
    assert stats["written"] == 10 and stats["dropped"] == 30


def test_drops_export_metric_when_enabled():
    obs.set_enabled(True)
    clock = FakeClock()
    logger = RequestLogger(io.StringIO(), max_per_second=1.0, burst=1,
                           clock=clock)
    logger.log(n=1)
    logger.log(n=2)                             # dropped
    counter = obs.get_registry().counter("access_log_dropped_total")
    assert counter.value == 1


def test_close_refuses_further_lines():
    buf = io.StringIO()
    logger = RequestLogger(buf, buffer_lines=100)
    logger.log(n=1)
    logger.close()
    assert buf.getvalue() != ""                 # close flushed the buffer
    assert logger.log(n=2) is False


def test_closed_stream_does_not_raise():
    class Closing(io.StringIO):
        def write(self, s):
            raise ValueError("I/O operation on closed file")
    logger = RequestLogger(Closing(), buffer_lines=1)
    assert logger.log(n=1) is True              # accepted, then lost
    assert logger.dropped == 1                  # accounted, not raised


def test_to_path_appends_and_close_stream(tmp_path):
    path = tmp_path / "access.log"
    logger = RequestLogger.to_path(path, buffer_lines=1)
    logger.log(n=1)
    logger.close_stream()
    again = RequestLogger.to_path(path, buffer_lines=1)
    again.log(n=2)
    again.close_stream()
    records = [json.loads(line) for line in
               path.read_text().strip().splitlines()]
    assert [r["n"] for r in records] == [1, 2]


def test_logger_validates_parameters():
    with pytest.raises(ValueError):
        RequestLogger(io.StringIO(), max_per_second=0)
    with pytest.raises(ValueError):
        RequestLogger(io.StringIO(), buffer_lines=0)


def test_concurrent_logging_is_consistent():
    buf = io.StringIO()
    logger = RequestLogger(buf, max_per_second=1e9, buffer_lines=7)
    threads = [threading.Thread(
        target=lambda i=i: [logger.log(t=i, n=j) for j in range(50)])
        for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    logger.flush()
    lines = buf.getvalue().splitlines()
    assert len(lines) == 200 == logger.written
    for line in lines:
        json.loads(line)                        # every line valid JSON


# -------------------------------------------------------------- TraceRing
def test_ring_records_and_lists_newest_first():
    ring = TraceRing(maxlen=10)
    for i in range(3):
        ring.record(trace_id=f"t{i}", route="/x", status=200,
                    duration_seconds=0.001 * (i + 1))
    out = ring.list()
    assert [r["trace_id"] for r in out] == ["t2", "t1", "t0"]
    assert out[0]["duration_ms"] == pytest.approx(3.0)


def test_ring_is_bounded():
    ring = TraceRing(maxlen=4)
    for i in range(10):
        ring.record(trace_id=f"t{i}", route="/x", status=200,
                    duration_seconds=0.0)
    assert len(ring) == 4
    assert ring.recorded == 10
    assert [r["trace_id"] for r in ring.list()] == ["t9", "t8", "t7", "t6"]


def test_ring_filters():
    ring = TraceRing()
    ring.record(trace_id="a", route="/x", status=200,
                duration_seconds=0.010)
    ring.record(trace_id="b", route="/y", status=500,
                duration_seconds=0.050)
    ring.record(trace_id="c", route="/x", status=200,
                duration_seconds=0.002)
    assert [r["trace_id"] for r in ring.list(route="/x")] == ["c", "a"]
    assert [r["trace_id"] for r in ring.list(status=500)] == ["b"]
    assert [r["trace_id"]
            for r in ring.list(min_duration_ms=5.0)] == ["b", "a"]
    assert [r["trace_id"] for r in ring.list(limit=1)] == ["c"]
    assert ring.list(limit=0) == []


def test_ring_keeps_tree_and_extras():
    ring = TraceRing()
    tree = {"name": "http.request", "duration_seconds": 0.01}
    record = ring.record(trace_id="a", route="/x", status=200,
                         duration_seconds=0.01, tree=tree,
                         batch_size=4, queue_wait_ms=None)
    assert record["tree"] is tree
    assert record["batch_size"] == 4
    assert "queue_wait_ms" not in record        # None extras elided


def test_ring_validates_maxlen():
    with pytest.raises(ValueError):
        TraceRing(maxlen=0)
