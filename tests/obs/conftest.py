"""Obs-suite hygiene: every test leaves the global registry clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_clean():
    """Force collection off and the registry empty around each test.

    The enable flag and the registry are process-global by design, so a
    test that enables collection (or crashes mid-capture) must not leak
    series into its neighbors.
    """
    obs.set_enabled(False)
    obs.reset()
    yield
    obs.set_enabled(False)
    obs.reset()
