"""Cross-tier integration tests: instrumented paths feed the registry."""

import numpy as np
import pytest
from harness import run_storm

from repro import NRP, obs
from repro.graph import from_edges
from repro.ppr.kernels import forward_push_batch, spread_frontier
from repro.serving.engine import CacheStats
from repro.serving.router import ShardedQueryEngine
from repro.streaming import StreamingConfig, StreamingUpdater


@pytest.fixture(scope="module")
def nrp_model(small_undirected):
    return NRP(dim=16, svd="exact", seed=0).fit(small_undirected)


# ----------------------------------------------------------- serving tier
def test_sharded_query_storm_records_per_shard_spans(nrp_model):
    engine = ShardedQueryEngine(nrp_model, shards=3, cache_size=0)
    n = engine.num_nodes

    def work(tid, i, rng):
        ids, scores = engine.topk(rng.integers(0, n, size=4), k=5)
        assert ids.shape == (4, 5)

    with obs.capture() as reg:
        result = run_storm(work, threads=4, iterations=25,
                           metrics_label="sharded_topk")
    result.raise_errors()
    assert result.total_ops == 100
    # every shard's fan-out left a span-count series behind
    for shard in range(3):
        series = reg.counter("span_total", {"name": "router.shard",
                                            "shard": shard})
        assert series.value > 0
    assert reg.counter("router_fanout_total").value == 100 * 3
    assert reg.histogram("router_merge_seconds").count == 100
    assert reg.gauge("router_straggler_seconds").value >= 0.0
    # the storm's own op latency histogram has a sane tail
    storm_hist = reg.histogram("storm_op_seconds",
                               {"storm": "sharded_topk"})
    assert storm_hist.count == 100
    p99 = storm_hist.quantile(0.99)
    assert np.isfinite(p99) and 0.0 < p99 < 60.0


def test_engine_counters_match_cache_stats(nrp_model):
    engine = nrp_model.to_serving(cache_size=64)
    with obs.capture() as reg:
        engine.topk([1, 2, 3], k=5)      # three misses
        engine.topk([1, 2, 3], k=5)      # three hits
        stats = engine.cache_stats()
        labels = {"engine": engine.name}
        assert (reg.counter("serving_cache_hits_total", labels).value
                == stats.hits == 3)
        assert (reg.counter("serving_cache_misses_total", labels).value
                == stats.misses == 3)
        assert reg.histogram("serving_topk_seconds", labels).count == 2
        assert (reg.gauge("serving_cache_hit_rate", labels).value
                == pytest.approx(0.5))
        engine.score([0, 1], [2, 3])
        assert reg.histogram("serving_score_seconds", labels).count == 1


def test_engine_disabled_records_nothing(nrp_model):
    engine = nrp_model.to_serving(cache_size=8)
    assert not obs.enabled()
    engine.topk([0, 1], k=5)
    assert obs.get_registry().get("serving_topk_seconds",
                                  {"engine": engine.name}) is None


def test_cache_stats_zero_requests_hit_rate():
    stats = CacheStats()
    assert stats.hit_rate == 0.0          # not NaN, not ZeroDivisionError
    assert stats.as_dict() == {"hits": 0, "misses": 0, "capacity": 0,
                               "size": 0, "hit_rate": 0.0}


# ------------------------------------------------------------ kernel tier
def test_kernel_counters_and_iterations(tiny_directed):
    with obs.capture() as reg:
        forward_push_batch(tiny_directed, [0, 1], r_max=1e-4,
                           kernel="numpy")
        spread_frontier(tiny_directed, [0], np.ones((1, 3)))
    inv = reg.counter("kernel_invocations_total",
                      {"kernel": "numpy", "direction": "forward"})
    assert inv.value == 1
    assert reg.histogram("kernel_batch_size",
                         {"direction": "forward"}).count == 1
    iters = reg.histogram("kernel_iterations", {"direction": "forward"})
    assert iters.count == 1 and iters.sum >= 1
    # a tiny graph's frontier stays narrow; the regime counter says so
    narrow = reg.counter("kernel_regime_iterations_total",
                         {"regime": "narrow", "direction": "forward"})
    assert narrow.value >= 1
    assert reg.gauge("kernel_frontier_peak",
                     {"direction": "forward"}).value >= 1
    assert reg.counter("kernel_spread_frontier_total").value == 1
    assert reg.histogram("kernel_spread_frontier_rows").count == 1


def test_kernel_scalar_backend_counts_invocations(tiny_directed):
    with obs.capture() as reg:
        forward_push_batch(tiny_directed, [0], r_max=1e-3, kernel="scalar")
    assert reg.counter("kernel_invocations_total",
                       {"kernel": "scalar",
                        "direction": "forward"}).value == 1


# --------------------------------------------------------- streaming tier
def test_streaming_repair_and_refit_counters():
    rng = np.random.default_rng(8)
    # base arcs stay inside 0..29 so the delta targets (31, 32) are fresh
    g = from_edges(40, rng.integers(0, 20, 150), rng.integers(20, 30, 150),
                   directed=True)
    model = NRP(dim=8, ell2=2, svd="exact", seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        g, model, config=StreamingConfig(drift_threshold=None,
                                         max_staleness=None))
    with obs.capture() as reg:
        stats = updater.apply_batch(add_src=[0, 1], add_dst=[31, 32])
        assert not stats["escalated"]
        assert reg.counter("streaming_batches_total").value == 1
        assert reg.counter("streaming_repairs_total").value == 1
        assert reg.get("streaming_refits_total", {"reason": "staleness"}) \
            is None
        assert reg.histogram("streaming_batch_seconds").count == 1
        assert reg.histogram("streaming_touched_nodes").count == 1
        # the repair path leaves its span tree behind
        assert any(s.name == "streaming.repair" for s in reg.spans())


def test_streaming_staleness_escalation_counter():
    rng = np.random.default_rng(9)
    # base arcs stay inside 0..24 so the delta target (26,) is fresh
    g = from_edges(30, rng.integers(0, 15, 120), rng.integers(15, 25, 120),
                   directed=True)
    model = NRP(dim=8, ell2=2, svd="exact", seed=0, keep_factor_state=True)
    updater = StreamingUpdater(
        g, model, config=StreamingConfig(max_staleness=1e-9,
                                         drift_threshold=None))
    with obs.capture() as reg:
        stats = updater.apply_batch(add_src=[0], add_dst=[26])
        assert stats["escalated"]
        refits = reg.counter("streaming_refits_total",
                             {"reason": "staleness"})
        assert refits.value == 1
        assert reg.get("streaming_repairs_total") is None


# ----------------------------------------------------------------- fit tier
def test_fit_produces_phase_span_tree(small_undirected):
    with obs.capture() as reg:
        NRP(dim=8, ell2=1, svd="exact", seed=0).fit(small_undirected)
    [tree] = [s for s in reg.spans() if s.name == "nrp.fit"]
    child_names = {c.name for c in tree.children}
    assert "nrp.reweighting" in child_names
    # approx_ppr's phases nest somewhere under the fit root
    flat = tree.to_dict()
    text = str(flat)
    assert "approx_ppr.svd" in text
    assert "approx_ppr.propagation" in text
    assert tree.duration > 0.0
