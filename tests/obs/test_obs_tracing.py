"""Unit tests for Span / trace(): nesting, unwinding, disabled no-op."""

import asyncio
import threading

import pytest

from repro import obs
from repro.obs.tracing import _NULL, Span


def test_trace_disabled_is_shared_noop():
    assert not obs.enabled()
    cm = obs.trace("anything", labels={"a": "b"}, attr=1)
    assert cm is _NULL
    with cm as span:
        assert span is None
    assert obs.get_registry().spans() == []


def test_span_nesting_builds_tree():
    with obs.capture() as reg:
        with obs.trace("root", labels={"tier": "fit"}) as root:
            with obs.trace("child_a") as a:
                with obs.trace("grandchild"):
                    pass
            with obs.trace("child_b", items=3) as b:
                b.annotate(extra="yes")
    [tree] = reg.spans()
    assert tree is root
    assert [c.name for c in tree.children] == ["child_a", "child_b"]
    assert [g.name for g in a.children] == ["grandchild"]
    assert tree.duration >= a.duration >= 0.0
    assert b.attributes == {"items": 3, "extra": "yes"}
    record = tree.to_dict()
    assert record["labels"] == {"tier": "fit"}
    assert len(record["children"]) == 2
    # finished spans also feed the metric series
    assert reg.counter("span_total", {"name": "child_a"}).value == 1
    assert reg.histogram("span_seconds", {"name": "root",
                                          "tier": "fit"}).count == 1


def test_exception_marks_error_and_unwinds():
    with obs.capture() as reg:
        with pytest.raises(ValueError):
            with obs.trace("outer"):
                with obs.trace("inner"):
                    raise ValueError("boom")
        assert obs.current_span() is None
    [tree] = reg.spans()
    assert tree.name == "outer"
    assert tree.error == "ValueError"
    assert tree.children[0].error == "ValueError"
    assert reg.counter("span_errors_total", {"name": "inner"}).value == 1


def test_leaked_inner_span_does_not_corrupt_stack():
    with obs.capture() as reg:
        outer = obs.trace("outer")
        outer.__enter__()
        # simulate an inner span whose __exit__ never ran
        Span("leaked").__enter__()
        assert obs.current_span().name == "leaked"
        outer.__exit__(None, None, None)
        # the outer exit unwound past the leaked span
        assert obs.current_span() is None
    [tree] = reg.spans()
    assert tree.name == "outer"


def test_worker_thread_spans_are_roots():
    with obs.capture() as reg:
        with obs.trace("main_root"):
            def job():
                with obs.trace("worker", labels={"shard": "0"}):
                    pass
            t = threading.Thread(target=job)
            t.start()
            t.join()
    names = sorted(s.name for s in reg.spans())
    # the worker's span must not nest under the main thread's root
    assert names == ["main_root", "worker"]
    assert reg.counter("span_total", {"name": "worker",
                                      "shard": "0"}).value == 1


def test_interleaved_coroutines_build_separate_trees():
    """Two requests interleaving on one event loop must not mis-nest.

    The pre-contextvars implementation kept one thread-local span
    stack, so two coroutines overlapping their ``trace()`` blocks on
    the same loop thread interleaved into a single corrupted tree:
    request B's spans nested under request A's live root. Each asyncio
    task runs in its own context now, so each request owns its tree.
    """
    async def request(name: str, gate: asyncio.Event,
                      release: asyncio.Event) -> None:
        with obs.trace(f"root.{name}"):
            release.set()           # let the other request open its root
            await gate.wait()       # ...while ours is still live
            with obs.trace(f"child.{name}"):
                await asyncio.sleep(0)

    async def storm() -> None:
        gate_a, gate_b = asyncio.Event(), asyncio.Event()
        # A opens its root first, then B opens its root while A's is
        # live, then both open/close children and exit out of order.
        await asyncio.gather(request("a", gate_a, gate_b),
                             request("b", gate_b, gate_a))

    with obs.capture() as reg:
        asyncio.run(storm())
    roots = {span.name: span for span in reg.spans()}
    assert sorted(roots) == ["root.a", "root.b"]
    for name in ("a", "b"):
        tree = roots[f"root.{name}"]
        assert [c.name for c in tree.children] == [f"child.{name}"]
    assert obs.current_span() is None


def test_registry_span_retention_bounded():
    with obs.capture() as reg:
        for i in range(200):
            with obs.trace(f"s{i % 5}"):
                pass
        assert len(reg.spans()) == 64          # deque maxlen
        assert reg.spans()[-1].name == "s4"
