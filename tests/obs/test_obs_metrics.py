"""Unit tests for the repro.obs metrics primitives and exporters."""

import json
import threading

import numpy as np
import pytest

from repro import obs
from repro.errors import ParameterError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


# ----------------------------------------------------------- counter/gauge
def test_counter_accumulates_and_rejects_negative():
    c = Counter("requests_total")
    c.inc()
    c.inc(4.5)
    assert c.value == pytest.approx(5.5)
    with pytest.raises(ParameterError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge("depth")
    g.set(10)
    g.inc(2.5)
    g.dec(0.5)
    assert g.value == pytest.approx(12.0)


# -------------------------------------------------------------- histogram
def test_histogram_bucket_boundaries():
    h = Histogram("lat", min_value=1.0, growth=2.0, num_buckets=4)
    # edges: 1, 2, 4, 8, 16; slot 0 = underflow, slot 6 = overflow
    assert h.bucket_index(0.5) == 0
    assert h.bucket_index(1.0) == 0          # <= min_value underflows
    assert h.bucket_index(1.5) == 1
    assert h.bucket_index(2.0) == 1          # exact edge closes its bucket
    assert h.bucket_index(2.0000001) == 2
    assert h.bucket_index(16.0) == 4
    assert h.bucket_index(100.0) == 5        # overflow slot
    for v in (0.5, 1.5, 2.0, 3.0, 100.0):
        h.observe(v)
    counts = h.counts()
    assert counts.sum() == h.count == 5
    assert h.sum == pytest.approx(107.0)


def test_histogram_quantiles_track_numpy():
    rng = np.random.default_rng(3)
    samples = rng.lognormal(mean=-5.0, sigma=1.2, size=5000)
    h = Histogram("lat")
    for v in samples:
        h.observe(v)
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = h.quantile(q)
        # estimate is exact to within one geometric bucket (~25% rel.)
        assert abs(estimate - exact) / exact < 0.25
    pct = h.percentiles()
    assert pct["p50"] <= pct["p95"] <= pct["p99"]


def test_histogram_quantile_edge_cases():
    h = Histogram("lat")
    assert np.isnan(h.quantile(0.5))
    assert h.percentiles() == {"p50": None, "p95": None, "p99": None}
    h.observe(0.125)
    # a single observation: every quantile is that observation
    assert h.quantile(0.0) == pytest.approx(0.125, rel=0.26)
    assert h.quantile(1.0) == pytest.approx(0.125, rel=0.26)
    with pytest.raises(ParameterError):
        h.quantile(1.5)


def test_histogram_clamps_to_observed_range():
    h = Histogram("lat")
    for _ in range(100):
        h.observe(0.01)
    assert h.quantile(0.5) == pytest.approx(0.01)
    assert h.quantile(0.99) == pytest.approx(0.01)


# ---------------------------------------------------------------- registry
def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("hits", {"shard": 1})
    b = reg.counter("hits", {"shard": "1"})     # labels stringify
    assert a is b
    other = reg.counter("hits", {"shard": 2})
    assert other is not a
    assert len(reg) == 2
    assert reg.get("hits", {"shard": 1}) is a
    assert reg.get("missing") is None


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("thing")
    with pytest.raises(ParameterError):
        reg.gauge("thing")
    with pytest.raises(ParameterError):
        reg.histogram("thing", {"a": "b"})


def test_registry_thread_hammer():
    reg = MetricsRegistry()
    threads, per_thread = 8, 500

    def worker(tid):
        for i in range(per_thread):
            reg.counter("ops_total", {"t": tid % 2}).inc()
            reg.histogram("op_seconds").observe(1e-4 * (i + 1))
            reg.gauge("depth").set(i)

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    total = (reg.counter("ops_total", {"t": 0}).value
             + reg.counter("ops_total", {"t": 1}).value)
    assert total == threads * per_thread
    hist = reg.histogram("op_seconds")
    assert hist.count == threads * per_thread
    assert hist.counts().sum() == hist.count


def test_enable_guard_and_capture():
    assert not obs.enabled()
    with obs.capture() as reg:
        assert obs.enabled()
        assert reg is obs.get_registry()
        reg.counter("seen").inc()
    assert not obs.enabled()
    # series survive capture exit for inspection
    assert obs.get_registry().get("seen").value == 1
    with obs.capture(clear_after=True):
        pass
    assert obs.get_registry().get("seen") is None


# --------------------------------------------------------------- exporters
def test_snapshot_is_json_ready():
    with obs.capture() as reg:
        reg.counter("c_total", {"k": "v"}).inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(0.01)
        snap = obs.snapshot(reg)
    text = json.dumps(snap)        # must not raise (no NaN/inf leaks)
    assert "c_total" in text
    [c] = snap["counters"]
    assert c == {"name": "c_total", "labels": {"k": "v"}, "value": 3}
    [h] = snap["histograms"]
    assert h["count"] == 1 and h["p50"] is not None


def test_write_snapshot_creates_parents(tmp_path):
    with obs.capture() as reg:
        reg.counter("c").inc()
        path = tmp_path / "deep" / "snap.json"
        record = obs.write_snapshot(path, reg, extra={"run": "unit"})
    on_disk = json.loads(path.read_text())
    assert on_disk["run"] == "unit"
    assert record["counters"] == on_disk["counters"]


def test_prometheus_text_format():
    with obs.capture() as reg:
        reg.counter("req_total", {"code": "200"}).inc(7)
        hist = reg.histogram("lat_seconds")
        for v in (0.001, 0.002, 0.004):
            hist.observe(v)
        text = obs.to_prometheus_text(reg)
    assert '# TYPE req_total counter' in text
    assert 'req_total{code="200"} 7' in text
    assert "# TYPE lat_seconds histogram" in text
    # cumulative buckets end at the total count on the +Inf line
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    # cumulative monotonicity across the bucket lines
    cums = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")]
    assert cums == sorted(cums)
