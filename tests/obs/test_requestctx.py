"""Unit tests for repro.obs.requestctx: trace identity across hops."""

import asyncio
import contextvars
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.obs import requestctx


# ------------------------------------------------------------- identity
def test_new_trace_mints_w3c_sized_ids():
    ctx = requestctx.new_trace()
    assert len(ctx.trace_id) == 32
    assert len(ctx.span_id) == 16
    assert set(ctx.trace_id) <= set("0123456789abcdef")
    assert set(ctx.span_id) <= set("0123456789abcdef")
    assert ctx.sampled
    assert ctx.parent_span_id is None
    other = requestctx.new_trace()
    assert other.trace_id != ctx.trace_id


def test_child_context_shares_trace_and_meta():
    parent = requestctx.new_trace(sampled=False)
    parent.meta["model"] = "m"
    child = requestctx.child_context(parent)
    assert child.trace_id == parent.trace_id
    assert child.span_id != parent.span_id
    assert child.parent_span_id == parent.span_id
    assert child.sampled is False
    child.meta["batch_size"] = 4                 # visible through the alias
    assert parent.meta == {"model": "m", "batch_size": 4}


def test_remaining_tracks_deadline():
    ctx = requestctx.new_trace(deadline=100.0)
    assert ctx.remaining(now=90.0) == pytest.approx(10.0)
    assert ctx.remaining(now=105.0) == pytest.approx(-5.0)
    assert requestctx.new_trace().remaining() is None


def test_sample_decision_is_deterministic_and_monotone():
    ctx = requestctx.new_trace()
    assert requestctx.sample_decision(ctx.trace_id, 1.0) is True
    assert requestctx.sample_decision(ctx.trace_id, 0.0) is False
    first = requestctx.sample_decision(ctx.trace_id, 0.5)
    assert all(requestctx.sample_decision(ctx.trace_id, 0.5) == first
               for _ in range(5))
    # a trace sampled at a low rate stays sampled at any higher rate
    if requestctx.sample_decision(ctx.trace_id, 0.25):
        assert requestctx.sample_decision(ctx.trace_id, 0.75)


def test_sample_rate_roughly_honored():
    hits = sum(requestctx.sample_decision(requestctx.new_trace().trace_id,
                                          0.3) for _ in range(2000))
    assert 0.2 < hits / 2000 < 0.4


# ------------------------------------------------------ current/activate
def test_activate_scopes_current():
    assert requestctx.current() is None
    ctx = requestctx.new_trace()
    with requestctx.activate(ctx) as active:
        assert active is ctx
        assert requestctx.current() is ctx
        inner = requestctx.new_trace()
        with requestctx.activate(inner):
            assert requestctx.current() is inner
        assert requestctx.current() is ctx
    assert requestctx.current() is None


def test_exemplar_only_for_sampled_context():
    assert requestctx.exemplar() is None
    with requestctx.activate(requestctx.new_trace(sampled=False)):
        assert requestctx.exemplar() is None
    ctx = requestctx.new_trace()
    with requestctx.activate(ctx):
        assert requestctx.exemplar() == {"trace_id": ctx.trace_id}


# ------------------------------------------------------------ traceparent
def test_traceparent_round_trip():
    ctx = requestctx.new_trace()
    parsed = requestctx.parse_traceparent(requestctx.format_traceparent(ctx))
    assert parsed is not None
    assert parsed.trace_id == ctx.trace_id
    assert parsed.parent_span_id == ctx.span_id     # remote span -> parent
    assert parsed.span_id != ctx.span_id            # fresh local hop id
    assert parsed.sampled is True
    unsampled = requestctx.parse_traceparent(
        requestctx.format_traceparent(requestctx.new_trace(sampled=False)))
    assert unsampled.sampled is False


@pytest.mark.parametrize("header", [
    None,
    "",
    "garbage",
    "00-abc-def-01",                                       # wrong widths
    "00" + "-" + "g" * 32 + "-" + "a" * 16 + "-01",        # non-hex trace
    "00-" + "A" * 32 + "-" + "a" * 16 + "-01",             # uppercase hex
    "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",             # reserved version
    "00-" + "0" * 32 + "-" + "b" * 16 + "-01",             # all-zero trace
    "00-" + "a" * 32 + "-" + "0" * 16 + "-01",             # all-zero span
    "00-" + "a" * 32 + "-" + "b" * 16 + "-01-extra",       # v00 extra field
    "0-" + "a" * 32 + "-" + "b" * 16 + "-01",              # short version
])
def test_malformed_traceparent_parses_to_none(header):
    assert requestctx.parse_traceparent(header) is None


def test_future_version_with_extra_fields_accepted():
    header = "01-" + "a" * 32 + "-" + "b" * 16 + "-00-whatever"
    parsed = requestctx.parse_traceparent(header)
    assert parsed is not None
    assert parsed.trace_id == "a" * 32
    assert parsed.sampled is False


# ------------------------------------------------- bind: executor crossing
def test_bind_carries_span_parent_into_pool(enabled_registry):
    results = {}
    with ThreadPoolExecutor(max_workers=1) as pool:
        with obs.trace("outer") as outer:
            def work():
                results["parent"] = obs.current_span()
                with obs.trace("inner.pool"):
                    pass
            pool.submit(requestctx.bind(work)).result()
        # the pooled span nested under the caller's live span instead of
        # detaching into a pool-thread root
    assert results["parent"] is outer
    names = [child.name for child in outer.children]
    assert names == ["inner.pool"]


def test_bind_does_not_leak_between_pooled_tasks(enabled_registry):
    seen = []
    with ThreadPoolExecutor(max_workers=1) as pool:
        ctx = requestctx.new_trace()
        with requestctx.activate(ctx):
            pool.submit(requestctx.bind(
                lambda: seen.append(requestctx.current()))).result()
        # an *unbound* task on the same worker thread must start clean
        pool.submit(lambda: seen.append(requestctx.current())).result()
        # and a bound task after the context exited sees its own snapshot
        pool.submit(requestctx.bind(
            lambda: seen.append(requestctx.current()))).result()
    assert seen[0] is ctx
    assert seen[1] is None
    assert seen[2] is None


def test_bind_ctx_override_rebinds_trace_context():
    override = requestctx.new_trace()
    with ThreadPoolExecutor(max_workers=1) as pool:
        with requestctx.activate(requestctx.new_trace()):
            got = pool.submit(requestctx.bind(
                requestctx.current, ctx=override)).result()
    assert got is override


def test_bind_passes_args_and_returns_value():
    assert requestctx.bind(lambda a, b=0: a + b, 2, b=3)() == 5


def test_bind_across_run_in_executor(enabled_registry):
    async def go():
        loop = asyncio.get_running_loop()
        with ThreadPoolExecutor(max_workers=1) as pool:
            with obs.trace("async.outer") as outer:
                def work():
                    with obs.trace("executor.child"):
                        pass
                    return requestctx.current()
                ctx = requestctx.new_trace()
                with requestctx.activate(ctx):
                    got = await loop.run_in_executor(
                        pool, requestctx.bind(work))
        return outer, ctx, got

    outer, ctx, got = asyncio.run(go())
    assert got is ctx
    assert [c.name for c in outer.children] == ["executor.child"]


@pytest.fixture
def enabled_registry():
    obs.set_enabled(True)
    yield obs.get_registry()
