"""Line-by-line conformance tests for the Prometheus text exposition.

Instead of spot-checking substrings, these tests parse every line the
exporter emits against the exposition-format grammar: ``# HELP`` /
``# TYPE`` comments, ``name{labels} value`` samples, counters
``_total``-suffixed, histogram ``le`` buckets cumulative and monotone
with the ``+Inf`` bucket equal to ``_count``.
"""

import math
import re

import pytest

from repro import obs

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$")


def _parse(text):
    """Exposition text -> (types, helps, samples) with grammar checks."""
    types, helps, samples = {}, {}, []
    for line in text.splitlines():
        assert line == line.strip() and line, f"stray whitespace: {line!r}"
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert NAME_RE.match(name), name
            assert kind in ("counter", "gauge", "histogram"), kind
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, name, text_ = line.split(" ", 3)
            assert NAME_RE.match(name), name
            helps[name] = text_
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        labels = {}
        if match.group("labels"):
            consumed = LABEL_RE.sub("", match.group("labels"))
            assert set(consumed) <= {","}, \
                f"bad label syntax: {match.group('labels')!r}"
            labels = dict(LABEL_RE.findall(match.group("labels")))
        value = match.group("value")
        parsed = (math.inf if value == "+Inf"
                  else -math.inf if value == "-Inf"
                  else math.nan if value == "NaN" else float(value))
        samples.append((match.group("name"), labels, parsed))
    return types, helps, samples


@pytest.fixture
def registry():
    obs.set_enabled(True)
    registry = obs.get_registry()
    registry.counter("req", {"code": "200"},
                     description="requests by status").inc(7)
    registry.counter("req", {"code": "500"}).inc(1)
    registry.counter("shed_total").inc(3)
    registry.gauge("queue_depth", description="pending requests").set(12)
    for v in (0.001, 0.004, 0.004, 0.02, 1.5, 120.0):
        registry.histogram("lat_seconds", {"route": "/x"},
                           description="latency").observe(v)
    return registry


def test_every_line_parses_and_every_sample_has_a_type(registry):
    types, helps, samples = _parse(obs.to_prometheus_text(registry))
    assert samples, "no samples emitted"
    for name, labels, value in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name) \
            if types.get(name) is None else name
        assert base in types, f"sample {name} has no TYPE header"


def test_counters_are_total_suffixed(registry):
    types, _, samples = _parse(obs.to_prometheus_text(registry))
    counter_names = {n for n, kind in types.items() if kind == "counter"}
    assert counter_names == {"req_total", "shed_total"}
    for name in counter_names:
        assert name.endswith("_total")
    values = {(n, labels.get("code")): v for n, labels, v in samples
              if n in counter_names}
    assert values[("req_total", "200")] == 7
    assert values[("req_total", "500")] == 1
    assert values[("shed_total", None)] == 3


def test_help_lines_come_from_descriptions(registry):
    text = obs.to_prometheus_text(registry)
    _, helps, _ = _parse(text)
    assert helps["req_total"] == "requests by status"
    assert helps["queue_depth"] == "pending requests"
    assert helps["lat_seconds"] == "latency"
    # HELP precedes TYPE for the same name, per convention
    lines = text.splitlines()
    assert lines.index("# HELP req_total requests by status") \
        < lines.index("# TYPE req_total counter")
    # a metric with no description gets no HELP line
    assert "shed_total" not in helps


def test_histogram_buckets_cumulative_monotone_inf_equals_count(registry):
    types, _, samples = _parse(obs.to_prometheus_text(registry))
    assert types["lat_seconds"] == "histogram"
    buckets = [(labels["le"], value) for name, labels, value in samples
               if name == "lat_seconds_bucket"]
    assert buckets, "no bucket samples"
    edges = [math.inf if edge == "+Inf" else float(edge)
             for edge, _ in buckets]
    assert edges == sorted(edges), "le edges not ascending"
    assert edges[-1] == math.inf, "missing +Inf bucket"
    counts = [count for _, count in buckets]
    assert counts == sorted(counts), "bucket counts not cumulative"
    count = next(v for n, _, v in samples if n == "lat_seconds_count")
    total = next(v for n, _, v in samples if n == "lat_seconds_sum")
    assert counts[-1] == count == 6
    assert total == pytest.approx(121.529)


def test_label_values_escaped():
    obs.set_enabled(True)
    registry = obs.get_registry()
    registry.counter("odd", {"path": 'a"b\\c\nd'}).inc()
    text = obs.to_prometheus_text(registry)
    _, _, samples = _parse(text)
    (name, labels, value), = [s for s in samples if s[0] == "odd_total"]
    assert labels["path"] == r'a\"b\\c\nd'


def test_already_suffixed_counter_not_doubled():
    obs.set_enabled(True)
    registry = obs.get_registry()
    registry.counter("hits_total").inc()
    types, _, _ = _parse(obs.to_prometheus_text(registry))
    assert "hits_total" in types
    assert "hits_total_total" not in types
