"""Append-only edge-delta log layered over the immutable CSR graph.

:class:`repro.graph.Graph` is deliberately immutable — every fitted
pipeline stage hangs cached state off a fixed arc set. Streaming
ingestion therefore never mutates a graph in place; it accumulates edge
inserts/deletes in a :class:`DeltaGraph` log and periodically *compacts*
the log into a fresh CSR snapshot (via :func:`repro.graph.ops.add_arcs`
/ :func:`~repro.graph.ops.remove_arcs`), the same write-ahead-log ->
immutable-segment design LSM stores use.

Between compactions the log answers the one question the incremental
refresh needs: *which nodes' out-neighborhoods changed* — that set
drives the local PPR sketch repair in
:class:`repro.streaming.IncrementalPPR`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..graph.ops import add_arcs, remove_arcs

__all__ = ["DeltaGraph"]


class DeltaGraph:
    """Edge insert/delete log over a base :class:`Graph`.

    ``add_edges`` / ``remove_edges`` validate and append to the log;
    :meth:`compact` materializes a new CSR :class:`Graph` with the log
    applied and resets the log around the new base. For undirected
    bases an edge delta implies both arcs, exactly as the base graph
    stores them.

    Deltas are validated *against the log's net effect*, not just the
    base: inserting an edge that is already present (in the base or an
    earlier pending insert) or deleting one that is absent raises
    :class:`ParameterError` — silent double-applies are how streaming
    pipelines drift from their source of truth.
    """

    def __init__(self, base: Graph) -> None:
        self.base = base
        # net pending state per arc key u * n + v: +1 insert, -1 delete
        self._pending: dict[int, int] = {}
        self._touched: set[int] = set()
        self.num_applied_batches = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes

    @property
    def directed(self) -> bool:
        return self.base.directed

    @property
    def num_pending(self) -> int:
        """Pending arc-level deltas (2x the edge count when undirected)."""
        return len(self._pending)

    def touched_nodes(self) -> np.ndarray:
        """Sorted nodes whose out-neighborhood differs from the base."""
        return np.array(sorted(self._touched), dtype=np.int64)

    # ------------------------------------------------------------------
    def _arc_keys(self, sources, destinations,
                  ) -> tuple[np.ndarray, np.ndarray]:
        src = np.asarray(sources, dtype=np.int64).ravel()
        dst = np.asarray(destinations, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ParameterError(
                "sources and destinations must have equal length")
        n = self.base.num_nodes
        if len(src) and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= n):
            raise ParameterError(f"edge endpoint out of range [0, {n})")
        if np.any(src == dst):
            raise ParameterError("self loops are not valid edge deltas")
        if not self.base.directed:
            src = np.concatenate([src, np.asarray(destinations,
                                                  dtype=np.int64).ravel()])
            dst = np.concatenate([dst, np.asarray(sources,
                                                  dtype=np.int64).ravel()])
        return src, dst

    def _apply(self, sources, destinations, sign: int) -> None:
        src, dst = self._arc_keys(sources, destinations)
        n = self.base.num_nodes
        keys = src * np.int64(n) + dst
        if len(np.unique(keys)) != len(keys):
            raise ParameterError("duplicate arcs in one delta call")
        word = "insert" if sign > 0 else "delete"
        # validate the whole call before mutating: a rejected call must
        # leave the log exactly as it was
        for key in keys.tolist():
            net = self._pending.get(key, 0)
            exists = (self.base.has_arc(key // n, key % n)
                      if net == 0 else net > 0)
            if sign > 0 and exists:
                raise ParameterError(
                    f"cannot insert arc ({key // n}, {key % n}): "
                    f"already present")
            if sign < 0 and not exists:
                raise ParameterError(
                    f"cannot delete arc ({key // n}, {key % n}): "
                    f"not present ({word} rejected)")
        for key, u in zip(keys.tolist(), src.tolist()):
            net = self._pending.get(key, 0) + sign
            # an insert+delete pair cancels back to the base state
            if net == 0:
                self._pending.pop(key, None)
            else:
                self._pending[key] = net
            self._touched.add(u)

    def add_edges(self, sources, destinations) -> None:
        """Log edge insertions (both arcs when the base is undirected)."""
        self._apply(sources, destinations, +1)

    def remove_edges(self, sources, destinations) -> None:
        """Log edge deletions (both arcs when the base is undirected)."""
        self._apply(sources, destinations, -1)

    # ------------------------------------------------------------------
    def pending_arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, destinations, signs)`` of the net pending log."""
        if not self._pending:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        n = self.base.num_nodes
        keys = np.array(sorted(self._pending), dtype=np.int64)
        signs = np.array([self._pending[int(k)] for k in keys],
                         dtype=np.int64)
        return keys // n, keys % n, signs

    def compact(self) -> Graph:
        """Apply the log to the base, reset around the new CSR snapshot.

        Returns the new base graph. The log validates every delta on the
        way in, so ``add_arcs``'s duplicate check can only fire on a bug
        in this class — it is the integrity backstop, not a user-facing
        path.
        """
        src, dst, signs = self.pending_arcs()
        graph = self.base
        if len(src):
            # arcs were symmetrized at log time; feed compact as arcs by
            # temporarily treating the graph as directed would lose the
            # invariant checks, so apply arc lists through the directed
            # identities: add_arcs/remove_arcs re-symmetrize undirected
            # inputs, hence pass each undirected edge once (u < v form).
            ins, del_ = signs > 0, signs < 0
            if not graph.directed:
                once = src < dst
                ins &= once
                del_ &= once
            if del_.any():
                graph = remove_arcs(graph, src[del_], dst[del_])
            if ins.any():
                graph = add_arcs(graph, src[ins], dst[ins])
        self.base = graph
        self._pending.clear()
        self._touched.clear()
        self.num_applied_batches += 1
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DeltaGraph(base={self.base!r}, "
                f"pending={self.num_pending})")
