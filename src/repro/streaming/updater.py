"""The streaming control loop: deltas in, fresh serving versions out.

:class:`StreamingUpdater` owns one model's full streaming state and
wires the tier together:

1. edge deltas accumulate in a :class:`~repro.streaming.DeltaGraph`
   and compact to a fresh CSR snapshot per batch;
2. :class:`~repro.streaming.IncrementalPPR` repairs the ApproxPPR
   factor sketches locally around the touched nodes;
3. :meth:`repro.NRP.warm_refit` re-runs a few reweighting sweeps from
   the previous weights, escalating to a full refit (new SVD basis)
   when the weight drift — or the accumulated basis staleness — says
   the incremental approximation has degraded;
4. :meth:`publish` exports the refreshed model as the next immutable
   version of a store root, and :meth:`swap_into` flips a
   :class:`~repro.serving.ServingRegistry` name onto it atomically.

The ``repro-stream`` CLI (:mod:`repro.cli_stream`) is a thin file-tail
loop over this class; ``benchmarks/bench_streaming.py`` measures it
against per-batch cold refits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.approx_ppr import ApproxPPRConfig
from ..core.nrp import NRP
from ..errors import ParameterError, ReproError
from ..graph import Graph
from .delta import DeltaGraph
from .incremental import IncrementalPPR

__all__ = ["StreamingConfig", "StreamingUpdater"]


@dataclass(frozen=True)
class StreamingConfig:
    """Streaming-tier knobs (the model's own knobs live on the model).

    ``refresh_tol``
        Residue prune threshold of the incremental PPR repair, in
        final-embedding units.
    ``max_sweeps``
        Cap on propagation rounds per batch (``None`` = ``2 * ell1``).
    ``warm_epochs``
        Reweighting sweep pairs per batch (``None`` = the model's
        ``warm_refit`` default).
    ``drift_threshold``
        Relative weight-drift level above which a batch escalates to a
        full refit (``None`` disables drift escalation).
    ``max_staleness``
        Fraction of arcs changed since the last SVD basis above which a
        batch escalates regardless of drift (``None`` disables). The
        incremental path's one blind spot is spectral drift of the
        adjacency; this bounds how long it can accumulate.
    """

    refresh_tol: float = 1e-8
    max_sweeps: int | None = None
    warm_epochs: int | None = None
    drift_threshold: float | None = 0.2
    max_staleness: float | None = 0.25

    def validate(self) -> None:
        if self.refresh_tol <= 0:
            raise ParameterError("refresh_tol must be positive")
        if self.max_sweeps is not None and self.max_sweeps < 1:
            raise ParameterError("max_sweeps must be >= 1 or None")
        if self.warm_epochs is not None and self.warm_epochs < 0:
            raise ParameterError("warm_epochs must be >= 0 or None")
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ParameterError("drift_threshold must be positive or None")
        if self.max_staleness is not None and self.max_staleness <= 0:
            raise ParameterError("max_staleness must be positive or None")


def _escalation_reason(reason: str | None) -> str:
    """Bucket a free-text escalation reason into a bounded label set.

    Metric labels must stay low-cardinality; the ``warm_refit`` reason
    strings embed numbers, so they are classified, not used verbatim.
    """
    text = (reason or "").lower()
    for label in ("staleness", "drift", "node"):
        if label in text:
            return "node_count" if label == "node" else label
    return "other"


class StreamingUpdater:
    """Keeps one fitted :class:`repro.NRP` fresh under edge deltas."""

    def __init__(self, graph: Graph, model: NRP | None = None, *,
                 config: StreamingConfig | None = None) -> None:
        self.config = config or StreamingConfig()
        self.config.validate()
        if model is None:
            model = NRP(keep_factor_state=True)
        if not isinstance(model, NRP):
            raise ParameterError(
                f"StreamingUpdater drives an NRP model, got "
                f"{type(model).__name__}")
        if not model.keep_factor_state:
            raise ParameterError(
                "the streaming tier needs the model's factor state; "
                "construct it with NRP(..., keep_factor_state=True)")
        if model.forward_ is None:
            model.fit(graph)
        if model.factor_state_ is None:
            raise ReproError(
                "model was fitted without keep_factor_state; refit it "
                "with keep_factor_state=True before streaming")
        if model.factor_state_.x1.shape[0] != graph.num_nodes:
            raise ParameterError(
                f"model was fitted on {model.factor_state_.x1.shape[0]} "
                f"nodes but the graph has {graph.num_nodes}")
        self.model = model
        cfg = model.config
        self._approx_config = ApproxPPRConfig(
            k_prime=cfg.dim // 2, alpha=cfg.alpha, ell1=cfg.ell1,
            eps=cfg.eps, svd=cfg.svd, seed=cfg.seed,
            chunk_size=cfg.chunk_size, workers=cfg.workers)
        self.ppr = IncrementalPPR(graph, self._approx_config,
                                  state=model.factor_state_,
                                  tol=self.config.refresh_tol)
        self.delta = DeltaGraph(graph)
        self.num_batches = 0
        self.num_escalations = 0

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The newest compacted snapshot."""
        return self.delta.base

    def apply_batch(self, add_src=None, add_dst=None, *,
                    remove_src=None, remove_dst=None) -> dict:
        """Absorb one delta batch end-to-end; returns a stats record.

        Inserts and deletes are validated and logged, the log compacts
        to a new CSR snapshot, the PPR sketches are repaired locally,
        and the reweighting warm-refits (escalating to a full refit per
        the :class:`StreamingConfig` thresholds). After this returns,
        ``self.model`` scores/serves the *new* graph.
        """
        start = time.perf_counter()
        if add_src is not None and len(np.atleast_1d(add_src)):
            self.delta.add_edges(add_src, add_dst)
        if remove_src is not None and len(np.atleast_1d(remove_src)):
            self.delta.remove_edges(remove_src, remove_dst)
        touched = self.delta.touched_nodes()
        pending = self.delta.pending_arcs()
        arc_deltas = self.delta.num_pending
        new_graph = self.delta.compact()

        # The staleness this batch lands at is known before any sketch
        # repair runs; when it escalates, the full fit recomputes every
        # sketch anyway, so skip the (potentially large-frontier)
        # incremental refresh entirely instead of discarding it.
        staleness = self.ppr.staleness_after(arc_deltas)
        stale = (self.config.max_staleness is not None
                 and staleness > self.config.max_staleness)
        if stale:
            refresh = {"touched": int(len(touched)), "sweeps": 0,
                       "max_residue": 0.0}
            # basis too old to trust: full refit, no drift question asked
            with obs.trace("streaming.refit", reason="staleness"):
                self.model.fit(new_graph)
            # drift is None, not NaN: batch records are emitted as JSON
            # lines and NaN is not valid JSON
            self.model.last_warm_refit_ = {
                "escalated": True, "drift": None, "epochs": 0,
                "reason": f"basis staleness {staleness:.3f} > "
                          f"{self.config.max_staleness:.3f}"}
        else:
            with obs.trace("streaming.repair"):
                refresh = self.ppr.refresh(new_graph, touched,
                                           deltas=pending,
                                           max_sweeps=self.config.max_sweeps)
            x, y = self.ppr.embeddings()
            with obs.trace("streaming.warm_refit"):
                self.model.warm_refit(
                    new_graph, x=x, y=y, epochs=self.config.warm_epochs,
                    drift_threshold=self.config.drift_threshold)
        info = dict(self.model.last_warm_refit_ or {})
        if info.get("escalated"):
            # the full fit computed a fresh basis (keep_factor_state);
            # adopt it so subsequent batches repair the new sketches
            self.num_escalations += 1
            self.ppr.rebase(self.model.factor_state_, new_graph)
        self.num_batches += 1
        record = {"batch": self.num_batches,
                "arc_deltas": int(arc_deltas),
                "touched": refresh["touched"],
                "sweeps": refresh["sweeps"],
                "max_residue": refresh["max_residue"],
                "staleness": float(self.ppr.basis_staleness),
                "escalated": bool(info.get("escalated", False)),
                "drift": info.get("drift"),
                "reason": info.get("reason"),
                "num_nodes": new_graph.num_nodes,
                "num_edges": new_graph.num_edges,
                "seconds": round(time.perf_counter() - start, 4)}
        if obs.enabled():
            self._record_batch_metrics(record)
        return record

    def _record_batch_metrics(self, record: dict) -> None:
        """Publish one ``apply_batch`` stats record to the registry."""
        registry = obs.get_registry()
        registry.counter("streaming_batches_total").inc()
        if record["escalated"]:
            reason = _escalation_reason(record.get("reason"))
            registry.counter("streaming_refits_total",
                             {"reason": reason}).inc()
        else:
            registry.counter("streaming_repairs_total").inc()
        if record.get("drift") is not None:
            registry.gauge("streaming_drift").set(float(record["drift"]))
        registry.gauge("streaming_staleness").set(record["staleness"])
        registry.histogram("streaming_batch_seconds").observe(
            record["seconds"])
        registry.histogram("streaming_touched_nodes").observe(
            record["touched"])

    # ------------------------------------------------------------------
    def publish(self, root, *, metadata: dict | None = None,
                keep: int | None = None, shards: int | None = None):
        """Export the current model as the next version of ``root``.

        Thin wrapper over :func:`repro.serving.publish_version` that
        stamps streaming provenance (batch count, escalations, graph
        size) into the manifest metadata. ``shards`` publishes the
        version as a sharded store root (see
        :mod:`repro.serving.sharding`), so hot-swapping readers flip to
        a scatter-gather layout with the same atomic ``CURRENT`` rename.
        """
        from ..serving.store import publish_version   # lazy: no cycle
        meta = {"stream_batches": self.num_batches,
                "stream_escalations": self.num_escalations,
                "num_nodes": self.graph.num_nodes,
                "num_edges": self.graph.num_edges}
        meta.update(metadata or {})
        if not obs.enabled():
            return publish_version(root, self.model, metadata=meta,
                                   keep=keep, shards=shards)
        start = time.perf_counter()
        with obs.trace("streaming.publish"):
            result = publish_version(root, self.model, metadata=meta,
                                     keep=keep, shards=shards)
        obs.get_registry().histogram("streaming_publish_seconds").observe(
            time.perf_counter() - start)
        return result

    def swap_into(self, registry, name: str, **engine_options):
        """Hot-swap ``registry[name]`` onto the current model's state.

        Registers the name on first use, replaces it afterwards — one
        atomic upsert under the registry lock (a ``contains``-then-
        ``swap`` pair would race a concurrent first publish).
        """
        return registry.register(name, self.model, replace=True,
                                 **engine_options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StreamingUpdater(n={self.graph.num_nodes}, "
                f"batches={self.num_batches}, "
                f"escalations={self.num_escalations})")
