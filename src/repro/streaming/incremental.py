"""Incremental repair of the ApproxPPR factor sketches after edge deltas.

A cold :func:`repro.core.approx_ppr_embeddings` run has two costs: the
randomized SVD of ``A`` (the basis) and the ``ell1`` truncated power
iterations (the propagation). When a small batch of edges changes, the
dominant spectral structure of ``A`` barely moves — so this module keeps
the SVD basis **fixed** and repairs only the propagation, locally, in
the spirit of dynamic forward-push PPR maintenance (residues seeded at
the changed nodes, pushed until they fall below a threshold).

Two identities make the repair cheap:

* ``U sqrt(Sigma) = A V Sigma^-1/2``, so a changed adjacency row
  updates its ``X_1`` row in ``O(degree * k')`` from the retained
  ``v_scaled = V Sigma^-1/2`` basis — no new SVD;
* ``X_1[v]`` and ``P[v]`` only enter row ``v`` of the iteration
  ``X <- (1 - alpha) P X + X_1``, so a changed row perturbs other rows
  exclusively through *incoming* arcs — deltas propagate over a frontier
  that starts at the touched nodes and decays by ``(1 - alpha)`` per
  hop, exactly like a push residue.

The repaired iterate converges to the **fixed point**
``x* = sum_{i >= 0} (1 - alpha)^i P^i X_1`` rather than the cold path's
``ell1``-truncated sum; the two differ by the geometric tail
``sum_{i >= ell1} (1 - alpha)^i P^i X_1``, bounded entrywise by
``(1 - alpha)^ell1 / alpha`` times the ``X_1`` scale — for the paper's
defaults (``alpha = 0.15, ell1 = 20``) a ``~0.26`` relative factor on
terms that are themselves far below one SVD ``eps`` of signal. The
bound is documented here and pinned by
``tests/streaming/test_incremental.py``. What the fixed basis cannot
absorb is *spectral* drift of ``A`` itself; callers monitor
:attr:`IncrementalPPR.basis_staleness` (fraction of arcs changed since
the basis was computed) and escalate to a full refit, which
:class:`repro.streaming.StreamingUpdater` wires to
:meth:`repro.NRP.warm_refit`'s drift threshold.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core.approx_ppr import ApproxPPRConfig, PPRFactorState, approx_ppr_state
from ..errors import ParameterError, ReproError
from ..graph import Graph
from ..linalg import BlockSparseOperator
from ..ppr.kernels import spread_frontier

__all__ = ["IncrementalPPR", "changed_rows"]


def changed_rows(old: Graph, new: Graph) -> np.ndarray:
    """Nodes whose out-neighborhood differs between two same-size graphs."""
    if old.num_nodes != new.num_nodes:
        raise ParameterError(
            f"graphs have different node counts "
            f"({old.num_nodes} vs {new.num_nodes})")
    n = old.num_nodes
    old_src, old_dst = old.arcs()
    new_src, new_dst = new.arcs()
    old_keys = old_src * np.int64(n) + old_dst
    new_keys = new_src * np.int64(n) + new_dst
    gone = np.setdiff1d(old_keys, new_keys, assume_unique=True)
    born = np.setdiff1d(new_keys, old_keys, assume_unique=True)
    return np.unique(np.concatenate([gone, born]) // n)


class IncrementalPPR:
    """Maintains ApproxPPR factor sketches under streaming edge deltas.

    Parameters
    ----------
    graph:
        The graph the sketches currently describe.
    config:
        The :class:`ApproxPPRConfig` of the base factorization; its
        ``alpha`` drives propagation decay, ``ell1`` caps repair sweeps,
        and ``chunk_size``/``workers`` select the chunked propagation
        engine (the same :mod:`repro.parallel` scheduling the fit
        pipeline uses).
    state:
        A :class:`PPRFactorState` from :func:`approx_ppr_state` (or a
        ``keep_factor_state=True`` :class:`repro.NRP` fit). ``None``
        computes one here. The mutable iterates are copied, so the
        caller's state object stays frozen at fit time.
    tol:
        Residue prune threshold **in final-embedding units**: a delta
        row stops propagating once its max-abs entry, scaled by
        ``alpha (1 - alpha)``, falls below ``tol``.
    """

    def __init__(self, graph: Graph, config: ApproxPPRConfig, *,
                 state: PPRFactorState | None = None,
                 tol: float = 1e-8) -> None:
        config.validate()
        if tol <= 0:
            raise ParameterError(f"tol must be positive, got {tol!r}")
        if state is None:
            state = approx_ppr_state(graph, config)
        if state.x1.shape[0] != graph.num_nodes:
            raise ParameterError(
                f"factor state holds {state.x1.shape[0]} rows but the "
                f"graph has {graph.num_nodes} nodes")
        self.graph = graph
        self.config = config
        self.tol = float(tol)
        self.x1 = np.array(state.x1, dtype=np.float64, copy=True)
        self.x_iter = np.array(state.x_iter, dtype=np.float64, copy=True)
        self.y = state.y
        self.v_scaled = state.v_scaled
        #: arc-level deltas absorbed since the SVD basis was computed
        self.arcs_changed_since_basis = 0
        self._basis_arcs = max(1, graph.num_arcs)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def basis_staleness(self) -> float:
        """Fraction of the basis-time arc count changed since the basis."""
        return self.arcs_changed_since_basis / self._basis_arcs

    def staleness_after(self, extra_arc_deltas: int) -> float:
        """The staleness once ``extra_arc_deltas`` more deltas land.

        Lets a caller decide *before* paying for :meth:`refresh` whether
        a batch will cross its staleness-escalation threshold anyway.
        """
        return ((self.arcs_changed_since_basis + extra_arc_deltas)
                / self._basis_arcs)

    def embeddings(self) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(X, Y)`` in :func:`approx_ppr_embeddings` scaling."""
        scale = self.config.alpha * (1.0 - self.config.alpha)
        return self.x_iter * scale, self.y

    # ------------------------------------------------------------------
    def _repair_x1(self, new_graph: Graph, touched: np.ndarray,
                   deltas=None) -> None:
        """Update ``x1`` rows from adjacency deltas via ``v_scaled``.

        ``x1[v] = (A[v] @ v_scaled) / d(v)``, so the new row is the old
        numerator (``d_old * x1[v]`` — exact, including the SVD's
        approximation of ``U``) plus the delta-row contribution, over
        the new degree. ``deltas`` is an optional ``(src, dst, signs)``
        arc-delta triple (what ``DeltaGraph.pending_arcs`` reports);
        when given the repair is fully vectorized, otherwise each
        touched row is diffed against the old CSR.
        """
        d_old = self.graph.out_degrees
        d_new = new_graph.out_degrees
        if deltas is not None:
            src, dst, signs = (np.asarray(a, dtype=np.int64) for a in deltas)
            # accumulate into a (touched, k') buffer, not an (n, k') one:
            # a small batch on a massive graph must not allocate O(n k')
            idx = np.searchsorted(touched, src)
            if len(src) and (np.any(idx >= len(touched))
                             or np.any(touched[idx] != src)):
                raise ParameterError(
                    "deltas reference source nodes missing from touched")
            numer = d_old[touched, None] * self.x1[touched]
            np.add.at(numer, idx,
                      np.sign(signs)[:, None] * self.v_scaled[dst])
            dn = d_new[touched].astype(np.float64)
            safe = np.maximum(dn, 1.0)
            self.x1[touched] = np.where(dn[:, None] > 0,
                                        numer / safe[:, None], 0.0)
            self.arcs_changed_since_basis += len(src)
            return
        for v in touched.tolist():
            old_nb = self.graph.out_neighbors(v)
            new_nb = new_graph.out_neighbors(v)
            added = np.setdiff1d(new_nb, old_nb, assume_unique=True)
            removed = np.setdiff1d(old_nb, new_nb, assume_unique=True)
            numer = d_old[v] * self.x1[v]
            if len(added):
                numer = numer + self.v_scaled[added].sum(axis=0)
            if len(removed):
                numer = numer - self.v_scaled[removed].sum(axis=0)
            self.x1[v] = numer / d_new[v] if d_new[v] else 0.0
            self.arcs_changed_since_basis += len(added) + len(removed)

    def refresh(self, new_graph: Graph, touched=None, *,
                deltas=None, max_sweeps: int | None = None) -> dict:
        """Absorb ``new_graph``'s edge deltas into the sketches.

        ``touched`` is the set of nodes whose out-neighborhoods changed
        (what :meth:`repro.streaming.DeltaGraph.touched_nodes` reports);
        ``None`` computes it by diffing the arc sets. ``deltas`` is the
        optional ``(src, dst, signs)`` arc-delta triple (from
        ``DeltaGraph.pending_arcs``) that lets the ``x1`` repair skip
        re-diffing the CSRs. ``max_sweeps`` caps the propagation rounds
        (default ``2 * ell1``; each round shrinks the un-pushed residue
        by ``1 - alpha``). Returns a stats dict: touched rows, sweeps
        run, the frontier trajectory, and the largest residue left
        unpushed.
        """
        if new_graph.num_nodes != self.num_nodes:
            raise ReproError(
                f"incremental refresh requires a fixed node set "
                f"({self.num_nodes} nodes fitted, graph has "
                f"{new_graph.num_nodes}); refit instead")
        if new_graph.directed != self.graph.directed:
            raise ReproError("cannot refresh across directedness changes")
        if touched is None:
            touched = changed_rows(self.graph, new_graph)
        touched = np.unique(np.asarray(touched, dtype=np.int64))
        if len(touched) and (touched[0] < 0 or touched[-1] >= self.num_nodes):
            raise ParameterError(
                f"touched node out of range [0, {self.num_nodes})")
        cfg = self.config
        if max_sweeps is None:
            max_sweeps = 2 * cfg.ell1
        stats = {"touched": int(len(touched)), "sweeps": 0,
                 "frontier": [], "max_residue": 0.0}
        if len(touched) == 0:
            self.graph = new_graph
            return stats

        self._repair_x1(new_graph, touched, deltas)
        decay = 1.0 - cfg.alpha
        scale = cfg.alpha * decay
        raw_tol = self.tol / scale

        p_new = new_graph.transition_matrix()
        # Seed residues: recompute the touched rows of the iteration map
        # against the current iterate; the difference is the residue.
        target = decay * (p_new[touched] @ self.x_iter) + self.x1[touched]
        delta = np.asarray(target) - self.x_iter[touched]
        self.x_iter[touched] = np.asarray(target)

        # Propagate residues to in-neighbors: one application of the map
        # moves a row delta to rows u with an arc (u, v), scaled by
        # (1 - alpha) / d(u) — i.e. (1 - alpha) * P[:, frontier] @ delta.
        # Two evaluation strategies, picked per sweep: a narrow frontier
        # runs one sweep of the kernel layer's frontier spread
        # (:func:`repro.ppr.kernels.spread_frontier` — CSR gathers over
        # the frontier's in-arcs only, no sparse slicing, no O(n)
        # buffers); a wide one scatters the deltas into a dense buffer
        # and runs one full CSR product. The crossover ~5% of nodes is
        # where per-arc gathering starts losing to the blocked product.
        p_op = p_new
        if cfg.chunked:
            p_op = BlockSparseOperator(p_new, chunk_size=cfg.chunk_size,
                                       workers=cfg.workers)
        n = self.num_nodes
        buffer = None    # O(n k') scratch; only the wide path needs it
        active_idx, active_delta = touched, delta
        for _ in range(max_sweeps):
            keep = np.max(np.abs(active_delta), axis=1) > raw_tol
            active_idx = active_idx[keep]
            active_delta = active_delta[keep]
            if len(active_idx) == 0:
                break
            stats["sweeps"] += 1
            stats["frontier"].append(int(len(active_idx)))
            if len(active_idx) > 0.05 * n:
                if buffer is None:
                    buffer = np.zeros_like(self.x_iter)
                else:
                    buffer[:] = 0.0
                buffer[active_idx] = active_delta
                spread = decay * np.asarray(p_op @ buffer)
                # apply every nonzero contribution (free: already
                # computed), but only rows above tol keep propagating
                rows = np.flatnonzero(np.abs(spread).max(axis=1) > 0.0)
                if len(rows) > 0.5 * n:
                    self.x_iter += spread
                else:
                    self.x_iter[rows] += spread[rows]
                active_idx, active_delta = rows, spread[rows]
            else:
                rows, contrib = spread_frontier(new_graph, active_idx,
                                                active_delta, decay=decay)
                self.x_iter[rows] += contrib
                active_idx, active_delta = rows, contrib
        if len(active_idx):
            stats["max_residue"] = float(
                np.abs(active_delta).max() * scale)
        self.graph = new_graph
        return stats

    # ------------------------------------------------------------------
    def rebase(self, state: PPRFactorState, graph: Graph | None = None,
               ) -> None:
        """Adopt a fresh factorization (after a full refit) as the basis."""
        if graph is not None:
            self.graph = graph
        if state.x1.shape[0] != self.graph.num_nodes:
            raise ParameterError(
                f"rebase state holds {state.x1.shape[0]} rows but the "
                f"graph has {self.graph.num_nodes} nodes")
        self.x1 = np.array(state.x1, dtype=np.float64, copy=True)
        self.x_iter = np.array(state.x_iter, dtype=np.float64, copy=True)
        self.y = state.y
        self.v_scaled = state.v_scaled
        self.arcs_changed_since_basis = 0
        self._basis_arcs = max(1, self.graph.num_arcs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IncrementalPPR(n={self.num_nodes}, "
                f"k'={self.x1.shape[1]}, tol={self.tol}, "
                f"staleness={self.basis_staleness:.3f})")
