"""Streaming updates: absorb edge deltas without a full refit.

The third tier of the pipeline, alongside fit (:mod:`repro.core`) and
serve (:mod:`repro.serving`). The paper's Appendix C evaluates NRP on
*evolving* graphs; this package makes evolution a first-class workload:

* :mod:`~repro.streaming.delta` — :class:`DeltaGraph`, an append-only
  edge insert/delete log over the immutable CSR graph with batch
  compaction;
* :mod:`~repro.streaming.incremental` — :class:`IncrementalPPR`,
  push-style local repair of the ApproxPPR factor sketches for the
  nodes whose neighborhoods changed (fixed SVD basis, monitored
  staleness);
* :mod:`~repro.streaming.updater` — :class:`StreamingUpdater`, the
  batch loop: log -> compact -> sketch repair ->
  :meth:`repro.NRP.warm_refit` (drift-escalated) -> versioned publish /
  registry hot-swap;
* :mod:`repro.cli_stream` — the ``repro-stream`` command tailing an
  edge-delta file into a versioned store root.

Quickstart::

    from repro import NRP
    from repro.datasets import load_evolving_dataset
    from repro.streaming import StreamingUpdater

    data = load_evolving_dataset("vk_sim", scale=0.05)
    model = NRP(dim=32, seed=0, keep_factor_state=True)
    updater = StreamingUpdater(data.old_graph, model)
    for batch in data.delta_batches(500):
        stats = updater.apply_batch(batch.src, batch.dst)
    store = updater.publish("vk_store/")       # next immutable version
"""

from .delta import DeltaGraph
from .incremental import IncrementalPPR, changed_rows
from .updater import StreamingConfig, StreamingUpdater

__all__ = ["DeltaGraph", "IncrementalPPR", "changed_rows",
           "StreamingConfig", "StreamingUpdater"]
