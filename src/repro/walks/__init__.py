"""Random-walk substrate: alias sampling, walk engines, corpus building."""

from .alias import AliasSampler
from .corpus import cooccurrence_counts, skipgram_pairs
from .engine import PAD, ppr_walks, uniform_walks, walk_starts
from .node2vec import node2vec_walks

__all__ = ["AliasSampler", "PAD", "uniform_walks", "ppr_walks",
           "walk_starts", "node2vec_walks", "skipgram_pairs",
           "cooccurrence_counts"]
