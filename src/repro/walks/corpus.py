"""Turn walk matrices into skip-gram training pairs / co-occurrence counts."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from .engine import PAD

__all__ = ["skipgram_pairs", "cooccurrence_counts"]


def skipgram_pairs(walks: np.ndarray, window: int, *,
                   directed_context: bool = False,
                   ) -> tuple[np.ndarray, np.ndarray]:
    """All (center, context) pairs within ``window`` hops along each walk.

    ``directed_context=True`` keeps only forward contexts (center earlier
    in the walk than context) — APP's asymmetric sampling; otherwise both
    directions are emitted, as in DeepWalk/node2vec.
    """
    if window < 1:
        raise ParameterError("window must be >= 1")
    walks = np.asarray(walks, dtype=np.int64)
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    length = walks.shape[1]
    for offset in range(1, window + 1):
        if offset >= length:
            break
        left = walks[:, :-offset].ravel()
        right = walks[:, offset:].ravel()
        ok = (left != PAD) & (right != PAD)
        centers.append(left[ok])
        contexts.append(right[ok])
        if not directed_context:
            centers.append(right[ok])
            contexts.append(left[ok])
    if not centers:
        return (np.empty(0, dtype=np.int64),) * 2
    return np.concatenate(centers), np.concatenate(contexts)


def cooccurrence_counts(walks: np.ndarray, window: int, num_nodes: int, *,
                        directed_context: bool = False) -> sp.csr_matrix:
    """Sparse ``(num_nodes, num_nodes)`` co-occurrence count matrix."""
    centers, contexts = skipgram_pairs(walks, window,
                                       directed_context=directed_context)
    data = np.ones(len(centers), dtype=np.float64)
    mat = sp.coo_matrix((data, (centers, contexts)),
                        shape=(num_nodes, num_nodes))
    return mat.tocsr()
