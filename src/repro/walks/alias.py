"""Alias-method sampling: O(1) draws from a fixed discrete distribution.

Used by LINE's edge sampling and the noise distributions of every SGNS
trainer (negative sampling proportional to degree^0.75).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["AliasSampler"]


class AliasSampler:
    """Walker's alias table over ``len(weights)`` outcomes."""

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ParameterError("weights must be a nonempty 1-D array")
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ParameterError("weights must be nonnegative with positive sum")
        n = len(weights)
        prob = weights * n / weights.sum()
        self.prob = np.ones(n)
        self.alias = np.arange(n)
        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self.prob[s] = prob[s]
            self.alias[s] = l
            prob[l] = prob[l] - (1.0 - prob[s])
            if prob[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # leftovers are 1.0 up to float error
        for i in small + large:
            self.prob[i] = 1.0

    def sample(self, size: int, seed=None) -> np.ndarray:
        """Draw ``size`` outcomes (vectorized)."""
        rng = ensure_rng(seed)
        idx = rng.integers(0, len(self.prob), size=size)
        accept = rng.random(size) < self.prob[idx]
        return np.where(accept, idx, self.alias[idx])
