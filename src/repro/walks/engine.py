"""Batched random-walk engine.

All walkers advance in lock-step over the CSR arrays, so a corpus of
tens of thousands of walks is produced with a handful of numpy ops per
step. Walks that reach a dangling node are padded with ``PAD`` (-1).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng

__all__ = ["PAD", "uniform_walks", "ppr_walks", "walk_starts"]

#: Padding marker for terminated walks.
PAD: int = -1


def walk_starts(graph: Graph, walks_per_node: int, *, seed=None) -> np.ndarray:
    """Every node repeated ``walks_per_node`` times, shuffled."""
    if walks_per_node < 1:
        raise ParameterError("walks_per_node must be >= 1")
    rng = ensure_rng(seed)
    starts = np.tile(np.arange(graph.num_nodes, dtype=np.int64),
                     walks_per_node)
    rng.shuffle(starts)
    return starts


def _step(graph: Graph, nodes: np.ndarray, rng: np.random.Generator,
          ) -> np.ndarray:
    """One uniform step from each node; dangling nodes return PAD."""
    degrees = graph.out_degrees[nodes]
    nxt = np.full(len(nodes), PAD, dtype=np.int64)
    ok = degrees > 0
    offsets = (rng.random(int(ok.sum())) * degrees[ok]).astype(np.int64)
    nxt[ok] = graph.indices[graph.indptr[nodes[ok]] + offsets]
    return nxt


def uniform_walks(graph: Graph, starts: np.ndarray, length: int, *,
                  seed=None) -> np.ndarray:
    """Fixed-length uniform walks; shape ``(len(starts), length + 1)``.

    Column 0 holds the start nodes; a walk hitting a dangling node is
    padded with :data:`PAD` from that point on.
    """
    if length < 1:
        raise ParameterError("length must be >= 1")
    rng = ensure_rng(seed)
    starts = np.asarray(starts, dtype=np.int64)
    out = np.full((len(starts), length + 1), PAD, dtype=np.int64)
    out[:, 0] = starts
    alive = np.arange(len(starts))
    current = starts.copy()
    for t in range(1, length + 1):
        nxt = _step(graph, current[alive], rng)
        ok = nxt != PAD
        out[alive[ok], t] = nxt[ok]
        alive = alive[ok]
        if len(alive) == 0:
            break
        current[alive] = nxt[ok]
    return out


def ppr_walks(graph: Graph, starts: np.ndarray, alpha: float, *,
              max_steps: int = 64, seed=None) -> np.ndarray:
    """Alpha-terminating walks (the APP/VERSE sampling scheme).

    Returns ``(len(starts), max_steps + 1)`` padded with :data:`PAD`
    after each walk's geometric stopping time. The expected length is
    ``1/alpha`` so ``max_steps`` of a few dozen loses almost nothing.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    rng = ensure_rng(seed)
    starts = np.asarray(starts, dtype=np.int64)
    out = np.full((len(starts), max_steps + 1), PAD, dtype=np.int64)
    out[:, 0] = starts
    alive = np.arange(len(starts))
    current = starts.copy()
    for t in range(1, max_steps + 1):
        survive = rng.random(len(alive)) >= alpha
        alive = alive[survive]
        if len(alive) == 0:
            break
        nxt = _step(graph, current[alive], rng)
        ok = nxt != PAD
        out[alive[ok], t] = nxt[ok]
        alive = alive[ok]
        if len(alive) == 0:
            break
        current[alive] = nxt[ok]
    return out
