"""node2vec's biased second-order walks via vectorized rejection sampling.

The transition weight from ``v`` to candidate ``x`` given the previous
node ``t`` is ``1/p`` if ``x == t``, ``1`` if ``x`` is adjacent to
``t``, else ``1/q`` (Grover & Leskovec 2016). Instead of building alias
tables per (t, v) edge pair — O(sum deg^2) memory — we use rejection
sampling against the envelope ``max(1/p, 1, 1/q)``, which keeps every
proposal a plain uniform-neighbor draw and vectorizes across all
walkers (the trick used by KnightKing).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng
from .engine import PAD, _step

__all__ = ["node2vec_walks"]


def _bulk_has_arc(sorted_keys: np.ndarray, n: int, src: np.ndarray,
                  dst: np.ndarray) -> np.ndarray:
    """Vectorized membership test against the pre-sorted arc key array."""
    query = src * np.int64(n) + dst
    pos = np.searchsorted(sorted_keys, query)
    pos = np.minimum(pos, max(len(sorted_keys) - 1, 0))
    if len(sorted_keys) == 0:
        return np.zeros(len(query), dtype=bool)
    return sorted_keys[pos] == query


def node2vec_walks(graph: Graph, starts: np.ndarray, length: int, *,
                   p: float = 1.0, q: float = 1.0, seed=None,
                   max_rejects: int = 64) -> np.ndarray:
    """Fixed-length node2vec walks, shape ``(len(starts), length + 1)``."""
    if length < 1:
        raise ParameterError("length must be >= 1")
    if p <= 0 or q <= 0:
        raise ParameterError("p and q must be positive")
    rng = ensure_rng(seed)
    starts = np.asarray(starts, dtype=np.int64)
    n = graph.num_nodes
    src_all, dst_all = graph.arcs()
    sorted_keys = np.sort(src_all * np.int64(n) + dst_all)
    w_return, w_common, w_far = 1.0 / p, 1.0, 1.0 / q
    envelope = max(w_return, w_common, w_far)

    out = np.full((len(starts), length + 1), PAD, dtype=np.int64)
    out[:, 0] = starts
    # first step is uniform (no previous node yet)
    first = _step(graph, starts, rng)
    out[:, 1] = first
    alive = np.flatnonzero(first != PAD)
    prev = starts.copy()
    current = first.copy()
    for t in range(2, length + 1):
        if len(alive) == 0:
            break
        undecided = alive.copy()
        chosen = np.full(len(current), PAD, dtype=np.int64)
        for _ in range(max_rejects):
            if len(undecided) == 0:
                break
            cand = _step(graph, current[undecided], rng)
            ok = cand != PAD
            undecided = undecided[ok]
            cand = cand[ok]
            if len(undecided) == 0:
                break
            weight = np.full(len(cand), w_far)
            weight[_bulk_has_arc(sorted_keys, n, prev[undecided], cand)] = w_common
            weight[cand == prev[undecided]] = w_return
            accept = rng.random(len(cand)) < weight / envelope
            chosen[undecided[accept]] = cand[accept]
            undecided = undecided[~accept]
        # walkers that exhausted the reject budget take a uniform step
        if len(undecided):
            fallback = _step(graph, current[undecided], rng)
            chosen[undecided] = fallback
        sel = chosen[alive]
        ok = sel != PAD
        out[alive[ok], t] = sel[ok]
        prev[alive[ok]] = current[alive[ok]]
        current[alive[ok]] = sel[ok]
        alive = alive[ok]
    return out
