"""Exception types shared across the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers catch broad categories
(``ReproError``) or precise failures (``GraphFormatError``) without string
matching.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """An edge list / adjacency input violates the documented format."""


class ParameterError(ReproError):
    """A user-supplied hyperparameter is outside its valid range."""


class ConvergenceError(ReproError):
    """An iterative solver failed to make progress within its budget."""


class DimensionError(ReproError):
    """Array shapes passed to an API are inconsistent with each other."""


class StoreError(ReproError):
    """A serving store on disk cannot be opened as described."""


class StoreCorruptError(StoreError):
    """A store file is truncated, torn, or disagrees with its manifest.

    Raised when bytes on disk cannot back the matrices the manifest
    promises — a half-copied shard, a partially overwritten matrix, or
    a manifest written by an interrupted export.
    """


class ShardLayoutError(StoreError):
    """A sharded store's manifest and its shard directories disagree.

    Raised for missing/extra shard directories, non-contiguous node
    ranges, or per-shard manifests inconsistent with the shard map.
    """


class StalePointerError(StoreError):
    """A versioned root's ``CURRENT`` pointer names a missing version.

    Distinct from a transient publish race: the named version directory
    does not exist at all, so retrying cannot help — the pointer itself
    is stale (e.g. the version was pruned by hand).
    """
