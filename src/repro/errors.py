"""Exception types shared across the :mod:`repro` package.

Keeping a small, explicit hierarchy lets callers catch broad categories
(``ReproError``) or precise failures (``GraphFormatError``) without string
matching.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """An edge list / adjacency input violates the documented format."""


class ParameterError(ReproError):
    """A user-supplied hyperparameter is outside its valid range."""


class ConvergenceError(ReproError):
    """An iterative solver failed to make progress within its budget."""


class DimensionError(ReproError):
    """Array shapes passed to an API are inconsistent with each other."""
