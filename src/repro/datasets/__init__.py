"""Synthetic analogues of the paper's datasets (Tables 3 and 4)."""

from .evolving import (EVOLVING_SPECS, DeltaBatch, EvolvingDataset,
                       evolving_dataset_names, load_evolving_dataset)
from .registry import (DATASET_SPECS, Dataset, DatasetSpec, dataset_names,
                       format_dataset_table, load_dataset)

__all__ = [
    "Dataset", "DatasetSpec", "DATASET_SPECS", "load_dataset",
    "dataset_names", "format_dataset_table",
    "DeltaBatch", "EvolvingDataset", "EVOLVING_SPECS",
    "load_evolving_dataset", "evolving_dataset_names",
]
