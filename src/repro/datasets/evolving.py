"""Evolving-graph analogues of VK and Digg (paper Table 4 / Figure 9).

The paper's Appendix C evaluates link prediction on *real future
edges*: embed the old snapshot ``E_old`` and predict ``E_new``. Our
substitution generates ``E_old`` with the usual community generator and
grows ``E_new`` by *triadic closure*: future edges are sampled from
2-hop wedge endpoints (plus a small random component), matching the
empirical fact that new friendships concentrate around mutual friends —
the same signal the paper's Figure 1 argument builds on, so the
experiment stresses exactly what it does on VK/Digg.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

import numpy as np

from ..errors import ParameterError
from ..graph import Graph, powerlaw_community
from ..rng import ensure_rng

__all__ = ["DeltaBatch", "EvolvingDataset", "EVOLVING_SPECS",
           "load_evolving_dataset", "evolving_dataset_names"]


@dataclass(frozen=True)
class DeltaBatch:
    """One timestamped batch of edge arrivals from an evolving dataset.

    ``timestamp`` is a virtual clock in ``[0, 1]``: the arrival time of
    the batch's last edge as a fraction of the whole future-edge stream.
    """

    timestamp: float
    src: np.ndarray
    dst: np.ndarray

    @property
    def size(self) -> int:
        return len(self.src)


@dataclass(frozen=True)
class EvolvingDataset:
    """Old snapshot plus held-out future edges."""

    name: str
    old_graph: Graph
    new_src: np.ndarray
    new_dst: np.ndarray

    @property
    def num_new_edges(self) -> int:
        return len(self.new_src)

    def delta_batches(self, batch_size: int) -> Iterator[DeltaBatch]:
        """Future edges as an ordered stream of timestamped delta batches.

        The monolithic ``new_src``/``new_dst`` arrays come out of the
        generator sorted by arc key — replaying them in that order would
        sweep the node space front to back, nothing like real arrival
        traffic. This iterator re-orders them with a deterministic
        per-dataset shuffle (seeded from the dataset name, independent
        of ``batch_size``) and Poisson-style arrival timestamps, then
        yields consecutive :class:`DeltaBatch` slices — what a streaming
        consumer (``repro-stream``, ``bench_streaming``) replays.
        """
        if int(batch_size) != batch_size or batch_size < 1:
            raise ParameterError(
                f"batch_size must be a positive integer, got {batch_size!r}")
        m = self.num_new_edges
        rng = ensure_rng(zlib.crc32(self.name.encode()) & 0x7FFFFFFF)
        order = rng.permutation(m)
        # exponential inter-arrivals -> a memoryless virtual clock
        arrivals = np.cumsum(rng.exponential(1.0, size=m))
        arrivals /= arrivals[-1] if m else 1.0
        src, dst = self.new_src[order], self.new_dst[order]
        for start in range(0, m, int(batch_size)):
            stop = min(m, start + int(batch_size))
            yield DeltaBatch(timestamp=float(arrivals[stop - 1]),
                             src=src[start:stop], dst=dst[start:stop])


#: name -> (nodes, old edges, new/old ratio, directed, seed)
EVOLVING_SPECS: dict[str, tuple[int, int, float, bool, int]] = {
    "vk_sim": (6_000, 120_000, 1.0, False, 201),     # paper: 2.68M/2.67M
    "digg_sim": (9_000, 60_000, 0.68, True, 202),    # paper: 1.03M/702K
}


def evolving_dataset_names() -> list[str]:
    return list(EVOLVING_SPECS)


def _triadic_new_edges(graph: Graph, count: int, rng: np.random.Generator,
                       random_fraction: float = 0.15,
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` future (non-)edges biased toward open wedges."""
    n = graph.num_nodes
    src_all, _ = graph.arcs()
    keys = np.sort(src_all * np.int64(n) + graph.arcs()[1])
    degrees = graph.out_degrees
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    seen = np.empty(0, dtype=np.int64)
    have = 0
    while have < count:
        want = int((count - have) * 1.6) + 32
        num_random = int(want * random_fraction)
        num_wedge = want - num_random
        # wedges: u -> w -> v via two uniform steps
        u = rng.integers(0, n, size=num_wedge)
        ok = degrees[u] > 0
        u = u[ok]
        off = (rng.random(len(u)) * degrees[u]).astype(np.int64)
        w = graph.indices[graph.indptr[u] + off]
        ok = degrees[w] > 0
        u, w = u[ok], w[ok]
        off = (rng.random(len(u)) * degrees[w]).astype(np.int64)
        v = graph.indices[graph.indptr[w] + off]
        ru = rng.integers(0, n, size=num_random)
        rv = rng.integers(0, n, size=num_random)
        s = np.concatenate([u, ru])
        d = np.concatenate([v, rv])
        ok = s != d
        s, d = s[ok], d[ok]
        if not graph.directed:
            s, d = np.minimum(s, d), np.maximum(s, d)
        cand = s * np.int64(n) + d
        # must not already be an edge
        pos = np.searchsorted(keys, cand)
        pos = np.minimum(pos, len(keys) - 1)
        cand = cand[keys[pos] != cand]
        cand = np.unique(cand)
        cand = np.setdiff1d(cand, seen, assume_unique=True)
        seen = np.union1d(seen, cand)
        out_src.append(cand // n)
        out_dst.append(cand % n)
        have = sum(len(x) for x in out_src)
    src = np.concatenate(out_src)[:count]
    dst = np.concatenate(out_dst)[:count]
    return src, dst


@lru_cache(maxsize=8)
def _load_cached(name: str, scale: float) -> EvolvingDataset:
    if name not in EVOLVING_SPECS:
        raise ParameterError(f"unknown evolving dataset {name!r}; "
                             f"available: {evolving_dataset_names()}")
    nodes, old_edges, ratio, directed, seed = EVOLVING_SPECS[name]
    nodes = max(64, int(nodes * scale))
    old_edges = max(2 * nodes, int(old_edges * scale))
    rng = ensure_rng(seed)
    graph, _ = powerlaw_community(nodes, old_edges, num_communities=25,
                                  mixing=0.2, directed=directed, seed=rng)
    new_count = max(1, int(graph.num_edges * ratio * 0.1))
    # 10% of the paper's new/old ratio keeps evaluation quick; the AUC
    # comparison between methods is invariant to the test-set size.
    new_src, new_dst = _triadic_new_edges(graph, new_count, rng)
    return EvolvingDataset(name=name, old_graph=graph,
                           new_src=new_src, new_dst=new_dst)


def load_evolving_dataset(name: str, *, scale: float = 1.0) -> EvolvingDataset:
    """Load (and cache) an evolving-graph analogue by name."""
    return _load_cached(name, float(scale))
