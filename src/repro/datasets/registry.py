"""Synthetic analogues of the paper's seven datasets (Table 3).

The real graphs (Wiki ... Friendster, up to 1.8B edges) are not
available offline, so each is simulated by an LFR-style power-law
community graph (:func:`repro.graph.generators.powerlaw_community`)
matched in directedness, relative density and label count, at laptop
scale. The ``scale`` knob multiplies node/edge counts so the same specs
drive both quick tests and larger runs (``REPRO_BENCH_SCALE`` in the
benchmark harness).

Labels follow the paper's datasets: community-correlated multilabel
memberships for the four classification graphs, none for
Twitter/Friendster.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import ParameterError
from ..graph import Graph, community_labels, powerlaw_community
from ..rng import ensure_rng

__all__ = ["Dataset", "DatasetSpec", "DATASET_SPECS", "load_dataset",
           "dataset_names", "format_dataset_table"]


@dataclass(frozen=True)
class DatasetSpec:
    """Generator recipe for one synthetic analogue."""

    name: str
    num_nodes: int
    num_edges: int
    directed: bool
    num_labels: int | None
    num_communities: int
    mixing: float
    exponent: float
    seed: int
    paper_nodes: str
    paper_edges: str

    def scaled(self, scale: float) -> "DatasetSpec":
        if scale <= 0:
            raise ParameterError("scale must be positive")
        n = max(64, int(self.num_nodes * scale))
        m = max(2 * n, int(self.num_edges * scale))
        return DatasetSpec(self.name, n, m, self.directed, self.num_labels,
                           self.num_communities, self.mixing, self.exponent,
                           self.seed, self.paper_nodes, self.paper_edges)


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset: graph + (optional) labels + provenance."""

    name: str
    graph: Graph
    membership: np.ndarray | None       # (n, L) binary, or None
    community: np.ndarray | None
    spec: DatasetSpec

    @property
    def num_labels(self) -> int:
        return 0 if self.membership is None else self.membership.shape[1]


#: Default (scale = 1.0) sizes keep every analogue laptop-quick while
#: preserving Table 3's ordering of sizes and densities.
DATASET_SPECS: dict[str, DatasetSpec] = {spec.name: spec for spec in [
    DatasetSpec("wiki_sim", 2_400, 46_000, True, 20, 60, 0.1, 2.3, 101,
                "4.78K", "184.81K"),
    DatasetSpec("blog_sim", 5_000, 82_000, False, 25, 60, 0.1, 2.4, 102,
                "10.31K", "333.98K"),
    DatasetSpec("youtube_sim", 22_000, 60_000, False, 25, 120, 0.15, 2.5, 103,
                "1.13M", "2.99M"),
    DatasetSpec("tweibo_sim", 30_000, 330_000, True, 40, 150, 0.15, 2.4, 104,
                "2.32M", "50.65M"),
    DatasetSpec("orkut_sim", 26_000, 400_000, False, 50, 150, 0.1, 2.5, 105,
                "3.1M", "234M"),
    DatasetSpec("twitter_sim", 60_000, 700_000, True, None, 200, 0.2, 2.2,
                106, "41.6M", "1.2B"),
    DatasetSpec("friendster_sim", 60_000, 700_000, False, None, 200, 0.2, 2.5,
                107, "65.6M", "1.8B"),
]}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`, in Table 3 order."""
    return list(DATASET_SPECS)


@lru_cache(maxsize=16)
def _load_cached(name: str, scale: float) -> Dataset:
    if name not in DATASET_SPECS:
        raise ParameterError(f"unknown dataset {name!r}; "
                             f"available: {dataset_names()}")
    spec = DATASET_SPECS[name].scaled(scale)
    rng = ensure_rng(spec.seed)
    graph, community = powerlaw_community(
        spec.num_nodes, spec.num_edges,
        num_communities=spec.num_communities, mixing=spec.mixing,
        exponent=spec.exponent, directed=spec.directed, seed=rng)
    membership = None
    if spec.num_labels:
        membership = community_labels(community, spec.num_labels, seed=rng)
    return Dataset(name=name, graph=graph, membership=membership,
                   community=community, spec=spec)


def load_dataset(name: str, *, scale: float = 1.0) -> Dataset:
    """Load (and cache) a synthetic analogue by name."""
    return _load_cached(name, float(scale))


def format_dataset_table(scale: float = 1.0) -> str:
    """A Table-3-style statistics table for the loaded analogues."""
    lines = [f"{'Name':<16}{'|V|':>10}{'|E|':>12}{'Type':>12}{'#labels':>9}"
             f"{'paper |V|':>12}{'paper |E|':>12}"]
    for name in dataset_names():
        data = load_dataset(name, scale=scale)
        g = data.graph
        kind = "directed" if g.directed else "undirected"
        labels = str(data.num_labels) if data.membership is not None else "-"
        lines.append(f"{name:<16}{g.num_nodes:>10}{g.num_edges:>12}"
                     f"{kind:>12}{labels:>9}"
                     f"{data.spec.paper_nodes:>12}{data.spec.paper_edges:>12}")
    return "\n".join(lines)
