"""RandNE: billion-scale embedding by iterative random projection
(Zhang et al., ICDM'18).

``U_0`` is an orthogonalized Gaussian projection; ``U_i = A U_{i-1}``
folds in ever-higher-order proximities; the embedding is the weighted
sum ``sum_i a_i U_i``. All cost is ``q`` sparse products — the fastest
method in the paper's Figure 7, at reduced accuracy.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng
from .base import BaselineEmbedder, register

__all__ = ["RandNE"]


@register
class RandNE(BaselineEmbedder):
    """Iterative Gaussian projection; treats input as undirected."""

    name = "RandNE"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, order_weights=(1.0, 10.0, 100.0, 1000.0),
                 use_transition: bool = True, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if not order_weights:
            raise ParameterError("order_weights must be nonempty")
        self.order_weights = tuple(float(w) for w in order_weights)
        self.use_transition = use_transition

    def fit(self, graph: Graph) -> "RandNE":
        und = graph.as_undirected()
        mat = und.transition_matrix() if self.use_transition else und.adjacency()
        rng = ensure_rng(self.seed)
        # U_0: an orthonormalized (n, dim) Gaussian basis
        g = rng.standard_normal((und.num_nodes, self.dim))
        u, _ = np.linalg.qr(g)
        acc = self.order_weights[0] * u
        for weight in self.order_weights[1:]:
            u = mat @ u
            acc = acc + weight * u
        self.embedding_ = np.asarray(acc)
        return self
