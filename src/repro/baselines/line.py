"""LINE (Tang et al., WWW'15): first+second order edge-sampling embedding.

LINE-1 ties center and context tables (preserving direct neighbor
affinity); LINE-2 uses a separate context table (preserving shared
neighborhoods). As in the original, each half gets ``dim/2`` and the
final embedding is their concatenation. Training samples edges via an
alias table (weight = 1 for simple graphs) with degree^0.75 negatives.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from .base import BaselineEmbedder, register

__all__ = ["LINE"]


@register
class LINE(BaselineEmbedder):
    """Concatenated LINE-1st + LINE-2nd embeddings."""

    name = "LINE"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, samples_per_edge: int = 50,
                 num_negatives: int = 5, lr: float = 0.025,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.samples_per_edge = samples_per_edge
        self.num_negatives = num_negatives
        self.lr = lr

    def fit(self, graph: Graph) -> "LINE":
        rngs = spawn_rngs(self.seed, 4)
        src, dst = graph.arcs()
        half = max(self.dim // 2, 1)
        noise = unigram_noise(np.maximum(graph.in_degrees, 1))

        # Edge sampling = running several shuffled epochs over the arcs.
        order_rng = rngs[0]
        num_epochs = max(1, self.samples_per_edge // 10)

        first = SGNS(graph.num_nodes, half, shared=True, seed=rngs[1])
        first.train(src, dst, noise=noise, epochs=num_epochs,
                    num_negatives=self.num_negatives, lr=self.lr,
                    seed=order_rng)

        second = SGNS(graph.num_nodes, half, shared=False, seed=rngs[2])
        second.train(src, dst, noise=noise, epochs=num_epochs,
                     num_negatives=self.num_negatives, lr=self.lr,
                     seed=rngs[3])

        self.embedding_ = np.hstack([first.input_vectors,
                                     second.input_vectors])
        return self
