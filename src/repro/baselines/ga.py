"""GA / Watch Your Step (Abu-El-Haija et al., NeurIPS'18), simplified.

The original learns a softmax *attention* distribution ``q`` over walk
lengths, defining the expected co-occurrence ``E = sum_i q_i P^i``, and
factorizes it jointly with the attention by gradient descent. We keep
both ingredients but alternate them (documented in DESIGN.md):

1. given ``q``, factorize ``sum_i q_i P^i`` with randomized SVD into
   forward/backward halves (GA is direction-aware);
2. given the factorization, update the attention logits by projected
   gradient descent on the squared reconstruction error.

Dense ``P^i`` powers cap the method at ``max_dense_nodes`` — in the
paper GA likewise fails to scale past small graphs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import randomized_svd
from .base import BaselineEmbedder, register

__all__ = ["GraphAttention"]


@register
class GraphAttention(BaselineEmbedder):
    """Learned attention over transition-matrix powers, factorized."""

    name = "GA"
    directional = True
    lp_scoring = "inner"

    def __init__(self, dim: int = 128, *, context_size: int = 5,
                 rounds: int = 4, lr: float = 1.0,
                 max_dense_nodes: int = 8_000, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if context_size < 1:
            raise ParameterError("context_size must be >= 1")
        self.context_size = context_size
        self.rounds = rounds
        self.lr = lr
        self.max_dense_nodes = max_dense_nodes
        self.attention_: np.ndarray | None = None

    def fit(self, graph: Graph) -> "GraphAttention":
        n = graph.num_nodes
        if n > self.max_dense_nodes:
            raise ParameterError(
                f"GA materializes dense P^i powers; refusing beyond "
                f"{self.max_dense_nodes} nodes")
        dense_p = graph.transition_matrix().toarray()
        powers = []
        cur = dense_p.copy()
        for _ in range(self.context_size):
            powers.append(cur)
            cur = cur @ dense_p
        logits = np.zeros(self.context_size)
        k_prime = self.dim // 2
        fwd = bwd = None
        for _ in range(self.rounds):
            q = np.exp(logits - logits.max())
            q /= q.sum()
            target = sum(qi * pi for qi, pi in zip(q, powers))
            u, s, v = randomized_svd(target, min(k_prime, n - 1),
                                     seed=self.seed)
            root = np.sqrt(s)[None, :]
            fwd, bwd = u * root, v * root
            recon = fwd @ bwd.T
            resid = target - recon
            # d/d q_i of ||sum q_i P^i - recon||^2, chain through softmax
            grad_q = np.array([2.0 * float((resid * pi).sum())
                               for pi in powers])
            grad_logits = q * (grad_q - float(q @ grad_q))
            logits -= self.lr * grad_logits
        self.attention_ = np.exp(logits - logits.max())
        self.attention_ /= self.attention_.sum()
        self.forward_ = fwd
        self.backward_ = bwd
        return self
