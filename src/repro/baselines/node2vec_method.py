"""node2vec (Grover & Leskovec, KDD'16): biased walks + skip-gram."""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from ..walks import node2vec_walks, skipgram_pairs, walk_starts
from .base import BaselineEmbedder, register

__all__ = ["Node2Vec"]


@register
class Node2Vec(BaselineEmbedder):
    """Second-order biased walks (return p, in-out q) trained with SGNS."""

    name = "node2vec"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, p: float = 1.0, q: float = 1.0,
                 walks_per_node: int = 10, walk_length: int = 40,
                 window: int = 5, num_negatives: int = 5, epochs: int = 2,
                 lr: float = 0.025, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.p = p
        self.q = q
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr

    def fit(self, graph: Graph) -> "Node2Vec":
        walk_rng, train_rng, init_rng = spawn_rngs(self.seed, 3)
        starts = walk_starts(graph, self.walks_per_node, seed=walk_rng)
        walks = node2vec_walks(graph, starts, self.walk_length,
                               p=self.p, q=self.q, seed=walk_rng)
        centers, contexts = skipgram_pairs(walks, self.window)
        freq = np.bincount(contexts, minlength=graph.num_nodes)
        model = SGNS(graph.num_nodes, self.dim, seed=init_rng)
        model.train(centers, contexts, noise=unigram_noise(freq),
                    epochs=self.epochs, num_negatives=self.num_negatives,
                    lr=self.lr, seed=train_rng)
        self.embedding_ = model.input_vectors
        return self
