"""NetMF: DeepWalk as explicit matrix factorization (Qiu et al., WSDM'18).

Factorizes the closed-form expectation of DeepWalk's implicit matrix
(log of the window-averaged random-walk matrix, shifted by the negative
sampling rate). The matrix is dense — which is exactly the scalability
wall the NRP paper points out — so this implementation guards against
graphs above ``max_dense_nodes``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import deepwalk_matrix_dense, randomized_svd
from .base import BaselineEmbedder, register

__all__ = ["NetMF"]


@register
class NetMF(BaselineEmbedder):
    """Dense DeepWalk-matrix factorization; undirected, small graphs."""

    name = "NetMF"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, window: int = 10,
                 negatives: float = 1.0, max_dense_nodes: int = 20_000,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if window < 1:
            raise ParameterError("window must be >= 1")
        self.window = window
        self.negatives = negatives
        self.max_dense_nodes = max_dense_nodes

    def fit(self, graph: Graph) -> "NetMF":
        und = graph.as_undirected()
        if und.num_nodes > self.max_dense_nodes:
            raise ParameterError(
                f"NetMF materializes a dense {und.num_nodes}^2 matrix; "
                f"refusing beyond {self.max_dense_nodes} nodes")
        m = deepwalk_matrix_dense(und.adjacency(), self.window,
                                  self.negatives)
        u, s, _ = randomized_svd(m, min(self.dim, und.num_nodes - 1),
                                 seed=self.seed)
        self.embedding_ = u * np.sqrt(s)[None, :]
        return self
