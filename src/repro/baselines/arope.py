"""AROPE: arbitrary-order proximity preserved embedding (Zhang et al., KDD'18).

AROPE eigendecomposes the (symmetrized) adjacency once and then
*reweights the eigenvalues* to realize any polynomial proximity
``S = w_1 A + w_2 A^2 + ... + w_q A^q`` without recomputation: if
``A = X diag(lambda) X^T`` then ``S = X diag(sum_i w_i lambda^i) X^T``,
and the embedding is the top-``dim`` components of ``S`` by ``|mu|``
with ``U = X' sqrt(|mu'|)`` (their Theorems 1-2).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import sparse_eigsh
from .base import BaselineEmbedder, register

__all__ = ["AROPE"]


@register
class AROPE(BaselineEmbedder):
    """Shifted eigen-reweighting embedding; treats input as undirected."""

    name = "AROPE"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, order_weights=(1.0, 0.1, 0.01),
                 oversample: int = 16, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if not order_weights:
            raise ParameterError("order_weights must be nonempty")
        self.order_weights = tuple(float(w) for w in order_weights)
        self.oversample = oversample

    def fit(self, graph: Graph) -> "AROPE":
        und = graph.as_undirected()
        # extra eigenpairs so reweighting can reorder by |mu|
        num_eigs = min(self.dim + self.oversample, und.num_nodes - 2)
        eigvals, eigvecs = sparse_eigsh(und.adjacency(), num_eigs,
                                        which="LM", seed=self.seed or 0)
        mu = np.zeros_like(eigvals)
        power = np.ones_like(eigvals)
        for w in self.order_weights:
            power = power * eigvals
            mu += w * power
        top = np.argsort(-np.abs(mu))[:self.dim]
        self.embedding_ = eigvecs[:, top] * np.sqrt(np.abs(mu[top]))[None, :]
        self.proximity_weights_ = mu[top]
        return self
