"""The 18 competitor methods of the paper's evaluation (plus Spectral).

Importing this package populates :data:`BASELINE_REGISTRY`; use
:func:`make_embedder` to instantiate any method (including NRP and
ApproxPPR) by name.
"""

from .app import APP
from .arope import AROPE
from .base import (BASELINE_REGISTRY, BaselineEmbedder, available_methods,
                   make_embedder, register)
from .deepwalk import DeepWalk
from .dngr import DNGR
from .drne import DRNE
from .ga import GraphAttention
from .graphgan import GraphGAN
from .graphwave import GraphWave
from .line import LINE
from .nethiex import NetHiex
from .netmf import NetMF
from .netsmf import NetSMF
from .node2vec_method import Node2Vec
from .pbg import PBG
from .prone import ProNE
from .randne import RandNE
from .rare import RaRE
from .spectral import SpectralEmbedding
from .strap import STRAP, pruned_ppr_matrix, pruned_ppr_matrix_push
from .verse import VERSE

__all__ = [
    "BASELINE_REGISTRY", "BaselineEmbedder", "register", "make_embedder",
    "available_methods",
    "AROPE", "RandNE", "NetMF", "NetSMF", "ProNE", "STRAP",
    "pruned_ppr_matrix", "pruned_ppr_matrix_push", "SpectralEmbedding",
    "DeepWalk", "LINE", "Node2Vec", "PBG", "APP", "VERSE",
    "DNGR", "DRNE", "GraphGAN", "GraphAttention",
    "RaRE", "NetHiex", "GraphWave",
]
