"""DeepWalk (Perozzi et al., KDD'14): uniform walks + skip-gram.

The archetypal random-walk method the paper benchmarks against. Walk
corpus sizes default to laptop scale; the original's 80 walks x 40
steps can be restored through the constructor.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from ..walks import skipgram_pairs, uniform_walks, walk_starts
from .base import BaselineEmbedder, register

__all__ = ["DeepWalk"]


@register
class DeepWalk(BaselineEmbedder):
    """Uniform truncated random walks trained with SGNS."""

    name = "DeepWalk"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, walks_per_node: int = 10,
                 walk_length: int = 40, window: int = 5,
                 num_negatives: int = 5, epochs: int = 2,
                 lr: float = 0.025, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr

    def _walks(self, graph: Graph, rng) -> np.ndarray:
        starts = walk_starts(graph, self.walks_per_node, seed=rng)
        return uniform_walks(graph, starts, self.walk_length, seed=rng)

    def fit(self, graph: Graph) -> "DeepWalk":
        walk_rng, train_rng, init_rng = spawn_rngs(self.seed, 3)
        walks = self._walks(graph, walk_rng)
        centers, contexts = skipgram_pairs(walks, self.window)
        freq = np.bincount(contexts, minlength=graph.num_nodes)
        model = SGNS(graph.num_nodes, self.dim, seed=init_rng)
        model.train(centers, contexts, noise=unigram_noise(freq),
                    epochs=self.epochs, num_negatives=self.num_negatives,
                    lr=self.lr, seed=train_rng)
        self.embedding_ = model.input_vectors
        return self
