"""GraphGAN (Wang et al., AAAI'18), simplified adversarial embedding.

Generator ``G`` and discriminator ``D`` each hold an embedding table.
``D`` learns to score true edges above generated pairs; ``G`` learns to
produce pairs that fool ``D`` via the policy-gradient signal
``log(1 - D)``, with candidates drawn from ``G``'s own softmax over a
sampled candidate pool (the original's BFS-tree softmax is replaced by
pool sampling — documented in DESIGN.md; the adversarial alternation is
kept). The final embedding is the generator table, as in the original.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..rng import ensure_rng
from .base import BaselineEmbedder, register

__all__ = ["GraphGAN"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


@register
class GraphGAN(BaselineEmbedder):
    """Alternating generator/discriminator training on edge scores."""

    name = "GraphGAN"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, rounds: int = 10,
                 batch_size: int = 4096, pool_size: int = 20,
                 lr: float = 0.05, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.rounds = rounds
        self.batch_size = batch_size
        self.pool_size = pool_size
        self.lr = lr

    def fit(self, graph: Graph) -> "GraphGAN":
        rng = ensure_rng(self.seed)
        n = graph.num_nodes
        scale = 0.5 / self.dim
        gen = rng.uniform(-scale, scale, size=(n, self.dim))
        disc = rng.uniform(-scale, scale, size=(n, self.dim))
        src, dst = graph.arcs()

        for _ in range(self.rounds):
            # --- discriminator step: true edges vs generator samples
            sel = rng.integers(0, len(src), size=min(self.batch_size, len(src)))
            pos_u, pos_v = src[sel], dst[sel]
            neg_u = rng.integers(0, n, size=len(sel))
            pool = rng.integers(0, n, size=(len(sel), self.pool_size))
            logits = np.einsum("bd,bpd->bp", gen[neg_u], gen[pool])
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            pick = (probs.cumsum(axis=1)
                    > rng.random((len(sel), 1))).argmax(axis=1)
            neg_v = pool[np.arange(len(sel)), pick]

            for u_b, v_b, label in ((pos_u, pos_v, 1.0), (neg_u, neg_v, 0.0)):
                score = _sigmoid(np.einsum("bd,bd->b", disc[u_b], disc[v_b]))
                coef = (score - label)[:, None]
                grad_u = coef * disc[v_b]
                grad_v = coef * disc[u_b]
                np.add.at(disc, u_b, -self.lr * grad_u)
                np.add.at(disc, v_b, -self.lr * grad_v)

            # --- generator step: move sampled pairs toward fooling D
            reward = np.log1p(np.exp(np.einsum(
                "bd,bd->b", disc[neg_u], disc[neg_v])))   # -log(1-D) surrogate
            coef = reward[:, None]
            grad_u = -coef * gen[neg_v]
            grad_v = -coef * gen[neg_u]
            np.add.at(gen, neg_u, -self.lr * 0.1 * grad_u)
            np.add.at(gen, neg_v, -self.lr * 0.1 * grad_v)
            # pull generator toward observed edges so it stays on-manifold
            score = _sigmoid(np.einsum("bd,bd->b", gen[pos_u], gen[pos_v]))
            coef = (score - 1.0)[:, None]
            np.add.at(gen, pos_u, -self.lr * coef * gen[pos_v])
            np.add.at(gen, pos_v, -self.lr * coef * gen[pos_u])

        self.embedding_ = gen
        return self
