"""GraphWave (Donnat et al., KDD'18): structural embeddings from heat
wavelet diffusion characteristic functions.

For each node ``v`` the heat wavelet ``psi_v = exp(-s L) delta_v`` is a
distribution over the graph; GraphWave embeds ``v`` by sampling the
empirical characteristic function ``phi_v(t) = mean_u exp(i t psi_v[u])``
at a grid of ``t`` values for a couple of scales ``s``, concatenating
real and imaginary parts. The heat kernel columns are computed in
blocks with our Chebyshev substrate, so the dense ``n x n`` kernel is
never stored. GraphWave targets *structural roles*, not proximity —
the paper includes it to show such methods underperform on
link prediction / reconstruction, which our benchmarks reproduce.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import apply_chebyshev_filter, chebyshev_coefficients
from .base import BaselineEmbedder, register

__all__ = ["GraphWave"]


@register
class GraphWave(BaselineEmbedder):
    """Heat-wavelet characteristic-function embedding (undirected)."""

    name = "GraphWave"
    lp_scoring = "edge_features"
    supports_directed = False

    def __init__(self, dim: int = 128, *, scales=(0.5, 1.0),
                 order: int = 30, block_size: int = 512,
                 max_nodes: int = 30_000, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if not scales:
            raise ParameterError("need at least one diffusion scale")
        self.scales = tuple(float(s) for s in scales)
        self.order = order
        self.block_size = block_size
        self.max_nodes = max_nodes

    def fit(self, graph: Graph) -> "GraphWave":
        und = graph.as_undirected()
        n = und.num_nodes
        if n > self.max_nodes:
            raise ParameterError(
                f"GraphWave needs n heat-kernel columns; refusing beyond "
                f"{self.max_nodes} nodes")
        a = und.adjacency()
        deg = np.asarray(a.sum(axis=1)).ravel()
        inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
        sym = sp.diags(inv_sqrt) @ a @ sp.diags(inv_sqrt)
        laplacian = sp.identity(n, format="csr") - sym

        # characteristic function sample points: dim/(4*scales) per scale
        points_per_scale = max(2, self.dim // (4 * len(self.scales)))
        t_grid = np.linspace(0.0, 100.0, points_per_scale)
        cols: list[np.ndarray] = []
        for s in self.scales:
            coeffs = chebyshev_coefficients(lambda lam: np.exp(-s * lam),
                                            self.order, (0.0, 2.0))
            real = np.zeros((n, points_per_scale))
            imag = np.zeros((n, points_per_scale))
            for lo in range(0, n, self.block_size):
                hi = min(lo + self.block_size, n)
                block = np.zeros((n, hi - lo))
                block[np.arange(lo, hi), np.arange(hi - lo)] = 1.0
                psi = apply_chebyshev_filter(lambda v: laplacian @ v, block,
                                             coeffs, (0.0, 2.0))
                # psi[:, j] is the wavelet of node lo+j; aggregate over rows
                for ti, t in enumerate(t_grid):
                    phase = t * psi
                    real[lo:hi, ti] = np.cos(phase).mean(axis=0)
                    imag[lo:hi, ti] = np.sin(phase).mean(axis=0)
            cols.extend([real, imag])
        features = np.hstack(cols)
        # pad or trim to the requested dimensionality
        if features.shape[1] < self.dim:
            reps = -(-self.dim // features.shape[1])
            features = np.tile(features, (1, reps))
        self.embedding_ = features[:, :self.dim]
        return self
