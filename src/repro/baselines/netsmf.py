"""NetSMF: sparsified NetMF via path sampling (Qiu et al., WWW'19).

Instead of the dense DeepWalk matrix, NetSMF samples ``num_samples``
random path segments to build an unbiased *sparse* estimator of the
window-averaged random-walk matrix, applies the PPMI-style log
transform to its nonzeros, and factorizes with randomized SVD. This
keeps the paper's structure (sample -> sparsify -> trunc-log -> rSVD)
at laptop scale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import randomized_svd
from ..rng import ensure_rng
from .base import BaselineEmbedder, register

__all__ = ["NetSMF"]


@register
class NetSMF(BaselineEmbedder):
    """Path-sampling sparsifier + truncated-log + rSVD (undirected)."""

    name = "NetSMF"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, window: int = 10,
                 samples_per_edge: int = 20, negatives: float = 1.0,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if window < 1 or samples_per_edge < 1:
            raise ParameterError("window and samples_per_edge must be >= 1")
        self.window = window
        self.samples_per_edge = samples_per_edge
        self.negatives = negatives

    def _walk(self, graph: Graph, start: np.ndarray, steps: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Advance each walker ``steps[i]`` uniform steps (vectorized)."""
        current = start.copy()
        degrees = graph.out_degrees
        for step in range(int(steps.max()) if len(steps) else 0):
            active = steps > step
            nodes = current[active]
            deg = degrees[nodes]
            ok = deg > 0
            offsets = (rng.random(int(ok.sum())) * deg[ok]).astype(np.int64)
            nxt = nodes.copy()
            nxt[ok] = graph.indices[graph.indptr[nodes[ok]] + offsets]
            current[active] = nxt
        return current

    def fit(self, graph: Graph) -> "NetSMF":
        und = graph.as_undirected()
        rng = ensure_rng(self.seed)
        n = und.num_nodes
        src, dst = und.arcs()
        num_samples = self.samples_per_edge * len(src)
        # sample an arc and a path length r in [1, window]; split r around
        # the arc and walk both endpoints outward — the Qiu et al. scheme
        arc_idx = rng.integers(0, len(src), size=num_samples)
        r = rng.integers(1, self.window + 1, size=num_samples)
        left_steps = rng.integers(0, r)          # in [0, r-1]
        right_steps = r - 1 - left_steps
        u_end = self._walk(und, src[arc_idx], left_steps, rng)
        v_end = self._walk(und, dst[arc_idx], right_steps, rng)

        counts = sp.coo_matrix(
            (np.ones(num_samples), (u_end, v_end)), shape=(n, n)).tocsr()
        counts = counts + counts.T               # symmetrize the estimator

        deg = np.asarray(und.adjacency().sum(axis=1)).ravel()
        deg_safe = np.where(deg > 0, deg, 1.0)
        vol = deg.sum()
        coo = counts.tocoo()
        # sparse trunc-log of (vol / b) * D^-1 M D^-1 scaled by sample mass
        scale = vol / (self.negatives * 2.0 * num_samples)
        vals = np.log(np.maximum(
            scale * vol * coo.data / (deg_safe[coo.row] * deg_safe[coo.col]),
            1e-12))
        vals = np.maximum(vals, 0.0)
        sparse_log = sp.csr_matrix((vals, (coo.row, coo.col)), shape=(n, n))
        sparse_log.eliminate_zeros()
        u, s, _ = randomized_svd(sparse_log, min(self.dim, n - 1),
                                 seed=self.seed)
        self.embedding_ = u * np.sqrt(s)[None, :]
        return self
