"""DNGR (Cao et al., AAAI'16): random surfing + PPMI + autoencoder.

Three stages, all reproduced with our substrates:

1. random-surfing matrix ``R = sum_t beta^t P^t`` (kept sparse by
   pruning tiny entries, same trick as STRAP's PPR matrix);
2. PPMI transform of ``R``;
3. a stacked autoencoder compresses each node's PPMI row to ``dim``
   (the original uses stacked *denoising* autoencoders; depth reduced,
   documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import ppmi_sparse
from ..neural import Autoencoder
from ..rng import spawn_rngs
from .base import BaselineEmbedder, register

__all__ = ["DNGR"]


@register
class DNGR(BaselineEmbedder):
    """Random surfing + PPMI + MLP autoencoder."""

    name = "DNGR"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, beta: float = 0.98, steps: int = 10,
                 prune: float = 1e-4, hidden: int = 256, epochs: int = 20,
                 max_nodes: int = 50_000, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if not 0.0 < beta < 1.0:
            raise ParameterError("beta must be in (0, 1)")
        self.beta = beta
        self.steps = steps
        self.prune = prune
        self.hidden = hidden
        self.epochs = epochs
        self.max_nodes = max_nodes

    def _surfing_matrix(self, graph: Graph) -> sp.csr_matrix:
        p = graph.transition_matrix()
        n = graph.num_nodes
        term = sp.identity(n, format="csr")
        acc = sp.csr_matrix((n, n))
        for _ in range(self.steps):
            term = (self.beta * term) @ p
            term.data[term.data < self.prune] = 0.0
            term.eliminate_zeros()
            acc = acc + term
        return acc.tocsr()

    def fit(self, graph: Graph) -> "DNGR":
        if graph.num_nodes > self.max_nodes:
            raise ParameterError(
                f"DNGR's autoencoder input is n-dimensional; refusing "
                f"beyond {self.max_nodes} nodes")
        ae_rng, fit_rng = spawn_rngs(self.seed, 2)
        ppmi = ppmi_sparse(self._surfing_matrix(graph))
        auto = Autoencoder(graph.num_nodes, (self.hidden, self.dim),
                           seed=ae_rng)
        dense_rows = np.asarray(ppmi.todense())
        # rows are scaled to unit max so tanh units stay in range
        peak = dense_rows.max()
        if peak > 0:
            dense_rows = dense_rows / peak
        auto.fit(dense_rows, epochs=self.epochs, seed=fit_rng)
        self.embedding_ = auto.encode(dense_rows)
        return self
