"""STRAP: scalable transpose-proximity embedding (Yin & Wei, KDD'19).

STRAP approximates the *transpose proximity* ``M = Pi + Pi^T`` (PPR of
the graph plus PPR of the reversed graph), keeps only entries above
``delta/2``, and factorizes with sparse SVD. The forward/backward
halves ``U sqrt(S), V sqrt(S)`` make it direction-aware, which is why
the NRP paper treats it as the strongest PPR competitor.

Substitution note (documented in DESIGN.md): the original uses
per-node backward push with threshold ``delta``; pushing node-by-node
in pure Python is orders slower than the authors' C++, so the seed
computed the same thresholded approximation with pruned sparse power
iteration — every series term is accumulated in CSR form and entries
below ``delta/2`` are dropped each round, giving the same
sparsity/accuracy semantics at vectorized speed. With the
frontier-synchronous kernel layer (:mod:`repro.ppr.kernels`) the
original per-target formulation is now fast too:
:func:`pruned_ppr_matrix_push` builds the same thresholded matrix from
batched backward pushes, and ``STRAP(solver="push")`` fits on it. The
two solvers agree within the additive push bound (``delta / 2``) and
are property-tested against each other; ``solver="power"`` stays the
default so seed results remain bit-identical.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import sparse_svd
from ..ppr.kernels import backward_push_batch
from .base import BaselineEmbedder, register

__all__ = ["STRAP", "pruned_ppr_matrix", "pruned_ppr_matrix_push"]


def pruned_ppr_matrix(graph: Graph, alpha: float, *, delta: float,
                      max_terms: int = 100) -> sp.csr_matrix:
    """Sparse approximation of ``Pi`` keeping entries ``>= delta / 2``.

    Accumulates ``alpha (1-alpha)^i P^i`` and prunes small entries of the
    *iterate* each term, mirroring how push truncates small residues.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if delta <= 0:
        raise ParameterError("delta must be positive")
    p = graph.transition_matrix().tocsr()
    n = graph.num_nodes
    term = sp.identity(n, format="csr") * alpha
    terms = [term.copy()]
    threshold = delta / 2.0
    for i in range(1, max_terms + 1):
        term = ((1.0 - alpha) * term) @ p
        term.data[term.data < threshold * alpha] = 0.0
        term.eliminate_zeros()
        if term.nnz == 0 or (1.0 - alpha) ** i < threshold:
            break
        terms.append(term.copy())
    # one balanced reduction instead of n_terms incremental additions
    while len(terms) > 1:
        terms = [terms[j] + terms[j + 1] if j + 1 < len(terms) else terms[j]
                 for j in range(0, len(terms), 2)]
    acc = terms[0].tocsr()
    acc.data[acc.data < threshold] = 0.0
    acc.eliminate_zeros()
    return acc


#: Per-batch dense-buffer budget of the push matrix builder, in float64
#: elements: each backward_push_batch call materializes two
#: ``(batch, n)`` buffers, so the batch shrinks as graphs grow to keep
#: the peak near ~256 MB instead of scaling with ``batch_size * n``.
_PUSH_BATCH_ELEMENTS = 16 << 20


def pruned_ppr_matrix_push(graph: Graph, alpha: float, *, delta: float,
                           batch_size: int = 512,
                           kernel: str | None = None) -> sp.csr_matrix:
    """Sparse ``Pi`` via batched backward push, entries ``>= delta / 2``.

    The original STRAP formulation: column ``t`` of ``Pi`` is the
    backward-push estimate toward target ``t`` with residue threshold
    ``delta / 2`` (additive error at most ``delta / 2`` per entry), and
    entries below ``delta / 2`` are dropped. Targets are processed in
    batches through :func:`repro.ppr.kernels.backward_push_batch`, so
    the whole matrix costs one frontier sweep per batch rather than one
    Python-level push per node. ``batch_size`` is a ceiling: the
    effective batch shrinks on large graphs so the kernel's dense
    ``(batch, n)`` buffers stay within a fixed memory budget.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if delta <= 0:
        raise ParameterError("delta must be positive")
    if batch_size < 1:
        raise ParameterError("batch_size must be >= 1")
    n = graph.num_nodes
    threshold = delta / 2.0
    batch = max(1, min(batch_size, _PUSH_BATCH_ELEMENTS // max(1, n)))
    blocks = []
    for start in range(0, n, batch):
        targets = np.arange(start, min(start + batch, n),
                            dtype=np.int64)
        estimate, _ = backward_push_batch(graph, targets, alpha,
                                          r_max=threshold, kernel=kernel)
        estimate[estimate < threshold] = 0.0
        blocks.append(sp.csr_matrix(estimate))
    # block rows are Pi columns: stack to (n, n) then transpose back
    return sp.vstack(blocks, format="csr").T.tocsr()


@register
class STRAP(BaselineEmbedder):
    """Transpose-proximity PPR factorization with forward/backward halves."""

    name = "STRAP"
    directional = True
    lp_scoring = "inner"

    def __init__(self, dim: int = 128, *, alpha: float = 0.15,
                 delta: float = 1e-5, solver: str = "power",
                 kernel: str | None = None, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        if solver not in ("power", "push"):
            raise ParameterError(
                f"solver must be 'power' or 'push', got {solver!r}")
        self.alpha = alpha
        self.delta = delta
        self.solver = solver
        self.kernel = kernel

    def _pruned_pi(self, graph: Graph) -> sp.csr_matrix:
        if self.solver == "push":
            return pruned_ppr_matrix_push(graph, self.alpha,
                                          delta=self.delta,
                                          kernel=self.kernel)
        return pruned_ppr_matrix(graph, self.alpha, delta=self.delta)

    def fit(self, graph: Graph) -> "STRAP":
        pi = self._pruned_pi(graph)
        if graph.directed:
            pi_t = self._pruned_pi(graph.transpose())
            proximity = pi + pi_t.T
        else:
            proximity = pi + pi.T
        k_prime = self.dim // 2
        u, s, v = sparse_svd(proximity, min(k_prime, graph.num_nodes - 2),
                             seed=self.seed or 0)
        root = np.sqrt(s)[None, :]
        self.forward_ = u * root
        self.backward_ = v * root
        return self
