"""STRAP: scalable transpose-proximity embedding (Yin & Wei, KDD'19).

STRAP approximates the *transpose proximity* ``M = Pi + Pi^T`` (PPR of
the graph plus PPR of the reversed graph), keeps only entries above
``delta/2``, and factorizes with sparse SVD. The forward/backward
halves ``U sqrt(S), V sqrt(S)`` make it direction-aware, which is why
the NRP paper treats it as the strongest PPR competitor.

Substitution note (documented in DESIGN.md): the original uses
per-node backward push with threshold ``delta``; pushing node-by-node
in pure Python is orders slower than the authors' C++, so we compute
the same thresholded approximation with pruned sparse power iteration —
every series term is accumulated in CSR form and entries below
``delta/2`` are dropped each round, giving the same sparsity/accuracy
semantics at vectorized speed. ``repro.ppr.backward_push`` remains
available and is tested to agree with this matrix on small graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError
from ..graph import Graph
from ..linalg import sparse_svd
from .base import BaselineEmbedder, register

__all__ = ["STRAP", "pruned_ppr_matrix"]


def pruned_ppr_matrix(graph: Graph, alpha: float, *, delta: float,
                      max_terms: int = 100) -> sp.csr_matrix:
    """Sparse approximation of ``Pi`` keeping entries ``>= delta / 2``.

    Accumulates ``alpha (1-alpha)^i P^i`` and prunes small entries of the
    *iterate* each term, mirroring how push truncates small residues.
    """
    if not 0.0 < alpha < 1.0:
        raise ParameterError("alpha must be in (0, 1)")
    if delta <= 0:
        raise ParameterError("delta must be positive")
    p = graph.transition_matrix().tocsr()
    n = graph.num_nodes
    term = sp.identity(n, format="csr") * alpha
    terms = [term.copy()]
    threshold = delta / 2.0
    for i in range(1, max_terms + 1):
        term = ((1.0 - alpha) * term) @ p
        term.data[term.data < threshold * alpha] = 0.0
        term.eliminate_zeros()
        if term.nnz == 0 or (1.0 - alpha) ** i < threshold:
            break
        terms.append(term.copy())
    # one balanced reduction instead of n_terms incremental additions
    while len(terms) > 1:
        terms = [terms[j] + terms[j + 1] if j + 1 < len(terms) else terms[j]
                 for j in range(0, len(terms), 2)]
    acc = terms[0].tocsr()
    acc.data[acc.data < threshold] = 0.0
    acc.eliminate_zeros()
    return acc


@register
class STRAP(BaselineEmbedder):
    """Transpose-proximity PPR factorization with forward/backward halves."""

    name = "STRAP"
    directional = True
    lp_scoring = "inner"

    def __init__(self, dim: int = 128, *, alpha: float = 0.15,
                 delta: float = 1e-5, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.alpha = alpha
        self.delta = delta

    def fit(self, graph: Graph) -> "STRAP":
        pi = pruned_ppr_matrix(graph, self.alpha, delta=self.delta)
        if graph.directed:
            pi_t = pruned_ppr_matrix(graph.transpose(), self.alpha,
                                     delta=self.delta)
            proximity = pi + pi_t.T
        else:
            proximity = pi + pi.T
        k_prime = self.dim // 2
        u, s, v = sparse_svd(proximity, min(k_prime, graph.num_nodes - 2),
                             seed=self.seed or 0)
        root = np.sqrt(s)[None, :]
        self.forward_ = u * root
        self.backward_ = v * root
        return self
