"""Classic spectral embedding (Laplacian eigenmaps), Tang & Liu 2011.

The paper cites spectral embedding as the archetypal one-hop
factorization baseline ("outputs the top k eigenvectors of the
Laplacian matrix"). We embed with the ``dim`` smallest eigenvectors of
the normalized Laplacian, computed as the largest eigenvectors of
``D^-1/2 A D^-1/2`` (undirected view of the graph).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..linalg import sparse_eigsh
from .base import BaselineEmbedder, register

__all__ = ["SpectralEmbedding"]


@register
class SpectralEmbedding(BaselineEmbedder):
    """Laplacian-eigenmap embedding; undirected-only by construction."""

    name = "Spectral"
    lp_scoring = "edge_features"
    supports_directed = False

    def fit(self, graph: Graph) -> "SpectralEmbedding":
        und = graph.as_undirected()
        a = und.adjacency()
        deg = np.asarray(a.sum(axis=1)).ravel()
        inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
        sym = sp.diags(inv_sqrt) @ a @ sp.diags(inv_sqrt)
        _, vecs = sparse_eigsh(sym, min(self.dim, und.num_nodes - 2),
                               seed=self.seed or 0)
        if vecs.shape[1] < self.dim:
            pad = np.zeros((und.num_nodes, self.dim - vecs.shape[1]))
            vecs = np.hstack([vecs, pad])
        self.embedding_ = vecs
        return self
