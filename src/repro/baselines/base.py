"""Baseline registry and shared conventions.

Every competitor of the paper's evaluation registers itself here so the
benchmark harness can instantiate methods by name. ``lp_scoring``
encodes the paper's Section 5.2 link-prediction scoring rule for each
method:

* ``"inner"`` — the method's own :meth:`score_pairs` inner product
  (factorization methods and the directional PPR family);
* ``"edge_features"`` — concatenate the endpoints' feature vectors and
  train a logistic-regression classifier (DeepWalk, LINE, node2vec,
  DNGR, DRNE, GraphGAN, GraphWave);
* ``"auto"`` — inner product on undirected graphs, edge features on
  directed graphs (VERSE, PBG: single-vector methods that cannot
  distinguish edge direction).
"""

from __future__ import annotations

from ..embedder import Embedder
from ..errors import ParameterError

__all__ = ["BaselineEmbedder", "BASELINE_REGISTRY", "register",
           "make_embedder", "available_methods"]

BASELINE_REGISTRY: dict[str, type] = {}


class BaselineEmbedder(Embedder):
    """Base class for the 18 competitor methods."""

    #: Link-prediction scoring convention, see module docstring.
    lp_scoring: str = "inner"
    #: Whether the method can exploit edge directions natively.
    supports_directed: bool = True


def register(cls: type) -> type:
    """Class decorator adding a method to :data:`BASELINE_REGISTRY`."""
    name = getattr(cls, "name", None)
    if not name:
        raise ParameterError(f"{cls.__name__} must define a name")
    BASELINE_REGISTRY[name.lower()] = cls
    return cls


def make_embedder(name: str, dim: int = 128, *, seed: int | None = 0,
                  **overrides) -> Embedder:
    """Instantiate a registered method (or NRP/ApproxPPR) by name."""
    from ..core import NRP, ApproxPPREmbedder   # local import, avoids cycle

    lowered = name.lower()
    if lowered == "nrp":
        return NRP(dim, seed=seed, **overrides)
    if lowered == "approxppr":
        return ApproxPPREmbedder(dim, seed=seed, **overrides)
    if lowered not in BASELINE_REGISTRY:
        raise ParameterError(f"unknown method {name!r}; "
                             f"available: {sorted(BASELINE_REGISTRY)}")
    return BASELINE_REGISTRY[lowered](dim, seed=seed, **overrides)


def available_methods() -> list[str]:
    """All method names usable with :func:`make_embedder`."""
    return ["nrp", "approxppr", *sorted(BASELINE_REGISTRY)]
