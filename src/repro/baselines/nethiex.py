"""NetHiex (Ma et al., KDD'18), simplified: taxonomy-aware embedding.

NetHiex couples each node with a latent hierarchical taxonomy learned
by EM. We reproduce the *representation* — a node vector composed with
its ancestors' category vectors — while learning the taxonomy by
recursive k-means over a spectral bootstrap instead of nonparametric EM
(documented in DESIGN.md):

    Z_v = base_v + gamma * centroid(level1(v)) + gamma^2 * centroid(level2(v))

so nodes in the same latent category share mass, which is what gives
NetHiex its classification strength in the paper.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..linalg import randomized_svd
from ..ml.kmeans import kmeans
from ..rng import spawn_rngs
from .base import BaselineEmbedder, register

__all__ = ["NetHiex"]


@register
class NetHiex(BaselineEmbedder):
    """Two-level latent taxonomy over a spectral bootstrap; undirected."""

    name = "NetHiex"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, branches: int = 8,
                 gamma: float = 0.5, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.branches = branches
        self.gamma = gamma
        self.taxonomy_: tuple[np.ndarray, np.ndarray] | None = None

    def fit(self, graph: Graph) -> "NetHiex":
        und = graph.as_undirected()
        svd_rng, km1_rng, km2_rng = spawn_rngs(self.seed, 3)
        u, s, _ = randomized_svd(und.adjacency(),
                                 min(self.dim, und.num_nodes - 1),
                                 seed=svd_rng)
        base = u * np.sqrt(s)[None, :]
        k1 = min(self.branches, und.num_nodes)
        level1, cent1 = kmeans(base, k1, seed=km1_rng)
        level2 = np.zeros(und.num_nodes, dtype=np.int64)
        cent2 = np.zeros((k1 * self.branches, base.shape[1]))
        for c in range(k1):
            members = np.flatnonzero(level1 == c)
            if len(members) == 0:
                continue
            k2 = min(self.branches, len(members))
            sub_assign, sub_cent = kmeans(base[members], k2, seed=km2_rng)
            level2[members] = c * self.branches + sub_assign
            cent2[c * self.branches:c * self.branches + k2] = sub_cent
        self.taxonomy_ = (level1, level2)
        self.embedding_ = (base + self.gamma * cent1[level1]
                           + self.gamma ** 2 * cent2[level2])
        return self
