"""ProNE: fast factorization + spectral propagation (Zhang et al., IJCAI'19).

Two stages, both reproduced:

1. *Sparse matrix factorization*: randomized SVD of the transition
   matrix gives the initial embedding (their ``r_hat`` step).
2. *Spectral propagation*: the embedding is filtered by a band-pass
   Gaussian ``g(lambda) = exp(-theta/2 ((lambda - mu)^2 - 1))`` of the
   normalized Laplacian, evaluated with our Chebyshev substrate — this
   is the step that makes ProNE strong on node classification.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import Graph
from ..linalg import (apply_chebyshev_filter, chebyshev_coefficients,
                      randomized_svd)
from .base import BaselineEmbedder, register

__all__ = ["ProNE"]


@register
class ProNE(BaselineEmbedder):
    """rSVD bootstrap + Chebyshev Gaussian filter; undirected."""

    name = "ProNE"
    lp_scoring = "inner"
    supports_directed = False

    def __init__(self, dim: int = 128, *, mu: float = 0.2, theta: float = 0.5,
                 order: int = 10, seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.mu = mu
        self.theta = theta
        self.order = order

    def fit(self, graph: Graph) -> "ProNE":
        und = graph.as_undirected()
        n = und.num_nodes
        # stage 1: factorize the (row-normalized) adjacency
        p = und.transition_matrix()
        u, s, _ = randomized_svd(p, min(self.dim, n - 1), seed=self.seed)
        base = u * np.sqrt(s)[None, :]

        # stage 2: band-pass filter of the normalized Laplacian
        a = und.adjacency()
        deg = np.asarray(a.sum(axis=1)).ravel()
        inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
        sym = sp.diags(inv_sqrt) @ a @ sp.diags(inv_sqrt)
        laplacian = sp.identity(n, format="csr") - sym

        def filt(lam: np.ndarray) -> np.ndarray:
            return np.exp(-0.5 * ((lam - self.mu) ** 2 - 1.0) * self.theta)

        coeffs = chebyshev_coefficients(filt, self.order, (0.0, 2.0))
        smoothed = apply_chebyshev_filter(lambda v: laplacian @ v, base,
                                          coeffs, (0.0, 2.0))
        # ProNE re-couples the filtered signal through D^-1 A
        self.embedding_ = np.asarray(p @ smoothed)
        return self
