"""RaRE (Gu et al., WWW'18), simplified: proximity + popularity factors.

RaRE's key idea — separating a node's *social rank* (popularity) from
its *proximity* — is kept: each node gets a proximity vector ``s_v``
and a popularity scalar ``b_v``, with edge probability
``sigma(s_u . s_v + b_u + b_v)`` trained by SGD with negative sampling
(a maximum-a-posteriori point estimate of their Bayesian model;
documented simplification in DESIGN.md). Link prediction uses the
method's own probability function, per paper Section 5.2; node features
are the proximity vectors with the popularity appended.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..rng import ensure_rng
from .base import BaselineEmbedder, register

__all__ = ["RaRE"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


@register
class RaRE(BaselineEmbedder):
    """Proximity vectors + popularity scalars with a MAP objective."""

    name = "RaRE"
    lp_scoring = "inner"     # score_pairs below IS the RaRE probability

    def __init__(self, dim: int = 128, *, epochs: int = 5,
                 num_negatives: int = 5, lr: float = 0.05,
                 reg: float = 1e-3, batch_size: int = 8192,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.epochs = epochs
        self.num_negatives = num_negatives
        self.lr = lr
        self.reg = reg
        self.batch_size = batch_size
        self.popularity_: np.ndarray | None = None
        self.proximity_: np.ndarray | None = None

    def fit(self, graph: Graph) -> "RaRE":
        rng = ensure_rng(self.seed)
        n = graph.num_nodes
        prox_dim = self.dim - 1      # one slot goes to popularity
        scale = 0.5 / max(prox_dim, 1)
        s = rng.uniform(-scale, scale, size=(n, prox_dim))
        b = np.zeros(n)
        src, dst = graph.arcs()

        for _ in range(self.epochs):
            order = rng.permutation(len(src))
            for lo in range(0, len(src), self.batch_size):
                sel = order[lo:lo + self.batch_size]
                u, v = src[sel], dst[sel]
                neg_v = rng.integers(0, n, size=(len(sel), self.num_negatives))
                # positive pairs
                p = _sigmoid(np.einsum("bd,bd->b", s[u], s[v]) + b[u] + b[v])
                coef = (p - 1.0)[:, None]
                np.add.at(s, u, -self.lr * (coef * s[v] + self.reg * s[u]))
                np.add.at(s, v, -self.lr * (coef * s[u] + self.reg * s[v]))
                np.add.at(b, u, -self.lr * coef.ravel())
                np.add.at(b, v, -self.lr * coef.ravel())
                # negatives; the popularity gradient is averaged over the
                # negative pool so positive/negative pressure on b is
                # balanced and degree (not sampling rate) drives popularity
                pn = _sigmoid(np.einsum("bd,bnd->bn", s[u], s[neg_v])
                              + b[u][:, None] + b[neg_v])
                coef_n = pn[:, :, None]
                np.add.at(s, u, -self.lr * np.einsum("bnd->bd",
                                                     coef_n * s[neg_v]))
                np.add.at(s, neg_v.ravel(),
                          (-self.lr * (coef_n * s[u][:, None, :]))
                          .reshape(-1, prox_dim))
                np.add.at(b, u, -self.lr * pn.mean(axis=1))
                np.add.at(b, neg_v.ravel(),
                          -self.lr * pn.ravel() / self.num_negatives)

        self.proximity_ = s
        self.popularity_ = b
        self.embedding_ = np.hstack([s, b[:, None]])
        return self

    def score_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """RaRE's connection probability (paper's scoring rule for RaRE)."""
        self._require_fitted()
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        logit = (np.einsum("ij,ij->i", self.proximity_[src],
                           self.proximity_[dst])
                 + self.popularity_[src] + self.popularity_[dst])
        return _sigmoid(logit)
