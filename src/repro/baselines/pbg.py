"""PBG / PyTorch-BigGraph (Lerer et al., SysML'19), single-partition form.

PBG's modeling core is a dot-product edge score trained with in-batch
negative sampling; its contribution is the distributed partitioning,
which is irrelevant at laptop scale. We therefore train the same edge
objective in one partition (documented simplification in DESIGN.md).
Like VERSE it emits one vector per node, hence ``lp_scoring = "auto"``.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from .base import BaselineEmbedder, register

__all__ = ["PBG"]


@register
class PBG(BaselineEmbedder):
    """Dot-product edge model with negative sampling (one partition)."""

    name = "PBG"
    lp_scoring = "auto"

    def __init__(self, dim: int = 128, *, epochs: int = 5,
                 num_negatives: int = 10, lr: float = 0.01,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.epochs = epochs
        self.num_negatives = num_negatives
        self.lr = lr

    def fit(self, graph: Graph) -> "PBG":
        train_rng, init_rng = spawn_rngs(self.seed, 2)
        src, dst = graph.arcs()
        model = SGNS(graph.num_nodes, self.dim, shared=True, seed=init_rng)
        noise = unigram_noise(np.ones(graph.num_nodes), power=1.0)
        model.train(src, dst, noise=noise, epochs=self.epochs,
                    num_negatives=self.num_negatives, lr=self.lr,
                    seed=train_rng)
        self.embedding_ = model.input_vectors
        return self
