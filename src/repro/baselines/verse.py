"""VERSE (Tsitsulin et al., WWW'18): PPR-similarity single-vector embedding.

Same alpha-terminating walk sampling as APP but with a *single* (tied)
embedding table — the design choice the NRP paper criticizes on
directed graphs, since one vector per node cannot represent asymmetric
transitivity. Accordingly ``lp_scoring = "auto"``: inner product on
undirected graphs, edge-features logistic regression on directed ones
(paper Section 5.2).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from ..walks import PAD, ppr_walks, walk_starts
from .base import BaselineEmbedder, register

__all__ = ["VERSE"]


@register
class VERSE(BaselineEmbedder):
    """Tied-table SGNS on PPR walk endpoints."""

    name = "VERSE"
    lp_scoring = "auto"

    def __init__(self, dim: int = 128, *, alpha: float = 0.15,
                 samples_per_node: int = 100, num_negatives: int = 3,
                 epochs: int = 1, lr: float = 0.0025,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.alpha = alpha
        self.samples_per_node = samples_per_node
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr

    def fit(self, graph: Graph) -> "VERSE":
        walk_rng, train_rng, init_rng = spawn_rngs(self.seed, 3)
        starts = walk_starts(graph, self.samples_per_node, seed=walk_rng)
        walks = ppr_walks(graph, starts, self.alpha, seed=walk_rng)
        lengths = (walks != PAD).sum(axis=1)
        stops = walks[np.arange(len(walks)), lengths - 1]
        keep = stops != starts
        centers, contexts = starts[keep], stops[keep]
        model = SGNS(graph.num_nodes, self.dim, shared=True, seed=init_rng)
        # VERSE samples negatives uniformly
        noise = unigram_noise(np.ones(graph.num_nodes), power=1.0)
        model.train(centers, contexts, noise=noise, epochs=self.epochs,
                    num_negatives=self.num_negatives, lr=self.lr,
                    seed=train_rng)
        self.embedding_ = model.input_vectors
        return self
