"""DRNE (Tu et al., KDD'18), simplified: recursive neighbor aggregation.

The original learns an LSTM over degree-ordered neighbor embedding
sequences so nodes with *regularly equivalent* neighborhoods embed
alike. Reproducing an LSTM in numpy adds nothing to the NRP evaluation
(DRNE is a mid-tier competitor), so we keep DRNE's recursion but replace
the LSTM cell with a dense recurrent layer (documented in DESIGN.md):

    Z <- tanh( mean_{u in N(v)} Z_u W  +  z0_v U )

iterated ``layers`` times from degree-bucket one-hot-ish features, plus
DRNE's degree-regression regularizer realized as an explicit
log-degree feature column.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..rng import ensure_rng
from .base import BaselineEmbedder, register

__all__ = ["DRNE"]


@register
class DRNE(BaselineEmbedder):
    """Recursive structural aggregation (LSTM replaced by dense recurrence)."""

    name = "DRNE"
    lp_scoring = "edge_features"

    def __init__(self, dim: int = 128, *, layers: int = 3,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.layers = layers

    def fit(self, graph: Graph) -> "DRNE":
        rng = ensure_rng(self.seed)
        n = graph.num_nodes
        p = graph.transition_matrix()        # mean over out-neighbors
        log_deg = np.log1p(graph.out_degrees.astype(np.float64))
        base = rng.standard_normal((n, self.dim)) * 0.1
        base[:, 0] = log_deg                 # degree regression feature
        z = base.copy()
        for _ in range(self.layers):
            w = np.linalg.qr(rng.standard_normal((self.dim, self.dim)))[0]
            u = np.linalg.qr(rng.standard_normal((self.dim, self.dim)))[0]
            z = np.tanh((p @ z) @ w + base @ u)
            z[:, 0] = log_deg                # re-pin the regularized column
        self.embedding_ = z
        return self
