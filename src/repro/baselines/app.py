"""APP (Zhou et al., AAAI'17): asymmetric proximity preserving embedding.

APP is the PPR-random-walk method the NRP paper singles out: sample
alpha-terminating walks and train skip-gram on *(start, stop)* pairs
with separate source/target tables — the tables become the forward and
backward embeddings, preserving ``pi(u, v)``'s asymmetry. NRP's Section
1 argument (vanilla PPR is a relative measure) applies to APP directly,
which is what the benchmarks show.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..neural import SGNS, unigram_noise
from ..rng import spawn_rngs
from ..walks import PAD, ppr_walks, walk_starts
from .base import BaselineEmbedder, register

__all__ = ["APP"]


@register
class APP(BaselineEmbedder):
    """PPR-walk endpoint sampling with forward/backward SGNS tables."""

    name = "APP"
    directional = True
    lp_scoring = "inner"

    def __init__(self, dim: int = 128, *, alpha: float = 0.15,
                 samples_per_node: int = 100, num_negatives: int = 5,
                 epochs: int = 1, lr: float = 0.025,
                 seed: int | None = 0) -> None:
        super().__init__(dim, seed=seed)
        self.alpha = alpha
        self.samples_per_node = samples_per_node
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr

    def fit(self, graph: Graph) -> "APP":
        walk_rng, train_rng, init_rng = spawn_rngs(self.seed, 3)
        starts = walk_starts(graph, self.samples_per_node, seed=walk_rng)
        walks = ppr_walks(graph, starts, self.alpha, seed=walk_rng)
        # stop node = last non-PAD entry of each walk
        lengths = (walks != PAD).sum(axis=1)
        stops = walks[np.arange(len(walks)), lengths - 1]
        keep = stops != starts          # self-pairs carry no signal
        centers, contexts = starts[keep], stops[keep]
        freq = np.bincount(contexts, minlength=graph.num_nodes)
        model = SGNS(graph.num_nodes, self.dim // 2, shared=False,
                     seed=init_rng)
        model.train(centers, contexts, noise=unigram_noise(freq),
                    epochs=self.epochs, num_negatives=self.num_negatives,
                    lr=self.lr, seed=train_rng)
        self.forward_ = model.input_vectors
        self.backward_ = model.output_vectors
        return self
