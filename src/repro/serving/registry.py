"""Multi-model serving registry.

A production deployment rarely serves one embedding: different tasks
(related-item, follow-recommendation, similar-query) use different
models, and a new model version warms up next to the old one before the
traffic flips. :class:`ServingRegistry` holds named
:class:`~repro.serving.engine.QueryEngine` instances so callers address
models by name; :data:`DEFAULT_REGISTRY` is a process-wide convenience
instance (see ``examples/serving_topk.py``).
"""

from __future__ import annotations

from ..errors import ParameterError, ReproError
from .engine import QueryEngine

__all__ = ["ServingRegistry", "DEFAULT_REGISTRY"]


class ServingRegistry:
    """Name -> :class:`QueryEngine` map with engine construction sugar."""

    def __init__(self) -> None:
        self._engines: dict[str, QueryEngine] = {}

    def register(self, name: str, source, *, replace: bool = False,
                 **engine_options) -> QueryEngine:
        """Add a model under ``name``; builds an engine unless given one.

        ``source`` is a :class:`QueryEngine` or anything
        :class:`QueryEngine` accepts (embedder / bundle / store).
        Re-registering an existing name requires ``replace=True`` so a
        typo cannot silently swap live traffic to another model.
        """
        if not name:
            raise ParameterError("model name must be non-empty")
        if name in self._engines and not replace:
            raise ReproError(
                f"model {name!r} already registered (pass replace=True)")
        if isinstance(source, QueryEngine):
            if engine_options:
                raise ParameterError(
                    "engine_options only apply when source is not "
                    "already a QueryEngine")
            engine = source
        else:
            engine = QueryEngine(source, **engine_options)
        self._engines[name] = engine
        return engine

    def get(self, name: str) -> QueryEngine:
        try:
            return self._engines[name]
        except KeyError:
            raise ReproError(
                f"no model {name!r} registered; have {self.names()}"
                ) from None

    def unregister(self, name: str) -> None:
        self.get(name)
        del self._engines[name]

    def names(self) -> list[str]:
        return sorted(self._engines)

    # Convenience pass-throughs for the two serving calls.
    def topk(self, name: str, src_nodes, k: int = 10):
        return self.get(name).topk(src_nodes, k)

    def score(self, name: str, src, dst):
        return self.get(name).score(src, dst)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    def __len__(self) -> int:
        return len(self._engines)


#: Process-wide convenience registry for applications that want one
#: shared place to look up models by name.
DEFAULT_REGISTRY = ServingRegistry()
