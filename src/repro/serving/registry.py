"""Multi-model serving registry.

A production deployment rarely serves one embedding: different tasks
(related-item, follow-recommendation, similar-query) use different
models, and a new model version warms up next to the old one before the
traffic flips. :class:`ServingRegistry` holds named
:class:`~repro.serving.engine.QueryEngine` instances so callers address
models by name; :data:`DEFAULT_REGISTRY` is a process-wide convenience
instance (see ``examples/serving_topk.py``).

The registry is **thread-safe**: lookups and (re-)registrations take an
internal lock, and :meth:`ServingRegistry.swap` builds the replacement
engine *before* entering the lock, so a query thread racing a hot swap
either gets the complete old engine or the complete new one — never a
half-built index. An in-flight query that already resolved its engine
keeps using it to completion; engines are immutable once built (the LRU
cache inside :class:`QueryEngine` is per-engine and dies with it), so
nothing is ever torn out from under a reader.
"""

from __future__ import annotations

import threading

from ..errors import ParameterError, ReproError
from .engine import QueryEngine

__all__ = ["ServingRegistry", "DEFAULT_REGISTRY"]


class ServingRegistry:
    """Name -> :class:`QueryEngine` map with engine construction sugar."""

    def __init__(self) -> None:
        self._engines: dict[str, QueryEngine] = {}
        self._lock = threading.RLock()

    @staticmethod
    def _build(source, engine_options) -> QueryEngine:
        if isinstance(source, QueryEngine):
            if engine_options:
                raise ParameterError(
                    "engine_options only apply when source is not "
                    "already a QueryEngine")
            return source
        # engine= / shards= / workers= route through the factory, so a
        # sharded store registers as a scatter-gather engine without the
        # caller caring which flavor it gets back.
        from .router import make_engine   # local import, avoids cycle
        return make_engine(source, **engine_options)

    def register(self, name: str, source, *, replace: bool = False,
                 **engine_options) -> QueryEngine:
        """Add a model under ``name``; builds an engine unless given one.

        ``source`` is a :class:`QueryEngine` or anything
        :class:`QueryEngine` accepts (embedder / bundle / store).
        Re-registering an existing name requires ``replace=True`` so a
        typo cannot silently swap live traffic to another model.
        """
        if not name:
            raise ParameterError("model name must be non-empty")
        # Fail fast on a taken name before paying for the index build;
        # the insert below re-checks, since the lock is released during
        # construction.
        with self._lock:
            if name in self._engines and not replace:
                raise ReproError(
                    f"model {name!r} already registered (pass replace=True)")
        # Engine construction (index build) can be slow; do it outside
        # the lock so concurrent queries to other models never stall.
        engine = self._build(source, engine_options)
        with self._lock:
            if name in self._engines and not replace:
                raise ReproError(
                    f"model {name!r} already registered (pass replace=True)")
            retired = self._engines.get(name)
            self._engines[name] = engine
        self._retire(retired, engine)
        return engine

    @staticmethod
    def _retire(old, new=None) -> None:
        """Close an engine this registry evicted (outside the lock).

        In-flight queries that already resolved ``old`` finish on it —
        closing only shuts the retrieval backend's thread pool down,
        and backends degrade to serial execution after that — so the
        registry's swap invariant (readers never see a torn engine)
        survives the cleanup.
        """
        if old is not None and old is not new:
            old.close()

    def swap(self, name: str, source, **engine_options) -> QueryEngine:
        """Atomically replace the live engine of ``name`` (hot swap).

        The streaming tier's traffic flip: the replacement engine is
        fully constructed first, then the name is repointed under the
        lock. Unlike ``register(replace=True)`` the name must already be
        registered — a swap is a refresh of live traffic, not a launch.
        Returns the new engine; the old one serves any in-flight queries
        to completion and is then garbage-collected.
        """
        engine = self._build(source, engine_options)
        with self._lock:
            if name not in self._engines:
                raise ReproError(
                    f"no model {name!r} to swap; register() it first "
                    f"(have {sorted(self._engines)})")
            retired = self._engines[name]
            self._engines[name] = engine
        self._retire(retired, engine)
        return engine

    def get(self, name: str) -> QueryEngine:
        with self._lock:
            try:
                return self._engines[name]
            except KeyError:
                raise ReproError(
                    f"no model {name!r} registered; have {self.names()}"
                    ) from None

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._engines:
                raise ReproError(
                    f"no model {name!r} registered; have {self.names()}")
            retired = self._engines.pop(name)
        self._retire(retired)

    def close(self) -> None:
        """Unregister every model and close its engine.

        What a long-lived server calls on shutdown so retrieval thread
        pools exit with it instead of lingering until interpreter
        teardown. The registry stays usable afterwards (it is simply
        empty).
        """
        with self._lock:
            retired = list(self._engines.values())
            self._engines.clear()
        for engine in retired:
            self._retire(engine)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._engines)

    # Convenience pass-throughs for the two serving calls.
    def topk(self, name: str, src_nodes, k: int = 10):
        return self.get(name).topk(src_nodes, k)

    def score(self, name: str, src, dst):
        return self.get(name).score(src, dst)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)


#: Process-wide convenience registry for applications that want one
#: shared place to look up models by name.
DEFAULT_REGISTRY = ServingRegistry()
