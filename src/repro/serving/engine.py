"""Batched online query engine over one embedding model.

The offline side of the paper produces ``X``/``Y`` (or ``Z``); the
online side — the part that actually serves recommendation traffic in
production PPR systems — answers two queries:

* ``topk(src_nodes, k)``: the ``k`` highest-proximity nodes for each
  source, i.e. the head of ``argsort(-score_all_from(src))``;
* ``score(src, dst)``: exact proximity of explicit pairs.

:class:`QueryEngine` wraps any fitted :class:`~repro.embedder.Embedder`,
loaded :class:`~repro.io.EmbeddingBundle`, or mmap'd
:class:`~repro.serving.store.EmbeddingStore` behind those two calls,
routing top-k through a pluggable :mod:`~repro.serving.index` backend
and memoizing hot sources in a small LRU cache (real query streams are
heavily skewed, so even a tiny cache absorbs a large share of traffic).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..embedder import has_custom_scoring
from ..errors import ParameterError, ReproError
from .index import TopKIndex, build_index

__all__ = ["QueryEngine", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters for the engine's top-k LRU cache.

    ``hit_rate`` is defined as 0.0 before any request has been seen
    (not NaN / ZeroDivisionError — dashboards divide by these numbers).
    The same counters feed the ``serving_cache_{hits,misses}_total``
    metrics series when :mod:`repro.obs` collection is enabled, so the
    in-process view and the exported view cannot drift apart.
    """

    hits: int = 0
    misses: int = 0
    capacity: int = 0
    size: int = field(default=0)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (what the CLIs and snapshots embed)."""
        return {"hits": self.hits, "misses": self.misses,
                "capacity": self.capacity, "size": self.size,
                "hit_rate": self.hit_rate}


def _resolve_matrices(source) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(query_matrix, database_matrix)`` for a model-like source.

    Directional methods score ``X_u . Y_v``: queries come from the
    forward matrix, the index is built over the backward matrix.
    Single-vector methods use the one matrix for both sides.
    """
    name = getattr(source, "name", type(source).__name__)
    # A model whose native score is not an inner product (e.g. RaRE's
    # sigmoid rule) cannot be served by a dot-product index — that
    # would silently return different scores than the model itself.
    # has_custom_scoring also honors the marker a bundle/store carries.
    if has_custom_scoring(source):
        raise ParameterError(
            f"{name}: uses a non-inner-product scoring rule, which the "
            f"serving index cannot reproduce")
    if getattr(source, "directional", False):
        queries, database = source.forward_, source.backward_
    else:
        queries = database = source.embedding_
    if queries is None or database is None:
        raise ReproError(
            f"{name}: source has no fitted matrices "
            "(call fit() or load a bundle)")
    return queries, database


class QueryEngine:
    """Top-k / pair-score serving facade over one embedding model."""

    def __init__(self, source, *, index: str | TopKIndex = "exact",
                 cache_size: int = 1024, **index_options) -> None:
        self._queries, self._database = _resolve_matrices(source)
        self.name: str = getattr(source, "name", type(source).__name__)
        self.directional: bool = bool(getattr(source, "directional", False))
        self.source = source
        self.index = self._make_index(index, index_options)
        if cache_size < 0:
            raise ParameterError("cache_size must be >= 0")
        self._cache_capacity = int(cache_size)
        self._cache: OrderedDict[tuple[int, int], tuple[np.ndarray,
                                                        np.ndarray]]
        self._cache = OrderedDict()
        # Serving is multi-threaded (registry hot swaps, concurrent
        # readers); the LRU bookkeeping is the one mutable spot, so its
        # compound operations (get + move_to_end, put + evict) take a
        # lock. Index searches run outside it and stay parallel.
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        # cached metric handles (rebuilt when the registry is cleared);
        # saves the per-call name+label series lookups on the hot path
        self._obs_series: tuple | None = None

    def _make_index(self, index, index_options: dict):
        """Build (or validate) the top-k backend for ``self._database``.

        Subclasses override this to route retrieval differently (the
        sharded engine swaps in a scatter-gather router) while keeping
        the batching/LRU machinery of this class untouched.
        """
        if isinstance(index, TopKIndex):
            if index_options:
                raise ParameterError(
                    "index_options only apply when building by kind name")
            if index.num_items != self._database.shape[0]:
                raise ParameterError(
                    f"prebuilt index holds {index.num_items} items but the "
                    f"model has {self._database.shape[0]} nodes")
            return index
        return build_index(self._database, index, **index_options)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._queries.shape[0]

    # ------------------------------------------------------------------
    def topk(self, src_nodes, k: int = 10,
             ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` neighbors by proximity score for each source node.

        ``src_nodes`` may be a scalar node id (returns ``(k,)`` arrays)
        or a sequence (returns ``(len(src_nodes), k)`` arrays). The
        result is ``(indices, scores)`` sorted by descending score; with
        the exact backend the indices match
        ``argsort(-score_all_from(src))[:k]``.
        """
        if not obs.enabled():
            return self._topk(src_nodes, k)
        latency, batch_size, hits, misses = self._metric_handles()
        hits0, misses0 = self._hits, self._misses
        start = time.perf_counter()
        try:
            return self._topk(src_nodes, k)
        finally:
            # exemplar: a sampled serving request links its trace id to
            # the latency observation (no-op outside a request context)
            latency.observe(time.perf_counter() - start,
                            obs.requestctx.exemplar())
            batch_size.observe(max(1, np.size(src_nodes)))
            # deltas, not absolutes: concurrent topk calls each publish
            # their own counter increments; clamp against a racing
            # cache_clear() flooring the totals mid-flight
            hits.inc(max(0, self._hits - hits0))
            misses.inc(max(0, self._misses - misses0))

    def _metric_handles(self) -> tuple:
        """Hot-path metric handles, re-resolved after a registry clear."""
        registry = obs.get_registry()
        cached = self._obs_series
        if cached is not None and cached[0] == registry.generation:
            return cached[1]
        labels = {"engine": self.name}
        handles = (registry.histogram("serving_topk_seconds", labels),
                   registry.histogram("serving_topk_batch_size", labels),
                   registry.counter("serving_cache_hits_total", labels),
                   registry.counter("serving_cache_misses_total", labels))
        self._obs_series = (registry.generation, handles)
        return handles

    def _topk(self, src_nodes, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k < 1:
            raise ParameterError("k must be >= 1")
        nodes = np.atleast_1d(np.asarray(src_nodes, dtype=np.int64))
        scalar = np.isscalar(src_nodes) or getattr(src_nodes, "ndim", 1) == 0
        if nodes.ndim != 1:
            raise ParameterError("src_nodes must be a scalar or 1-D")
        if len(nodes) and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise ParameterError(
                f"src node out of range [0, {self.num_nodes})")

        if len(nodes) == 0:
            # same column convention as the non-empty path: the index
            # decides the width (min(k, num_items)), not the engine
            empty = np.empty((0, min(k, self.index.num_items)))
            return empty.astype(np.int64), empty.astype(np.float64)
        if not self._cache_capacity:
            # cache disabled: skip the per-node bookkeeping entirely
            with self._cache_lock:
                self._misses += len(nodes)
            out_ids, out_scores = self.index.search(self._queries[nodes], k)
            if scalar:
                return out_ids[0], out_scores[0]
            return out_ids, out_scores
        missing: list[int] = []
        cached: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for pos, node in enumerate(nodes):
            entry = self._cache_get(int(node), k)
            if entry is None:
                missing.append(pos)
            else:
                cached[pos] = entry
        if missing:
            # dedupe: a hot node repeated in one batch is searched once
            uniq, inverse = np.unique(nodes[missing], return_inverse=True)
            ids, scores = self.index.search(self._queries[uniq], k)
            # copy: a cached row must not pin the whole batch result
            entries = [(ids[row].copy(), scores[row].copy())
                       for row in range(len(uniq))]
            for node, entry in zip(uniq, entries):
                self._cache_put(int(node), k, entry)
            for j, pos in enumerate(missing):
                cached[pos] = entries[inverse[j]]
        # np.stack allocates fresh arrays, so callers can't corrupt the
        # cached rows; only the scalar path needs an explicit copy.
        out_ids = np.stack([cached[p][0] for p in range(len(nodes))])
        out_scores = np.stack([cached[p][1] for p in range(len(nodes))])
        if scalar:
            return out_ids[0].copy(), out_scores[0].copy()
        return out_ids, out_scores

    def score(self, src, dst) -> np.ndarray:
        """Exact proximity score for aligned ``(src, dst)`` pairs.

        ``src`` and ``dst`` are equal-length sequences of node ids; a
        scalar on either side broadcasts against the other (one source
        scored against many destinations, or the reverse). Mismatched
        lengths raise :class:`~repro.errors.ParameterError` — this is
        the malformed-request shape the HTTP ``/score`` route turns
        into a 400.
        """
        if not obs.enabled():
            return self._score(src, dst)
        start = time.perf_counter()
        try:
            return self._score(src, dst)
        finally:
            obs.get_registry().histogram(
                "serving_score_seconds",
                {"engine": self.name}).observe(time.perf_counter() - start)

    def _score(self, src, dst) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        for label, nodes in (("src", src), ("dst", dst)):
            if nodes.ndim > 1:
                raise ParameterError(
                    f"{label} must be a scalar node id or a 1-D sequence, "
                    f"got a {nodes.ndim}-D array")
        if src.ndim != dst.ndim:
            # scalar-vs-array: score one fixed endpoint against many
            src, dst = np.broadcast_arrays(src, dst)
        elif src.shape != dst.shape:
            raise ParameterError(
                f"src and dst must be aligned pairs: got {src.size} src "
                f"node(s) vs {dst.size} dst node(s)")
        for label, nodes in (("src", src), ("dst", dst)):
            if nodes.size and (nodes.min() < 0
                               or nodes.max() >= self.num_nodes):
                raise ParameterError(
                    f"{label} node out of range [0, {self.num_nodes})")
        return np.einsum("ij,ij->i", np.atleast_2d(self._queries[src]),
                         np.atleast_2d(self._database[dst]))

    #: Alias so an engine can stand in for an embedder in the tasks.
    score_pairs = score

    # ------------------------------------------------------------------
    def _cache_get(self, node: int, k: int,
                   ) -> tuple[np.ndarray, np.ndarray] | None:
        with self._cache_lock:
            entry = self._cache.get((node, k))
            if entry is None:
                self._misses += 1
                return None
            self._cache.move_to_end((node, k))
            self._hits += 1
            return entry

    def _cache_put(self, node: int, k: int,
                   entry: tuple[np.ndarray, np.ndarray]) -> None:
        with self._cache_lock:
            self._cache[(node, k)] = entry
            self._cache.move_to_end((node, k))
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)

    def cache_stats(self) -> CacheStats:
        """Current LRU cache counters.

        With :mod:`repro.obs` enabled this also refreshes the
        ``serving_cache_hit_rate`` / ``serving_cache_size`` gauges, so
        a snapshot exported after a traffic run carries the cache's
        effectiveness without a separate publishing step.
        """
        with self._cache_lock:
            stats = CacheStats(hits=self._hits, misses=self._misses,
                               capacity=self._cache_capacity,
                               size=len(self._cache))
        if obs.enabled():
            registry = obs.get_registry()
            labels = {"engine": self.name}
            registry.gauge("serving_cache_hit_rate", labels).set(
                stats.hit_rate)
            registry.gauge("serving_cache_size", labels).set(stats.size)
        return stats

    def cache_clear(self) -> None:
        """Drop every cached result and reset the counters."""
        with self._cache_lock:
            self._cache.clear()
            self._hits = self._misses = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release resources held by the retrieval backend.

        The flat engine holds nothing beyond numpy arrays, so this is a
        no-op; the sharded engine shuts its router's thread pool down
        here. :class:`~repro.serving.registry.ServingRegistry` calls it
        on every engine it evicts (swap / unregister / close), so a
        long-lived server churning hot swaps does not strand idle
        threads. Closing is safe while queries are still in flight —
        backends degrade to serial execution rather than failing.
        """

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"QueryEngine(name={self.name!r}, n={self.num_nodes}, "
                f"index={self.index.kind!r})")
