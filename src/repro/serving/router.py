"""Scatter-gather top-k routing across node-range shards.

The online half of sharded serving. A top-k query against a sharded
store fans out to one retrieval index per shard (each an ordinary
:class:`~repro.serving.index.TopKIndex` over that shard's database
rows), runs the per-shard searches on a thread pool, and k-way-merges
the partial top-k heaps into the global answer:

* the global top-k is exactly the top-k of the union of per-shard
  top-k's — a row outside its shard's best ``k`` cannot be in the
  global best ``k`` — so with exact per-shard indexes the merged result
  matches the unsharded exact path (the property tests pin this);
* per-shard searches are pure reads over disjoint matrices, so threads
  are the right pool: numpy's GEMM releases the GIL, the shards' mmap
  pages stay shared, and nothing is pickled.

:class:`ShardRouter` is the index-shaped object (``search``/
``num_items``/``dim``) doing the fan-out; :class:`ShardedQueryEngine`
wraps it in the standard :class:`~repro.serving.engine.QueryEngine`
machinery, so batching, deduping, the per-``(node, k)`` LRU cache, and
the scoring surface behave identically to the flat engine.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import obs
from ..errors import ParameterError
from ..obs import requestctx
from ..parallel import available_cpus
from .engine import QueryEngine
from .index import _topk_rows, build_index
from .sharding import ShardedMatrix, shard_boundaries

__all__ = ["ShardRouter", "ShardedQueryEngine", "make_engine"]


def _invoke(thunk):
    """Run a context-bound zero-arg callable (``pool.map`` payload)."""
    return thunk()


class ShardRouter:
    """Fan a top-k search out to per-shard indexes and merge the heaps.

    ``parts`` is one database block per shard (``None`` or a 0-row
    block marks an empty shard); ``boundaries`` maps block rows back to
    global node ids. ``kind`` plus ``index_options`` pick the per-shard
    backend exactly as :func:`~repro.serving.index.build_index` does —
    ``"exact"`` keeps global results exact, ``"ivf"`` trades recall per
    shard. ``workers`` sizes the scatter thread pool (default: one per
    non-empty shard, capped at the usable CPUs; 1 disables threading).
    """

    def __init__(self, parts, boundaries, *, kind: str = "exact",
                 workers: int | None = None, **index_options) -> None:
        self._bounds = np.asarray(boundaries, dtype=np.int64)
        if len(parts) != len(self._bounds) - 1:
            raise ParameterError(
                f"got {len(parts)} shard blocks for "
                f"{len(self._bounds) - 1} ranges")
        self._indexes = []    # (shard id, global row offset, shard index)
        for i, part in enumerate(parts):
            if part is None or part.shape[0] == 0:
                continue
            if part.shape[0] != self._bounds[i + 1] - self._bounds[i]:
                raise ParameterError(
                    f"shard {i} block has {part.shape[0]} rows but owns "
                    f"[{self._bounds[i]}, {self._bounds[i + 1]})")
            self._indexes.append((i, int(self._bounds[i]),
                                  build_index(part, kind, **index_options)))
        if not self._indexes:
            raise ParameterError("router needs at least one non-empty shard")
        self._kind = kind
        if workers is None:
            workers = min(len(self._indexes), available_cpus())
        if int(workers) != workers or workers < 1:
            raise ParameterError(
                f"workers must be a positive integer or None, "
                f"got {workers!r}")
        self.workers = min(int(workers), len(self._indexes))
        self._pool = (ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="shard-router")
            if self.workers > 1 else None)
        # cached metric handles (rebuilt when the registry is cleared)
        self._obs_series: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return f"sharded-{self._kind}"

    @property
    def num_shards(self) -> int:
        """Non-empty shards actually holding an index."""
        return len(self._indexes)

    @property
    def num_items(self) -> int:
        return int(self._bounds[-1])

    @property
    def dim(self) -> int:
        return self._indexes[0][2].dim

    # ------------------------------------------------------------------
    def search(self, queries: np.ndarray, k: int,
               ) -> tuple[np.ndarray, np.ndarray]:
        """Global top-``k`` per query row; same contract as an index.

        Scatters ``queries`` to every shard index, shifts shard-local
        row ids by the shard offset, and merges the partial results to
        the best ``min(k, num_items)`` per row, sorted by descending
        score. Unfillable slots (IVF probes coming up short) keep the
        ``-1`` / ``-inf`` convention.
        """
        queries = np.atleast_2d(np.asarray(queries))
        if queries.shape[1] != self.dim:
            raise ParameterError(
                f"query dim {queries.shape[1]} != index dim {self.dim}")
        if k < 1:
            raise ParameterError("k must be >= 1")

        on = obs.enabled()
        durations: list[float] = []     # list.append is atomic enough

        def one(entry):
            shard, offset, index = entry
            if on:
                # per-shard span: inside a serving request the scatter
                # runs under a copy of the caller's context, so these
                # nest under the engine's span instead of detaching into
                # per-thread roots (labels stay bounded: one per shard)
                with obs.trace("router.shard",
                               labels={"shard": str(shard)}) as span:
                    ids, scores = index.search(queries, k)
                durations.append(span.duration)
            else:
                ids, scores = index.search(queries, k)
            # shift shard-local ids to global ids; -1 sentinels stay -1
            return np.where(ids >= 0, ids + offset, ids), scores

        pool = self._pool
        if pool is not None and len(queries):
            try:
                partials = list(pool.map(
                    _invoke, [requestctx.bind(one, entry)
                              for entry in self._indexes]))
            except RuntimeError:
                # close() raced us (a hot swap retired this router while
                # a reader that resolved the engine earlier was still
                # querying): fall back to serial scatter — correctness
                # over parallelism for the tail of in-flight queries
                partials = [one(entry) for entry in self._indexes]
        else:
            partials = [one(entry) for entry in self._indexes]
        if on:
            merge_start = time.perf_counter()
        all_ids = np.hstack([p[0] for p in partials])
        all_scores = np.hstack([p[1] for p in partials])
        pos, best_scores = _topk_rows(all_scores, min(k, self.num_items))
        best_ids = np.take_along_axis(all_ids, pos, axis=1)
        if on:
            merge, fanout, straggler = self._metric_handles()
            merge.observe(time.perf_counter() - merge_start)
            fanout.inc(len(self._indexes))
            if durations:
                # straggler spread: how much the slowest shard lags the
                # fastest this scatter — the load-balance health signal
                straggler.set(max(durations) - min(durations))
        return best_ids, best_scores

    def _metric_handles(self) -> tuple:
        """Hot-path metric handles, re-resolved after a registry clear."""
        registry = obs.get_registry()
        cached = self._obs_series
        if cached is not None and cached[0] == registry.generation:
            return cached[1]
        handles = (registry.histogram("router_merge_seconds"),
                   registry.counter("router_fanout_total"),
                   registry.gauge("router_straggler_seconds"))
        self._obs_series = (registry.generation, handles)
        return handles

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the scatter thread pool down (idempotent).

        Without this every hot swap of a sharded engine strands its
        idle ``shard-router`` threads until the garbage collector
        happens to finalize the executor. ``wait=False`` lets work
        already submitted by an in-flight :meth:`search` finish on the
        pool threads before they exit; a search that races the close
        and can no longer submit falls back to serial scatter.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardRouter(shards={self.num_shards}, "
                f"n={self.num_items}, kind={self._kind!r}, "
                f"workers={self.workers})")


class ShardedQueryEngine(QueryEngine):
    """Drop-in :class:`QueryEngine` that scatter-gathers across shards.

    Accepts either a :class:`~repro.serving.sharding.ShardedEmbeddingStore`
    (shard layout comes from its shard map) or any flat source plus
    ``shards=N`` (the fitted matrix is range-partitioned in memory, no
    disk round-trip). Everything above retrieval — batched ``topk``,
    request deduping, the per-``(node, k)`` LRU cache, ``score`` — is
    inherited unchanged, so this is a behavioral drop-in for the flat
    engine modulo the routing backend.
    """

    def __init__(self, source, *, shards: int | None = None,
                 index: str = "exact", cache_size: int = 1024,
                 workers: int | None = None, **index_options) -> None:
        self._shards_requested = shards
        self._workers_requested = workers
        super().__init__(source, index=index, cache_size=cache_size,
                         **index_options)

    def _make_index(self, index, index_options: dict):
        if isinstance(index, ShardRouter):
            if index_options:
                raise ParameterError(
                    "index_options only apply when building by kind name")
            if index.num_items != self._database.shape[0]:
                raise ParameterError(
                    f"prebuilt router holds {index.num_items} items but "
                    f"the model has {self._database.shape[0]} nodes")
            return index
        if not isinstance(index, str):
            raise ParameterError(
                "sharded engine takes an index kind name or a prebuilt "
                f"ShardRouter, got {type(index).__name__}")
        database = self._database
        if isinstance(database, ShardedMatrix):
            if (self._shards_requested is not None
                    and self._shards_requested != len(database.parts)):
                raise ParameterError(
                    f"source is already sharded into "
                    f"{len(database.parts)} shards; shards="
                    f"{self._shards_requested} cannot re-shard it")
            parts, bounds = database.parts, database.boundaries
        else:
            if self._shards_requested is None:
                raise ParameterError(
                    "shards=N is required when the source is not a "
                    "sharded store")
            bounds = shard_boundaries(database.shape[0],
                                      self._shards_requested)
            parts = [database[bounds[i]:bounds[i + 1]]
                     for i in range(len(bounds) - 1)]
        return ShardRouter(parts, bounds, kind=index,
                           workers=self._workers_requested, **index_options)

    @property
    def num_shards(self) -> int:
        return self.index.num_shards

    def close(self) -> None:
        """Shut the router's scatter thread pool down (idempotent)."""
        self.index.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedQueryEngine(name={self.name!r}, "
                f"n={self.num_nodes}, shards={self.num_shards}, "
                f"index={self.index.kind!r})")


def make_engine(source, *, engine: str = "auto", shards: int | None = None,
                workers: int | None = None, index="exact",
                cache_size: int = 1024, **index_options):
    """Build the right engine flavor for ``source``.

    ``engine`` is ``"flat"`` (plain :class:`QueryEngine`), ``"sharded"``
    (:class:`ShardedQueryEngine`), or ``"auto"`` — sharded when the
    source is a sharded store or ``shards`` is set, flat otherwise.
    This is what :meth:`repro.embedder.ScoringMixin.to_serving` and the
    serving registry call under the hood.
    """
    from .sharding import ShardedEmbeddingStore
    source_sharded = isinstance(source, ShardedEmbeddingStore)
    if engine == "auto":
        engine = "sharded" if source_sharded or shards is not None else "flat"
    if engine == "flat":
        if source_sharded:
            raise ParameterError(
                "a sharded store needs engine='sharded' (or 'auto')")
        if shards is not None:
            raise ParameterError("shards= only applies to engine='sharded'")
        if workers is not None:
            raise ParameterError("workers= only applies to engine='sharded'")
        return QueryEngine(source, index=index, cache_size=cache_size,
                           **index_options)
    if engine == "sharded":
        return ShardedQueryEngine(source, shards=shards, index=index,
                                  cache_size=cache_size, workers=workers,
                                  **index_options)
    raise ParameterError(
        f"unknown engine kind {engine!r}; known: 'auto', 'flat', 'sharded'")
