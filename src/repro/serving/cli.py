"""``repro-serve``: build and query embedding stores from the shell.

Three subcommands cover the offline -> online hand-off:

* ``repro-serve export BUNDLE.npz STORE_DIR`` — convert a compressed
  bundle written by :func:`repro.io.save_embeddings` into an mmap-able
  :class:`~repro.serving.store.EmbeddingStore` directory;
* ``repro-serve info STORE_DIR`` — print a store's manifest;
* ``repro-serve query STORE_DIR --nodes 3,17 -k 10`` — answer top-k
  queries against a store, optionally through the approximate backend
  (``--index ivf --nprobe 16``).

Installed as a console script by ``setup.py``; also runnable as
``python -m repro.serving.cli``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve top-k queries from saved NRP-style embeddings.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_export = sub.add_parser(
        "export", help="convert a .npz bundle into an mmap store directory")
    p_export.add_argument("bundle", help="path to a save_embeddings() .npz")
    p_export.add_argument("store", help="output store directory")

    p_info = sub.add_parser("info", help="print a store's manifest")
    p_info.add_argument("store", help="store directory")

    p_query = sub.add_parser("query", help="top-k neighbors for nodes")
    p_query.add_argument("store", help="store directory")
    p_query.add_argument("--nodes", required=True,
                         help="comma-separated source node ids")
    p_query.add_argument("-k", type=int, default=10,
                         help="neighbors per node (default 10)")
    p_query.add_argument("--index", default="exact",
                         choices=("exact", "ivf"),
                         help="retrieval backend (default exact)")
    p_query.add_argument("--num-lists", type=int, default=None,
                         help="ivf: number of k-means partitions")
    p_query.add_argument("--nprobe", type=int, default=None,
                         help="ivf: partitions probed per query")
    return parser


def _cmd_export(args) -> int:
    from ..io import load_embeddings
    from .store import export_store
    bundle = load_embeddings(args.bundle)
    store = export_store(bundle, args.store)
    print(f"exported {store.name}: {store.num_nodes} nodes x "
          f"{store.dim} dims -> {store.root}")
    return 0


def _cmd_info(args) -> int:
    from .store import EmbeddingStore
    store = EmbeddingStore.open(args.store)
    info = {"name": store.name, "directional": store.directional,
            "num_nodes": store.num_nodes, "dim": store.dim,
            "mmapped": store.mmapped,
            "metadata": {k: v for k, v in store.metadata.items()
                         if isinstance(v, (str, int, float, bool))}}
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_query(args) -> int:
    from .store import EmbeddingStore
    try:
        nodes = [int(tok) for tok in args.nodes.split(",") if tok.strip()]
    except ValueError:
        raise ReproError(f"--nodes must be comma-separated ints, "
                         f"got {args.nodes!r}") from None
    if not nodes:
        raise ReproError("--nodes must name at least one node")
    store = EmbeddingStore.open(args.store)
    index_options = {}
    if args.num_lists is not None:
        index_options["num_lists"] = args.num_lists
    if args.nprobe is not None:
        index_options["nprobe"] = args.nprobe
    if index_options and args.index != "ivf":
        raise ReproError(
            f"{'/'.join('--' + key.replace('_', '-') for key in index_options)}"
            f" requires --index ivf (got --index {args.index})")
    engine = store.to_serving(index=args.index, **index_options)
    ids, scores = engine.topk(nodes, k=args.k)
    for node, row_ids, row_scores in zip(nodes, ids, scores):
        print(json.dumps({
            "node": node,
            "neighbors": [int(v) for v in row_ids if v >= 0],
            "scores": [round(float(s), 6) for v, s
                       in zip(row_ids, row_scores) if v >= 0]}))
    return 0


_COMMANDS = {"export": _cmd_export, "info": _cmd_info, "query": _cmd_query}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:      # e.g. `repro-serve query ... | head`
        # swap stdout for devnull so the interpreter's exit flush
        # doesn't print a second traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":    # pragma: no cover - exercised via main()
    sys.exit(main())
