"""``repro-serve``: build, query, and serve embedding stores.

Five subcommands cover the offline -> online hand-off:

* ``repro-serve export BUNDLE.npz STORE_DIR [--shards N]`` — convert a
  compressed bundle written by :func:`repro.io.save_embeddings` into an
  mmap-able :class:`~repro.serving.store.EmbeddingStore` directory
  (sharded into ``N`` node ranges when ``--shards`` is given);
* ``repro-serve shard STORE_DIR OUT_DIR --shards N`` — re-export an
  existing store (flat or sharded) as ``N`` node-range shards;
* ``repro-serve info STORE_DIR`` — print a store's manifest (flat or
  sharded, auto-detected);
* ``repro-serve query STORE_DIR --nodes 3,17 -k 10`` — answer top-k
  queries against a store, optionally through the approximate backend
  (``--index ivf --nprobe 16``); sharded stores scatter-gather across
  their shards (``--workers`` sizes the fan-out pool);
* ``repro-serve serve STORE_DIR --port 8000`` — the long-lived network
  tier: an asyncio HTTP server (:mod:`repro.serving.http`) over the
  store, with dynamic micro-batching, backpressure, and — given a
  *versioned* root plus ``--watch SECONDS`` — hot swaps onto every new
  version a concurrent ``repro-stream`` publishes.

Installed as a console script by ``setup.py``; also runnable as
``python -m repro.serving.cli``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .. import obs
from ..errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve top-k queries from saved NRP-style embeddings.")
    # shared flags live on the main parser: `repro-serve --metrics-json
    # out.json query ...` works for every subcommand
    obs.add_observability_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_export = sub.add_parser(
        "export", help="convert a .npz bundle into an mmap store directory")
    p_export.add_argument("bundle", help="path to a save_embeddings() .npz")
    p_export.add_argument("store", help="output store directory")
    p_export.add_argument("--shards", type=int, default=None,
                          help="write N node-range shards instead of one "
                               "flat store")

    p_shard = sub.add_parser(
        "shard", help="re-export an existing store as node-range shards")
    p_shard.add_argument("store", help="source store directory")
    p_shard.add_argument("out", help="output sharded store directory")
    p_shard.add_argument("--shards", type=int, required=True,
                         help="number of node-range shards")

    p_info = sub.add_parser("info", help="print a store's manifest")
    p_info.add_argument("store", help="store directory (flat or sharded)")

    p_query = sub.add_parser("query", help="top-k neighbors for nodes")
    p_query.add_argument("store", help="store directory (flat or sharded)")
    p_query.add_argument("--nodes", required=True,
                         help="comma-separated source node ids")
    p_query.add_argument("-k", type=int, default=10,
                         help="neighbors per node (default 10)")
    p_query.add_argument("--index", default="exact",
                         choices=("exact", "ivf"),
                         help="retrieval backend (default exact)")
    p_query.add_argument("--num-lists", type=int, default=None,
                         help="ivf: number of k-means partitions")
    p_query.add_argument("--nprobe", type=int, default=None,
                         help="ivf: partitions probed per query")
    p_query.add_argument("--workers", type=int, default=None,
                         help="sharded stores: scatter-gather threads "
                              "(default: one per shard, CPU-capped)")

    p_serve = sub.add_parser(
        "serve", help="serve top-k/score queries over HTTP with "
                      "dynamic micro-batching")
    p_serve.add_argument("store", help="store directory (flat or sharded) "
                                       "or a versioned store root")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="bind port; 0 picks a free one "
                              "(default 8000)")
    p_serve.add_argument("--name", default=None,
                         help="model name in the routes "
                              "(default: the store's name)")
    p_serve.add_argument("--index", default="exact",
                         choices=("exact", "ivf"),
                         help="retrieval backend (default exact)")
    p_serve.add_argument("--num-lists", type=int, default=None,
                         help="ivf: number of k-means partitions")
    p_serve.add_argument("--nprobe", type=int, default=None,
                         help="ivf: partitions probed per query")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="sharded stores: scatter-gather threads")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="per-engine (node, k) LRU entries "
                              "(default 1024)")
    p_serve.add_argument("--max-batch", type=int, default=64,
                         help="source nodes coalesced into one engine "
                              "call (default 64)")
    p_serve.add_argument("--max-delay", type=float, default=0.002,
                         help="seconds the first request of a batch "
                              "waits for company (default 0.002)")
    p_serve.add_argument("--max-queue", type=int, default=1024,
                         help="pending requests before 429s "
                              "(default 1024)")
    p_serve.add_argument("--deadline", type=float, default=2.0,
                         help="default per-request deadline in seconds "
                              "(default 2.0)")
    p_serve.add_argument("--watch", type=float, default=None,
                         metavar="SECONDS",
                         help="versioned roots: poll CURRENT at this "
                              "interval and hot-swap onto new versions")
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         help="exit after this long (demos and tests; "
                              "default: serve until interrupted)")
    p_serve.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write a {host, port} JSON file once the "
                              "socket is bound (for test orchestration)")
    p_serve.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="RATE",
                         help="head-sampling rate in [0, 1] for request "
                              "traces kept in /debug/traces and histogram "
                              "exemplars (default 1.0)")
    p_serve.add_argument("--access-log", default=None, metavar="PATH",
                         help="append one JSON access-log line per request "
                              "to PATH (rate-bounded; buffers are flushed "
                              "on SIGTERM/SIGINT shutdown)")
    return parser


def _cmd_export(args) -> int:
    from ..io import load_embeddings
    from .sharding import shard_store
    from .store import export_store
    bundle = load_embeddings(args.bundle)
    if args.shards is not None:
        store = shard_store(bundle, args.store, num_shards=args.shards)
        print(f"exported {store.name}: {store.num_nodes} nodes x "
              f"{store.dim} dims in {store.num_shards} shards -> "
              f"{store.root}")
    else:
        store = export_store(bundle, args.store)
        print(f"exported {store.name}: {store.num_nodes} nodes x "
              f"{store.dim} dims -> {store.root}")
    return 0


def _cmd_shard(args) -> int:
    from .sharding import shard_store
    from .store import open_store
    source = open_store(args.store)
    store = shard_store(source, args.out, num_shards=args.shards)
    print(f"sharded {store.name}: {store.num_nodes} nodes -> "
          f"{store.num_shards} shards under {store.root}")
    return 0


def _cmd_info(args) -> int:
    from .store import open_store
    store = open_store(args.store)
    info = {"name": store.name, "directional": store.directional,
            "num_nodes": store.num_nodes, "dim": store.dim,
            "mmapped": store.mmapped,
            "metadata": {k: v for k, v in store.metadata.items()
                         if isinstance(v, (str, int, float, bool))}}
    shards = getattr(store, "num_shards", None)
    if shards is not None:
        info["num_shards"] = shards
        info["shard_ranges"] = [[int(lo), int(hi)] for lo, hi in
                                zip(store.boundaries[:-1],
                                    store.boundaries[1:])]
    print(json.dumps(info, indent=2, sort_keys=True))
    return 0


def _cmd_query(args) -> int:
    from .store import open_store
    try:
        nodes = [int(tok) for tok in args.nodes.split(",") if tok.strip()]
    except ValueError:
        raise ReproError(f"--nodes must be comma-separated ints, "
                         f"got {args.nodes!r}") from None
    if not nodes:
        raise ReproError("--nodes must name at least one node")
    store = open_store(args.store)
    sharded = getattr(store, "num_shards", None) is not None
    index_options = {}
    if args.num_lists is not None:
        index_options["num_lists"] = args.num_lists
    if args.nprobe is not None:
        index_options["nprobe"] = args.nprobe
    if index_options and args.index != "ivf":
        raise ReproError(
            f"{'/'.join('--' + key.replace('_', '-') for key in index_options)}"
            f" requires --index ivf (got --index {args.index})")
    if args.workers is not None and not sharded:
        raise ReproError("--workers requires a sharded store")
    if sharded:
        index_options["workers"] = args.workers
    engine = store.to_serving(index=args.index, **index_options)
    ids, scores = engine.topk(nodes, k=args.k)
    for node, row_ids, row_scores in zip(nodes, ids, scores):
        print(json.dumps({
            "node": node,
            "neighbors": [int(v) for v in row_ids if v >= 0],
            "scores": [round(float(s), 6) for v, s
                       in zip(row_ids, row_scores) if v >= 0]}))
    return 0


def _serve_engine_options(args, store) -> dict:
    """Engine options for ``store``, validated against its layout."""
    options = {"index": args.index, "cache_size": args.cache_size}
    if args.num_lists is not None:
        options["num_lists"] = args.num_lists
    if args.nprobe is not None:
        options["nprobe"] = args.nprobe
    if args.index != "ivf" and ("num_lists" in options
                                or "nprobe" in options):
        raise ReproError("--num-lists/--nprobe require --index ivf "
                         f"(got --index {args.index})")
    if getattr(store, "num_shards", None) is not None:
        if args.workers is not None:
            options["workers"] = args.workers
    elif args.workers is not None:
        raise ReproError("--workers requires a sharded store")
    return options


def _cmd_serve(args) -> int:
    import signal
    import threading
    import time
    from pathlib import Path

    from ..obs.requestlog import RequestLogger
    from .http import HTTPServingConfig, ServingHTTPServer
    from .registry import ServingRegistry
    from .store import CURRENT_NAME, open_current, open_store

    root = Path(args.store)
    versioned = (root / CURRENT_NAME).is_file()
    if args.watch is not None and not versioned:
        raise ReproError(
            f"--watch needs a versioned store root (no {CURRENT_NAME} "
            f"in {root}); publish with repro-stream or publish_version")
    if args.watch is not None and args.watch <= 0:
        raise ReproError("--watch must be > 0 seconds")
    store = open_current(root) if versioned else open_store(root)
    name = args.name or store.name
    registry = ServingRegistry()
    registry.register(name, store, **_serve_engine_options(args, store))
    config = HTTPServingConfig(
        max_batch=args.max_batch, max_delay=args.max_delay,
        max_queue=args.max_queue, default_deadline=args.deadline,
        trace_sample=args.trace_sample)
    access_log = (RequestLogger.to_path(
        args.access_log, max_per_second=config.access_log_per_second)
        if args.access_log else None)
    server = ServingHTTPServer(registry, config=config,
                               access_log=access_log)
    # Graceful drain: SIGTERM/SIGINT break the serve loop instead of
    # killing the process, so the normal exit path runs — queued batches
    # drain, the access log flushes, and --metrics-json still writes.
    # Handlers are only installable from the main thread; the in-thread
    # test harness (and any embedder) just uses --max-seconds.
    stop = threading.Event()
    previous: dict = {}
    if threading.current_thread() is threading.main_thread():
        def _graceful(signum, frame):
            stop.set()
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _graceful)
    try:
        server.start(args.host, args.port)
        info = {"event": "serving", "host": server.host,
                "port": server.port, "model": name,
                "num_nodes": store.num_nodes, "version": store.version}
        print(json.dumps(info), flush=True)
        if args.ready_file:
            Path(args.ready_file).write_text(json.dumps(info),
                                             encoding="utf-8")
        version = store.version
        started = time.monotonic()
        next_poll = (time.monotonic() + args.watch
                     if args.watch is not None else None)
        try:
            while not stop.is_set():
                if (args.max_seconds is not None
                        and time.monotonic() - started >= args.max_seconds):
                    break
                stop.wait(0.05)
                if next_poll is None or time.monotonic() < next_poll:
                    continue
                next_poll = time.monotonic() + args.watch
                try:
                    fresh = open_current(root)
                except ReproError:
                    continue   # publish in flight; keep serving, retry
                if fresh.version == version:
                    continue
                registry.swap(name, fresh,
                              **_serve_engine_options(args, fresh))
                version = fresh.version
                print(json.dumps({"event": "swap", "model": name,
                                  "version": version,
                                  "num_nodes": fresh.num_nodes}),
                      flush=True)
        except KeyboardInterrupt:
            pass
    finally:
        server.stop(close_registry=True)
        if access_log is not None:
            access_log.close_stream()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print(json.dumps({"event": "stopped", "model": name,
                      "version": version}), flush=True)
    return 0


_COMMANDS = {"export": _cmd_export, "shard": _cmd_shard,
             "info": _cmd_info, "query": _cmd_query,
             "serve": _cmd_serve}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs.setup_observability(args)
    try:
        result = _COMMANDS[args.command](args)
        obs.dump_metrics(args)
        return result
    except BrokenPipeError:      # e.g. `repro-serve query ... | head`
        # swap stdout for devnull so the interpreter's exit flush
        # doesn't print a second traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":    # pragma: no cover - exercised via main()
    sys.exit(main())
