"""Online serving: turn fitted embeddings into a low-latency query tier.

The offline pipeline (fit -> :func:`repro.io.save_embeddings`) ends with
matrices on disk; this package is everything after that:

* :mod:`~repro.serving.store` — mmap-backed on-disk matrix store shared
  across worker processes, plus versioned roots with an atomic
  ``CURRENT`` pointer;
* :mod:`~repro.serving.sharding` — node-range sharding of a store
  (:class:`ShardedEmbeddingStore`), the single-machine-ceiling
  escape hatch;
* :mod:`~repro.serving.index` — exact and IVF-approximate top-k
  maximum-inner-product indexes;
* :mod:`~repro.serving.engine` — :class:`QueryEngine`, the batched
  ``topk`` / ``score`` facade with an LRU result cache;
* :mod:`~repro.serving.router` — :class:`ShardRouter` scatter-gather
  and the :class:`ShardedQueryEngine` drop-in;
* :mod:`~repro.serving.registry` — named multi-model registry with
  atomic hot swaps;
* :mod:`~repro.serving.http` — :class:`ServingHTTPServer`, the asyncio
  HTTP tier with dynamic micro-batching, backpressure, and deadline
  admission control;
* :mod:`~repro.serving.cli` — the ``repro-serve`` command (including
  ``repro-serve serve``, the network front of all of the above).

Quickstart::

    from repro import NRP
    from repro.graph import powerlaw_community

    graph, _ = powerlaw_community(2000, 12000, seed=0)
    engine = NRP(dim=32, seed=0).fit(graph).to_serving(shards=4)
    neighbors, scores = engine.topk(0, k=10)
"""

from .engine import CacheStats, QueryEngine
from .http import HTTPServingConfig, ServingHTTPServer
from .index import (INDEX_KINDS, ExactIndex, IVFIndex, TopKIndex,
                    build_index)
from .registry import DEFAULT_REGISTRY, ServingRegistry
from .router import ShardedQueryEngine, ShardRouter, make_engine
from .sharding import (ShardedEmbeddingStore, ShardedMatrix,
                       shard_boundaries, shard_store)
from .store import (CURRENT_NAME, MANIFEST_NAME, SHARDS_NAME,
                    EmbeddingStore, export_store, list_versions,
                    open_current, open_store, publish_version)

__all__ = ["QueryEngine", "CacheStats", "TopKIndex", "ExactIndex",
           "IVFIndex", "build_index", "INDEX_KINDS", "EmbeddingStore",
           "export_store", "MANIFEST_NAME", "SHARDS_NAME", "CURRENT_NAME",
           "publish_version", "open_current", "open_store", "list_versions",
           "ServingRegistry", "DEFAULT_REGISTRY", "ShardRouter",
           "ShardedQueryEngine", "make_engine", "ShardedEmbeddingStore",
           "ShardedMatrix", "shard_store", "shard_boundaries",
           "ServingHTTPServer", "HTTPServingConfig"]
