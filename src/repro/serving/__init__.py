"""Online serving: turn fitted embeddings into a low-latency query tier.

The offline pipeline (fit -> :func:`repro.io.save_embeddings`) ends with
matrices on disk; this package is everything after that:

* :mod:`~repro.serving.store` — mmap-backed on-disk matrix store shared
  across worker processes;
* :mod:`~repro.serving.index` — exact and IVF-approximate top-k
  maximum-inner-product indexes;
* :mod:`~repro.serving.engine` — :class:`QueryEngine`, the batched
  ``topk`` / ``score`` facade with an LRU result cache;
* :mod:`~repro.serving.registry` — named multi-model registry;
* :mod:`~repro.serving.cli` — the ``repro-serve`` command.

Quickstart::

    from repro import NRP
    from repro.graph import powerlaw_community

    graph, _ = powerlaw_community(2000, 12000, seed=0)
    engine = NRP(dim=32, seed=0).fit(graph).to_serving()
    neighbors, scores = engine.topk(0, k=10)
"""

from .engine import CacheStats, QueryEngine
from .index import (INDEX_KINDS, ExactIndex, IVFIndex, TopKIndex,
                    build_index)
from .registry import DEFAULT_REGISTRY, ServingRegistry
from .store import (CURRENT_NAME, MANIFEST_NAME, EmbeddingStore,
                    export_store, list_versions, open_current,
                    publish_version)

__all__ = ["QueryEngine", "CacheStats", "TopKIndex", "ExactIndex",
           "IVFIndex", "build_index", "INDEX_KINDS", "EmbeddingStore",
           "export_store", "MANIFEST_NAME", "CURRENT_NAME",
           "publish_version", "open_current", "list_versions",
           "ServingRegistry", "DEFAULT_REGISTRY"]
