"""Node-range sharding of embedding stores.

A single :class:`~repro.serving.store.EmbeddingStore` ties the whole
matrix to one file and one machine's page cache — exactly the ceiling
the paper's "massive graphs" pitch is about. A *sharded* store splits
the node-id space ``[0, n)`` into ``num_shards`` contiguous ranges and
writes each range as an ordinary flat store under one root::

    root/
      shards.json         <- shard map (written last: the commit point)
      shard-00000/        <- rows [b0, b1): a standard EmbeddingStore
      shard-00001/        <- rows [b1, b2)
      ...

Contiguous ranges keep the global-id <-> (shard, local-id) mapping a
single ``searchsorted`` against the boundary array — no per-node lookup
table to store, ship, or keep consistent. Each shard directory is a
bit-for-bit ordinary store, so every existing tool (``repro-serve
info``, :func:`~repro.io.load_store`, the fault-checked open path)
works on a shard unchanged, and shards can live on different disks or
be served by different processes.

The shard map is validated on open: boundaries must tile ``[0, n)``
exactly, every non-empty range must have its directory, and each
shard's own manifest must agree with the range the map assigns it —
disagreements raise :class:`~repro.errors.ShardLayoutError` rather than
surfacing later as off-by-offset neighbor ids. Shards narrower than the
node count allow *empty* shards (``num_shards > n``); those are map
entries without a directory.

:class:`ShardedMatrix` is the read side's trick: a virtual ``(n, d)``
matrix over per-shard row blocks that supports exactly the operations
serving needs (row gather and right-matmul), so the scoring/engine code
paths run unchanged over a sharded store. Query fan-out lives in
:mod:`repro.serving.router`.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from ..embedder import ScoringMixin, has_custom_scoring
from ..errors import (ParameterError, ShardLayoutError, StoreCorruptError,
                      StoreError)
from ..io import validate_embedding_matrices
from .store import SHARDS_NAME, EmbeddingStore, export_store

__all__ = ["ShardedEmbeddingStore", "ShardedMatrix", "shard_store",
           "shard_boundaries"]

_SHARD_FORMAT_VERSION = 1
_SHARD_DIR_PREFIX = "shard-"
_SHARD_DIR_DIGITS = 5


def shard_boundaries(num_nodes: int, num_shards: int) -> np.ndarray:
    """Balanced contiguous split of ``[0, num_nodes)`` into ranges.

    Returns ``num_shards + 1`` offsets; shard ``i`` owns rows
    ``[b[i], b[i+1])``. Sizes differ by at most one; with more shards
    than nodes the trailing shards are empty (``b[i] == b[i+1]``).
    """
    if int(num_shards) != num_shards or num_shards < 1:
        raise ParameterError(
            f"num_shards must be a positive integer, got {num_shards!r}")
    if num_nodes < 0:
        raise ParameterError(f"num_nodes must be >= 0, got {num_nodes}")
    base, extra = divmod(int(num_nodes), int(num_shards))
    sizes = np.full(int(num_shards), base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def _shard_dir_name(index: int) -> str:
    return f"{_SHARD_DIR_PREFIX}{index:0{_SHARD_DIR_DIGITS}d}"


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


class _RowSlice:
    """A row-range view of a fitted source, shaped like an embedder.

    What :func:`~repro.serving.store.export_store` needs from a source —
    ``name``, ``directional``, the fitted matrices, scoring markers —
    restricted to rows ``[start, stop)``. Slicing an mmap'd matrix here
    is a view, so sharding a store never materializes the full matrix.
    """

    def __init__(self, source, start: int, stop: int) -> None:
        self.name = getattr(source, "name", type(source).__name__)
        self.directional = bool(getattr(source, "directional", False))
        self.lp_scoring = getattr(source, "lp_scoring", "inner")
        self.custom_scoring = has_custom_scoring(source)
        self.metadata: dict = {}
        for key in ("embedding", "forward", "backward"):
            matrix = getattr(source, f"{key}_", None)
            setattr(self, f"{key}_", None if matrix is None
                    else matrix[start:stop])
        meta = dict(getattr(source, "metadata", None) or {})
        for extra in ("w_fwd", "w_bwd"):
            value = meta.get(extra)
            if value is None:
                value = getattr(source, f"{extra}_", None)
            if value is not None:
                self.metadata[extra] = np.asarray(value)[start:stop]


def shard_store(source, root: str | Path, *, num_shards: int,
                metadata: dict | None = None,
                version: int | None = None) -> "ShardedEmbeddingStore":
    """Write ``source`` as a sharded store of ``num_shards`` node ranges.

    ``source`` is anything :func:`~repro.serving.store.export_store`
    accepts (fitted embedder, bundle, flat store — or another sharded
    store, which reshards). Shard directories are written first and the
    shard map last, so a reader never resolves a map that names an
    unwritten shard. Returns the freshly opened
    :class:`ShardedEmbeddingStore`.
    """
    root = Path(root)
    if version is not None and (int(version) != version or version < 1):
        raise ParameterError(
            f"version must be a positive integer or None, got {version!r}")
    directional = bool(getattr(source, "directional", False))
    name = getattr(source, "name", type(source).__name__)
    keys = ("forward", "backward") if directional else ("embedding",)
    matrices = {key: getattr(source, f"{key}_", None) for key in keys}
    validate_embedding_matrices(name, directional=directional, **{
        "forward": matrices.get("forward"),
        "backward": matrices.get("backward"),
        "embedding": matrices.get("embedding")})
    first = next(iter(matrices.values()))
    num_nodes = int(first.shape[0])
    bounds = shard_boundaries(num_nodes, num_shards)

    root.mkdir(parents=True, exist_ok=True)
    entries = []
    for i in range(int(num_shards)):
        start, stop = int(bounds[i]), int(bounds[i + 1])
        if start == stop:
            entries.append({"dir": None, "start": start, "stop": stop})
            continue
        piece = _RowSlice(source, start, stop)
        export_store(piece, root / _shard_dir_name(i))
        entries.append({"dir": _shard_dir_name(i),
                        "start": start, "stop": stop})
    # Re-sharding onto a root that previously held more shards must not
    # leave the extra directories behind: open() validates the map
    # against the directories on disk, so stale shards would make the
    # freshly committed root unreadable.
    named = {e["dir"] for e in entries if e["dir"] is not None}
    for child in root.iterdir():
        if (child.is_dir() and child.name.startswith(_SHARD_DIR_PREFIX)
                and child.name not in named):
            shutil.rmtree(child, ignore_errors=True)

    meta = dict(getattr(source, "metadata", None) or {})
    meta.update(metadata or {})
    # per-node extras were sliced into the shards; the global copies
    # would only duplicate them (and ndarray metadata is not JSON).
    # Everything else JSON-serializable (lists, dicts, ...) is kept,
    # matching what the flat export path preserves.
    for extra in ("w_fwd", "w_bwd"):
        meta.pop(extra, None)
    meta = {k: v for k, v in meta.items() if _json_safe(v)}
    manifest = {
        "format": _SHARD_FORMAT_VERSION,
        "name": name,
        "directional": directional,
        "version": int(version) if version is not None else None,
        "lp_scoring": getattr(source, "lp_scoring", "inner"),
        "custom_scoring": has_custom_scoring(source),
        "num_nodes": num_nodes,
        "dim": int(sum(m.shape[1] for m in matrices.values())),
        "dtype": str(first.dtype),
        "num_shards": int(num_shards),
        "shards": entries,
        "metadata": meta,
    }
    tmp = root / (SHARDS_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    tmp.replace(root / SHARDS_NAME)
    return ShardedEmbeddingStore.open(root)


class ShardedMatrix:
    """A virtual ``(n, d)`` matrix over per-shard row blocks.

    Supports the serving access patterns — scalar/array/slice row
    gather and right-matmul — by dispatching to the owning blocks via
    ``searchsorted`` on the shard boundaries. Gathers return ordinary
    in-heap arrays; the blocks themselves stay mmap'd.
    """

    ndim = 2

    def __init__(self, parts: list[np.ndarray | None],
                 boundaries: np.ndarray) -> None:
        self._parts = parts
        self._bounds = np.asarray(boundaries, dtype=np.int64)
        present = [p for p in parts if p is not None]
        if not present:
            raise ParameterError("ShardedMatrix needs at least one "
                                 "non-empty shard")
        self._dim = int(present[0].shape[1])
        self._dtype = present[0].dtype

    @property
    def shape(self) -> tuple[int, int]:
        return int(self._bounds[-1]), self._dim

    @property
    def dtype(self):
        return self._dtype

    @property
    def parts(self) -> list[np.ndarray | None]:
        """Per-shard row blocks (``None`` for empty shards)."""
        return self._parts

    @property
    def boundaries(self) -> np.ndarray:
        return self._bounds

    def __len__(self) -> int:
        return int(self._bounds[-1])

    def __getitem__(self, rows) -> np.ndarray:
        if isinstance(rows, slice):
            rows = np.arange(*rows.indices(len(self)))
        idx = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        scalar = np.isscalar(rows) or getattr(rows, "ndim", 1) == 0
        if idx.ndim != 1:
            raise ParameterError("row selection must be scalar or 1-D")
        if idx.size and (idx.min() < 0 or idx.max() >= len(self)):
            raise ParameterError(
                f"row index out of range [0, {len(self)})")
        # side="right" lands duplicates (empty shards) on the one
        # non-empty shard that actually owns the row
        owner = np.searchsorted(self._bounds, idx, side="right") - 1
        out = np.empty((len(idx), self._dim), dtype=self._dtype)
        for s in np.unique(owner):
            mask = owner == s
            part = self._parts[s]
            out[mask] = part[idx[mask] - self._bounds[s]]
        return out[0] if scalar else out

    def __matmul__(self, other) -> np.ndarray:
        blocks = [p @ other for p in self._parts if p is not None]
        return np.concatenate(blocks, axis=0)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        full = np.concatenate([p for p in self._parts if p is not None],
                              axis=0)
        return full.astype(dtype) if dtype is not None else full

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedMatrix(shape={self.shape}, "
                f"shards={len(self._parts)})")


class ShardedEmbeddingStore(ScoringMixin):
    """A read-only embedding store partitioned into node-range shards.

    Each shard is an ordinary :class:`EmbeddingStore`; this object
    stitches them back into one logical matrix set. Scoring
    (:meth:`score_pairs`, :meth:`score_all_from`) comes from
    :class:`~repro.embedder.ScoringMixin` running over virtual
    :class:`ShardedMatrix` views; :meth:`to_serving` builds the
    scatter-gather :class:`~repro.serving.router.ShardedQueryEngine`.
    """

    def __init__(self, root: Path, manifest: dict,
                 shards: list[EmbeddingStore | None],
                 boundaries: np.ndarray) -> None:
        self.root = Path(root)
        self.name: str = manifest["name"]
        self.directional: bool = manifest["directional"]
        self.lp_scoring: str = manifest.get("lp_scoring", "inner")
        self.custom_scoring: bool = bool(manifest.get("custom_scoring",
                                                      False))
        self.metadata: dict = dict(manifest.get("metadata", {}))
        self._manifest = manifest
        self.shards = shards
        self.boundaries = boundaries

    def _virtual(self, key: str) -> ShardedMatrix | None:
        parts = [None if s is None else getattr(s, f"{key}_")
                 for s in self.shards]
        if all(p is None for p in parts):
            return None
        return ShardedMatrix(parts, self.boundaries)

    @property
    def embedding_(self) -> ShardedMatrix | None:
        return self._virtual("embedding")

    @property
    def forward_(self) -> ShardedMatrix | None:
        return self._virtual("forward")

    @property
    def backward_(self) -> ShardedMatrix | None:
        return self._virtual("backward")

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path, *,
             mmap: bool = True) -> "ShardedEmbeddingStore":
        """Open and validate a sharded store root.

        Raises :class:`~repro.errors.ShardLayoutError` when the shard
        map and the directories on disk disagree (missing or extra
        shards, broken range tiling, per-shard manifest mismatch), and
        propagates each shard's own typed open errors (e.g.
        :class:`~repro.errors.StoreCorruptError` for a truncated shard
        matrix).
        """
        root = Path(root)
        map_path = root / SHARDS_NAME
        if not map_path.is_file():
            raise StoreError(f"not a sharded embedding store: {root} "
                             f"(missing {SHARDS_NAME})")
        try:
            with open(map_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreCorruptError(
                f"corrupt shard map {map_path}: {exc}; the export was "
                f"likely interrupted - re-shard the store") from exc
        if manifest.get("format") != _SHARD_FORMAT_VERSION:
            raise StoreError(f"unsupported shard map format "
                             f"{manifest.get('format')!r} in {map_path}")

        entries = manifest.get("shards", [])
        num_shards = manifest.get("num_shards")
        if not entries or num_shards != len(entries):
            raise ShardLayoutError(
                f"sharded store {root}: map says num_shards={num_shards} "
                f"but lists {len(entries)} shard entries - re-shard the "
                f"store")
        on_disk = sorted(p.name for p in root.iterdir()
                         if p.is_dir() and p.name.startswith(
                             _SHARD_DIR_PREFIX))
        named = sorted(e["dir"] for e in entries if e["dir"] is not None)
        if on_disk != named:
            raise ShardLayoutError(
                f"sharded store {root}: shard map names {len(named)} shard "
                f"directories but {len(on_disk)} exist on disk "
                f"(map: {named}, disk: {on_disk}) - a shard was added or "
                f"removed without rewriting {SHARDS_NAME}; re-shard the "
                f"store")

        bounds = [e["start"] for e in entries] + [entries[-1]["stop"]]
        boundaries = np.asarray(bounds, dtype=np.int64)
        stops = np.asarray([e["stop"] for e in entries], dtype=np.int64)
        if (boundaries[0] != 0
                or np.any(boundaries[1:] != stops)
                or np.any(np.diff(boundaries) < 0)
                or boundaries[-1] != manifest["num_nodes"]):
            raise ShardLayoutError(
                f"sharded store {root}: shard ranges do not tile "
                f"[0, {manifest['num_nodes']}): {bounds} - re-shard the "
                f"store")

        shards: list[EmbeddingStore | None] = []
        for i, entry in enumerate(entries):
            start, stop = int(entry["start"]), int(entry["stop"])
            if entry["dir"] is None:
                if start != stop:
                    raise ShardLayoutError(
                        f"sharded store {root}: shard {i} owns rows "
                        f"[{start}, {stop}) but has no directory - "
                        f"re-shard the store")
                shards.append(None)
                continue
            shard = EmbeddingStore.open(root / entry["dir"], mmap=mmap)
            if shard.num_nodes != stop - start:
                raise ShardLayoutError(
                    f"sharded store {root}: shard {i} should own "
                    f"{stop - start} rows [{start}, {stop}) but "
                    f"{entry['dir']} holds {shard.num_nodes} - the shard "
                    f"map is stale; re-shard the store")
            if (shard.dim != manifest["dim"]
                    or shard.directional != manifest["directional"]):
                raise ShardLayoutError(
                    f"sharded store {root}: shard {i} ({entry['dir']}) is "
                    f"{shard.dim}-dim directional={shard.directional}, map "
                    f"expects {manifest['dim']}-dim "
                    f"directional={manifest['directional']} - mixed "
                    f"exports under one root; re-shard the store")
            shards.append(shard)
        if all(s is None for s in shards):
            raise ShardLayoutError(
                f"sharded store {root}: every shard is empty")
        store = cls(root, manifest, shards, boundaries)
        # Per-node extras (w_fwd / w_bwd) were sliced into the shards at
        # write time; stitch them back so the sharded store carries the
        # same metadata surface as a flat one (and so re-sharding or
        # un-sharding this store does not silently drop them).
        present = [s for s in shards if s is not None]
        for extra in ("w_fwd", "w_bwd"):
            if all(extra in s.metadata for s in present):
                store.metadata[extra] = np.concatenate(
                    [np.asarray(s.metadata[extra]) for s in present])
        return store

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self._manifest["num_nodes"])

    @property
    def dim(self) -> int:
        return int(self._manifest["dim"])

    @property
    def num_shards(self) -> int:
        return int(self._manifest["num_shards"])

    @property
    def version(self) -> int | None:
        """Export version stamped by ``publish_version`` (else None)."""
        value = self._manifest.get("version")
        return int(value) if value is not None else None

    @property
    def mmapped(self) -> bool:
        """Whether every present shard is memory-mapped."""
        return all(s is None or s.mmapped for s in self.shards)

    def shard_of(self, node: int) -> int:
        """Index of the shard owning global ``node``."""
        if node < 0 or node >= self.num_nodes:
            raise ParameterError(
                f"node {node} out of range [0, {self.num_nodes})")
        return int(np.searchsorted(self.boundaries, node, side="right") - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedEmbeddingStore(name={self.name!r}, "
                f"n={self.num_nodes}, dim={self.dim}, "
                f"shards={self.num_shards})")
