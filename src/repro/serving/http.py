"""Async HTTP serving tier with dynamic micro-batching.

The network front of the serving stack: a stdlib-``asyncio`` HTTP/1.1
service over a :class:`~repro.serving.registry.ServingRegistry`, so the
batched top-k machinery the in-process tiers already prove out can
serve real sockets. Routes:

* ``GET  /v1/models`` — the registered models and their shapes;
* ``POST /v1/{model}/topk`` — ``{"node": 3}`` or ``{"nodes": [...]}``
  plus optional ``"k"`` and ``"timeout"`` (seconds);
* ``POST /v1/{model}/score`` — aligned ``{"src": ..., "dst": ...}``
  pairs (either side may be a scalar, broadcast against the other);
* ``GET  /healthz`` — liveness plus the model list;
* ``GET  /metrics`` — the :mod:`repro.obs` registry in Prometheus text
  exposition format;
* ``GET  /debug/traces`` — a bounded ring of recent *sampled* request
  trace trees (``?route=&status=&min_ms=&limit=`` filters);
* ``GET  /debug/vars`` — config, models, batcher/queue state, and a
  metrics snapshot in one JSON document.

The core is the **dynamic micro-batcher**: concurrent ``topk`` requests
for the same ``(model, k)`` land on one :class:`asyncio.Queue`, and a
collector task coalesces them — up to ``max_batch`` source nodes or
``max_delay`` seconds, whichever first — into *one*
:meth:`~repro.serving.engine.QueryEngine.topk` call on a worker thread.
One coalesced call is one tall GEMM instead of many skinny ones, which
is exactly the throughput lever the batched kernels and the sharded
router already cash in; the batcher extends it across HTTP clients that
never heard of each other.

Production concerns are first-class:

* **backpressure** — at most ``max_queue`` requests may be pending;
  excess admissions get ``429`` with a ``Retry-After`` hint instead of
  unbounded queueing;
* **deadline admission control** — every request carries a deadline
  (client ``"timeout"`` or ``default_deadline``); requests whose
  deadline passed while queued are shed with ``504`` *before* wasting
  a BLAS call on them;
* **hot-swap safety** — the engine is resolved from the registry per
  *batch*, at dispatch time: a ``repro-stream`` publish that swaps the
  model mid-flight never tears a batch (in-flight batches finish on
  the old engine, whose retrieval backend degrades gracefully while
  closing);
* **graceful shutdown** — new admissions get ``503``, queued batches
  drain, then the loop exits;
* **per-request visibility** — every request gets a
  :class:`~repro.obs.requestctx.TraceContext` (honoring an incoming
  W3C ``traceparent`` header; malformed headers start a fresh trace)
  that survives the queue hand-off and the executor hop, and every
  response carries ``x-trace-id`` / ``x-request-id`` / ``traceparent``
  headers. With collection on, sampled requests build a
  root → queue → batch → engine(→ shard) span chain — the *batch* span
  is shared by (and linked to) every member request, so one slow batch
  explains all its riders — retained in a bounded ring behind
  ``/debug/traces``; latency histograms carry trace exemplars; and an
  optional :class:`~repro.obs.requestlog.RequestLogger` emits one
  rate-bounded JSON access-log line per request (queue wait, batch
  size, engine time, shed reason).

``repro-serve serve`` (:mod:`repro.serving.cli`) wraps this in a
console command; ``examples/http_serving.py`` is the end-to-end tour.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from urllib.parse import parse_qs

import numpy as np

from .. import obs
from ..errors import ParameterError, ReproError
from ..obs import requestctx
from ..obs.requestlog import RequestLogger, TraceRing
from ..obs.tracing import Span
from ..parallel import available_cpus
from .registry import ServingRegistry

__all__ = ["HTTPServingConfig", "ServingHTTPServer"]


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 431: "Request Header Fields Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


@dataclass(frozen=True)
class HTTPServingConfig:
    """Knobs of the HTTP tier (validated once, immutable afterwards).

    ``max_batch`` caps the *source nodes* coalesced into one engine
    call; ``max_delay`` bounds how long the first request of a batch
    waits for company (the latency the batcher may add); ``max_queue``
    bounds pending requests before admissions turn into 429s;
    ``default_deadline`` is the per-request deadline when the client
    does not send ``"timeout"``; ``retry_after`` is the hint attached
    to 429 responses; ``max_body`` bounds request bodies; ``workers``
    sizes the thread pool engine calls run on (None: CPU-capped).

    Tracing knobs: ``trace_sample`` is the head-sampling rate for
    requests that *start* a trace here (propagated ``traceparent``
    headers keep their own sampled flag) — sampled requests retain
    their span trees in the ``/debug/traces`` ring (``trace_ring``
    entries) and attach exemplars to the latency histograms;
    ``access_log_per_second`` bounds the structured access-log rate.
    """

    max_batch: int = 64
    max_delay: float = 0.002
    max_queue: int = 1024
    default_deadline: float = 2.0
    retry_after: float = 0.05
    max_body: int = 1 << 20
    workers: int | None = None
    trace_sample: float = 1.0
    trace_ring: int = 256
    access_log_per_second: float = 500.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ParameterError("max_batch must be >= 1")
        if self.max_delay < 0:
            raise ParameterError("max_delay must be >= 0")
        if self.max_queue < 1:
            raise ParameterError("max_queue must be >= 1")
        if self.default_deadline <= 0:
            raise ParameterError("default_deadline must be > 0")
        if self.retry_after < 0:
            raise ParameterError("retry_after must be >= 0")
        if self.max_body < 1:
            raise ParameterError("max_body must be >= 1")
        if self.workers is not None and (int(self.workers) != self.workers
                                         or self.workers < 1):
            raise ParameterError(
                f"workers must be a positive integer or None, "
                f"got {self.workers!r}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ParameterError("trace_sample must be in [0, 1]")
        if self.trace_ring < 1:
            raise ParameterError("trace_ring must be >= 1")
        if self.access_log_per_second <= 0:
            raise ParameterError("access_log_per_second must be > 0")


class _HTTPError(Exception):
    """A handler outcome that maps straight onto an HTTP error reply."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class _Deadline(Exception):
    """A queued request's deadline passed before its batch dispatched."""


class _TopkRequest:
    """One admitted top-k request waiting in a batcher queue.

    Beyond the payload it carries the request's identity across the
    queue hand-off: the :class:`TraceContext` (so the dispatcher can
    attribute queue wait / batch size back to the request), the live
    root span (so the dispatcher can graft the queue and batch spans
    into the request's tree), and the enqueue timestamps.
    """

    __slots__ = ("nodes", "future", "deadline", "ctx", "span",
                 "enqueued_mono", "enqueued_wall")

    def __init__(self, nodes: np.ndarray, future: asyncio.Future,
                 deadline: float, *,
                 ctx: "requestctx.TraceContext | None" = None,
                 span: Span | None = None,
                 enqueued_mono: float = 0.0,
                 enqueued_wall: float = 0.0) -> None:
        self.nodes = nodes
        self.future = future
        self.deadline = deadline
        self.ctx = ctx
        self.span = span
        self.enqueued_mono = enqueued_mono
        self.enqueued_wall = enqueued_wall


class _Batcher:
    """Coalesce concurrent top-k requests for one ``(model, k)`` pair.

    A single collector task owns the queue: it blocks for the first
    request, then keeps draining — waiting out at most ``max_delay``
    seconds — until ``max_batch`` source nodes are on board, and hands
    the batch to the server for one engine call. Requests for different
    ``(model, k)`` pairs never share a BLAS call (a batched ``topk``
    has one ``k``), so each pair gets its own batcher, created lazily.
    """

    def __init__(self, server: "ServingHTTPServer", model: str,
                 k: int) -> None:
        self.server = server
        self.model = model
        self.k = k
        self.queue: asyncio.Queue[_TopkRequest] = asyncio.Queue()
        self.busy = False
        # The batcher outlives the request that lazily created it, so
        # its task must start from an *empty* context — created inside
        # the creating request's context it would inherit that request's
        # live span and parent every later batch under a finished tree.
        loop = asyncio.get_running_loop()
        self.task = contextvars.Context().run(
            loop.create_task, self._run(), name=f"batcher-{model}-k{k}")

    async def _run(self) -> None:
        config = self.server.config
        loop = asyncio.get_running_loop()
        while True:
            first = await self.queue.get()
            batch = [first]
            total = len(first.nodes)
            flush_at = loop.time() + config.max_delay
            while total < config.max_batch:
                try:
                    item = self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = flush_at - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        item = await asyncio.wait_for(self.queue.get(),
                                                      remaining)
                    except asyncio.TimeoutError:
                        break
                batch.append(item)
                total += len(item.nodes)
            self.busy = True
            try:
                await self.server._dispatch(self.model, self.k, batch)
            finally:
                self.busy = False


class ServingHTTPServer:
    """Asyncio HTTP front over a :class:`ServingRegistry`.

    Use either the async entry point (``await server.serve(...)``
    inside an event loop you own) or the threaded lifecycle the CLI,
    tests, and benchmarks use::

        server = ServingHTTPServer(registry).start(port=0)
        ...
        server.stop()

    ``start`` binds the socket before returning, so ``server.port`` is
    immediately queryable. ``metrics=True`` (the default) enables
    :mod:`repro.obs` collection so ``/metrics`` has something to say.
    """

    def __init__(self, registry: ServingRegistry, *,
                 config: HTTPServingConfig | None = None,
                 metrics: bool = True,
                 access_log: RequestLogger | None = None) -> None:
        self.registry = registry
        self.config = config or HTTPServingConfig()
        self.host: str | None = None
        self.port: int | None = None
        #: recent sampled request traces, served by /debug/traces
        self.traces = TraceRing(self.config.trace_ring)
        self.access_log = access_log
        self._started_at = time.time()
        workers = self.config.workers or min(4, available_cpus())
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="http-serve")
        self._batchers: dict[tuple[str, int], _Batcher] = {}
        self._conns: dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._pending = 0
        self._closing = False
        self._metrics = metrics
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, host: str = "127.0.0.1",
              port: int = 0) -> "ServingHTTPServer":
        """Run the server on a background thread; returns once bound."""
        if self._thread is not None:
            raise ReproError("server already started")
        if self._metrics:
            obs.set_enabled(True)
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve(host, port, _ready=ready)),
            name="http-serve-loop", daemon=True)
        self._thread.start()
        ready.wait(timeout=30.0)
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise ReproError(
                f"server failed to bind {host}:{port}: "
                f"{self._startup_error}") from self._startup_error
        if self.port is None:
            raise ReproError("server failed to start within 30s")
        return self

    def stop(self, *, close_registry: bool = False) -> None:
        """Gracefully stop: drain queued batches, then shut down.

        ``close_registry=True`` additionally closes every engine in the
        registry — what the CLI does, since it owns its registry; an
        embedding application sharing a registry keeps it open.
        """
        loop, self._loop = self._loop, None
        if loop is not None and self._stop_event is not None:
            event = self._stop_event
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:     # loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        self._executor.shutdown(wait=False)
        if close_registry:
            self.registry.close()

    def __enter__(self) -> "ServingHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    async def serve(self, host: str = "127.0.0.1", port: int = 0, *,
                    _ready: threading.Event | None = None) -> None:
        """Async entry point: bind, serve until :meth:`stop` (or cancel)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, host, port,
                limit=self.config.max_body + (1 << 16))
        except OSError as exc:
            self._startup_error = exc
            if _ready is not None:
                _ready.set()
            return
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if _ready is not None:
            _ready.set()
        try:
            async with server:
                await self._stop_event.wait()
                self._closing = True
                server.close()
                await server.wait_closed()
                await self._drain()
        finally:
            self._closing = True
            for batcher in self._batchers.values():
                batcher.task.cancel()
            # Close idle keep-alive connections so their handler tasks
            # exit on EOF before the loop tears down — cancellation
            # would be noisy (3.11's streams wrapper logs it) and rude.
            conns = dict(self._conns)
            for conn_writer in conns.values():
                conn_writer.close()
            if conns:
                await asyncio.wait(set(conns), timeout=5.0)

    async def _drain(self, timeout: float = 5.0) -> None:
        """Let queued batches finish before the loop exits."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if not any(b.busy or not b.queue.empty()
                       for b in self._batchers.values()):
                return
            await asyncio.sleep(0.01)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns[task] = writer
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass                       # client went away mid-exchange
        finally:
            if task is not None:
                self._conns.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise
            return False               # clean EOF between requests
        except asyncio.LimitOverrunError:
            await self._write(writer, 431,
                              self._error_body("request headers too large"),
                              keep_alive=False)
            return False
        try:
            method, path, headers, keep_alive = _parse_head(head)
        except ValueError as exc:
            await self._write(writer, 400, self._error_body(str(exc)),
                              keep_alive=False)
            return False
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.config.max_body:
            await self._write(writer, 413,
                              self._error_body(
                                  f"request body must be 0..."
                                  f"{self.config.max_body} bytes"),
                              keep_alive=False)
            return False
        body = await reader.readexactly(length) if length else b""

        start = time.perf_counter()
        route = _route_label(method, path)
        ctx = self._request_context(headers)
        tracing = self._metrics and obs.enabled()
        root_span = Span("http.request", labels={"route": route},
                         attributes={"method": method,
                                     "trace_id": ctx.trace_id,
                                     "span_id": ctx.span_id}) \
            if tracing else None
        status = 500
        with requestctx.activate(ctx):
            if root_span is not None:
                root_span.__enter__()
            try:
                status, payload, content_type, extra = await self._route(
                    method, path, body)
            except _HTTPError as exc:
                status, content_type = exc.status, "application/json"
                payload, extra = self._error_body(str(exc)), exc.headers
            except Exception as exc:   # noqa: BLE001 - last-resort 500
                status, content_type = 500, "application/json"
                payload, extra = self._error_body(
                    f"internal error: {type(exc).__name__}: {exc}"), {}
            finally:
                if root_span is not None:
                    root_span.annotate(status=status)
                    root_span.__exit__(None, None, None)
        duration = time.perf_counter() - start
        meta = ctx.meta
        if tracing:
            registry = obs.get_registry()
            registry.histogram(
                "http_request_seconds", {"route": route},
                description="wall-clock request latency per route",
                ).observe(duration,
                          {"trace_id": ctx.trace_id} if ctx.sampled
                          else None)
            registry.counter(
                "http_requests_total",
                {"route": route, "status": str(status)},
                description="requests served, by route and status").inc()
        if root_span is not None and ctx.sampled:
            self.traces.record(
                trace_id=ctx.trace_id, route=route, status=status,
                duration_seconds=duration, tree=root_span.to_dict(),
                queue_wait_ms=meta.get("queue_wait_ms"),
                batch_size=meta.get("batch_size"))
        if self.access_log is not None:
            self.access_log.log(
                route=route, method=method, status=status,
                duration_ms=round(duration * 1e3, 3),
                trace_id=ctx.trace_id, request_id=ctx.span_id,
                model=meta.get("model"), k=meta.get("k"),
                nodes=meta.get("nodes"),
                queue_wait_ms=meta.get("queue_wait_ms"),
                batch_size=meta.get("batch_size"),
                engine_ms=meta.get("engine_ms"),
                shed=meta.get("shed"))
        extra = {**(extra or {}),
                 "x-trace-id": ctx.trace_id,
                 "x-request-id": ctx.span_id,
                 "traceparent": requestctx.format_traceparent(ctx)}
        await self._write(writer, status, payload,
                          content_type=content_type, extra=extra,
                          keep_alive=keep_alive)
        return keep_alive

    def _request_context(self, headers: dict) -> "requestctx.TraceContext":
        """Mint (or adopt) the request's trace context.

        A valid incoming ``traceparent`` is continued — same trace id,
        fresh span id, the remote sampled flag honored. Anything else
        (absent *or malformed*) starts a fresh trace whose sampling
        decision comes from ``config.trace_sample``; a bad header must
        never be an error.
        """
        parent = requestctx.parse_traceparent(headers.get("traceparent"))
        if parent is not None:
            return requestctx.child_context(parent)
        ctx = requestctx.new_trace()
        ctx.sampled = requestctx.sample_decision(ctx.trace_id,
                                                 self.config.trace_sample)
        return ctx

    @staticmethod
    def _error_body(message: str) -> bytes:
        return json.dumps({"error": message}).encode("utf-8")

    async def _write(self, writer: asyncio.StreamWriter, status: int,
                     payload: bytes, *,
                     content_type: str = "application/json",
                     extra: dict | None = None,
                     keep_alive: bool = True) -> None:
        reason = _REASONS.get(status, "Error")
        head = [f"HTTP/1.1 {status} {reason}",
                f"content-type: {content_type}",
                f"content-length: {len(payload)}",
                f"connection: {'keep-alive' if keep_alive else 'close'}"]
        for key, value in (extra or {}).items():
            head.append(f"{key}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str, body: bytes,
                     ) -> tuple[int, bytes, str, dict]:
        path, _, query = path.partition("?")
        if path == "/healthz":
            _require(method, "GET")
            return self._json(200, {"status": "ok",
                                    "models": self.registry.names()})
        if path == "/metrics":
            _require(method, "GET")
            return (200, obs.to_prometheus_text().encode("utf-8"),
                    "text/plain; version=0.0.4", {})
        if path == "/debug/traces":
            _require(method, "GET")
            return self._handle_debug_traces(query)
        if path == "/debug/vars":
            _require(method, "GET")
            return self._handle_debug_vars()
        if path == "/v1/models":
            _require(method, "GET")
            return self._json(200, {"models": [
                self._model_info(name) for name in self.registry.names()]})
        parts = [p for p in path.split("/") if p]
        if len(parts) == 3 and parts[0] == "v1":
            _, model, verb = parts
            if verb == "topk":
                _require(method, "POST")
                return await self._handle_topk(model, _parse_json(body))
            if verb == "score":
                _require(method, "POST")
                return await self._handle_score(model, _parse_json(body))
        raise _HTTPError(404, f"no route for {method} {path}")

    def _model_info(self, name: str) -> dict:
        engine = self.registry.get(name)
        return {"name": name, "num_nodes": engine.num_nodes,
                "index": engine.index.kind,
                "directional": engine.directional,
                "engine": type(engine).__name__}

    def _get_engine(self, model: str):
        try:
            return self.registry.get(model)
        except ReproError as exc:
            raise _HTTPError(404, str(exc)) from None

    # ------------------------------------------------------------------
    # /debug/* — operator introspection
    # ------------------------------------------------------------------
    def _handle_debug_traces(self, query: str,
                             ) -> tuple[int, bytes, str, dict]:
        params = parse_qs(query, keep_blank_values=False)

        def one(name: str) -> str | None:
            values = params.get(name)
            return values[-1] if values else None

        status = route = None
        min_ms = 0.0
        limit = 32
        try:
            if one("status") is not None:
                status = int(one("status"))
            if one("min_ms") is not None:
                min_ms = float(one("min_ms"))
            if one("limit") is not None:
                limit = int(one("limit"))
        except ValueError as exc:
            raise _HTTPError(400, f"bad query parameter: {exc}") from None
        route = one("route")
        records = self.traces.list(route=route, status=status,
                                   min_duration_ms=min_ms, limit=limit)
        return self._json(200, {"traces": records,
                                "ring_size": len(self.traces),
                                "recorded": self.traces.recorded})

    def _handle_debug_vars(self) -> tuple[int, bytes, str, dict]:
        body = {
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "config": asdict(self.config),
            "models": self.registry.names(),
            "pending_requests": self._pending,
            "batchers": [{"model": model, "k": k, "busy": b.busy,
                          "queued": b.queue.qsize()}
                         for (model, k), b in sorted(self._batchers.items())],
            "closing": self._closing,
            "obs_enabled": obs.enabled(),
            "trace_ring": {"size": len(self.traces),
                           "recorded": self.traces.recorded},
            "access_log": (self.access_log.stats()
                           if self.access_log is not None else None),
        }
        if obs.enabled():
            body["metrics"] = obs.snapshot(spans=False)
        return self._json(200, body)

    # ------------------------------------------------------------------
    # /v1/{model}/topk — the micro-batched path
    # ------------------------------------------------------------------
    async def _handle_topk(self, model: str, payload: dict,
                           ) -> tuple[int, bytes, str, dict]:
        scalar = "node" in payload
        if scalar == ("nodes" in payload):
            raise _HTTPError(400, 'body must have exactly one of '
                                  '"node" (scalar) or "nodes" (list)')
        raw = payload["node"] if scalar else payload["nodes"]
        k = _as_int(payload.get("k", 10), "k", minimum=1)
        timeout = _as_timeout(payload.get("timeout"),
                              self.config.default_deadline)
        try:
            nodes = np.atleast_1d(np.asarray(raw, dtype=np.int64))
        except (TypeError, ValueError):
            raise _HTTPError(400, '"node"/"nodes" must be integer node '
                                  'ids') from None
        if nodes.ndim != 1:
            raise _HTTPError(400, '"nodes" must be a flat list of node ids')
        # Validate per request, pre-admission: a bad node id must 400
        # its own request, not poison the whole coalesced batch.
        engine = self._get_engine(model)
        if len(nodes) and (nodes.min() < 0
                           or nodes.max() >= engine.num_nodes):
            raise _HTTPError(400, f"node ids must be in "
                                  f"[0, {engine.num_nodes})")
        ctx = requestctx.current()
        if ctx is not None:
            ctx.meta.update(model=model, k=k, nodes=int(len(nodes)))
        if len(nodes) == 0:
            return self._json(200, {"model": model, "k": k, "results": []})

        ids, scores = await self._enqueue_topk(model, k, nodes, timeout)
        results = [
            {"node": int(node),
             "neighbors": [int(v) for v in row_ids if v >= 0],
             "scores": [float(s) for v, s in zip(row_ids, row_scores)
                        if v >= 0]}
            for node, row_ids, row_scores in zip(nodes, ids, scores)]
        if scalar:
            body = {"model": model, "k": k, **results[0]}
        else:
            body = {"model": model, "k": k, "results": results}
        return self._json(200, body)

    async def _enqueue_topk(self, model: str, k: int, nodes: np.ndarray,
                            timeout: float,
                            ) -> tuple[np.ndarray, np.ndarray]:
        """Admission control + the queue hand-off to the batcher."""
        ctx = requestctx.current()

        def shed(reason: str) -> None:
            if ctx is not None:
                ctx.meta["shed"] = reason

        if self._closing:
            shed("shutdown")
            raise _HTTPError(503, "server is shutting down")
        config = self.config
        if self._pending >= config.max_queue:
            shed("overload")
            if self._metrics and obs.enabled():
                obs.get_registry().counter("http_overload_total").inc()
            raise _HTTPError(
                429, f"queue full ({config.max_queue} pending requests)",
                headers={"retry-after": f"{config.retry_after:.3f}"})
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        request = _TopkRequest(nodes, future, loop.time() + timeout,
                               ctx=ctx, span=obs.current_span(),
                               enqueued_mono=loop.time(),
                               enqueued_wall=time.time())
        batcher = self._batchers.get((model, k))
        if batcher is None:
            batcher = self._batchers[(model, k)] = _Batcher(self, model, k)
        self._pending += 1
        self._set_queue_depth()
        batcher.queue.put_nowait(request)
        try:
            return await future
        except _Deadline:
            shed("deadline")
            raise _HTTPError(
                504, f"deadline exceeded after {timeout:.3f}s in queue",
                headers={"retry-after": f"{config.retry_after:.3f}"}
                ) from None
        except ParameterError as exc:
            raise _HTTPError(400, str(exc)) from None
        except ReproError as exc:
            raise _HTTPError(404, str(exc)) from None
        finally:
            self._pending -= 1
            self._set_queue_depth()

    def _set_queue_depth(self) -> None:
        if self._metrics and obs.enabled():
            obs.get_registry().gauge("http_queue_depth").set(self._pending)

    async def _dispatch(self, model: str, k: int,
                        batch: list[_TopkRequest]) -> None:
        """One coalesced engine call; splits results back per request.

        The batcher side of the trace chain: per-member queue waits go
        into the requests' ``ctx.meta`` (and a histogram), one shared
        ``http.batch`` span wraps the engine call — entered here, in the
        batcher's own (clean) context, so the ``serving.engine`` span
        the worker thread opens nests under it via :func:`requestctx.bind`
        — and after the call both a synthetic ``http.queue`` span and
        the batch span are grafted into every member request's tree.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        live: list[_TopkRequest] = []
        for request in batch:
            if request.future.done():       # client connection dropped
                continue
            if now > request.deadline:
                request.future.set_exception(_Deadline())
                if self._metrics and obs.enabled():
                    obs.get_registry().counter(
                        "http_deadline_shed_total").inc()
                continue
            live.append(request)
        if not live:
            return
        tracing = self._metrics and obs.enabled()
        for request in live:
            wait = max(0.0, now - request.enqueued_mono)
            if request.ctx is not None:
                request.ctx.meta["queue_wait_ms"] = round(wait * 1e3, 3)
                request.ctx.meta["batch_size"] = len(live)
            if tracing:
                sampled = request.ctx is not None and request.ctx.sampled
                obs.get_registry().histogram(
                    "http_queue_wait_seconds",
                    description="time a request waited in the batcher "
                                "queue before dispatch",
                    ).observe(wait, {"trace_id": request.ctx.trace_id}
                              if sampled else None)
        if tracing:
            obs.get_registry().histogram(
                "http_batch_requests", {"model": model}).observe(len(live))
        member_ids = [r.ctx.trace_id for r in live
                      if r.ctx is not None and r.ctx.sampled]
        batch_span = Span(
            "http.batch", labels={"model": model},
            attributes={"k": k, "batch_size": len(live),
                        "nodes": int(sum(len(r.nodes) for r in live)),
                        "member_trace_ids": member_ids}) \
            if tracing else None
        exemplar_ctx = next((r.ctx for r in live
                             if r.ctx is not None and r.ctx.sampled), None)
        engine_t0 = time.perf_counter()
        if batch_span is not None:
            batch_span.__enter__()
        try:
            engine = self.registry.get(model)
            nodes = (live[0].nodes if len(live) == 1
                     else np.concatenate([r.nodes for r in live]))
            ids, scores = await loop.run_in_executor(
                self._executor,
                requestctx.bind(self._engine_call, engine, nodes, k,
                                ctx=exemplar_ctx))
        except BaseException as exc:   # noqa: BLE001 - routed per request
            if batch_span is not None:
                batch_span.__exit__(type(exc), exc, None)
                batch_span = None
            # A swap can shrink the model between per-request validation
            # and dispatch; re-run requests solo so one stale id cannot
            # poison its batch peers.
            if len(live) > 1 and isinstance(exc, ParameterError):
                for request in live:
                    await self._dispatch(model, k, [request])
                return
            for request in live:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        engine_ms = round((time.perf_counter() - engine_t0) * 1e3, 3)
        if batch_span is not None:
            batch_span.annotate(engine_ms=engine_ms)
            batch_span.__exit__(None, None, None)
        offset = 0
        for request in live:
            count = len(request.nodes)
            if request.ctx is not None:
                request.ctx.meta["engine_ms"] = engine_ms
            if request.span is not None and batch_span is not None:
                # Synthetic queue span: timed from the enqueue stamps,
                # never entered (so it feeds no span metrics), grafted
                # next to the shared batch span. This runs on the loop
                # thread *before* the future resolves, so the handler
                # cannot be serializing the tree concurrently.
                queue_span = Span("http.queue")
                queue_span.started_at = request.enqueued_wall
                queue_span.duration = max(0.0, now - request.enqueued_mono)
                request.span.children.append(queue_span)
                request.span.children.append(batch_span)
            if not request.future.done():
                request.future.set_result(
                    (ids[offset:offset + count],
                     scores[offset:offset + count]))
            offset += count

    def _engine_call(self, engine, nodes: np.ndarray, k: int):
        """The coalesced call, on a worker thread, inside the trace."""
        with obs.trace("serving.engine", nodes=int(len(nodes)), k=int(k)):
            return engine.topk(nodes, k)

    # ------------------------------------------------------------------
    # /v1/{model}/score
    # ------------------------------------------------------------------
    async def _handle_score(self, model: str, payload: dict,
                            ) -> tuple[int, bytes, str, dict]:
        if "src" not in payload or "dst" not in payload:
            raise _HTTPError(400, 'body must have "src" and "dst"')
        engine = self._get_engine(model)
        try:
            src = np.asarray(payload["src"], dtype=np.int64)
            dst = np.asarray(payload["dst"], dtype=np.int64)
        except (TypeError, ValueError):
            raise _HTTPError(400, '"src"/"dst" must be integer node ids'
                             ) from None
        loop = asyncio.get_running_loop()
        try:
            scores = await loop.run_in_executor(
                self._executor, engine.score, src, dst)
        except ParameterError as exc:
            raise _HTTPError(400, str(exc)) from None
        if src.ndim == 0 and dst.ndim == 0:
            return self._json(200, {"model": model,
                                    "score": float(scores[0])})
        return self._json(200, {"model": model,
                                "scores": [float(s) for s in scores]})

    # ------------------------------------------------------------------
    @staticmethod
    def _json(status: int, body: dict) -> tuple[int, bytes, str, dict]:
        return (status, json.dumps(body).encode("utf-8"),
                "application/json", {})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ServingHTTPServer(host={self.host!r}, port={self.port}, "
                f"models={self.registry.names()})")


# ----------------------------------------------------------------------
# request parsing helpers
# ----------------------------------------------------------------------

def _parse_head(blob: bytes) -> tuple[str, str, dict, bool]:
    """Parse request line + headers; raises ValueError on malformed."""
    try:
        text = blob.decode("latin-1")
    except UnicodeDecodeError:       # pragma: no cover - latin-1 total
        raise ValueError("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, path, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        key, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[key.strip().lower()] = value.strip()
    keep_alive = (version == "HTTP/1.1"
                  and headers.get("connection", "").lower() != "close")
    return method, path, headers, keep_alive


def _route_label(method: str, path: str) -> str:
    """Bounded route label for metrics (no per-model cardinality blowup
    beyond the registry's own model names)."""
    path = path.split("?", 1)[0]
    if path in ("/healthz", "/metrics", "/v1/models"):
        return path
    parts = [p for p in path.split("/") if p]
    if len(parts) == 3 and parts[0] == "v1" and parts[2] in ("topk",
                                                             "score"):
        return f"/v1/{{model}}/{parts[2]}"
    return "other"


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise _HTTPError(405, f"use {expected} for this route")


def _parse_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HTTPError(400, f"request body is not valid JSON: {exc}"
                         ) from None
    if not isinstance(payload, dict):
        raise _HTTPError(400, "request body must be a JSON object")
    return payload


def _as_int(value, name: str, *, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _HTTPError(400, f'"{name}" must be an integer')
    if value < minimum:
        raise _HTTPError(400, f'"{name}" must be >= {minimum}')
    return value


def _as_timeout(value, default: float) -> float:
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _HTTPError(400, '"timeout" must be a number of seconds')
    if value <= 0:
        raise _HTTPError(400, '"timeout" must be > 0')
    return float(value)
