"""Top-k inner-product similarity indexes.

Both the paper's directional methods (score ``X_u . Y_v``) and the
single-vector baselines (score ``Z_u . Z_v``) reduce online top-k
retrieval to maximum-inner-product search over one *database* matrix
(``Y`` resp. ``Z``); the query vector comes from the other side. Two
backends cover the latency/recall trade-off:

* :class:`ExactIndex` — blocked brute force. Exact by construction and
  the parity reference for everything else; the block size bounds the
  size of the temporary score matrix so multi-million-row (mmap'd)
  databases never materialize an ``n x n`` anything.
* :class:`IVFIndex` — an inverted-file index in the FAISS style, pure
  numpy: k-means partitions the database rows into ``num_lists``
  buckets, a query scores only the ``nprobe`` buckets whose centroids
  have the largest inner product with it. Approximate, with recall
  controlled by ``nprobe``.

Both return ``(indices, scores)`` sorted by descending score, one row
per query.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ParameterError
from ..ml.kmeans import kmeans
from ..rng import ensure_rng

__all__ = ["TopKIndex", "ExactIndex", "IVFIndex", "build_index",
           "INDEX_KINDS"]


def _topk_rows(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of a 2-D score matrix, sorted descending.

    Returns ``(columns, scores)`` of shape ``(rows, k)``.
    """
    k = min(k, scores.shape[1])
    if k == scores.shape[1]:
        part = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        return part, np.take_along_axis(scores, part, axis=1)
    part = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    part_scores = np.take_along_axis(scores, part, axis=1)
    order = np.argsort(-part_scores, axis=1, kind="stable")
    cols = np.take_along_axis(part, order, axis=1)
    return cols, np.take_along_axis(part_scores, order, axis=1)


class TopKIndex(ABC):
    """Base class: wraps one ``(num_items, dim)`` database matrix."""

    #: Registry key, e.g. ``"exact"``.
    kind: str = "base"

    def __init__(self, database: np.ndarray) -> None:
        if database.ndim != 2 or database.shape[0] == 0:
            raise ParameterError(
                f"index database must be a non-empty 2-D matrix, "
                f"got shape {database.shape}")
        self._db = database

    @property
    def num_items(self) -> int:
        return self._db.shape[0]

    @property
    def dim(self) -> int:
        return self._db.shape[1]

    # ------------------------------------------------------------------
    def search(self, queries: np.ndarray, k: int,
               ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` database rows per query row, by inner product.

        ``queries`` is ``(m, dim)``; returns ``(indices, scores)`` of
        shape ``(m, min(k, num_items))`` — a database smaller than ``k``
        narrows the result — with each row sorted by descending score.
        Within that width, slots a backend cannot fill (an IVF probe set
        smaller than ``k``) hold index ``-1`` and score ``-inf``.
        """
        queries = np.atleast_2d(np.asarray(queries))
        if queries.shape[1] != self.dim:
            raise ParameterError(
                f"query dim {queries.shape[1]} != index dim {self.dim}")
        if k < 1:
            raise ParameterError("k must be >= 1")
        return self._search(queries, min(k, self.num_items))

    @abstractmethod
    def _search(self, queries: np.ndarray, k: int,
                ) -> tuple[np.ndarray, np.ndarray]:
        """Backend implementation; ``k <= num_items`` is guaranteed."""


class ExactIndex(TopKIndex):
    """Blocked brute-force maximum-inner-product search."""

    kind = "exact"

    def __init__(self, database: np.ndarray, *,
                 block_rows: int = 65536) -> None:
        super().__init__(database)
        if block_rows < 1:
            raise ParameterError("block_rows must be >= 1")
        self.block_rows = int(block_rows)

    def _search(self, queries, k):
        n = self.num_items
        if n <= self.block_rows:
            return _topk_rows(queries @ self._db.T, k)
        # Running top-k merge over database blocks: memory stays
        # O(m * (block_rows + k)) regardless of n.
        best_ids = None
        best_scores = None
        for lo in range(0, n, self.block_rows):
            hi = min(lo + self.block_rows, n)
            block_scores = queries @ self._db[lo:hi].T
            cols, scores = _topk_rows(block_scores, k)
            ids = cols + lo
            if best_ids is None:
                best_ids, best_scores = ids, scores
                continue
            merged_scores = np.hstack([best_scores, scores])
            merged_ids = np.hstack([best_ids, ids])
            pos, best_scores = _topk_rows(merged_scores, k)
            best_ids = np.take_along_axis(merged_ids, pos, axis=1)
        return best_ids, best_scores


class IVFIndex(TopKIndex):
    """Coarse-quantized (inverted file) approximate index.

    The database is clustered once at build time; queries probe the
    ``nprobe`` closest clusters by centroid inner product. With
    ``num_lists ~ sqrt(n)`` a probe visits roughly
    ``nprobe / num_lists`` of the database, which is where the speedup
    over brute force comes from.

    Build-time options: ``train_size`` caps how many rows k-means sees
    (sampled without replacement); ``copy_vectors`` controls whether the
    index keeps a contiguous per-list copy of the vectors (fastest) or
    only the row-id lists, gathering vectors from the database at query
    time (no extra memory). The default is ``None``: copy for in-heap
    databases, gather for mmap'd ones — an mmap store's whole point is
    that workers share pages instead of each holding a private copy.
    """

    kind = "ivf"

    def __init__(self, database: np.ndarray, *, num_lists: int | None = None,
                 nprobe: int | None = None, train_size: int = 20000,
                 kmeans_iters: int = 25, copy_vectors: bool | None = None,
                 seed: int | None = 0) -> None:
        super().__init__(database)
        n = self.num_items
        if num_lists is None:
            num_lists = max(1, int(np.sqrt(n)))
        num_lists = min(int(num_lists), n)
        if num_lists < 1:
            raise ParameterError("num_lists must be >= 1")
        if nprobe is None:
            nprobe = max(1, num_lists // 8)
        self.num_lists = num_lists
        self.nprobe = min(int(nprobe), num_lists)
        if self.nprobe < 1:
            raise ParameterError("nprobe must be >= 1")

        rng = ensure_rng(seed)
        # k-means needs at least one training row per list
        train_size = max(int(train_size), num_lists)
        if n > train_size:
            rows = rng.choice(n, size=train_size, replace=False)
            rows.sort()
            # fancy-index first so an mmap'd database is never fully
            # materialized just to train the quantizer
            sample = np.asarray(database[rows], dtype=np.float64)
        else:
            sample = np.asarray(database, dtype=np.float64)
        _, self._centroids = kmeans(sample, num_lists,
                                    max_iters=kmeans_iters, seed=rng)
        assign = self._assign(database)
        order = np.argsort(assign, kind="stable")
        counts = np.bincount(assign, minlength=num_lists)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._ids = order.astype(np.int64)
        if copy_vectors is None:
            copy_vectors = not isinstance(database, np.memmap)
        # Contiguous per-list vector storage makes each probe a cheap
        # slice instead of a fancy-index gather into the mmap.
        self._vecs = np.ascontiguousarray(database[order]) \
            if copy_vectors else None

    def _assign(self, matrix: np.ndarray, block: int = 65536) -> np.ndarray:
        """Nearest centroid (L2) for every row, computed in blocks."""
        c_sq = (self._centroids * self._centroids).sum(axis=1)
        out = np.empty(len(matrix), dtype=np.int64)
        for lo in range(0, len(matrix), block):
            rows = np.asarray(matrix[lo:lo + block], dtype=np.float64)
            d2 = c_sq[None, :] - 2.0 * (rows @ self._centroids.T)
            out[lo:lo + block] = d2.argmin(axis=1)
        return out

    def _search(self, queries, k):
        m = len(queries)
        probe_lists, _ = _topk_rows(
            np.asarray(queries, dtype=np.float64) @ self._centroids.T,
            self.nprobe)
        indices = np.full((m, k), -1, dtype=np.int64)
        scores = np.full((m, k), -np.inf)
        for i in range(m):
            spans = [(self._offsets[c], self._offsets[c + 1])
                     for c in probe_lists[i]]
            cand_ids = np.concatenate(
                [self._ids[lo:hi] for lo, hi in spans])
            if len(cand_ids) == 0:
                continue
            if self._vecs is not None:
                cand_vecs = np.vstack([self._vecs[lo:hi] for lo, hi in spans])
            else:
                cand_vecs = self._db[cand_ids]
            cand_scores = cand_vecs @ queries[i]
            kk = min(k, len(cand_ids))
            if kk == len(cand_ids):
                top = np.argsort(-cand_scores, kind="stable")
            else:
                top = np.argpartition(-cand_scores, kk - 1)[:kk]
                top = top[np.argsort(-cand_scores[top], kind="stable")]
            indices[i, :kk] = cand_ids[top]
            scores[i, :kk] = cand_scores[top]
        return indices, scores


#: kind name -> index class, for the engine/CLI factory.
INDEX_KINDS: dict[str, type[TopKIndex]] = {
    ExactIndex.kind: ExactIndex,
    IVFIndex.kind: IVFIndex,
}


def build_index(database: np.ndarray, kind: str = "exact",
                **options) -> TopKIndex:
    """Instantiate an index backend by name (``"exact"`` or ``"ivf"``)."""
    try:
        cls = INDEX_KINDS[kind]
    except KeyError:
        raise ParameterError(
            f"unknown index kind {kind!r}; known: {sorted(INDEX_KINDS)}"
            ) from None
    return cls(database, **options)
