"""Memory-mapped on-disk embedding store.

The ``.npz`` bundles written by :func:`repro.io.save_embeddings` are
compressed archives: loading one decompresses every matrix into fresh
memory, once per process. That is fine for offline evaluation but wrong
for serving, where a multi-million-node matrix should (a) load lazily,
(b) be shared read-only across worker processes by the page cache, and
(c) never be copied just to answer a query.

An :class:`EmbeddingStore` is a directory of raw ``.npy`` files plus a
JSON manifest. Matrices are opened with ``numpy``'s ``mmap_mode="r"``,
so the OS pages them in on demand and shares the pages between every
worker that opens the same store. The store exposes the same attribute
surface as :class:`repro.io.EmbeddingBundle` (``name``, ``directional``,
``embedding_`` / ``forward_`` / ``backward_``, ``metadata`` and the
scoring methods), so anything that accepts a bundle accepts a store.

**Versioned roots.** A streaming pipeline re-exports continuously, and
a reader must never observe a half-written matrix set. Rather than
mutate a live store, :func:`publish_version` writes each export into an
immutable ``v000N/`` subdirectory of a *versioned root* and then
atomically renames a one-line ``CURRENT`` pointer file onto the new
version — the classic immutable-segment design. Readers resolve the
pointer with :func:`open_current`; a reader that already mmap'd an
older version keeps serving from it untouched (on POSIX even after the
directory is pruned, until it drops the mapping).
"""

from __future__ import annotations

import json
import shutil
import threading
from pathlib import Path

import numpy as np

from ..embedder import ScoringMixin, has_custom_scoring
from ..errors import (ParameterError, ReproError, StalePointerError,
                      StoreCorruptError, StoreError)
from ..io import validate_embedding_matrices

__all__ = ["EmbeddingStore", "export_store", "MANIFEST_NAME",
           "SHARDS_NAME", "CURRENT_NAME", "publish_version",
           "open_current", "open_store", "list_versions"]

#: File name of the JSON manifest inside a store directory.
MANIFEST_NAME = "store.json"

#: File name of the shard map inside a sharded store root (see
#: :mod:`repro.serving.sharding`; named here so the versioned-root
#: machinery can recognize sharded versions without importing it).
SHARDS_NAME = "shards.json"

#: Pointer file naming the live version inside a versioned root.
CURRENT_NAME = "CURRENT"

_FORMAT_VERSION = 1

_VERSION_PREFIX = "v"
_VERSION_DIGITS = 6

# numpy parses .npy headers with ast.literal_eval, and CPython 3.11's
# AST constructor is not thread-safe (SystemError: "AST constructor
# recursion depth mismatch" under concurrent parses; fixed in 3.12).
# Store opens happen from many serving threads at once, so the header
# parse is serialized; the mmap'd data path is untouched.
_NPY_LOAD_LOCK = threading.Lock()


def _matrix_files(directional: bool) -> tuple[str, ...]:
    return ("forward", "backward") if directional else ("embedding",)


def _atomic_save(path: Path, array: np.ndarray) -> None:
    """Write ``array`` to ``path`` via a temp file + rename.

    Saving directly would open the target with ``'wb'`` and truncate
    it — fatal when ``array`` is an mmap view of that very file (e.g.
    re-exporting a store onto its own directory). The rename swaps
    inodes, so the source mmap stays readable until the write finishes.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.save(fh, array)
    tmp.replace(path)


def export_store(source, root: str | Path, *,
                 metadata: dict | None = None,
                 version: int | None = None) -> "EmbeddingStore":
    """Write a fitted embedder / loaded bundle as an mmap-able store.

    ``source`` is anything with ``name``, ``directional`` and the fitted
    matrices (an :class:`~repro.embedder.Embedder`, an
    :class:`~repro.io.EmbeddingBundle`, or another store). ``version``
    stamps the manifest with a monotonically increasing export number
    (what :func:`publish_version` manages for you). Returns the freshly
    opened store.
    """
    root = Path(root)
    if version is not None and (int(version) != version or version < 1):
        raise ParameterError(
            f"version must be a positive integer or None, got {version!r}")
    directional = bool(getattr(source, "directional", False))
    name = getattr(source, "name", type(source).__name__)
    matrices = {key: getattr(source, f"{key}_", None)
                for key in _matrix_files(directional)}
    validate_embedding_matrices(name, directional=directional, **{
        "forward": matrices.get("forward"),
        "backward": matrices.get("backward"),
        "embedding": matrices.get("embedding")})

    root.mkdir(parents=True, exist_ok=True)
    meta = dict(getattr(source, "metadata", None) or {})
    meta.update(metadata or {})
    extras = []
    for extra in ("w_fwd", "w_bwd"):
        value = meta.pop(extra, None)
        if value is None:
            value = getattr(source, f"{extra}_", None)
        if value is not None:
            _atomic_save(root / f"{extra}.npy", np.asarray(value))
            extras.append(extra)

    first = next(iter(matrices.values()))
    for key, matrix in matrices.items():
        _atomic_save(root / f"{key}.npy", np.ascontiguousarray(matrix))
    manifest = {
        "format": _FORMAT_VERSION,
        "name": name,
        "directional": directional,
        "version": int(version) if version is not None else None,
        "lp_scoring": getattr(source, "lp_scoring", "inner"),
        "custom_scoring": has_custom_scoring(source),
        "num_nodes": int(first.shape[0]),
        "dim": int(sum(m.shape[1] for m in matrices.values())),
        "dtype": str(first.dtype),
        "matrices": sorted(matrices),
        "extras": extras,
        "metadata": meta,
    }
    tmp = root / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    tmp.replace(root / MANIFEST_NAME)
    return EmbeddingStore.open(root)


# ----------------------------------------------------------------------
# versioned store roots
# ----------------------------------------------------------------------

def _version_dir_name(version: int) -> str:
    return f"{_VERSION_PREFIX}{version:0{_VERSION_DIGITS}d}"


def list_versions(root: str | Path) -> list[int]:
    """Version numbers present in a versioned root, ascending.

    A version directory may hold either a flat store (``store.json``)
    or a sharded store root (``shards.json``).
    """
    root = Path(root)
    if not root.is_dir():
        return []
    versions = []
    for child in root.iterdir():
        name = child.name
        if (child.is_dir() and name.startswith(_VERSION_PREFIX)
                and name[len(_VERSION_PREFIX):].isdigit()
                and ((child / MANIFEST_NAME).is_file()
                     or (child / SHARDS_NAME).is_file())):
            versions.append(int(name[len(_VERSION_PREFIX):]))
    return sorted(versions)


def open_store(path: str | Path, *, mmap: bool = True):
    """Open a store directory, flat or sharded, by sniffing its manifest.

    A directory holding ``shards.json`` opens as a
    :class:`~repro.serving.sharding.ShardedEmbeddingStore`; one holding
    ``store.json`` opens as a flat :class:`EmbeddingStore`.
    """
    path = Path(path)
    if (path / SHARDS_NAME).is_file():
        from .sharding import ShardedEmbeddingStore   # lazy: no cycle
        return ShardedEmbeddingStore.open(path, mmap=mmap)
    return EmbeddingStore.open(path, mmap=mmap)


def publish_version(root: str | Path, source, *,
                    metadata: dict | None = None,
                    keep: int | None = None,
                    shards: int | None = None):
    """Export ``source`` as the next version of a versioned store root.

    Writes a complete store into ``root/v000N/`` (N = one past the
    newest existing version), then atomically renames the ``CURRENT``
    pointer onto it — a reader resolving :func:`open_current` sees
    either the old complete version or the new complete version, never
    a torn directory. ``keep`` prunes all but the newest ``keep``
    versions afterwards (the freshly published one is never pruned).
    ``shards`` publishes the version as a sharded store root of that
    many node-range shards instead of one flat store; flat and sharded
    versions may coexist under one root, and a hot-swapping reader
    follows whichever layout ``CURRENT`` lands on. Returns the store
    opened at its versioned path.
    """
    root = Path(root)
    if keep is not None and (int(keep) != keep or keep < 1):
        raise ParameterError(
            f"keep must be a positive integer or None, got {keep!r}")
    root.mkdir(parents=True, exist_ok=True)
    existing = list_versions(root)
    version = (existing[-1] + 1) if existing else 1
    if shards is not None:
        # shards=1 still publishes a (one-shard) sharded root, matching
        # shard_store / `repro-serve export --shards 1`; shard_store
        # validates the count, so shards=0 raises instead of silently
        # degrading to a flat store.
        from .sharding import shard_store   # lazy: no cycle
        store = shard_store(source, root / _version_dir_name(version),
                            num_shards=shards, metadata=metadata,
                            version=version)
    else:
        store = export_store(source, root / _version_dir_name(version),
                             metadata=metadata, version=version)
    tmp = root / (CURRENT_NAME + ".tmp")
    tmp.write_text(_version_dir_name(version) + "\n", encoding="utf-8")
    tmp.replace(root / CURRENT_NAME)
    if keep is not None:
        for old in existing[:-(keep - 1)] if keep > 1 else existing:
            vdir = root / _version_dir_name(old)
            # Drop the commit-point manifest first: a reader racing the
            # prune then sees the version as *absent* (and retries via
            # open_current) instead of tripping over a half-deleted
            # directory that still looks committed.
            for commit_file in (MANIFEST_NAME, SHARDS_NAME):
                try:
                    (vdir / commit_file).unlink()
                except OSError:
                    pass
            shutil.rmtree(vdir, ignore_errors=True)
    return store


def open_current(root: str | Path, *, mmap: bool = True):
    """Open the version the ``CURRENT`` pointer of ``root`` names.

    Between reading the pointer and opening the store, a concurrent
    :func:`publish_version` with an aggressive ``keep`` may prune the
    named version; the open is retried against the re-read pointer so a
    reader racing the publisher lands on the fresh version instead of
    crashing on the vanished one. A pointer that *stays* aimed at a
    version which does not exist is not churn but damage, and raises
    :class:`~repro.errors.StalePointerError` immediately. Sharded
    versions open as sharded stores (see :func:`open_store`).
    """
    root = Path(root)
    last_exc: Exception | None = None
    last_target: str | None = None
    for _ in range(3):
        pointer = root / CURRENT_NAME
        if not pointer.is_file():
            raise StoreError(f"not a versioned store root: {root} "
                             f"(missing {CURRENT_NAME}; use publish_version)")
        target = pointer.read_text(encoding="utf-8").strip()
        if not target or "/" in target or "\\" in target or ".." in target:
            raise StoreCorruptError(
                f"corrupt {CURRENT_NAME} pointer in {root}: {target!r}")
        if not (root / target).is_dir() and target == last_target:
            # Re-read the same pointer and the version still is not
            # there: nobody is publishing, the pointer itself is stale.
            raise StalePointerError(
                f"{CURRENT_NAME} in {root} names version {target!r}, which "
                f"does not exist (have {list_versions(root)}); republish or "
                f"point {CURRENT_NAME} at a surviving version"
                ) from last_exc
        try:
            return open_store(root / target, mmap=mmap)
        except (ReproError, OSError) as exc:
            if ((root / target / MANIFEST_NAME).is_file()
                    or (root / target / SHARDS_NAME).is_file()):
                raise        # version is there; the failure is real
            last_exc = exc   # pruned under us: re-resolve the pointer
            last_target = target
    raise StalePointerError(
        f"version named by {CURRENT_NAME} in {root} kept vanishing; "
        f"is the publisher pruning with keep=1 under heavy churn?"
        ) from last_exc


class EmbeddingStore(ScoringMixin):
    """A read-only, lazily loaded embedding matrix set on disk.

    Inherits the bundle/embedder scoring surface from
    :class:`~repro.embedder.ScoringMixin`, so stores plug into the
    evaluation tasks and the query engine unchanged.
    """

    def __init__(self, root: Path, manifest: dict, arrays: dict) -> None:
        self.root = Path(root)
        self.name: str = manifest["name"]
        self.directional: bool = manifest["directional"]
        self.lp_scoring: str = manifest.get("lp_scoring", "inner")
        self.custom_scoring: bool = bool(manifest.get("custom_scoring",
                                                      False))
        self.metadata: dict = dict(manifest.get("metadata", {}))
        self._manifest = manifest
        self.embedding_ = arrays.get("embedding")
        self.forward_ = arrays.get("forward")
        self.backward_ = arrays.get("backward")
        for extra in manifest.get("extras", ()):
            self.metadata[extra] = arrays[extra]

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path, *, mmap: bool = True) -> "EmbeddingStore":
        """Open a store directory; matrices are mmap'd unless ``mmap=False``."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"not an embedding store: {root} "
                             f"(missing {MANIFEST_NAME})")
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreCorruptError(
                f"corrupt store manifest {manifest_path}: {exc}; "
                f"the export was likely interrupted - re-export the store"
                ) from exc
        if manifest.get("format") != _FORMAT_VERSION:
            raise StoreError(f"unsupported store format "
                             f"{manifest.get('format')!r} in {manifest_path}")
        mode = "r" if mmap else None
        arrays: dict[str, np.ndarray] = {}
        for key in list(manifest["matrices"]) + list(manifest.get("extras", ())):
            path = root / f"{key}.npy"
            if not path.is_file():
                raise StoreCorruptError(
                    f"store {root} is missing {key}.npy; the export was "
                    f"likely interrupted - re-export the store")
            try:
                with _NPY_LOAD_LOCK:
                    arrays[key] = np.load(path, mmap_mode=mode)
            except (ValueError, OSError) as exc:
                # e.g. a truncated file whose npy header promises more
                # bytes than the file holds - np.load/mmap refuses it
                raise StoreCorruptError(
                    f"store {root}: {key}.npy is truncated or not a valid "
                    f".npy file ({exc}); restore it from a backup or "
                    f"re-export the store") from exc
        validate_embedding_matrices(
            manifest["name"], directional=manifest["directional"],
            embedding=arrays.get("embedding"),
            forward=arrays.get("forward"), backward=arrays.get("backward"))
        mats = [arrays[key] for key in manifest["matrices"]]
        if (any(m.shape[0] != manifest["num_nodes"] for m in mats)
                or sum(m.shape[1] for m in mats) != manifest["dim"]
                or str(mats[0].dtype) != manifest["dtype"]):
            raise StoreCorruptError(
                f"store {root} manifest disagrees with its matrices: "
                f"manifest says {manifest['num_nodes']} nodes x "
                f"{manifest['dim']} dims ({manifest['dtype']}), files hold "
                f"{[tuple(m.shape) for m in mats]} ({mats[0].dtype}) - "
                f"likely a partially overwritten store")
        return cls(root, manifest, arrays)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self._manifest["num_nodes"])

    @property
    def dim(self) -> int:
        return int(self._manifest["dim"])

    @property
    def version(self) -> int | None:
        """Export version stamped by :func:`publish_version` (else None)."""
        value = self._manifest.get("version")
        return int(value) if value is not None else None

    @property
    def mmapped(self) -> bool:
        """Whether the matrices are memory-mapped (vs. heap copies)."""
        first = self.forward_ if self.directional else self.embedding_
        return isinstance(first, np.memmap)

    def shard(self, root: str | Path, num_shards: int, *,
              metadata: dict | None = None):
        """Re-export this store as ``num_shards`` node-range shards.

        The single-file -> sharded migration path: writes a
        :class:`~repro.serving.sharding.ShardedEmbeddingStore` under
        ``root`` and returns it opened. Because the matrices here are
        mmap'd, each shard is written from a row-slice view without
        materializing the full matrix.
        """
        from .sharding import shard_store   # lazy: no cycle
        return shard_store(self, root, num_shards=num_shards,
                           metadata=metadata)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EmbeddingStore(name={self.name!r}, n={self.num_nodes}, "
                f"dim={self.dim}, mmapped={self.mmapped})")
