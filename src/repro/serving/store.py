"""Memory-mapped on-disk embedding store.

The ``.npz`` bundles written by :func:`repro.io.save_embeddings` are
compressed archives: loading one decompresses every matrix into fresh
memory, once per process. That is fine for offline evaluation but wrong
for serving, where a multi-million-node matrix should (a) load lazily,
(b) be shared read-only across worker processes by the page cache, and
(c) never be copied just to answer a query.

An :class:`EmbeddingStore` is a directory of raw ``.npy`` files plus a
JSON manifest. Matrices are opened with ``numpy``'s ``mmap_mode="r"``,
so the OS pages them in on demand and shares the pages between every
worker that opens the same store. The store exposes the same attribute
surface as :class:`repro.io.EmbeddingBundle` (``name``, ``directional``,
``embedding_`` / ``forward_`` / ``backward_``, ``metadata`` and the
scoring methods), so anything that accepts a bundle accepts a store.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..embedder import ScoringMixin, has_custom_scoring
from ..errors import ReproError
from ..io import validate_embedding_matrices

__all__ = ["EmbeddingStore", "export_store", "MANIFEST_NAME"]

#: File name of the JSON manifest inside a store directory.
MANIFEST_NAME = "store.json"

_FORMAT_VERSION = 1


def _matrix_files(directional: bool) -> tuple[str, ...]:
    return ("forward", "backward") if directional else ("embedding",)


def _atomic_save(path: Path, array: np.ndarray) -> None:
    """Write ``array`` to ``path`` via a temp file + rename.

    Saving directly would open the target with ``'wb'`` and truncate
    it — fatal when ``array`` is an mmap view of that very file (e.g.
    re-exporting a store onto its own directory). The rename swaps
    inodes, so the source mmap stays readable until the write finishes.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.save(fh, array)
    tmp.replace(path)


def export_store(source, root: str | Path, *,
                 metadata: dict | None = None) -> "EmbeddingStore":
    """Write a fitted embedder / loaded bundle as an mmap-able store.

    ``source`` is anything with ``name``, ``directional`` and the fitted
    matrices (an :class:`~repro.embedder.Embedder`, an
    :class:`~repro.io.EmbeddingBundle`, or another store). Returns the
    freshly opened store.
    """
    root = Path(root)
    directional = bool(getattr(source, "directional", False))
    name = getattr(source, "name", type(source).__name__)
    matrices = {key: getattr(source, f"{key}_", None)
                for key in _matrix_files(directional)}
    validate_embedding_matrices(name, directional=directional, **{
        "forward": matrices.get("forward"),
        "backward": matrices.get("backward"),
        "embedding": matrices.get("embedding")})

    root.mkdir(parents=True, exist_ok=True)
    meta = dict(getattr(source, "metadata", None) or {})
    meta.update(metadata or {})
    extras = []
    for extra in ("w_fwd", "w_bwd"):
        value = meta.pop(extra, None)
        if value is None:
            value = getattr(source, f"{extra}_", None)
        if value is not None:
            _atomic_save(root / f"{extra}.npy", np.asarray(value))
            extras.append(extra)

    first = next(iter(matrices.values()))
    for key, matrix in matrices.items():
        _atomic_save(root / f"{key}.npy", np.ascontiguousarray(matrix))
    manifest = {
        "format": _FORMAT_VERSION,
        "name": name,
        "directional": directional,
        "lp_scoring": getattr(source, "lp_scoring", "inner"),
        "custom_scoring": has_custom_scoring(source),
        "num_nodes": int(first.shape[0]),
        "dim": int(sum(m.shape[1] for m in matrices.values())),
        "dtype": str(first.dtype),
        "matrices": sorted(matrices),
        "extras": extras,
        "metadata": meta,
    }
    tmp = root / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
    tmp.replace(root / MANIFEST_NAME)
    return EmbeddingStore.open(root)


class EmbeddingStore(ScoringMixin):
    """A read-only, lazily loaded embedding matrix set on disk.

    Inherits the bundle/embedder scoring surface from
    :class:`~repro.embedder.ScoringMixin`, so stores plug into the
    evaluation tasks and the query engine unchanged.
    """

    def __init__(self, root: Path, manifest: dict, arrays: dict) -> None:
        self.root = Path(root)
        self.name: str = manifest["name"]
        self.directional: bool = manifest["directional"]
        self.lp_scoring: str = manifest.get("lp_scoring", "inner")
        self.custom_scoring: bool = bool(manifest.get("custom_scoring",
                                                      False))
        self.metadata: dict = dict(manifest.get("metadata", {}))
        self._manifest = manifest
        self.embedding_ = arrays.get("embedding")
        self.forward_ = arrays.get("forward")
        self.backward_ = arrays.get("backward")
        for extra in manifest.get("extras", ()):
            self.metadata[extra] = arrays[extra]

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root: str | Path, *, mmap: bool = True) -> "EmbeddingStore":
        """Open a store directory; matrices are mmap'd unless ``mmap=False``."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ReproError(f"not an embedding store: {root} "
                             f"(missing {MANIFEST_NAME})")
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"corrupt store manifest {manifest_path}: {exc}"
                             ) from exc
        if manifest.get("format") != _FORMAT_VERSION:
            raise ReproError(f"unsupported store format "
                             f"{manifest.get('format')!r} in {manifest_path}")
        mode = "r" if mmap else None
        arrays: dict[str, np.ndarray] = {}
        for key in list(manifest["matrices"]) + list(manifest.get("extras", ())):
            path = root / f"{key}.npy"
            if not path.is_file():
                raise ReproError(f"store {root} is missing {key}.npy")
            arrays[key] = np.load(path, mmap_mode=mode)
        validate_embedding_matrices(
            manifest["name"], directional=manifest["directional"],
            embedding=arrays.get("embedding"),
            forward=arrays.get("forward"), backward=arrays.get("backward"))
        mats = [arrays[key] for key in manifest["matrices"]]
        if (any(m.shape[0] != manifest["num_nodes"] for m in mats)
                or sum(m.shape[1] for m in mats) != manifest["dim"]
                or str(mats[0].dtype) != manifest["dtype"]):
            raise ReproError(
                f"store {root} manifest disagrees with its matrices: "
                f"manifest says {manifest['num_nodes']} nodes x "
                f"{manifest['dim']} dims ({manifest['dtype']}), files hold "
                f"{[tuple(m.shape) for m in mats]} ({mats[0].dtype}) - "
                f"likely a partially overwritten store")
        return cls(root, manifest, arrays)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self._manifest["num_nodes"])

    @property
    def dim(self) -> int:
        return int(self._manifest["dim"])

    @property
    def mmapped(self) -> bool:
        """Whether the matrices are memory-mapped (vs. heap copies)."""
        first = self.forward_ if self.directional else self.embedding_
        return isinstance(first, np.memmap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EmbeddingStore(name={self.name!r}, n={self.num_nodes}, "
                f"dim={self.dim}, mmapped={self.mmapped})")
