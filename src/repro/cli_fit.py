"""``repro-fit``: fit NRP embeddings from an edge list, export for serving.

The offline half of the pipeline in one command::

    repro-fit graph.txt store_dir --dim 128 --workers 4

reads a whitespace ``src dst`` edge-list file, fits :class:`repro.NRP`
(through the chunked engine when ``--chunk-size``/``--workers`` are
given), and writes an mmap-able :class:`repro.serving.EmbeddingStore`
directory that ``repro-serve query`` answers top-k requests from.
Optionally also archives the run as a compressed ``.npz`` bundle
(``--bundle``).

Installed as a console script by ``setup.py``; also runnable as
``python -m repro.cli_fit``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fit",
        description="Fit NRP embeddings from an edge list and export an "
                    "mmap serving store.")
    parser.add_argument("edgelist", help="whitespace 'src dst' edge-list file")
    parser.add_argument("store", help="output store directory")
    parser.add_argument("--directed", action="store_true",
                        help="treat the edge list as directed arcs")
    parser.add_argument("--num-nodes", type=int, default=None,
                        help="node count (default: max id + 1)")
    parser.add_argument("--method", default="nrp",
                        choices=("nrp", "approxppr"),
                        help="embedding method (default nrp)")
    parser.add_argument("--dim", type=int, default=128,
                        help="total embedding dimension k (default 128)")
    parser.add_argument("--alpha", type=float, default=0.15,
                        help="PPR termination probability (default 0.15)")
    parser.add_argument("--ell1", type=int, default=20,
                        help="PPR truncation length (default 20)")
    parser.add_argument("--ell2", type=int, default=10,
                        help="reweighting epochs, nrp only (default 10)")
    parser.add_argument("--eps", type=float, default=0.2,
                        help="SVD error target (default 0.2)")
    parser.add_argument("--lam", type=float, default=10.0,
                        help="reweighting regularization (default 10)")
    parser.add_argument("--svd", default="bksvd",
                        choices=("bksvd", "rsvd", "exact"),
                        help="factorization backend (default bksvd)")
    parser.add_argument("--update-mode", default="sequential",
                        choices=("sequential", "jacobi"),
                        help="reweighting sweep mode (default sequential)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="rows per chunk for the chunked fit engine")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for chunked stages "
                             "(default 1; implies the chunked engine "
                             "when > 1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default 0)")
    parser.add_argument("--name", default=None,
                        help="store name (default: the method's name)")
    parser.add_argument("--bundle", default=None, metavar="PATH",
                        help="also save a compressed .npz bundle here")
    obs.add_observability_flags(parser)
    return parser


def _build_model(args):
    from .core import NRP, ApproxPPREmbedder
    if args.method == "nrp":
        return NRP(dim=args.dim, alpha=args.alpha, ell1=args.ell1,
                   ell2=args.ell2, eps=args.eps, lam=args.lam, svd=args.svd,
                   update_mode=args.update_mode, seed=args.seed,
                   chunk_size=args.chunk_size, workers=args.workers)
    return ApproxPPREmbedder(dim=args.dim, alpha=args.alpha, ell1=args.ell1,
                             eps=args.eps, svd=args.svd, seed=args.seed,
                             chunk_size=args.chunk_size, workers=args.workers)


def run_fit(args) -> dict:
    """Read, fit, export; returns the summary record printed by main()."""
    from .graph.build import read_edge_list
    from .io import save_embeddings

    start = time.perf_counter()
    graph = read_edge_list(args.edgelist, directed=args.directed,
                           num_nodes=args.num_nodes)
    read_seconds = time.perf_counter() - start
    if graph.num_nodes == 0:
        raise ReproError(f"edge list {args.edgelist!r} contains no nodes")

    model = _build_model(args)
    start = time.perf_counter()
    model.fit(graph)
    fit_seconds = time.perf_counter() - start

    if args.name is not None:
        model.name = args.name
    fit_meta = {"fit_seconds": round(fit_seconds, 3),
                "num_nodes": graph.num_nodes, "num_edges": graph.num_edges,
                "directed": graph.directed, "seed": args.seed,
                "update_mode": args.update_mode,
                "chunk_size": args.chunk_size, "workers": args.workers}
    store = model.export_store(args.store, metadata=fit_meta)
    if args.bundle:
        save_embeddings(model, args.bundle, metadata=fit_meta)
    return {"store": str(store.root), "name": store.name,
            "num_nodes": graph.num_nodes, "num_edges": graph.num_edges,
            "dim": store.dim, "read_seconds": round(read_seconds, 3),
            "fit_seconds": round(fit_seconds, 3),
            "bundle": args.bundle}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs.setup_observability(args)
    try:
        summary = run_fit(args)
    except (ReproError, OSError) as exc:
        print(f"repro-fit: error: {exc}", file=sys.stderr)
        return 2
    obs.dump_metrics(args, extra={"summary": summary})
    print(json.dumps(summary))
    return 0


if __name__ == "__main__":    # pragma: no cover - exercised via main()
    sys.exit(main())
