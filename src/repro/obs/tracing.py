"""Nested wall-clock trace trees: the ``Span`` / ``trace()`` API.

A span measures one block of work; spans opened while another span is
live in the same *context* nest under it, so a fit instrumented as

::

    with obs.trace("nrp.fit", nodes=graph.num_nodes):
        with obs.trace("approx_ppr.svd"):
            ...
        with obs.trace("nrp.reweighting"):
            ...

produces one root tree whose children carry per-phase durations — the
per-partition / per-phase breakdown the distributed-PPR literature
tunes from. Each *finished* span also feeds the metrics registry
(``span_total`` counter, ``span_seconds`` histogram, keyed by span name
plus the optional ``labels=``), so span *counts* and latency quantiles
are queryable without walking trees; the trees themselves (most recent
roots, bounded) ride along in JSON snapshots.

Nesting is tracked through a :mod:`contextvars` variable, **not** a
thread-local stack. The difference only shows up under concurrency,
where it is the whole point:

* two coroutines interleaving on one event loop each run in their own
  :class:`contextvars.Context` (asyncio copies the context per task),
  so their spans build two independent trees instead of mis-nesting
  into one — the serving tier handles many requests per loop thread
  and each request must own its tree;
* a worker thread starts from an empty context, so uninstrumented
  thread pools still report their spans as roots (per-shard fan-out
  spans stay per-shard series);
* a thread pool task that *should* continue a caller's trace opts in
  explicitly by running under a copied context —
  :func:`repro.obs.requestctx.bind` is the one-call helper the HTTP
  tier and the shard router use.

``trace()`` checks :func:`repro.obs.enabled` first and returns a shared
no-op context manager when collection is off — instrumenting a code
path with a span costs one branch when disabled.

Two name spaces on purpose: ``labels`` become metric labels (keep the
cardinality bounded — shard ids, not node ids); ``**attrs`` only ride
on the trace tree and may be anything JSON-serializable.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from contextvars import ContextVar

from . import metrics

__all__ = ["Span", "trace", "current_span"]

_NULL = nullcontext()

#: The innermost live span of the current context (task or thread).
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_span",
                                                 default=None)


class Span:
    """One timed block; a context manager that nests per context."""

    __slots__ = ("name", "labels", "attributes", "children", "error",
                 "started_at", "duration", "_t0", "_parent", "_token")

    def __init__(self, name: str, labels: dict | None = None,
                 attributes: dict | None = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.attributes = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.error: str | None = None
        self.started_at = 0.0
        self.duration = 0.0
        self._t0 = 0.0
        self._parent: Span | None = None
        self._token = None

    # ------------------------------------------------------------------
    def annotate(self, **attrs) -> "Span":
        """Attach attributes to a live span; returns the span."""
        self.attributes.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.error = exc_type.__name__
        # restore the parent even if inner spans leaked (an inner span
        # whose __exit__ never ran must not keep attributing later work
        # to a dead span); a token from another context cannot be
        # reset, so fall back to an explicit set
        token, self._token = self._token, None
        if token is not None:
            try:
                _CURRENT.reset(token)
            except ValueError:     # exited in a different context
                _CURRENT.set(self._parent)
        parent, self._parent = self._parent, None
        registry = metrics.get_registry()
        if parent is not None:
            parent.children.append(self)
        else:
            registry.record_span(self)
        series = {"name": self.name, **self.labels}
        registry.counter("span_total", series).inc()
        registry.histogram("span_seconds", series).observe(self.duration)
        if self.error is not None:
            registry.counter("span_errors_total", series).inc()
        return False

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form of the subtree rooted here."""
        record = {"name": self.name,
                  "duration_seconds": round(self.duration, 9)}
        if self.labels:
            record["labels"] = dict(self.labels)
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.error is not None:
            record["error"] = self.error
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, "
                f"children={len(self.children)})")


def trace(name: str, labels: dict | None = None, **attrs):
    """Open a span named ``name`` (no-op when metrics are disabled).

    Usage::

        with obs.trace("router.search", labels={"kind": "exact"},
                       queries=len(batch)) as span:
            ...
            span.annotate(merged=len(ids))

    ``span`` is ``None`` when collection is disabled, so only code
    already inside an ``if obs.enabled():`` block should rely on it.
    """
    if not metrics.enabled():
        return _NULL
    return Span(name, labels=labels, attributes=attrs)


def current_span() -> Span | None:
    """The innermost live span of this context, if any."""
    return _CURRENT.get()
