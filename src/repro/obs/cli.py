"""Shared ``--log-level`` / ``--metrics-json`` wiring for the CLIs.

Every console script (``repro-fit``, ``repro-stream``, ``repro-serve``)
exposes the same observability surface through three calls:

* :func:`add_observability_flags` — attach the flag group to a parser;
* :func:`setup_observability` — apply the parsed flags (configure the
  package logger, enable metrics collection when a snapshot path was
  requested);
* :func:`dump_metrics` — write the JSON snapshot at exit (no-op when
  ``--metrics-json`` was not given).

Keeping the wiring here means a new CLI gets the whole surface with
three lines and the flags stay spelled identically everywhere.
"""

from __future__ import annotations

import argparse

from ..logging_utils import LOG_LEVELS, configure_logging
from .export import write_snapshot
from .metrics import set_enabled

__all__ = ["add_observability_flags", "setup_observability", "dump_metrics"]


def add_observability_flags(parser: argparse.ArgumentParser,
                            *, interval: bool = False) -> None:
    """Attach the shared observability flag group to ``parser``.

    ``interval=True`` adds ``--metrics-interval`` (a periodic Prometheus
    text dump to stderr — only long-running loops want it).
    """
    group = parser.add_argument_group("observability")
    group.add_argument("--log-level", default=None, choices=LOG_LEVELS,
                       help="configure the 'repro' logger at this level")
    group.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="enable metrics collection and write a JSON "
                            "snapshot here on exit")
    if interval:
        group.add_argument("--metrics-interval", type=float, default=None,
                           metavar="SECONDS",
                           help="enable metrics collection and dump the "
                                "registry in Prometheus text format to "
                                "stderr every SECONDS seconds")


def setup_observability(args: argparse.Namespace) -> bool:
    """Apply parsed observability flags; True if collection was enabled."""
    if getattr(args, "log_level", None):
        configure_logging(args.log_level)
    if (getattr(args, "metrics_json", None)
            or getattr(args, "metrics_interval", None)):
        set_enabled(True)
        return True
    return False


def dump_metrics(args: argparse.Namespace, *,
                 extra: dict | None = None) -> dict | None:
    """Write the ``--metrics-json`` snapshot, if one was requested."""
    path = getattr(args, "metrics_json", None)
    if not path:
        return None
    return write_snapshot(path, extra=extra)
