"""Exporters: Prometheus text exposition and JSON snapshots.

Two consumers, two formats:

* :func:`to_prometheus_text` — the text exposition format scrapers
  (and humans) read: ``# TYPE`` headers, one ``name{labels} value``
  line per series, histograms expanded into cumulative ``_bucket``
  lines with ``le`` labels plus ``_sum``/``_count``;
* :func:`snapshot` / :func:`write_snapshot` — one JSON document with
  every counter/gauge value, histogram summaries (count, sum, min,
  max, p50/p95/p99), and the most recent trace trees — the same
  artifact convention the ``benchmarks/results/*.json`` files use, so
  CI archives metrics next to throughput numbers.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = ["snapshot", "write_snapshot", "to_prometheus_text"]


def _sane(value: float):
    """JSON-safe number (NaN/inf become None; JSON has neither)."""
    if value is None or not math.isfinite(value):
        return None
    return value


def snapshot(registry: MetricsRegistry | None = None, *,
             spans: bool = True) -> dict:
    """One JSON-ready dict describing everything the registry holds."""
    registry = registry or get_registry()
    out: dict = {"generated_at": time.time(),
                 "counters": [], "gauges": [], "histograms": []}
    for metric in registry.series():
        labels = dict(metric.labels)
        if isinstance(metric, Counter):
            out["counters"].append(
                {"name": metric.name, "labels": labels,
                 "value": _sane(metric.value)})
        elif isinstance(metric, Gauge):
            out["gauges"].append(
                {"name": metric.name, "labels": labels,
                 "value": _sane(metric.value)})
        elif isinstance(metric, Histogram):
            pct = metric.percentiles()
            record = {"name": metric.name, "labels": labels,
                      "count": metric.count, "sum": _sane(metric.sum),
                      "p50": _sane(pct["p50"]), "p95": _sane(pct["p95"]),
                      "p99": _sane(pct["p99"])}
            exemplars = metric.exemplars()
            if exemplars:
                record["exemplars"] = exemplars
            out["histograms"].append(record)
    if spans:
        out["traces"] = [span.to_dict() for span in registry.spans()]
    return out


def write_snapshot(path: str | Path,
                   registry: MetricsRegistry | None = None, *,
                   extra: dict | None = None, spans: bool = True) -> dict:
    """Write :func:`snapshot` (plus ``extra`` top-level keys) to ``path``.

    Creates parent directories; returns the written dict.
    """
    record = snapshot(registry, spans=spans)
    if extra:
        record.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return record


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)


def _prom_value(value: float) -> str:
    if value is None or math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        '{}="{}"'.format(
            _prom_name(str(k)),
            str(v).replace("\\", r"\\").replace('"', r"\"")
                  .replace("\n", r"\n"))
        for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _help_text(text: str) -> str:
    """HELP line payload with the exposition format's escapes."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def to_prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format.

    Conformance details the tests pin: counters are ``_total``-suffixed
    (appended when the registry name lacks it), every name gets a
    ``# TYPE`` line and — when any series of the name carries a
    description — a ``# HELP`` line before it, histogram buckets are
    cumulative with monotone ``le`` edges, and the ``+Inf`` bucket
    equals ``_count``.
    """
    registry = registry or get_registry()
    by_name: dict[str, list] = {}
    for metric in registry.series():
        by_name.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(by_name):
        series = by_name[name]
        kind = series[0].kind
        prom = _prom_name(name)
        if kind == "counter" and not prom.endswith("_total"):
            prom += "_total"
        description = next((m.description for m in series
                            if m.description), None)
        if description:
            lines.append(f"# HELP {prom} {_help_text(description)}")
        lines.append(f"# TYPE {prom} {kind}")
        for metric in series:
            labels = dict(metric.labels)
            if kind in ("counter", "gauge"):
                lines.append(f"{prom}{_prom_labels(labels)} "
                             f"{_prom_value(metric.value)}")
                continue
            counts = metric.counts()
            cum = 0
            for i, edge in enumerate(metric.edges):
                cum += int(counts[i])
                lines.append(
                    f"{prom}_bucket"
                    f"{_prom_labels(labels, {'le': _prom_value(edge)})} "
                    f"{cum}")
            cum += int(counts[-1])
            lines.append(f"{prom}_bucket"
                         f"{_prom_labels(labels, {'le': '+Inf'})} {cum}")
            lines.append(f"{prom}_sum{_prom_labels(labels)} "
                         f"{_prom_value(metric.sum)}")
            lines.append(f"{prom}_count{_prom_labels(labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
