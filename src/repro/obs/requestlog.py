"""Structured request logs and the recent-trace ring.

Two request-granular consumers sit downstream of the serving tier's
metrics (which are aggregates) and trace trees (which are samples):

* :class:`RequestLogger` — one JSON object per request, machine-first:
  route, status, duration, trace id, queue wait, batch size, shed
  reason. Lines are **rate-bounded** (token bucket, ``max_per_second``)
  so an overload that sheds 50k requests/s does not turn the logger
  into a second outage; dropped lines are counted (and exported as the
  ``access_log_dropped_total`` metric when collection is on) rather
  than silently lost. Writes are buffered — call :meth:`flush` on
  drain paths (the ``repro-serve serve`` SIGTERM handler does) and
  :meth:`close` when done.

* :class:`TraceRing` — a bounded ring of recent *sampled* request
  records (identity + the full span tree as JSON), filterable by
  route, status, and minimum duration. This is what the HTTP tier's
  ``/debug/traces`` endpoint serves: "show me the slow ones" without
  a tracing backend deployment.

Both are dependency-free and thread-safe; neither touches the metrics
registry except to count drops.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque

from . import metrics

__all__ = ["RequestLogger", "TraceRing"]


class RequestLogger:
    """Rate-bounded, buffered JSON-lines access logger.

    ``stream`` is any text file object (a real file, ``sys.stderr``, an
    ``io.StringIO`` in tests). ``max_per_second`` bounds the sustained
    line rate (a burst of up to ``burst`` lines passes before the
    bucket gates); ``buffer_lines`` bounds how many formatted lines are
    held before an automatic flush, so a crash loses at most that many.
    """

    def __init__(self, stream, *, max_per_second: float = 500.0,
                 burst: int | None = None, buffer_lines: int = 64,
                 clock=time.monotonic) -> None:
        if max_per_second <= 0:
            raise ValueError("max_per_second must be > 0")
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        self._stream = stream
        self._rate = float(max_per_second)
        self._capacity = float(burst if burst is not None
                               else max(1.0, max_per_second))
        self._tokens = self._capacity
        self._refilled_at = clock()
        self._clock = clock
        self._buffer: list[str] = []
        self._buffer_lines = int(buffer_lines)
        self._lock = threading.Lock()
        self.written = 0
        self.dropped = 0
        self._closed = False

    # ------------------------------------------------------------------
    def log(self, **fields) -> bool:
        """Queue one access-log line; False if rate-limited (dropped).

        ``None``-valued fields are elided so lines stay dense; a
        ``ts`` (unix seconds) field is added when absent. Keys are
        sorted, so lines diff cleanly.
        """
        now = self._clock()
        with self._lock:
            if self._closed:
                return False
            self._tokens = min(self._capacity, self._tokens
                               + (now - self._refilled_at) * self._rate)
            self._refilled_at = now
            if self._tokens < 1.0:
                self.dropped += 1
                if metrics.enabled():
                    metrics.get_registry().counter(
                        "access_log_dropped_total").inc()
                return False
            self._tokens -= 1.0
            record = {k: v for k, v in fields.items() if v is not None}
            record.setdefault("ts", round(time.time(), 6))
            self._buffer.append(json.dumps(record, sort_keys=True,
                                           default=str))
            self.written += 1
            if len(self._buffer) >= self._buffer_lines:
                self._flush_locked()
        return True

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        lines, self._buffer = self._buffer, []
        try:
            self._stream.write("\n".join(lines) + "\n")
            self._stream.flush()
        except ValueError:           # stream already closed under us
            self.dropped += len(lines)

    def flush(self) -> None:
        """Write buffered lines through and flush the stream."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        """Flush and refuse further lines (the stream stays caller-owned
        unless it is one we can safely close, i.e. a plain file)."""
        with self._lock:
            self._flush_locked()
            self._closed = True

    def stats(self) -> dict:
        """Written/dropped/buffered counters (what /debug/vars shows)."""
        with self._lock:
            return {"written": self.written, "dropped": self.dropped,
                    "buffered": len(self._buffer),
                    "max_per_second": self._rate}

    # ------------------------------------------------------------------
    @classmethod
    def to_path(cls, path, **kwargs) -> "RequestLogger":
        """A logger over a newly opened append-mode file at ``path``."""
        stream = open(path, "a", encoding="utf-8", buffering=1)
        logger = cls(stream, **kwargs)
        logger._owns_stream = True   # type: ignore[attr-defined]
        return logger

    def close_stream(self) -> None:
        """Close, then close the stream too if :meth:`to_path` opened it."""
        self.close()
        if getattr(self, "_owns_stream", False) and not isinstance(
                self._stream, io.StringIO):
            self._stream.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RequestLogger(written={self.written}, "
                f"dropped={self.dropped}, rate={self._rate}/s)")


class TraceRing:
    """Bounded ring of recent sampled request traces, filterable.

    Each record is one finished request: identity (trace id, route,
    status), duration, and the root span tree in :meth:`Span.to_dict`
    form. :meth:`list` answers the ``/debug/traces`` query surface —
    newest first, optionally filtered by route, status, and a minimum
    duration in milliseconds.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._ring: deque[dict] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, *, trace_id: str, route: str, status: int,
               duration_seconds: float, tree: dict | None = None,
               **extra) -> dict:
        """Append one finished request's record; returns it."""
        record = {"trace_id": trace_id, "route": route,
                  "status": int(status),
                  "duration_ms": round(duration_seconds * 1e3, 3),
                  "recorded_at": round(time.time(), 6)}
        record.update({k: v for k, v in extra.items() if v is not None})
        if tree is not None:
            record["tree"] = tree
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
        return record

    def list(self, *, route: str | None = None, status: int | None = None,
             min_duration_ms: float = 0.0, limit: int = 32) -> list[dict]:
        """Newest-first matching records (at most ``limit``)."""
        if limit < 1:
            return []
        with self._lock:
            records = list(self._ring)
        out: list[dict] = []
        for record in reversed(records):
            if route is not None and record["route"] != route:
                continue
            if status is not None and record["status"] != status:
                continue
            if record["duration_ms"] < min_duration_ms:
                continue
            out.append(record)
            if len(out) >= limit:
                break
        return out

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceRing(size={len(self._ring)}, recorded={self.recorded})"
