"""``repro.obs``: metrics, tracing, and logging for every tier.

The paper's pitch is scalability; scalability work runs on numbers.
This package is the dependency-free observability layer the serving,
PPR-kernel, streaming, and fit tiers record into:

* **metrics** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  (log-bucketed, with p50/p95/p99 estimates) behind a process-global
  thread-safe :class:`MetricsRegistry` with labeled series;
* **tracing** — :func:`trace` / :class:`Span`, nested wall-clock trace
  trees with per-span attributes (fit phases, scatter-gather fan-outs);
* **exporters** — :func:`to_prometheus_text` (text exposition) and
  :func:`snapshot` / :func:`write_snapshot` (JSON artifacts in the
  ``benchmarks/results`` convention);
* **logging** — :func:`get_logger`, :func:`configure_logging` (the one
  helper all CLIs thread ``--log-level`` through), plus the
  :class:`Timer` / :func:`timed` helpers.

Collection is **off by default** and costs one branch per instrumented
call site while off (the :func:`enabled` guard). Turn it on globally::

    from repro import obs

    obs.set_enabled(True)              # or the scoped form:
    with obs.capture() as registry:
        engine.topk([0, 1, 2], k=10)
        print(obs.to_prometheus_text(registry))

Instrumented call sites follow one pattern::

    if obs.enabled():
        obs.get_registry().counter("thing_total",
                                   {"kind": "fast"}).inc()

so shipping instrumentation adds no measurable cost to the hot paths
when metrics are disabled (``benchmarks/bench_obs_overhead.py`` pins
the enabled-mode overhead too).
"""

from ..logging_utils import Timer, configure_logging, get_logger, timed
from . import requestctx
from .cli import add_observability_flags, dump_metrics, setup_observability
from .export import snapshot, to_prometheus_text, write_snapshot
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, capture,
                      enabled, get_registry, reset, set_enabled)
from .requestctx import TraceContext
from .requestlog import RequestLogger, TraceRing
from .tracing import Span, current_span, trace

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "enabled", "set_enabled", "get_registry", "reset", "capture",
    # tracing
    "Span", "trace", "current_span",
    # request-scoped context + request-granular logs
    "requestctx", "TraceContext", "RequestLogger", "TraceRing",
    # exporters
    "snapshot", "write_snapshot", "to_prometheus_text",
    # CLI wiring
    "add_observability_flags", "setup_observability", "dump_metrics",
    # logging / timing (re-exported from repro.logging_utils)
    "get_logger", "configure_logging", "Timer", "timed",
]
