"""Request-scoped trace context that survives async and thread hops.

The serving path of one HTTP request crosses four execution domains:
the event-loop task that parses it, the micro-batcher's queue, the
``ThreadPoolExecutor`` worker that runs the engine call, and (for
sharded stores) the :class:`~repro.serving.router.ShardRouter` fan-out
pool. Thread-locals lose the request at every hop; this module is the
:mod:`contextvars`-based identity that does not:

* :class:`TraceContext` — trace id, span id, sampling decision,
  optional deadline, and a shared ``meta`` dict request handlers stuff
  per-request facts into (queue wait, batch size, shed reason) for the
  access log to pick up;
* :func:`new_trace` / :func:`child_context` — mint ids (W3C sizes:
  16-byte trace id, 8-byte span id, lowercase hex);
* :func:`parse_traceparent` / :func:`format_traceparent` — the W3C
  ``traceparent`` header (``00-{trace}-{span}-{flags}``); malformed
  headers parse to ``None``, *never* raise — a bad header must start a
  fresh trace, not 500 the request;
* :func:`activate` / :func:`current` — bind a context to the running
  task/thread (asyncio tasks inherit through the context copy the loop
  makes per task);
* :func:`bind` — wrap a callable so it runs under a snapshot of the
  *caller's* context inside a thread pool: the span parent and the
  trace context both cross ``run_in_executor`` / ``pool.submit``, and
  nothing leaks between pooled tasks because every bound call runs in
  its own copy.

Everything here is stdlib; ids come from :func:`os.urandom`, so no
seeding concerns and no global RNG contention.
"""

from __future__ import annotations

import contextvars
import os
import string
import time
from contextlib import contextmanager

__all__ = [
    "TraceContext", "new_trace", "child_context", "current", "activate",
    "set_current", "bind", "parse_traceparent", "format_traceparent",
    "exemplar", "sample_decision",
]

_CTX: contextvars.ContextVar["TraceContext | None"] = (
    contextvars.ContextVar("repro_obs_requestctx", default=None))

_HEX = set(string.hexdigits.lower())


class TraceContext:
    """One request's identity as it moves through the serving path.

    ``trace_id`` (32 lowercase hex chars) names the whole request;
    ``span_id`` (16 hex chars) names the current hop; ``sampled`` is
    the head-based sampling decision (trace trees and exemplars are
    only retained for sampled requests — counters and histograms always
    record); ``deadline`` is an absolute :func:`time.monotonic` point
    or ``None``; ``meta`` is a *shared* mutable dict — copies made by
    :func:`child_context` alias it on purpose, so a batcher thread
    noting ``meta["batch_size"]`` is visible to the handler writing the
    access-log line.
    """

    __slots__ = ("trace_id", "span_id", "parent_span_id", "sampled",
                 "deadline", "meta")

    def __init__(self, trace_id: str, span_id: str, *,
                 parent_span_id: str | None = None, sampled: bool = True,
                 deadline: float | None = None,
                 meta: dict | None = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled
        self.deadline = deadline
        self.meta = meta if meta is not None else {}

    # ------------------------------------------------------------------
    def remaining(self, now: float | None = None) -> float | None:
        """Seconds until the deadline (negative if past); None if unset."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)

    def to_dict(self) -> dict:
        """JSON-ready identity (what /debug/traces rows embed)."""
        record = {"trace_id": self.trace_id, "span_id": self.span_id,
                  "sampled": self.sampled}
        if self.parent_span_id is not None:
            record["parent_span_id"] = self.parent_span_id
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceContext({self.trace_id[:8]}…/{self.span_id}, "
                f"sampled={self.sampled})")


# ----------------------------------------------------------------------
# minting and deriving contexts
# ----------------------------------------------------------------------

def _hex_id(nbytes: int) -> str:
    value = os.urandom(nbytes).hex()
    if set(value) <= {"0"}:          # pragma: no cover - astronomically rare
        return _hex_id(nbytes)       # all-zero ids are invalid per W3C
    return value


def new_trace(*, sampled: bool = True,
              deadline: float | None = None) -> TraceContext:
    """A fresh root context with new trace and span ids."""
    return TraceContext(_hex_id(16), _hex_id(8), sampled=sampled,
                        deadline=deadline)


def child_context(parent: TraceContext, *,
                  deadline: float | None = None) -> TraceContext:
    """Same trace, new span id; shares the parent's ``meta`` dict."""
    return TraceContext(parent.trace_id, _hex_id(8),
                        parent_span_id=parent.span_id,
                        sampled=parent.sampled,
                        deadline=(parent.deadline if deadline is None
                                  else deadline),
                        meta=parent.meta)


def sample_decision(trace_id: str, rate: float) -> bool:
    """Deterministic head sampling: the same trace id always lands on
    the same side of ``rate``, so retries and multi-hop fan-outs of one
    trace agree without coordination."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (int(trace_id[:8], 16) / 0xFFFFFFFF) < rate


# ----------------------------------------------------------------------
# the current context
# ----------------------------------------------------------------------

def current() -> TraceContext | None:
    """The context bound to this task/thread, if any."""
    return _CTX.get()


def set_current(ctx: TraceContext | None) -> contextvars.Token:
    """Bind ``ctx``; returns the token for :meth:`ContextVar.reset`."""
    return _CTX.set(ctx)


@contextmanager
def activate(ctx: TraceContext | None):
    """Scoped :func:`set_current` (restores the previous binding)."""
    token = _CTX.set(ctx)
    try:
        yield ctx
    finally:
        try:
            _CTX.reset(token)
        except ValueError:           # crossed a context boundary
            _CTX.set(None)


def exemplar() -> dict | None:
    """A ``{"trace_id": ...}`` exemplar for the current request, or
    ``None`` when there is no sampled context — what histograms attach
    to observations so a p99 spike links back to a concrete trace."""
    ctx = _CTX.get()
    if ctx is None or not ctx.sampled:
        return None
    return {"trace_id": ctx.trace_id}


# ----------------------------------------------------------------------
# crossing thread pools
# ----------------------------------------------------------------------

def bind(fn, *args, ctx: TraceContext | None = None, **kwargs):
    """Snapshot the caller's context into a zero-arg callable.

    ``loop.run_in_executor(pool, requestctx.bind(work))`` runs ``work``
    under a *copy* of the submitting context: :func:`current` answers
    the same trace, and spans opened inside nest under the caller's
    live span instead of becoming detached roots. Each bound call gets
    its own copy, so pooled tasks cannot leak context into each other
    — a worker that runs a bound call and then an unbound one sees the
    unbound one start from the pool thread's own (empty) context.

    ``ctx=`` additionally rebinds the trace context inside the snapshot
    (the micro-batcher uses this to attribute one coalesced engine call
    to a member request's trace).
    """
    snapshot = contextvars.copy_context()
    if ctx is None:
        return lambda: snapshot.run(fn, *args, **kwargs)

    def _with_ctx():
        def _inner():
            _CTX.set(ctx)
            return fn(*args, **kwargs)
        return snapshot.run(_inner)
    return _with_ctx


# ----------------------------------------------------------------------
# W3C trace-context header
# ----------------------------------------------------------------------

def parse_traceparent(value: str | None) -> TraceContext | None:
    """Parse a W3C ``traceparent`` header into a context, or ``None``.

    Accepts ``version-traceid-spanid-flags`` with lowercase hex fields
    of widths 2/32/16/2; rejects (by returning ``None``) anything
    malformed, all-zero ids, and the reserved version ``ff``. The
    returned context carries the *remote* span id as
    ``parent_span_id`` and a fresh local span id, with the header's
    sampled flag (bit 0) preserved.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[0], parts[1], parts[2], parts[3]
    if (len(version), len(trace_id), len(parent_id), len(flags)) != (2, 32, 16, 2):
        return None
    for field in (version, trace_id, parent_id, flags):
        if not set(field) <= _HEX:
            return None
    if version == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if set(trace_id) == {"0"} or set(parent_id) == {"0"}:
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id, _hex_id(8), parent_span_id=parent_id,
                        sampled=sampled)


def format_traceparent(ctx: TraceContext) -> str:
    """The context as an outgoing ``traceparent`` header value."""
    return (f"00-{ctx.trace_id}-{ctx.span_id}-"
            f"{'01' if ctx.sampled else '00'}")
