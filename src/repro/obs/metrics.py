"""Dependency-free metrics primitives: counters, gauges, histograms.

The substrate of :mod:`repro.obs`. Three metric kinds behind one
process-global, thread-safe :class:`MetricsRegistry`:

* :class:`Counter` — monotone sum (requests served, cache hits);
* :class:`Gauge` — last-written value (frontier size, drift);
* :class:`Histogram` — fixed log-spaced buckets with streaming
  p50/p95/p99 estimates (latencies, batch sizes, iteration counts).

Design constraints, in order:

1. **Disabled must be free.** Every instrumented call site guards with
   :func:`enabled` — a module-global bool read — before touching a
   clock or the registry, so shipping the instrumentation costs one
   branch per call when metrics are off.
2. **Enabled must be cheap.** Metric handles are plain objects with one
   lock each; ``Histogram.observe`` is a log, a clamp, and two adds.
   Hot loops may also look a handle up once and hold it.
3. **No new dependencies.** Buckets are a small numpy array; everything
   else is stdlib.

Labels: a series is ``(name, sorted(labels.items()))``. Keep label
cardinality bounded (shard ids, kernel regimes — not node ids); every
distinct label set is one live object in the registry.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

import numpy as np

from ..errors import ParameterError

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "enabled", "set_enabled", "get_registry", "reset", "capture",
]

#: Label key type: canonical, hashable form of a labels dict.
_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("name", "labels", "description", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.description: str | None = None
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-written value; supports relative adjustment."""

    kind = "gauge"
    __slots__ = ("name", "labels", "description", "_value", "_lock")

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.description: str | None = None
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket histogram with streaming quantile estimates.

    Buckets are geometric: edge ``i`` sits at ``min_value * growth**i``
    for ``i = 0..num_buckets``, bucket ``i`` holds values in
    ``(edge[i], edge[i+1]]``, with an underflow bucket for values
    ``<= min_value`` and an overflow bucket above the last edge. The
    defaults (``1e-6``, growth ``1.25``, 128 buckets) span one
    microsecond to ~2.4e6 in ~25% relative steps — wide enough for
    latencies in seconds *and* discrete sizes (batch sizes, iteration
    counts) through the same type.

    :meth:`quantile` finds the bucket where the cumulative count
    crosses ``q * count`` and interpolates linearly inside it, clamping
    to the observed min/max, so the estimate is within one bucket width
    (``growth - 1`` relative) of the exact sample quantile — the bound
    the unit tests pin against ``np.quantile``.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "description", "_min", "_log_growth",
                 "_edges", "_counts", "_sum", "_count", "_obs_min",
                 "_obs_max", "_exemplars", "_lock")

    def __init__(self, name: str, labels: _LabelKey = (), *,
                 min_value: float = 1e-6, growth: float = 1.25,
                 num_buckets: int = 128) -> None:
        if min_value <= 0:
            raise ParameterError("min_value must be positive")
        if growth <= 1.0:
            raise ParameterError("growth must be > 1")
        if num_buckets < 1:
            raise ParameterError("num_buckets must be >= 1")
        self.name = name
        self.labels = labels
        self.description: str | None = None
        self._min = float(min_value)
        self._log_growth = math.log(growth)
        self._edges = min_value * np.power(float(growth),
                                           np.arange(num_buckets + 1))
        # slot 0: underflow (<= min_value); slot -1: overflow
        self._counts = np.zeros(num_buckets + 2, dtype=np.int64)
        self._sum = 0.0
        self._count = 0
        self._obs_min = math.inf
        self._obs_max = -math.inf
        # bucket index -> most recent exemplar observed in that bucket
        # (bounded by the bucket count; sampled traces link a latency
        # spike back to a concrete request)
        self._exemplars: dict[int, dict] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def edges(self) -> np.ndarray:
        """Bucket edges (underflow below ``edges[0]``, overflow above
        ``edges[-1]``)."""
        return self._edges

    def bucket_index(self, value: float) -> int:
        """The ``_counts`` slot ``value`` lands in (0 = underflow)."""
        if value <= self._min:
            return 0
        # floor of the geometric position; nudge exact edges down into
        # the (lo, hi] bucket they close
        pos = math.log(value / self._min) / self._log_growth
        idx = int(math.ceil(pos - 1e-9))
        return min(idx, len(self._counts) - 1)

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        """Record ``value``; ``exemplar`` optionally attaches a small
        label dict (canonically ``{"trace_id": ...}``) identifying one
        concrete event that landed in this bucket — the most recent
        exemplar per bucket is kept."""
        value = float(value)
        idx = self.bucket_index(value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._obs_min:
                self._obs_min = value
            if value > self._obs_max:
                self._obs_max = value
            if exemplar is not None:
                self._exemplars[idx] = {"value": value,
                                        "labels": dict(exemplar),
                                        "ts": time.time()}

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def counts(self) -> np.ndarray:
        """A snapshot copy of the per-bucket counts."""
        with self._lock:
            return self._counts.copy()

    def exemplars(self) -> list[dict]:
        """Recent exemplars, one per bucket at most, by ascending value."""
        with self._lock:
            records = [dict(e) for e in self._exemplars.values()]
        return sorted(records, key=lambda e: e["value"])

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed so far.

        Returns ``nan`` when nothing was observed. The estimate is
        exact to within one bucket's width.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"q must be in [0, 1], got {q!r}")
        with self._lock:
            counts = self._counts.copy()
            total = self._count
            lo_seen, hi_seen = self._obs_min, self._obs_max
        if total == 0:
            return math.nan
        target = q * total
        cum = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cum + c >= target:
                if i == 0:
                    lo, hi = lo_seen, min(self._min, hi_seen)
                elif i == len(counts) - 1:
                    lo, hi = max(self._edges[-1], lo_seen), hi_seen
                else:
                    lo, hi = self._edges[i - 1], self._edges[i]
                lo = max(lo, lo_seen)
                hi = min(hi, hi_seen)
                if hi < lo:
                    hi = lo
                frac = (target - cum) / c
                return float(lo + frac * (hi - lo))
            cum += c
        return float(hi_seen)       # pragma: no cover - numeric safety net

    def percentiles(self) -> dict:
        """The standard latency summary: p50 / p95 / p99 (or ``None``)."""
        if self._count == 0:
            return {"p50": None, "p95": None, "p99": None}
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-global, thread-safe home of every labeled series.

    ``counter(name, labels)`` / ``gauge(...)`` / ``histogram(...)`` are
    get-or-create: the first call for a ``(name, labels)`` pair builds
    the metric, later calls return the same object (so handles may be
    cached by hot loops). Registering one name under two kinds is a
    bug and raises.
    """

    def __init__(self, *, max_spans: int = 64) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], object] = {}
        self._kinds: dict[str, str] = {}
        self._spans: deque = deque(maxlen=max_spans)
        #: bumped by :meth:`clear` so hot loops caching metric handles
        #: (see class docstring) can detect a reset and re-resolve
        self.generation = 0

    # ------------------------------------------------------------------
    def _get_or_create(self, kind: str, name: str, labels: dict | None,
                       description: str | None = None, **options):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ParameterError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"cannot re-register as {kind}")
            if description and metric.description is None:
                metric.description = description
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if metric.kind != kind:
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, cannot re-register as {kind}")
                return metric
            if metric is None:
                seen = self._kinds.get(name)
                if seen is not None and seen != kind:
                    raise ParameterError(
                        f"metric {name!r} already registered as {seen}, "
                        f"cannot re-register as {kind}")
                metric = _KINDS[kind](name, key[1], **options)
                if description:
                    # first description wins; exposition emits one HELP
                    # line per name, taken from any series carrying one
                    metric.description = description
                self._kinds[name] = kind
                self._metrics[key] = metric
        return metric

    def counter(self, name: str, labels: dict | None = None, *,
                description: str | None = None) -> Counter:
        return self._get_or_create("counter", name, labels, description)

    def gauge(self, name: str, labels: dict | None = None, *,
              description: str | None = None) -> Gauge:
        return self._get_or_create("gauge", name, labels, description)

    def histogram(self, name: str, labels: dict | None = None, *,
                  description: str | None = None, **options) -> Histogram:
        return self._get_or_create("histogram", name, labels, description,
                                   **options)

    # ------------------------------------------------------------------
    def get(self, name: str, labels: dict | None = None):
        """The existing series for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def series(self) -> list:
        """Every live metric, sorted by ``(name, labels)``."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def record_span(self, span) -> None:
        """Keep a finished root span for snapshot export (bounded)."""
        self._spans.append(span)

    def spans(self) -> list:
        """The most recent finished root trace trees."""
        return list(self._spans)

    def clear(self) -> None:
        """Drop every series and retained span (tests, bench resets)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
            self._spans.clear()
            self.generation += 1

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MetricsRegistry(series={len(self._metrics)}, "
                f"spans={len(self._spans)})")


# ----------------------------------------------------------------------
# process-global registry + the one-branch enable guard
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_ENABLED = False


def enabled() -> bool:
    """Whether instrumentation should record (the per-call-site guard)."""
    return _ENABLED


def set_enabled(on: bool) -> bool:
    """Turn the process-global metrics collection on/off; returns the
    previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def get_registry() -> MetricsRegistry:
    """The process-global registry every instrumented path records to."""
    return _REGISTRY


def reset() -> None:
    """Clear the global registry (collection stays in whatever state)."""
    _REGISTRY.clear()


class capture:
    """Context manager: enable metrics into a clean global registry.

    ::

        with obs.capture() as registry:
            engine.topk([0, 1], k=5)
        print(registry.get("serving_topk_seconds", ...).count)

    On exit the previous enabled/disabled state is restored; the
    collected series stay in the registry for inspection (pass
    ``clear_after=True`` to drop them too).
    """

    def __init__(self, *, clear: bool = True,
                 clear_after: bool = False) -> None:
        self._clear = clear
        self._clear_after = clear_after
        self._previous: bool | None = None

    def __enter__(self) -> MetricsRegistry:
        if self._clear:
            reset()
        self._previous = set_enabled(True)
        return _REGISTRY

    def __exit__(self, *exc) -> None:
        set_enabled(self._previous)
        if self._clear_after:
            reset()
