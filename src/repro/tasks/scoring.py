"""Pair-scoring strategies for link prediction (paper Section 5.2).

Resolves each method's declared ``lp_scoring`` convention and, for the
edge-features family, trains the logistic-regression classifier on
concatenated endpoint features exactly as the paper describes: the
training pairs are |E_test| pairs, half residual-graph edges and half
non-edges, disjoint from the test set.
"""

from __future__ import annotations

import numpy as np

from ..embedder import Embedder
from ..errors import ParameterError
from ..graph import Graph, sample_non_edges
from ..graph.splits import LinkPredictionSplit
from ..ml import LogisticRegression, concat_features
from ..rng import ensure_rng

__all__ = ["resolve_scoring", "score_test_pairs", "edge_feature_scores",
           "check_engine_matches"]


def check_engine_matches(engine, graph: Graph, *, what: str = "graph") -> None:
    """Reject a parity engine sized for a different model/graph."""
    if engine is not None and engine.num_nodes != graph.num_nodes:
        raise ParameterError(
            f"engine serves {engine.num_nodes} nodes but the {what} has "
            f"{graph.num_nodes} - engine was built over a different model")


def resolve_scoring(embedder: Embedder, graph: Graph) -> str:
    """Map a method's ``lp_scoring`` declaration to a concrete strategy."""
    convention = getattr(embedder, "lp_scoring", "inner")
    if convention == "auto":
        return "edge_features" if graph.directed else "inner"
    if convention not in ("inner", "edge_features"):
        raise ParameterError(f"unknown lp_scoring {convention!r}")
    return convention


def edge_feature_scores(embedder: Embedder, split: LinkPredictionSplit,
                        src: np.ndarray, dst: np.ndarray, *,
                        seed=None, reg: float = 1.0) -> np.ndarray:
    """Paper's edge-features protocol: LR on concatenated embeddings."""
    rng = ensure_rng(seed)
    train_graph = split.train_graph
    features = embedder.node_features()

    num_test = len(split.pos_src) + len(split.neg_src)
    num_pos = max(1, num_test // 2)
    e_src, e_dst = train_graph.edges()
    if len(e_src) == 0:
        raise ParameterError("training graph has no edges")
    chosen = rng.choice(len(e_src), size=min(num_pos, len(e_src)),
                        replace=False)
    pos_src, pos_dst = e_src[chosen], e_dst[chosen]
    # negatives must avoid both observed and held-out edges
    held = split.pos_src * np.int64(train_graph.num_nodes) + split.pos_dst
    neg_src, neg_dst = sample_non_edges(train_graph, len(pos_src), seed=rng,
                                        forbidden_keys=np.sort(held))

    train_x = np.vstack([concat_features(features, pos_src, pos_dst),
                         concat_features(features, neg_src, neg_dst)])
    train_y = np.concatenate([np.ones(len(pos_src)), np.zeros(len(neg_src))])
    model = LogisticRegression(reg=reg).fit(train_x, train_y)
    return model.decision_function(concat_features(features, src, dst))


def score_test_pairs(embedder: Embedder, split: LinkPredictionSplit, *,
                     seed=None, engine=None) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(scores, labels)`` for the split's test pairs.

    ``engine`` routes inner-product scoring through a
    :class:`repro.serving.QueryEngine` built over the same model — the
    serving-parity path. Edge-features methods score through a trained
    classifier, not pair inner products, so passing ``engine`` for one
    is an error rather than a silent no-op parity "pass".
    """
    src, dst, labels = split.test_pairs
    strategy = resolve_scoring(embedder, split.train_graph)
    if strategy == "inner":
        check_engine_matches(engine, split.train_graph, what="split's graph")
        scorer = engine if engine is not None else embedder
        return scorer.score_pairs(src, dst), labels
    if engine is not None:
        raise ParameterError(
            f"engine= only applies to inner-product scoring; "
            f"{getattr(embedder, 'name', type(embedder).__name__)} uses "
            f"{strategy!r}")
    return edge_feature_scores(embedder, split, src, dst, seed=seed), labels
