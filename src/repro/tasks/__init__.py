"""The paper's three evaluation tasks."""

from .classification import (ClassificationResult, evaluate_classification,
                             top_ell_predict)
from .link_prediction import (LinkPredictionResult, evaluate_link_prediction,
                              run_link_prediction)
from .reconstruction import ReconstructionResult, evaluate_reconstruction
from .scoring import edge_feature_scores, resolve_scoring, score_test_pairs

__all__ = [
    "LinkPredictionResult", "evaluate_link_prediction", "run_link_prediction",
    "ReconstructionResult", "evaluate_reconstruction",
    "ClassificationResult", "evaluate_classification", "top_ell_predict",
    "resolve_scoring", "score_test_pairs", "edge_feature_scores",
]
