"""Link prediction (paper Section 5.2, Figures 4 and 9).

Protocol: remove 30% of the edges, embed the residual graph, then rank
the removed edges against an equal number of sampled non-edges; report
AUC. On directed graphs the pairs are ordered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedder import Embedder
from ..graph import Graph, link_prediction_split
from ..graph.splits import LinkPredictionSplit
from ..ml import auc_score
from ..rng import spawn_rngs
from .scoring import resolve_scoring, score_test_pairs

__all__ = ["LinkPredictionResult", "evaluate_link_prediction",
           "run_link_prediction"]


@dataclass(frozen=True)
class LinkPredictionResult:
    """AUC of one method on one split."""

    method: str
    auc: float
    scoring: str
    num_test_pairs: int


def evaluate_link_prediction(embedder: Embedder, split: LinkPredictionSplit,
                             *, seed=None, engine=None,
                             ) -> LinkPredictionResult:
    """Score an already-fitted embedder on a prepared split.

    Passing ``engine`` (a :class:`repro.serving.QueryEngine` over the
    same model) evaluates through the online serving path instead of the
    embedder's in-process matrices — identical AUC proves the serving
    tier is faithful to the offline scores.
    """
    scores, labels = score_test_pairs(embedder, split, seed=seed,
                                      engine=engine)
    return LinkPredictionResult(
        method=getattr(embedder, "name", type(embedder).__name__),
        auc=auc_score(labels, scores),
        scoring=resolve_scoring(embedder, split.train_graph),
        num_test_pairs=len(labels),
    )


def run_link_prediction(embedder: Embedder, graph: Graph, *,
                        test_fraction: float = 0.3,
                        seed: int | None = 0) -> LinkPredictionResult:
    """End-to-end: split, fit on the residual graph, evaluate AUC."""
    split_rng, eval_rng = spawn_rngs(seed, 2)
    split = link_prediction_split(graph, test_fraction=test_fraction,
                                  seed=split_rng)
    embedder.fit(split.train_graph)
    return evaluate_link_prediction(embedder, split, seed=eval_rng)
