"""Graph reconstruction (paper Section 5.3, Figure 5).

Protocol: score a candidate set ``S`` of node pairs — all pairs on
small graphs, a 1% sample on large ones — and report ``precision@K``,
the fraction of the K best-scored pairs that are actual edges, for K up
to 10^6. The candidate sweep is streamed in chunks so the full score
matrix is never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..embedder import Embedder
from ..errors import ParameterError
from ..graph import Graph
from ..rng import ensure_rng
from .scoring import check_engine_matches

__all__ = ["ReconstructionResult", "evaluate_reconstruction"]


@dataclass(frozen=True)
class ReconstructionResult:
    """precision@K curve for one method on one graph."""

    method: str
    precision: dict[int, float]
    num_candidates: int


def _arc_key_lookup(graph: Graph) -> np.ndarray:
    src, dst = graph.arcs()
    return np.sort(src * np.int64(graph.num_nodes) + dst)


def _is_edge(keys: np.ndarray, n: int, src: np.ndarray,
             dst: np.ndarray) -> np.ndarray:
    query = src * np.int64(n) + dst
    pos = np.searchsorted(keys, query)
    pos = np.minimum(pos, max(len(keys) - 1, 0))
    return keys[pos] == query if len(keys) else np.zeros(len(query), bool)


def _candidate_chunks(graph: Graph, sample_fraction: float | None,
                      chunk_rows: int, rng: np.random.Generator):
    """Yield (src, dst) candidate chunks; all pairs or a uniform sample."""
    n = graph.num_nodes
    if sample_fraction is None:
        for lo in range(0, n, chunk_rows):
            hi = min(lo + chunk_rows, n)
            rows = np.arange(lo, hi, dtype=np.int64)
            src = np.repeat(rows, n)
            dst = np.tile(np.arange(n, dtype=np.int64), hi - lo)
            keep = src != dst
            if not graph.directed:
                keep &= src < dst
            yield src[keep], dst[keep]
    else:
        total = n * (n - 1)
        if not graph.directed:
            total //= 2
        want = int(total * sample_fraction)
        per_chunk = chunk_rows * max(n, 1)
        produced = 0
        while produced < want:
            size = min(per_chunk, want - produced)
            src = rng.integers(0, n, size=size).astype(np.int64)
            dst = rng.integers(0, n, size=size).astype(np.int64)
            keep = src != dst
            if not graph.directed:
                s, d = np.minimum(src, dst), np.maximum(src, dst)
                src, dst = s, d
            yield src[keep], dst[keep]
            produced += int(keep.sum())


def evaluate_reconstruction(embedder: Embedder, graph: Graph,
                            ks: tuple[int, ...] = (10, 100, 1000, 10_000), *,
                            sample_fraction: float | None = None,
                            chunk_rows: int = 64,
                            seed=None, engine=None) -> ReconstructionResult:
    """Compute precision@K for every K in ``ks``.

    ``sample_fraction=None`` sweeps *all* pairs (the paper's protocol for
    Wiki/BlogCatalog); a float (e.g. ``0.01``) samples that fraction of
    pairs (Youtube/TWeibo protocol).

    Passing ``engine`` (a :class:`repro.serving.QueryEngine` over the
    same model) scores candidates through the serving tier — identical
    precision proves online/offline parity.
    """
    ks = tuple(sorted(int(k) for k in ks))
    if not ks or ks[0] < 1:
        raise ParameterError("ks must be positive integers")
    check_engine_matches(engine, graph)
    rng = ensure_rng(seed)
    k_max = ks[-1]
    keys = _arc_key_lookup(graph)
    n = graph.num_nodes

    best_scores = np.empty(0)
    best_labels = np.empty(0, dtype=bool)
    num_candidates = 0
    for src, dst in _candidate_chunks(graph, sample_fraction, chunk_rows, rng):
        if len(src) == 0:
            continue
        num_candidates += len(src)
        scorer = engine if engine is not None else embedder
        scores = scorer.score_pairs(src, dst)
        labels = _is_edge(keys, n, src, dst)
        merged_scores = np.concatenate([best_scores, scores])
        merged_labels = np.concatenate([best_labels, labels])
        if len(merged_scores) > k_max:
            top = np.argpartition(-merged_scores, k_max - 1)[:k_max]
            best_scores, best_labels = merged_scores[top], merged_labels[top]
        else:
            best_scores, best_labels = merged_scores, merged_labels

    order = np.argsort(-best_scores, kind="stable")
    sorted_labels = best_labels[order]
    hits = np.cumsum(sorted_labels)
    precision = {}
    for k in ks:
        kk = min(k, len(sorted_labels))
        precision[k] = float(hits[kk - 1]) / k if kk else 0.0
    return ReconstructionResult(
        method=getattr(embedder, "name", type(embedder).__name__),
        precision=precision, num_candidates=num_candidates)
