"""Node classification (paper Section 5.4, Figure 6).

Protocol: train a one-vs-rest logistic regression on the embeddings of
a random fraction of nodes and predict the labels of the rest. As in
the DeepWalk line of work the datasets are *multilabel*, and prediction
uses the standard top-ell rule: a test node with ``ell`` true labels is
assigned its ``ell`` highest-probability labels. Reported metrics are
Micro-F1 and Macro-F1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionError, ParameterError
from ..graph import train_test_nodes
from ..ml import OneVsRestLogistic, macro_f1, micro_f1
from ..rng import ensure_rng

__all__ = ["ClassificationResult", "top_ell_predict",
           "evaluate_classification"]


@dataclass(frozen=True)
class ClassificationResult:
    """Micro/Macro F1 for one method at one training fraction."""

    train_fraction: float
    micro_f1: float
    macro_f1: float


def top_ell_predict(probabilities: np.ndarray,
                    label_counts: np.ndarray) -> np.ndarray:
    """Assign each row its ``label_counts[i]`` most probable labels."""
    probabilities = np.asarray(probabilities)
    label_counts = np.asarray(label_counts, dtype=np.int64)
    if len(probabilities) != len(label_counts):
        raise DimensionError("probabilities and label_counts must align")
    n, num_labels = probabilities.shape
    pred = np.zeros((n, num_labels), dtype=np.int8)
    order = np.argsort(-probabilities, axis=1)
    for i in range(n):
        ell = min(int(label_counts[i]), num_labels)
        if ell > 0:
            pred[i, order[i, :ell]] = 1
    return pred


def evaluate_classification(features: np.ndarray, membership: np.ndarray,
                            train_fraction: float, *, reg: float = 1.0,
                            seed=None) -> ClassificationResult:
    """One train/test split of the paper's classification protocol."""
    if not 0.0 < train_fraction < 1.0:
        raise ParameterError("train_fraction must be in (0, 1)")
    features = np.asarray(features, dtype=np.float64)
    membership = np.atleast_2d(np.asarray(membership))
    if len(features) != len(membership):
        raise DimensionError("features and membership must align")
    rng = ensure_rng(seed)
    train_idx, test_idx = train_test_nodes(len(features), train_fraction,
                                           seed=rng)
    model = OneVsRestLogistic(reg=reg).fit(features[train_idx],
                                           membership[train_idx])
    probs = model.predict_proba(features[test_idx])
    true = membership[test_idx]
    pred = top_ell_predict(probs, true.sum(axis=1))
    return ClassificationResult(train_fraction=train_fraction,
                                micro_f1=micro_f1(true, pred),
                                macro_f1=macro_f1(true, pred))
