"""Deterministic chunk-and-reduce process parallelism.

The fit pipeline splits row-parallel work (PPR iterations, reweighting
precomputation, Jacobi updates) into chunks and farms the chunks out to
worker processes. Two properties are load-bearing and guaranteed here:

* **Determinism regardless of worker count.** Chunk boundaries are a
  function of ``chunk_size`` alone (see :mod:`repro.ppr.chunks`), every
  chunk is computed with the same arithmetic wherever it runs, and
  results are reduced in chunk order — so the bits of the output never
  depend on ``workers``.
* **Zero input serialization.** Workers are forked (copy-on-write)
  *after* the payload is staged in this module, so large matrices are
  shared with the children for free; only the per-chunk results travel
  back through a pipe. Fork is only used on Linux: macOS BLAS backends
  (Accelerate) are not fork-safe once the parent has initialized its
  thread pool, and Windows has no fork — both degrade to the
  in-process loop, which produces the same bits.

``workers`` is capped at the number of usable cores: oversubscribing a
machine only adds IPC overhead without changing results (the cap is why
requesting ``workers=4`` on a single-core container costs nothing).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
from typing import Any, Callable, Sequence

from .errors import ParameterError

__all__ = ["available_cpus", "effective_workers", "parallel_map", "payload"]

_PAYLOAD: Any = None


def payload() -> Any:
    """The payload staged by the current :func:`parallel_map` call.

    Worker functions call this instead of receiving the (potentially
    huge) shared arrays as pickled arguments.
    """
    return _PAYLOAD


def available_cpus() -> int:
    """Usable CPU count (CPU affinity mask when available)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def effective_workers(workers: int, num_tasks: int | None = None) -> int:
    """Clamp a requested worker count to what can actually help.

    Never more than the usable CPUs and never more than the number of
    tasks; always at least 1. Raises :class:`ParameterError` for a
    non-positive request so misconfiguration fails loudly.
    """
    if int(workers) != workers or workers < 1:
        raise ParameterError(f"workers must be a positive integer, "
                             f"got {workers!r}")
    capped = min(int(workers), available_cpus())
    if num_tasks is not None:
        capped = min(capped, max(1, num_tasks))
    return max(1, capped)


def _fork_context() -> mp.context.BaseContext | None:
    # Fork-without-exec is only reliably safe on Linux: Accelerate (the
    # BLAS numpy links on macOS) can hang or crash in forked children
    # once the parent has used it, which is why CPython moved macOS to
    # the spawn default. Spawn cannot share the staged payload, so on
    # non-Linux platforms the caller falls back to the inline loop.
    if not sys.platform.startswith("linux"):
        return None
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def parallel_map(fn: Callable[[Any], Any], tasks: Sequence[Any], *,
                 workers: int = 1, payload: Any = None,
                 force_processes: bool = False) -> list[Any]:
    """Apply ``fn`` to every task; results in task order.

    ``fn`` must be a module-level function (it is sent to workers by
    reference) that reads shared inputs via :func:`payload`. Tasks
    should be small descriptors — chunk bounds, not arrays.

    ``force_processes`` bypasses the CPU cap so the multiprocess path
    can be exercised deterministically on any machine (used by tests).
    """
    global _PAYLOAD
    tasks = list(tasks)
    nproc = effective_workers(workers, len(tasks))
    if force_processes and workers > 1 and len(tasks) > 1:
        nproc = min(int(workers), max(1, len(tasks)))
    ctx = _fork_context()
    _PAYLOAD = payload
    try:
        if nproc <= 1 or ctx is None:
            return [fn(task) for task in tasks]
        with ctx.Pool(processes=nproc) as pool:
            return pool.map(fn, tasks)
    finally:
        _PAYLOAD = None
