"""Common interface for every embedding method in the package.

Two families exist, mirroring the paper's Section 5.2 scoring rules:

* *directional* methods (NRP, ApproxPPR, APP, STRAP, GA) produce a
  forward matrix ``X`` and a backward matrix ``Y`` of ``dim/2`` columns
  each; a pair ``(u, v)`` is scored by ``X_u . Y_v``;
* *single-vector* methods produce one ``dim``-column matrix ``Z`` and
  score pairs by ``Z_u . Z_v``.

For feature-based tasks (node classification, edge-features link
prediction) :meth:`Embedder.node_features` returns one row per node:
directional methods L2-normalize and concatenate their two vectors, as
the paper prescribes.

:class:`ScoringMixin` carries the scoring surface alone, so loaded
artifacts (:class:`repro.io.EmbeddingBundle`,
:class:`repro.serving.EmbeddingStore`) share one implementation with
the fittable :class:`Embedder` without pretending to be fittable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .errors import ParameterError, ReproError
from .graph import Graph
from .ml.preprocess import normalize_rows

__all__ = ["Embedder", "ScoringMixin", "has_custom_scoring"]


def has_custom_scoring(model) -> bool:
    """Whether ``model``'s native pair score is NOT a plain inner product.

    True when the class overrides :meth:`ScoringMixin.score_pairs`
    (e.g. RaRE's sigmoid rule) or when a loaded bundle/store carries the
    ``custom_scoring`` marker persisted at save time. Such models cannot
    be served by a dot-product index without silently changing scores.
    """
    if getattr(model, "custom_scoring", False):
        return True
    native = getattr(type(model), "score_pairs", ScoringMixin.score_pairs)
    return native is not ScoringMixin.score_pairs


class ScoringMixin:
    """Scoring surface over ``embedding_`` / ``forward_`` / ``backward_``.

    Anything exposing ``name``, ``directional`` and the fitted matrices
    gets pair scoring, per-node features, full-row scoring, and the
    serving hook from this one implementation.
    """

    #: Human-readable method name used in benchmark tables.
    name: str = "embedder"
    #: Whether the method emits separate forward/backward embeddings.
    directional: bool = False
    #: Link-prediction scoring convention (see repro.tasks.scoring).
    lp_scoring: str = "inner"

    def _require_fitted(self) -> None:
        if self.directional:
            if self.forward_ is None or self.backward_ is None:
                raise ReproError(f"{self.name}: call fit() first")
        elif self.embedding_ is None:
            raise ReproError(f"{self.name}: call fit() first")

    def node_features(self) -> np.ndarray:
        """Per-node feature rows for classifier-based tasks."""
        self._require_fitted()
        if self.directional:
            return np.hstack([normalize_rows(self.forward_),
                              normalize_rows(self.backward_)])
        return self.embedding_

    def score_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """The method's native proximity score for node pairs."""
        self._require_fitted()
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if self.directional:
            return np.einsum("ij,ij->i", self.forward_[src],
                             self.backward_[dst])
        return np.einsum("ij,ij->i", self.embedding_[src],
                         self.embedding_[dst])

    def score_all_from(self, src: int) -> np.ndarray:
        """Scores of ``(src, v)`` for every node ``v`` (reconstruction)."""
        self._require_fitted()
        if self.directional:
            return self.backward_ @ self.forward_[src]
        return self.embedding_ @ self.embedding_[src]

    def to_serving(self, *, index: str = "exact", cache_size: int = 1024,
                   engine: str = "auto", shards: int | None = None,
                   workers: int | None = None, **index_options):
        """Build a serving engine over this model.

        The engine answers batched ``topk(src_nodes, k)`` and
        ``score(src, dst)`` queries; ``index`` selects the retrieval
        backend (``"exact"`` or ``"ivf"``), remaining keyword arguments
        are forwarded to it. ``engine`` picks the flavor: ``"flat"``
        (one index), ``"sharded"`` (node-range scatter-gather), or
        ``"auto"`` — sharded exactly when ``shards=N`` is given.
        ``shards`` range-partitions the fitted matrix in memory;
        ``workers`` sizes the sharded engine's scatter thread pool.
        """
        from .serving import make_engine   # local import, avoids cycle
        self._require_fitted()
        return make_engine(self, engine=engine, shards=shards,
                           workers=workers, index=index,
                           cache_size=cache_size, **index_options)

    def export_store(self, root, *, metadata: dict | None = None):
        """Write this fitted model as an mmap-able serving store.

        The offline -> online hand-off in one call: the returned
        :class:`repro.serving.EmbeddingStore` is what ``repro-serve``
        queries. ``metadata`` is merged into the store manifest.
        """
        from .io import export_store as _export   # local import, avoids cycle
        self._require_fitted()
        return _export(self, root, metadata=metadata)


class Embedder(ScoringMixin, ABC):
    """Base class: construct with hyperparameters, then :meth:`fit` a graph."""

    def __init__(self, dim: int = 128, *, seed: int | None = 0) -> None:
        if dim < 2:
            raise ParameterError("dim must be >= 2")
        if self.directional and dim % 2:
            raise ParameterError("directional methods need an even dim")
        self.dim = dim
        self.seed = seed
        self.embedding_: np.ndarray | None = None
        self.forward_: np.ndarray | None = None
        self.backward_: np.ndarray | None = None

    # ------------------------------------------------------------------
    @abstractmethod
    def fit(self, graph: Graph) -> "Embedder":
        """Compute embeddings for ``graph``; returns ``self``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(dim={self.dim})"
