"""NRP: Homogeneous Network Embedding via Reweighted Personalized PageRank.

A full reproduction of Yang et al., PVLDB 13(5), 2020. The package
provides the paper's contribution (:class:`repro.NRP`,
:class:`repro.ApproxPPREmbedder`), every substrate it relies on (graphs,
PPR solvers, randomized SVD, random walks, a small numpy neural stack),
the 18 competitor methods of the paper's evaluation, the three
evaluation tasks, and synthetic analogues of the paper's datasets.

Quickstart::

    from repro import NRP
    from repro.datasets import load_dataset

    data = load_dataset("wiki_sim")
    model = NRP(dim=128).fit(data.graph)
    scores = model.score_pairs([0, 1], [2, 3])
"""

from .core import NRP, ApproxPPREmbedder, NRPConfig
from .embedder import Embedder
from .graph import Graph, from_edges

__version__ = "1.0.0"

__all__ = ["NRP", "NRPConfig", "ApproxPPREmbedder", "Embedder", "Graph",
           "from_edges", "__version__"]
