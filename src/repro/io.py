"""Persistence for embeddings and learned weights.

A fitted model's state is two (or one) float matrices plus metadata;
saving them lets the expensive embedding step be decoupled from the
downstream tasks, as the paper's own pipeline does (embed once, reuse
across link prediction / reconstruction / classification).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .embedder import Embedder
from .errors import ReproError

__all__ = ["save_embeddings", "load_embeddings", "EmbeddingBundle"]


class EmbeddingBundle:
    """A loaded embedding with the same scoring interface as an Embedder."""

    def __init__(self, *, name: str, directional: bool,
                 embedding: np.ndarray | None = None,
                 forward: np.ndarray | None = None,
                 backward: np.ndarray | None = None,
                 metadata: dict | None = None) -> None:
        self.name = name
        self.directional = directional
        self.embedding_ = embedding
        self.forward_ = forward
        self.backward_ = backward
        self.metadata = metadata or {}

    # reuse the Embedder scoring implementations
    node_features = Embedder.node_features
    score_pairs = Embedder.score_pairs
    score_all_from = Embedder.score_all_from
    _require_fitted = Embedder._require_fitted
    lp_scoring = "inner"


def save_embeddings(model, path: str | Path, *, metadata: dict | None = None,
                    ) -> None:
    """Save a fitted embedder's matrices + metadata to a ``.npz`` file."""
    path = Path(path)
    meta = {"name": getattr(model, "name", type(model).__name__),
            "directional": bool(getattr(model, "directional", False))}
    meta.update(metadata or {})
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    if meta["directional"]:
        if model.forward_ is None or model.backward_ is None:
            raise ReproError("model is not fitted")
        arrays["forward"] = model.forward_
        arrays["backward"] = model.backward_
    else:
        if model.embedding_ is None:
            raise ReproError("model is not fitted")
        arrays["embedding"] = model.embedding_
    for extra in ("w_fwd_", "w_bwd_"):
        value = getattr(model, extra, None)
        if value is not None:
            arrays[extra.rstrip("_")] = value
    np.savez_compressed(path, **arrays)


def load_embeddings(path: str | Path) -> EmbeddingBundle:
    """Load a bundle produced by :func:`save_embeddings`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["metadata"].tobytes()).decode())
        bundle = EmbeddingBundle(
            name=meta.pop("name"), directional=meta.pop("directional"),
            embedding=data["embedding"] if "embedding" in data else None,
            forward=data["forward"] if "forward" in data else None,
            backward=data["backward"] if "backward" in data else None,
            metadata=meta)
        for extra in ("w_fwd", "w_bwd"):
            if extra in data:
                bundle.metadata[extra] = data[extra]
    return bundle
