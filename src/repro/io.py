"""Persistence for embeddings and learned weights.

A fitted model's state is two (or one) float matrices plus metadata;
saving them lets the expensive embedding step be decoupled from the
downstream tasks, as the paper's own pipeline does (embed once, reuse
across link prediction / reconstruction / classification).

Two on-disk formats exist:

* a single compressed ``.npz`` bundle (:func:`save_embeddings` /
  :func:`load_embeddings`) — compact, good for archiving runs;
* an mmap-able store directory (:func:`export_store` / :func:`load_store`,
  thin wrappers over :mod:`repro.serving.store`) — the serving format,
  loaded lazily and shared across worker processes.

Every load path runs :func:`validate_embedding_matrices`, so a corrupt
or hand-edited file fails immediately with the offending shapes instead
of surfacing later as a cryptic einsum broadcast error.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from .embedder import ScoringMixin, has_custom_scoring
from .errors import ParameterError, ReproError

__all__ = ["save_embeddings", "load_embeddings", "EmbeddingBundle",
           "validate_embedding_matrices", "export_store", "load_store"]


def validate_embedding_matrices(name: str, *, directional: bool,
                                embedding: np.ndarray | None = None,
                                forward: np.ndarray | None = None,
                                backward: np.ndarray | None = None) -> None:
    """Check that a matrix set is a well-formed embedding.

    Directional models need ``forward`` and ``backward`` as 2-D float
    matrices of identical shape; single-vector models need one 2-D float
    ``embedding``. Raises :class:`ReproError` naming the offending
    shapes/dtypes — the one place shape corruption is caught before it
    reaches the scoring einsums.
    """
    def shape_of(arr):
        return None if arr is None else tuple(arr.shape)

    if directional:
        if forward is None or backward is None:
            raise ReproError(
                f"{name}: directional embedding needs forward and backward "
                f"matrices, got shapes {shape_of(forward)} and "
                f"{shape_of(backward)}")
        present = {"forward": forward, "backward": backward}
    else:
        if embedding is None:
            raise ReproError(f"{name}: missing embedding matrix")
        present = {"embedding": embedding}
    for key, arr in present.items():
        if arr.ndim != 2 or 0 in arr.shape:
            raise ReproError(
                f"{name}: {key} matrix must be 2-D and non-empty, "
                f"got shape {shape_of(arr)}")
        if not np.issubdtype(arr.dtype, np.floating):
            raise ReproError(
                f"{name}: {key} matrix must be floating point, "
                f"got dtype {arr.dtype}")
    if directional and forward.shape != backward.shape:
        raise ReproError(
            f"{name}: forward/backward shapes differ: "
            f"{shape_of(forward)} vs {shape_of(backward)}")
    if directional and forward.dtype != backward.dtype:
        raise ReproError(
            f"{name}: forward/backward dtypes differ: "
            f"{forward.dtype} vs {backward.dtype}")


class EmbeddingBundle(ScoringMixin):
    """A loaded embedding with the same scoring interface as an Embedder."""

    def __init__(self, *, name: str, directional: bool,
                 embedding: np.ndarray | None = None,
                 forward: np.ndarray | None = None,
                 backward: np.ndarray | None = None,
                 metadata: dict | None = None,
                 lp_scoring: str = "inner",
                 custom_scoring: bool = False) -> None:
        self.name = name
        self.directional = directional
        self.embedding_ = embedding
        self.forward_ = forward
        self.backward_ = backward
        self.metadata = metadata or {}
        self.lp_scoring = lp_scoring
        self.custom_scoring = custom_scoring


def save_embeddings(model, path: str | Path, *, metadata: dict | None = None,
                    ) -> None:
    """Save a fitted embedder's matrices + metadata to a ``.npz`` file."""
    path = Path(path)
    meta = {"name": getattr(model, "name", type(model).__name__),
            "directional": bool(getattr(model, "directional", False)),
            "lp_scoring": getattr(model, "lp_scoring", "inner"),
            "custom_scoring": has_custom_scoring(model)}
    clashes = sorted(set(meta) & set(metadata or {}))
    if clashes:
        raise ParameterError(
            f"metadata may not override the reserved bundle keys {clashes}")
    meta.update(metadata or {})
    arrays: dict[str, np.ndarray] = {
        "metadata": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)}
    if meta["directional"]:
        if model.forward_ is None or model.backward_ is None:
            raise ReproError("model is not fitted")
        arrays["forward"] = model.forward_
        arrays["backward"] = model.backward_
    else:
        if model.embedding_ is None:
            raise ReproError("model is not fitted")
        arrays["embedding"] = model.embedding_
    validate_embedding_matrices(
        meta["name"], directional=meta["directional"],
        embedding=arrays.get("embedding"), forward=arrays.get("forward"),
        backward=arrays.get("backward"))
    for extra in ("w_fwd_", "w_bwd_"):
        value = getattr(model, extra, None)
        if value is not None:
            arrays[extra.rstrip("_")] = value
    np.savez_compressed(path, **arrays)


def load_embeddings(path: str | Path) -> EmbeddingBundle:
    """Load a bundle produced by :func:`save_embeddings`.

    Matrix shapes and dtypes are validated on the way in; a mismatched
    forward/backward pair or a truncated file raises :class:`ReproError`
    with the offending shapes.
    """
    path = Path(path)
    try:
        data = np.load(path)
    except FileNotFoundError:
        raise
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise ReproError(f"not a valid embedding bundle: {path} ({exc})"
                         ) from exc
    with data:
        try:
            meta = json.loads(bytes(data["metadata"].tobytes()).decode())
            name, directional = meta.pop("name"), meta.pop("directional")
        except (KeyError, ValueError) as exc:
            raise ReproError(f"embedding bundle {path} has a missing or "
                             f"corrupt metadata record ({exc})") from exc
        embedding = data["embedding"] if "embedding" in data else None
        forward = data["forward"] if "forward" in data else None
        backward = data["backward"] if "backward" in data else None
        validate_embedding_matrices(name, directional=directional,
                                    embedding=embedding, forward=forward,
                                    backward=backward)
        # bundles written before lp_scoring / custom_scoring existed
        # default to "inner" / False, the old behavior
        bundle = EmbeddingBundle(
            name=name, directional=directional, embedding=embedding,
            forward=forward, backward=backward,
            lp_scoring=meta.pop("lp_scoring", "inner"),
            custom_scoring=bool(meta.pop("custom_scoring", False)),
            metadata=meta)
        for extra in ("w_fwd", "w_bwd"):
            if extra in data:
                bundle.metadata[extra] = data[extra]
    return bundle


def export_store(source, root: str | Path, *, metadata: dict | None = None):
    """Write ``source`` as an mmap-able store directory.

    Convenience re-export of :func:`repro.serving.store.export_store`;
    see that module for the format.
    """
    from .serving.store import export_store as _export   # lazy: no cycle
    return _export(source, root, metadata=metadata)


def load_store(root: str | Path, *, mmap: bool = True):
    """Open an :class:`repro.serving.EmbeddingStore` directory."""
    from .serving.store import EmbeddingStore   # lazy: no cycle
    return EmbeddingStore.open(root, mmap=mmap)
