"""Experiment harness shared by the per-figure benchmark scripts.

Centralizes three things the figures repeat: (1) the bench scale knob
(``REPRO_BENCH_SCALE`` env var), (2) per-method constructor overrides
that keep the slow walk/neural baselines tractable on the larger
analogues, and (3) fit-and-evaluate helpers that return both quality
and wall-clock time.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..baselines import make_embedder
from ..datasets import Dataset, load_dataset
from ..embedder import Embedder
from ..graph import Graph, link_prediction_split
from ..graph.splits import LinkPredictionSplit
from ..ml import auc_score
from ..rng import spawn_rngs
from ..tasks import evaluate_link_prediction, score_test_pairs

__all__ = ["bench_scale", "load_bench_dataset", "BENCH_OVERRIDES",
           "build_method", "FitResult", "fit_timed", "link_prediction_auc",
           "evolving_auc", "SMALL_METHOD_SET", "FULL_METHOD_SET"]

#: Constructor overrides applied by the bench harness. Two kinds:
#: (1) corpus-size reductions so the expensive walk/neural baselines
#: finish in bench time (the paper's point that they are slow is made by
#: Fig. 7's timing, which uses the same overrides for fairness), and
#: (2) scale calibrations for absolute hyperparameters: the paper tuned
#: lambda = 10 (NRP) and delta = 1e-5 (STRAP) on graphs 100-1000x larger
#: than our laptop analogues, so the regularizer shrinks and the PPR
#: threshold grows by the corresponding factor (see DESIGN.md section 4).
BENCH_OVERRIDES: dict[str, dict] = {
    "nrp": {"lam": 0.1},
    "strap": {"delta": 1e-4},
    "deepwalk": {"walks_per_node": 4, "walk_length": 20, "epochs": 1},
    "node2vec": {"walks_per_node": 4, "walk_length": 20, "epochs": 1},
    "line": {"samples_per_edge": 20},
    "app": {"samples_per_node": 200, "epochs": 3, "lr": 0.05},
    "verse": {"samples_per_node": 200, "epochs": 3, "lr": 0.05},
    "dngr": {"epochs": 8},
    "graphgan": {"rounds": 5},
}

#: Methods cheap enough for every figure at any analogue size.
SMALL_METHOD_SET = ("nrp", "approxppr", "arope", "randne", "prone", "strap")
#: The full roster, used on the small analogues (Figs. 4-6 style).
FULL_METHOD_SET = ("nrp", "approxppr", "strap", "app", "verse", "arope",
                   "randne", "prone", "netmf", "netsmf", "deepwalk", "line",
                   "node2vec", "pbg", "dngr", "drne", "graphgan", "ga",
                   "rare", "nethiex", "graphwave", "spectral")


def bench_scale(default: float = 1.0) -> float:
    """The global bench scale from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", default))
    except ValueError:
        return default


def load_bench_dataset(name: str) -> Dataset:
    """Dataset at the harness scale."""
    return load_dataset(name, scale=bench_scale())


def build_method(name: str, dim: int, *, seed: int = 0,
                 **extra) -> Embedder:
    """Instantiate a method with bench overrides + call-site extras."""
    kwargs = dict(BENCH_OVERRIDES.get(name.lower(), {}))
    kwargs.update(extra)
    return make_embedder(name, dim, seed=seed, **kwargs)


@dataclass(frozen=True)
class FitResult:
    """An embedder fitted on a graph plus its wall-clock cost."""

    embedder: Embedder
    seconds: float


def fit_timed(embedder: Embedder, graph: Graph) -> FitResult:
    """Fit and report wall-clock seconds (paper Fig. 7/10/11 measure)."""
    start = time.perf_counter()
    with obs.trace("bench.fit", method=getattr(embedder, "name",
                                               type(embedder).__name__)):
        embedder.fit(graph)
    seconds = time.perf_counter() - start
    if obs.enabled():
        obs.get_registry().histogram(
            "bench_fit_seconds",
            {"method": getattr(embedder, "name",
                               type(embedder).__name__)}).observe(seconds)
    return FitResult(embedder, seconds)


def link_prediction_auc(method: str, dataset: Dataset, dim: int, *,
                        seed: int = 0, test_fraction: float = 0.3,
                        ) -> tuple[float, float]:
    """(AUC, fit seconds) for one method on one dataset's LP split."""
    split_rng, eval_rng = spawn_rngs(seed + hash(dataset.name) % 1000, 2)
    split = link_prediction_split(dataset.graph, test_fraction=test_fraction,
                                  seed=split_rng)
    fitted = fit_timed(build_method(method, dim, seed=seed),
                       split.train_graph)
    result = evaluate_link_prediction(fitted.embedder, split, seed=eval_rng)
    return result.auc, fitted.seconds


def evolving_auc(method: str, old_graph: Graph, new_src: np.ndarray,
                 new_dst: np.ndarray, dim: int, *, seed: int = 0) -> float:
    """Figure-9 protocol: embed E_old, rank E_new against non-edges."""
    from ..graph import sample_non_edges    # local import to avoid cycles

    neg_rng, eval_rng = spawn_rngs(seed, 2)
    held = new_src * np.int64(old_graph.num_nodes) + new_dst
    neg_src, neg_dst = sample_non_edges(old_graph, len(new_src),
                                        seed=neg_rng,
                                        forbidden_keys=np.sort(held))
    fitted = fit_timed(build_method(method, 64, seed=seed), old_graph)
    split = LinkPredictionSplit(old_graph, new_src, new_dst,
                                neg_src, neg_dst)
    scores, labels = score_test_pairs(fitted.embedder, split, seed=eval_rng)
    return auc_score(labels, scores)
