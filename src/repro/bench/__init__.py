"""Benchmark harness: scale control, method overrides, result tables."""

from .harness import (BENCH_OVERRIDES, FULL_METHOD_SET, SMALL_METHOD_SET,
                      FitResult, bench_scale, build_method, evolving_auc,
                      fit_timed, link_prediction_auc, load_bench_dataset)
from .tables import format_series_block, format_table

__all__ = [
    "bench_scale", "load_bench_dataset", "BENCH_OVERRIDES", "build_method",
    "FitResult", "fit_timed", "link_prediction_auc", "evolving_auc",
    "SMALL_METHOD_SET", "FULL_METHOD_SET",
    "format_table", "format_series_block",
]
