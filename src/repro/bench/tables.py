"""Paper-style ASCII tables and series for the benchmark output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series_block"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 *, float_fmt: str = "{:.4f}") -> str:
    """Left-aligned first column, right-aligned numeric columns."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(parts)

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out += [line(row) for row in str_rows]
    return "\n".join(out)


def format_series_block(title: str, x_label: str, xs: Sequence,
                        series: dict[str, Sequence[float]],
                        *, float_fmt: str = "{:.4f}") -> str:
    """One figure's data as a table: methods as rows, x values as columns."""
    headers = [x_label, *[str(x) for x in xs]]
    rows = [[name, *values] for name, values in series.items()]
    table = format_table(headers, rows, float_fmt=float_fmt)
    bar = "=" * max(len(title), len(table.split("\n", 1)[0]))
    return f"\n{bar}\n{title}\n{bar}\n{table}\n"
