"""Gaussian random projections (the RandNE baseline's core primitive)."""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["gaussian_projection", "orthogonal_projection"]


def gaussian_projection(matrix, dim: int, *, seed=None) -> np.ndarray:
    """Project the rows of ``matrix`` to ``dim`` dimensions with a Gaussian map.

    Entries are ``N(0, 1/dim)`` so squared row norms are preserved in
    expectation (Johnson–Lindenstrauss).
    """
    if dim < 1:
        raise ParameterError("projection dim must be >= 1")
    rng = ensure_rng(seed)
    r = rng.standard_normal((matrix.shape[1], dim)) / np.sqrt(dim)
    return np.asarray(matrix @ r)


def orthogonal_projection(matrix, dim: int, *, seed=None) -> np.ndarray:
    """Projection with an orthonormalized Gaussian map (RandNE's choice)."""
    if dim < 1:
        raise ParameterError("projection dim must be >= 1")
    rng = ensure_rng(seed)
    r = rng.standard_normal((matrix.shape[1], dim))
    q, _ = np.linalg.qr(r)
    return np.asarray(matrix @ q)
