"""Deterministic wrappers around scipy's sparse eigensolvers."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import ParameterError
from .bksvd import _fix_signs

__all__ = ["sparse_svd", "sparse_eigsh"]


def sparse_svd(matrix, rank: int, *, seed: int = 0,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-``rank`` SVD via Lanczos (``scipy svds``) with fixed start vector.

    Results are returned in descending singular-value order with a
    deterministic sign convention, so embeddings built on top are
    reproducible across runs.
    """
    n, d = matrix.shape
    if rank < 1 or rank >= min(n, d):
        raise ParameterError(f"rank must be in [1, {min(n, d) - 1}]")
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(min(n, d))
    u, s, vt = spla.svds(matrix.astype(np.float64), k=rank, v0=v0)
    order = np.argsort(s)[::-1]
    u, s, v = u[:, order], s[order], vt[order].T
    u, v = _fix_signs(u, v)
    return u, s, v


def sparse_eigsh(matrix, rank: int, *, which: str = "LA", seed: int = 0,
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Top-``rank`` eigenpairs of a symmetric sparse matrix (descending)."""
    n = matrix.shape[0]
    if rank < 1 or rank >= n:
        raise ParameterError(f"rank must be in [1, {n - 1}]")
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    vals, vecs = spla.eigsh(matrix.astype(np.float64), k=rank, which=which,
                            v0=v0)
    order = np.argsort(vals)[::-1]
    vals, vecs = vals[order], vecs[:, order]
    idx = np.argmax(np.abs(vecs), axis=0)
    signs = np.sign(vecs[idx, np.arange(vecs.shape[1])])
    signs[signs == 0] = 1.0
    return vals, vecs * signs
