"""Randomized Block Krylov SVD (Musco & Musco, NeurIPS 2015).

This is the ``BKSVD`` routine that Algorithm 1 of the NRP paper calls to
factorize the adjacency matrix: given a sparse ``A`` and rank ``k'`` it
returns ``U, sigma, V`` with ``U diag(sigma) V^T ~= A`` and a
``(1 + eps)``-relative spectral-norm guarantee after
``O(log n / sqrt(eps))`` iterations.

The implementation follows Algorithm 2 of Musco & Musco:

1. draw a Gaussian block ``Pi`` of ``k'`` columns,
2. build the Krylov basis ``K = [A Pi, (A A^T) A Pi, ...]``
   (each block QR-orthonormalized for numerical stability),
3. orthonormalize ``K`` into ``Q``,
4. eigendecompose the small matrix ``M = Q^T A A^T Q``,
5. read off the top-``k'`` singular triplets.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["bksvd", "default_krylov_iterations"]


def default_krylov_iterations(num_rows: int, eps: float) -> int:
    """The paper-suggested iteration count ``O(log n / sqrt(eps))``, clamped.

    The theoretical constant is small in practice; we clamp to [4, 15] so
    the routine stays fast on large graphs while matching the guarantee
    regime used in the paper's experiments (eps in [0.1, 0.9]).
    """
    if eps <= 0:
        raise ParameterError("eps must be positive")
    raw = math.ceil(math.log(max(num_rows, 2)) / math.sqrt(eps) / 2.0)
    return int(min(15, max(4, raw)))


def _fix_signs(u: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Make the SVD deterministic: largest-|entry| of each u-column positive."""
    idx = np.argmax(np.abs(u), axis=0)
    signs = np.sign(u[idx, np.arange(u.shape[1])])
    signs[signs == 0] = 1.0
    return u * signs, v * signs


def bksvd(matrix, rank: int, *, eps: float = 0.2,
          num_iters: int | None = None, max_krylov_cols: int = 512,
          seed=None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate top-``rank`` SVD of a (sparse) matrix.

    Parameters
    ----------
    matrix:
        ``(n, d)`` array or scipy sparse matrix; only matvec products are
        used, so sparse inputs are never densified.
    rank:
        Number of singular triplets to return.
    eps:
        Relative spectral-norm error target; sets the default iteration
        count via :func:`default_krylov_iterations`.
    num_iters:
        Explicit Krylov depth ``q`` (overrides ``eps``-derived default).
    max_krylov_cols:
        Memory guard: the Krylov basis has ``rank * (q + 1)`` columns;
        ``q`` is reduced if the basis would exceed this many columns.

    Returns
    -------
    (U, sigma, V):
        ``U`` is ``(n, rank)``, ``sigma`` descending ``(rank,)``,
        ``V`` is ``(d, rank)``; ``U @ diag(sigma) @ V.T ~= matrix``.
    """
    n, d = matrix.shape
    if rank < 1 or rank > min(n, d):
        raise ParameterError(f"rank={rank} out of range for shape {(n, d)}")
    rng = ensure_rng(seed)
    q = num_iters if num_iters is not None else default_krylov_iterations(n, eps)
    if rank * (q + 1) > max_krylov_cols:
        q = max(1, max_krylov_cols // rank - 1)

    omega = rng.standard_normal((d, rank))
    block = matrix @ omega
    block, _ = np.linalg.qr(block)
    krylov = [block]
    for _ in range(q):
        block = matrix @ (matrix.T @ block)
        block, _ = np.linalg.qr(block)
        krylov.append(block)
    basis, _ = np.linalg.qr(np.hstack(krylov))

    # M = Q^T (A A^T) Q computed as W W^T with W = Q^T A.
    w = (matrix.T @ basis).T if hasattr(matrix, "T") else basis.T @ matrix
    w = np.asarray(w)
    small = w @ w.T
    eigvals, eigvecs = np.linalg.eigh(small)
    order = np.argsort(eigvals)[::-1][:rank]
    eigvals = np.maximum(eigvals[order], 0.0)
    u = basis @ eigvecs[:, order]
    sigma = np.sqrt(eigvals)

    # Right singular vectors: V = A^T U Sigma^{-1} (guard tiny sigmas).
    safe = np.where(sigma > 1e-12, sigma, 1.0)
    v = np.asarray(matrix.T @ u) / safe
    u, v = _fix_signs(u, v)
    return u, sigma, v
