"""Linear-algebra substrate: randomized SVDs, projections, PPMI, filters."""

from .bksvd import bksvd, default_krylov_iterations
from .chebyshev import apply_chebyshev_filter, chebyshev_coefficients
from .operators import BlockSparseOperator
from .ppmi import deepwalk_matrix_dense, ppmi_dense, ppmi_sparse
from .projections import gaussian_projection, orthogonal_projection
from .rsvd import randomized_svd
from .sparse_svd import sparse_eigsh, sparse_svd

__all__ = [
    "bksvd", "default_krylov_iterations", "randomized_svd",
    "BlockSparseOperator",
    "gaussian_projection", "orthogonal_projection",
    "ppmi_dense", "ppmi_sparse", "deepwalk_matrix_dense",
    "chebyshev_coefficients", "apply_chebyshev_filter",
    "sparse_svd", "sparse_eigsh",
]
