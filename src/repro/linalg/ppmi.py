"""Positive pointwise mutual information matrices.

The PPMI transform is the bridge between random-walk co-occurrence counts
and matrix factorization: NetMF/NetSMF factorize the PPMI of the DeepWalk
co-occurrence expectation, and DNGR feeds a PPMI matrix to an autoencoder.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import ParameterError

__all__ = ["ppmi_dense", "ppmi_sparse", "deepwalk_matrix_dense"]


def ppmi_dense(cooc: np.ndarray, *, shift: float = 1.0) -> np.ndarray:
    """``max(0, log(#(w,c) |D| / (#w #c) / shift))`` for a dense count matrix."""
    if shift <= 0:
        raise ParameterError("shift must be positive")
    cooc = np.asarray(cooc, dtype=np.float64)
    total = cooc.sum()
    if total <= 0:
        return np.zeros_like(cooc)
    row = cooc.sum(axis=1, keepdims=True)
    col = cooc.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(cooc * total / (row @ col) / shift)
    pmi[~np.isfinite(pmi)] = 0.0
    return np.maximum(pmi, 0.0)


def ppmi_sparse(cooc: sp.spmatrix, *, shift: float = 1.0) -> sp.csr_matrix:
    """Sparse PPMI: zero counts stay zero (their PMI is ``-inf`` -> clipped)."""
    if shift <= 0:
        raise ParameterError("shift must be positive")
    c = sp.csr_matrix(cooc, dtype=np.float64)
    total = c.sum()
    if total <= 0:
        return sp.csr_matrix(c.shape)
    row = np.asarray(c.sum(axis=1)).ravel()
    col = np.asarray(c.sum(axis=0)).ravel()
    coo = c.tocoo()
    denom = row[coo.row] * col[coo.col]
    vals = np.log(coo.data * total / denom / shift)
    vals = np.maximum(vals, 0.0)
    out = sp.csr_matrix((vals, (coo.row, coo.col)), shape=c.shape)
    out.eliminate_zeros()
    return out


def deepwalk_matrix_dense(adjacency: sp.spmatrix, window: int,
                          negatives: float = 1.0) -> np.ndarray:
    """NetMF's closed-form DeepWalk matrix (dense; small graphs only).

    ``M = log^+( vol(G)/(b T) * (sum_{r=1..T} P^r) D^{-1} )`` where ``P``
    is the random-walk matrix, ``T`` the window and ``b`` the number of
    negative samples (Qiu et al., WSDM 2018, Theorem 2.3).
    """
    a = sp.csr_matrix(adjacency, dtype=np.float64)
    deg = np.asarray(a.sum(axis=1)).ravel()
    deg_safe = np.where(deg > 0, deg, 1.0)
    vol = deg.sum()
    p = sp.diags(1.0 / deg_safe) @ a
    power = sp.identity(a.shape[0], format="csr")
    acc = np.zeros(a.shape, dtype=np.float64)
    for _ in range(window):
        power = power @ p
        acc += power.toarray()
    m = (vol / (negatives * window)) * acc / deg_safe[None, :]
    with np.errstate(divide="ignore"):
        logm = np.log(np.maximum(m, 1e-12))
    return np.maximum(logm, 0.0)
