"""Simple randomized SVD (Halko, Martinsson & Tropp 2011).

Used as the cheaper alternative to :func:`repro.linalg.bksvd.bksvd` in the
SVD-initialization ablation, and as the factorization backend of several
baseline methods (NetSMF, STRAP).
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng
from .bksvd import _fix_signs

__all__ = ["randomized_svd"]


def randomized_svd(matrix, rank: int, *, oversample: int = 10,
                   power_iters: int = 4, seed=None,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Approximate top-``rank`` SVD via the range-finder + power scheme.

    Cheaper than block-Krylov (one basis of ``rank + oversample`` columns)
    but with a weaker error guarantee; see Halko et al. for the analysis.
    """
    n, d = matrix.shape
    if rank < 1 or rank > min(n, d):
        raise ParameterError(f"rank={rank} out of range for shape {(n, d)}")
    rng = ensure_rng(seed)
    cols = min(rank + oversample, min(n, d))
    basis = matrix @ rng.standard_normal((d, cols))
    basis, _ = np.linalg.qr(basis)
    for _ in range(power_iters):
        basis = matrix @ (matrix.T @ basis)
        basis, _ = np.linalg.qr(basis)

    w = np.asarray((matrix.T @ basis)).T  # (cols, d)
    small = w @ w.T
    eigvals, eigvecs = np.linalg.eigh(small)
    order = np.argsort(eigvals)[::-1][:rank]
    eigvals = np.maximum(eigvals[order], 0.0)
    u = basis @ eigvecs[:, order]
    sigma = np.sqrt(eigvals)
    safe = np.where(sigma > 1e-12, sigma, 1.0)
    v = np.asarray(matrix.T @ u) / safe
    u, v = _fix_signs(u, v)
    return u, sigma, v
