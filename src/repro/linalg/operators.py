"""Block-sparse linear operators for the chunked fit pipeline.

:class:`BlockSparseOperator` wraps a scipy CSR matrix and evaluates
``op @ dense`` one row-chunk at a time, optionally fanning the chunks
out to worker processes. Two properties make it a drop-in replacement
for the raw matrix inside :func:`repro.linalg.bksvd` /
:func:`repro.linalg.randomized_svd` (which only ever form matrix–block
products):

* each output row is computed with exactly the arithmetic a full CSR
  product uses, so the result is **bit-identical** to ``csr @ dense``
  for any chunk grid or worker count;
* the transpose is materialized once as CSR (rows of ``A^T``), so
  ``op.T @ dense`` is row-chunkable the same way — and accumulates each
  output element in the same ascending-index order scipy's CSC kernel
  uses, preserving bit-identity there too.

Peak dense memory per task is one ``chunk_size x k`` block, which is
what lets the SVD stage run on graphs whose full dense product would
not fit alongside the rest of the pipeline.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import DimensionError
from ..parallel import parallel_map, payload
from ..ppr.chunks import iter_chunks

__all__ = ["BlockSparseOperator"]


def _matmul_chunk(bounds: tuple[int, int]) -> np.ndarray:
    matrix, dense = payload()
    start, stop = bounds
    return np.asarray(matrix[start:stop] @ dense)


class BlockSparseOperator:
    """A CSR matrix evaluated in row chunks, optionally in parallel.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix; converted to CSR once.
    chunk_size:
        Rows per block (``None`` = package default grid).
    workers:
        Worker processes for the chunk map; 1 = in-process.
    """

    def __init__(self, matrix, *, chunk_size: int | None = None,
                 workers: int = 1) -> None:
        self._matrix = sp.csr_matrix(matrix)
        self.chunk_size = chunk_size
        self.workers = workers
        self._transpose: "BlockSparseOperator | None" = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    @property
    def dtype(self):
        return self._matrix.dtype

    @property
    def matrix(self) -> sp.csr_matrix:
        """The wrapped CSR matrix."""
        return self._matrix

    @property
    def T(self) -> "BlockSparseOperator":
        """The transposed operator (transpose materialized as CSR once)."""
        if self._transpose is None:
            t_csr = self._matrix.T.tocsr()
            t_csr.sort_indices()
            self._transpose = BlockSparseOperator(
                t_csr, chunk_size=self.chunk_size, workers=self.workers)
            self._transpose._transpose = self
        return self._transpose

    # ------------------------------------------------------------------
    def __matmul__(self, dense) -> np.ndarray:
        dense = np.asarray(dense)
        if dense.ndim not in (1, 2) or dense.shape[0] != self.shape[1]:
            raise DimensionError(
                f"operand of shape {dense.shape} does not match operator "
                f"shape {self.shape}")
        rows = self.shape[0]
        bounds = list(iter_chunks(rows, self.chunk_size))
        blocks = parallel_map(_matmul_chunk, bounds, workers=self.workers,
                              payload=(self._matrix, dense))
        if len(blocks) == 1:
            return blocks[0]
        return np.concatenate(blocks, axis=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockSparseOperator(shape={self.shape}, "
                f"nnz={self._matrix.nnz}, chunk_size={self.chunk_size}, "
                f"workers={self.workers})")
