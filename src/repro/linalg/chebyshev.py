"""Chebyshev approximation of spectral matrix functions.

Lets us apply ``g(L) X`` for a symmetric operator ``L`` with known
spectral interval without eigendecomposition — the primitive behind the
ProNE spectral-propagation baseline (band-pass Gaussian filter) and the
GraphWave baseline (heat kernel ``exp(-s L)``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ParameterError

__all__ = ["chebyshev_coefficients", "apply_chebyshev_filter"]


def chebyshev_coefficients(func: Callable[[np.ndarray], np.ndarray],
                           order: int, interval: tuple[float, float],
                           num_points: int | None = None) -> np.ndarray:
    """Coefficients ``c_0..c_order`` of ``func`` on ``interval``.

    Uses Chebyshev–Gauss quadrature: exact for polynomials up to the
    quadrature size and numerically stable for the smooth filters we use.
    The expansion is ``func(x) ~= c_0/2 + sum_{j>=1} c_j T_j(t(x))`` where
    ``t`` maps ``interval`` to ``[-1, 1]``.
    """
    if order < 0:
        raise ParameterError("order must be nonnegative")
    lo, hi = interval
    if hi <= lo:
        raise ParameterError("interval must have positive length")
    npts = num_points or max(order + 1, 64)
    theta = (np.arange(npts) + 0.5) * np.pi / npts
    x = np.cos(theta)                       # quadrature nodes in [-1, 1]
    fx = func((x + 1.0) * (hi - lo) / 2.0 + lo)
    j = np.arange(order + 1)[:, None]
    return (2.0 / npts) * (np.cos(j * theta[None, :]) * fx[None, :]).sum(axis=1)


def apply_chebyshev_filter(matvec: Callable[[np.ndarray], np.ndarray],
                           signal: np.ndarray, coeffs: np.ndarray,
                           interval: tuple[float, float]) -> np.ndarray:
    """Evaluate ``g(L) @ signal`` from Chebyshev coefficients of ``g``.

    ``matvec`` applies the operator ``L`` (e.g. a sparse Laplacian);
    ``interval`` must contain the spectrum of ``L``. Standard three-term
    recurrence on the shifted operator ``(2 L - (hi+lo) I) / (hi-lo)``.
    """
    lo, hi = interval
    if hi <= lo:
        raise ParameterError("interval must have positive length")
    center = (hi + lo) / 2.0
    half = (hi - lo) / 2.0

    def shifted(x: np.ndarray) -> np.ndarray:
        return (matvec(x) - center * x) / half

    t_prev = signal
    result = 0.5 * coeffs[0] * t_prev
    if len(coeffs) == 1:
        return result
    t_curr = shifted(signal)
    result = result + coeffs[1] * t_curr
    for c in coeffs[2:]:
        t_next = 2.0 * shifted(t_curr) - t_prev
        result = result + c * t_next
        t_prev, t_curr = t_curr, t_next
    return result
