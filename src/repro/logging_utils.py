"""Lightweight timing and progress helpers used by the bench harness."""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager

__all__ = ["get_logger", "Timer", "timed"]

_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger (or a child of it)."""
    if name:
        return logging.getLogger(f"{_LOGGER_NAME}.{name}")
    return logging.getLogger(_LOGGER_NAME)


class Timer:
    """Accumulating wall-clock timer.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None


@contextmanager
def timed(label: str, logger: logging.Logger | None = None):
    """Context manager logging the wall-clock duration of a block."""
    log = logger or get_logger()
    start = time.perf_counter()
    yield
    log.debug("%s took %.3fs", label, time.perf_counter() - start)
