"""Lightweight timing and logging helpers shared across the package.

The richer observability surface (metrics, tracing, exporters) lives in
:mod:`repro.obs`, which re-exports everything here so call sites need a
single import. This module stays dependency-free and import-cheap: it
is pulled in by the hot serving paths.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager

__all__ = ["get_logger", "configure_logging", "Timer", "timed"]

_LOGGER_NAME = "repro"

#: Levels accepted by :func:`configure_logging` (lowercase names).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger (or a child of it)."""
    if name:
        return logging.getLogger(f"{_LOGGER_NAME}.{name}")
    return logging.getLogger(_LOGGER_NAME)


def configure_logging(level: str | int = "info", *, stream=None,
                      fmt: str | None = None) -> logging.Logger:
    """Configure the package logger once and return it.

    The single helper every CLI threads its ``--log-level`` flag
    through: sets the ``repro`` logger's level and attaches one stderr
    :class:`~logging.StreamHandler` (idempotent — repeated calls adjust
    the level without stacking handlers). ``level`` is a name from
    :data:`LOG_LEVELS` (any case) or a :mod:`logging` integer.
    """
    if isinstance(level, str):
        name = level.strip().lower()
        if name not in LOG_LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {LOG_LEVELS}")
        resolved = getattr(logging, name.upper())
    else:
        resolved = int(level)
    logger = get_logger()
    handler = next((h for h in logger.handlers
                    if getattr(h, "_repro_configured", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_configured = True
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setFormatter(logging.Formatter(
        fmt or "%(asctime)s %(name)s %(levelname)s %(message)s"))
    logger.setLevel(resolved)
    return logger


class Timer:
    """Accumulating wall-clock timer.

    Re-entrant: nesting ``with t:`` blocks (or re-using one timer from
    code that may already hold it open) accumulates the *outermost*
    span once instead of double-counting, and a stray ``__exit__``
    without a matching ``__enter__`` is a no-op rather than a crash.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None
        self._depth = 0

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc) -> None:
        if self._depth == 0:
            return                      # unmatched exit: tolerate, not crash
        self._depth -= 1
        if self._depth == 0 and self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None


@contextmanager
def timed(label: str, logger: logging.Logger | None = None,
          level: int = logging.DEBUG):
    """Context manager logging the wall-clock duration of a block.

    The duration is logged even when the block raises (annotated as
    ``failed``), so a crashing stage still leaves its timing in the log.
    """
    log = logger or get_logger()
    start = time.perf_counter()
    failed = False
    try:
        yield
    except BaseException:
        failed = True
        raise
    finally:
        suffix = " (failed)" if failed else ""
        log.log(level, "%s took %.3fs%s", label,
                time.perf_counter() - start, suffix)
