"""Seeded random-number helpers.

Every stochastic routine in the package accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and routes it through
:func:`ensure_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` yields a
    deterministic one, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used when a pipeline has several stochastic stages (e.g. SVD sketching
    followed by negative sampling) that must not share a stream.
    """
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.integers(0, 2**63 - 1, size=count)]
