"""``repro-stream``: tail an edge-delta file into a fresh serving store.

The streaming half of the pipeline in one command::

    repro-stream base_graph.txt deltas.txt store_root/ --batch-size 1000

fits :class:`repro.NRP` on the base edge list (whitespace ``src dst``
lines, as ``repro-fit`` reads), publishes version 1 of a *versioned
store root*, then consumes the delta file: each line is

.. code-block:: text

    + src dst      # edge insert ("+" may be omitted)
    - src dst      # edge delete
    # comment

Every ``--batch-size`` deltas (and at end of input) the accumulated
batch flows through :class:`repro.streaming.StreamingUpdater` —
incremental PPR sketch repair, warm reweighting, drift-escalated full
refit — and the refreshed model is published as the next immutable
version, with the ``CURRENT`` pointer renamed atomically so concurrent
readers (``repro-serve query``, :func:`repro.serving.open_current`)
never observe a torn store. With ``--follow`` the file is re-polled for
appended lines, turning a plain file into a poor-man's delta queue.

One JSON line per event (fit, batch, publish) goes to stdout.

Installed as a console script by ``setup.py``; also runnable as
``python -m repro.cli_stream``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import obs
from .errors import ParameterError, ReproError

__all__ = ["main", "build_parser", "parse_delta_line"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Tail an edge-delta file and keep a versioned "
                    "serving store fresh without full refits.")
    parser.add_argument("edgelist", help="base 'src dst' edge-list file")
    parser.add_argument("deltas", help="edge-delta file ('[+|-] src dst')")
    parser.add_argument("store", help="versioned store root directory")
    parser.add_argument("--directed", action="store_true",
                        help="treat edges as directed arcs")
    parser.add_argument("--num-nodes", type=int, default=None,
                        help="node count (default: max id + 1; deltas may "
                             "not grow it)")
    parser.add_argument("--dim", type=int, default=128,
                        help="total embedding dimension k (default 128)")
    parser.add_argument("--alpha", type=float, default=0.15,
                        help="PPR termination probability (default 0.15)")
    parser.add_argument("--ell1", type=int, default=20,
                        help="PPR truncation length (default 20)")
    parser.add_argument("--ell2", type=int, default=10,
                        help="reweighting epochs of the cold fit "
                             "(default 10)")
    parser.add_argument("--eps", type=float, default=0.2,
                        help="SVD error target (default 0.2)")
    parser.add_argument("--lam", type=float, default=10.0,
                        help="reweighting regularization (default 10)")
    parser.add_argument("--svd", default="bksvd", choices=("bksvd", "rsvd"),
                        help="factorization backend (default bksvd)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default 0)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="rows per chunk for the chunked engines")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for chunked stages")
    parser.add_argument("--name", default=None,
                        help="store name (default: the method's name)")
    parser.add_argument("--batch-size", type=int, default=1000,
                        help="deltas per update batch (default 1000)")
    parser.add_argument("--warm-epochs", type=int, default=None,
                        help="reweighting sweep pairs per batch "
                             "(default: ell2 // 5, at least 1)")
    parser.add_argument("--drift-threshold", type=float, default=0.2,
                        help="weight drift escalating to a full refit "
                             "(default 0.2; 0 disables)")
    parser.add_argument("--max-staleness", type=float, default=0.25,
                        help="basis staleness escalating to a full refit "
                             "(default 0.25; 0 disables)")
    parser.add_argument("--refresh-tol", type=float, default=1e-8,
                        help="incremental PPR residue threshold "
                             "(default 1e-8)")
    parser.add_argument("--keep-versions", type=int, default=None,
                        help="prune the store root to its newest N "
                             "versions after each publish")
    parser.add_argument("--shards", type=int, default=None,
                        help="publish each version as N node-range "
                             "shards (default: one flat store)")
    parser.add_argument("--follow", action="store_true",
                        help="poll the delta file for appended lines "
                             "instead of stopping at EOF")
    parser.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between polls with --follow "
                             "(default 0.5)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        help="stop --follow after this many idle seconds "
                             "(default: follow forever)")
    parser.add_argument("--max-batches", type=int, default=None,
                        help="stop after publishing this many update "
                             "batches (mostly for tests)")
    obs.add_observability_flags(parser, interval=True)
    return parser


def parse_delta_line(line: str, lineno: int) -> tuple[int, int, int] | None:
    """Parse one delta line into ``(sign, src, dst)``; None for blanks."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    parts = line.split()
    sign = +1
    if parts[0] in ("+", "-"):
        sign = +1 if parts[0] == "+" else -1
        parts = parts[1:]
    if len(parts) != 2:
        raise ReproError(
            f"delta line {lineno}: expected '[+|-] src dst', got {line!r}")
    try:
        return sign, int(parts[0]), int(parts[1])
    except ValueError:
        raise ReproError(
            f"delta line {lineno}: non-integer node id in {line!r}"
            ) from None


def _emit(record: dict) -> None:
    print(json.dumps(record), flush=True)


class _MetricsDumper:
    """Periodic Prometheus text dump to stderr (``--metrics-interval``).

    The stream loop calls :meth:`tick` at its natural pause points
    (after a batch, between polls); the dump fires when the interval
    has elapsed, so a quiet stream does not spam stderr.
    """

    def __init__(self, interval: float | None) -> None:
        self.interval = interval
        self._last = time.perf_counter()

    def tick(self, *, force: bool = False) -> None:
        if self.interval is None:
            return
        now = time.perf_counter()
        if force or now - self._last >= self.interval:
            print(obs.to_prometheus_text(), file=sys.stderr, flush=True)
            self._last = now


def _flush_batch(updater, batch: list[tuple[int, int, int]],
                 args) -> dict:
    # Net the batch in file order before handing it to apply_batch
    # (which applies all inserts, then all deletes): '+ e' followed by
    # '- e' cancels and '- e' followed by '+ e' restores the base edge
    # — DeltaGraph's own net semantics — so order-dependent sequences
    # like delete-then-reinsert survive the batching.
    net: dict[tuple[int, int], int] = {}
    for s, u, v in batch:
        key = (u, v)
        level = net.get(key, 0) + s
        if abs(level) > 1:
            word = "inserts" if s > 0 else "deletes"
            raise ReproError(
                f"delta batch {word} edge ({u}, {v}) twice in a row")
        net[key] = level
    add = [k for k, s in net.items() if s > 0]
    rem = [k for k, s in net.items() if s < 0]
    stats = updater.apply_batch(
        [u for u, _ in add], [v for _, v in add],
        remove_src=[u for u, _ in rem], remove_dst=[v for _, v in rem])
    store = updater.publish(args.store, keep=args.keep_versions,
                            shards=args.shards)
    stats.update({"event": "batch", "version": store.version,
                  "store": str(store.root)})
    return stats


def run_stream(args) -> int:
    from .core import NRP
    from .graph.build import read_edge_list
    from .streaming import StreamingConfig, StreamingUpdater

    if args.batch_size < 1:
        raise ParameterError("--batch-size must be >= 1")
    if args.shards is not None and args.shards < 1:
        raise ParameterError("--shards must be >= 1")
    start = time.perf_counter()
    graph = read_edge_list(args.edgelist, directed=args.directed,
                           num_nodes=args.num_nodes)
    if graph.num_nodes == 0:
        raise ReproError(f"edge list {args.edgelist!r} contains no nodes")
    model = NRP(dim=args.dim, alpha=args.alpha, ell1=args.ell1,
                ell2=args.ell2, eps=args.eps, lam=args.lam, svd=args.svd,
                seed=args.seed, chunk_size=args.chunk_size,
                workers=args.workers, keep_factor_state=True)
    config = StreamingConfig(
        refresh_tol=args.refresh_tol,
        warm_epochs=args.warm_epochs,
        drift_threshold=args.drift_threshold or None,
        max_staleness=args.max_staleness or None)
    updater = StreamingUpdater(graph, model, config=config)
    if args.name is not None:
        model.name = args.name
    _emit({"event": "fit", "num_nodes": graph.num_nodes,
           "num_edges": graph.num_edges,
           "seconds": round(time.perf_counter() - start, 3)})
    store = updater.publish(args.store, keep=args.keep_versions,
                            shards=args.shards)
    _emit({"event": "publish", "version": store.version,
           "store": str(store.root)})

    dumper = _MetricsDumper(getattr(args, "metrics_interval", None))
    batch: list[tuple[int, int, int]] = []
    batches_done = 0
    idle = 0.0
    lineno = 0
    with open(args.deltas, "r", encoding="utf-8") as fh:
        while True:
            if (args.max_batches is not None
                    and batches_done >= args.max_batches):
                break
            pos = fh.tell() if args.follow else None
            line = fh.readline()
            if line and (not args.follow or line.endswith("\n")):
                idle = 0.0
                lineno += 1
                parsed = parse_delta_line(line, lineno)
                if parsed is None:
                    continue
                batch.append(parsed)
                if len(batch) >= args.batch_size:
                    _emit(_flush_batch(updater, batch, args))
                    batch = []
                    batches_done += 1
                    dumper.tick()
                continue
            # EOF — or, with --follow, a half-written trailing line the
            # producer has not finished: seek back and wait for the rest
            # rather than parsing a torn delta.
            if line:
                fh.seek(pos)
            if not args.follow:
                break
            if (args.idle_timeout is not None
                    and idle >= args.idle_timeout):
                break
            if batch and idle >= args.poll_interval:
                # producer went quiet for a full poll: flush the partial
                # batch rather than sitting on deltas indefinitely (but
                # never flush per tick while lines are still arriving —
                # that would defeat --batch-size)
                _emit(_flush_batch(updater, batch, args))
                batch = []
                batches_done += 1
                continue
            time.sleep(args.poll_interval)
            idle += args.poll_interval
            dumper.tick()
        if batch and (args.max_batches is None
                      or batches_done < args.max_batches):
            # end of input: flush the final partial batch
            _emit(_flush_batch(updater, batch, args))
            batches_done += 1
    dumper.tick(force=dumper.interval is not None)
    _emit({"event": "done", "batches": batches_done,
           "escalations": updater.num_escalations,
           "num_edges": updater.graph.num_edges})
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    obs.setup_observability(args)
    try:
        result = run_stream(args)
    except (ReproError, OSError) as exc:
        print(f"repro-stream: error: {exc}", file=sys.stderr)
        return 2
    obs.dump_metrics(args)
    return result


if __name__ == "__main__":    # pragma: no cover - exercised via main()
    sys.exit(main())
