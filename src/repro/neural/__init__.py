"""Neural substrate: layers, optimizers, autoencoder, SGNS trainer."""

from .autoencoder import Autoencoder
from .layers import ACTIVATIONS, Activation, Dense
from .optim import SGD, Adam
from .sgns import SGNS, unigram_noise

__all__ = ["Dense", "Activation", "ACTIVATIONS", "SGD", "Adam",
           "Autoencoder", "SGNS", "unigram_noise"]
