"""Skip-gram with negative sampling — the trainer behind the walk baselines.

DeepWalk, node2vec, LINE, APP and VERSE all reduce to this objective:
maximize ``log sigmoid(w_c . c_ctx)`` for observed (center, context)
pairs and ``log sigmoid(-w_c . c_neg)`` for sampled negatives. The
implementation is mini-batched numpy with ``np.add.at`` scatter updates
(duplicate indices within a batch accumulate correctly).
"""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError, ParameterError
from ..rng import ensure_rng
from ..walks.alias import AliasSampler

__all__ = ["SGNS", "unigram_noise"]


def unigram_noise(frequencies: np.ndarray, power: float = 0.75) -> AliasSampler:
    """word2vec's smoothed unigram noise distribution (freq^0.75)."""
    freq = np.asarray(frequencies, dtype=np.float64)
    freq = np.maximum(freq, 1e-12) ** power
    return AliasSampler(freq)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class SGNS:
    """Two embedding tables (input/center and output/context).

    ``shared=True`` ties the tables (VERSE's single-vector setting);
    otherwise ``input_vectors`` and ``output_vectors`` are independent,
    which is what gives APP its forward/backward directionality.
    """

    def __init__(self, num_nodes: int, dim: int, *, num_context: int | None = None,
                 shared: bool = False, init_scale: float | None = None,
                 seed=None) -> None:
        if num_nodes < 1 or dim < 1:
            raise ParameterError("num_nodes and dim must be positive")
        rng = ensure_rng(seed)
        scale = init_scale if init_scale is not None else 0.5 / dim
        self.input_vectors = rng.uniform(-scale, scale, size=(num_nodes, dim))
        ctx_rows = num_nodes if num_context is None else num_context
        if shared:
            self.output_vectors = self.input_vectors
        else:
            self.output_vectors = rng.uniform(-scale, scale,
                                              size=(ctx_rows, dim))
        self.shared = shared

    def train(self, centers: np.ndarray, contexts: np.ndarray, *,
              noise: AliasSampler, epochs: int = 1, num_negatives: int = 5,
              lr: float = 0.025, batch_size: int = 4096, seed=None,
              ) -> float:
        """Train on the given pair corpus; returns the final batch loss."""
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        if centers.shape != contexts.shape:
            raise DimensionError("centers and contexts must align")
        if len(centers) == 0:
            return 0.0
        rng = ensure_rng(seed)
        loss = 0.0
        total_batches = max(1, epochs * ((len(centers) - 1) // batch_size + 1))
        batch_idx = 0
        for _ in range(epochs):
            order = rng.permutation(len(centers))
            for start in range(0, len(centers), batch_size):
                sel = order[start:start + batch_size]
                # linear learning-rate decay, as in word2vec
                step = lr * max(0.05, 1.0 - batch_idx / total_batches)
                loss = self._batch(centers[sel], contexts[sel], noise,
                                   num_negatives, step, rng)
                batch_idx += 1
        return loss

    def _batch(self, centers: np.ndarray, contexts: np.ndarray,
               noise: AliasSampler, num_negatives: int, lr: float,
               rng: np.random.Generator) -> float:
        w = self.input_vectors[centers]                       # (b, d)
        c_pos = self.output_vectors[contexts]                 # (b, d)
        b = len(centers)
        negs = noise.sample(b * num_negatives, seed=rng).reshape(b, num_negatives)
        c_neg = self.output_vectors[negs]                     # (b, neg, d)

        pos_score = _sigmoid(np.einsum("bd,bd->b", w, c_pos))
        neg_score = _sigmoid(np.einsum("bd,bnd->bn", w, c_neg))
        loss = float(-(np.log(np.maximum(pos_score, 1e-12)).sum()
                       + np.log(np.maximum(1.0 - neg_score, 1e-12)).sum()) / b)

        grad_pos = (pos_score - 1.0)[:, None]                 # d/d(w.c_pos)
        grad_neg = neg_score[:, :, None]                      # d/d(w.c_neg)
        grad_w = grad_pos * c_pos + np.einsum("bnd,bn->bd", c_neg, neg_score)
        grad_cpos = grad_pos * w
        grad_cneg = grad_neg * w[:, None, :]

        np.add.at(self.input_vectors, centers, -lr * grad_w)
        np.add.at(self.output_vectors, contexts, -lr * grad_cpos)
        np.add.at(self.output_vectors, negs.ravel(),
                  -lr * grad_cneg.reshape(-1, grad_cneg.shape[-1]))
        return loss
