"""In-place optimizers for the numpy neural stack."""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ParameterError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ParameterError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters) -> None:
        """Apply one update to ``(value, grad)`` pairs (in place)."""
        for value, grad in parameters:
            if self.momentum:
                vel = self._velocity.setdefault(id(value),
                                                np.zeros_like(value))
                vel *= self.momentum
                vel -= self.lr * grad
                value += vel
            else:
                value -= self.lr * grad


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ParameterError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters) -> None:
        """Apply one Adam update to ``(value, grad)`` pairs (in place)."""
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for value, grad in parameters:
            m = self._m.setdefault(id(value), np.zeros_like(value))
            v = self._v.setdefault(id(value), np.zeros_like(value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
