"""Minimal dense neural-network layers with manual backprop.

Just enough machinery for the paper's neural baselines (DNGR's stacked
autoencoder, DRNE's recurrent aggregator, GraphGAN's generator and
discriminator) without any deep-learning framework: each layer caches
its forward inputs and exposes ``backward`` returning the gradient with
respect to its input while accumulating parameter gradients.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng

__all__ = ["Dense", "Activation", "ACTIVATIONS"]


def _relu(z):
    return np.maximum(z, 0.0)


def _relu_grad(z, _out):
    return (z > 0).astype(np.float64)


def _sigmoid(z):
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _sigmoid_grad(_z, out):
    return out * (1.0 - out)


def _tanh(z):
    return np.tanh(z)


def _tanh_grad(_z, out):
    return 1.0 - out * out


def _identity(z):
    return z


def _identity_grad(z, _out):
    return np.ones_like(z)


#: name -> (function, gradient-from-(input, output)) pairs
ACTIVATIONS = {
    "relu": (_relu, _relu_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "tanh": (_tanh, _tanh_grad),
    "identity": (_identity, _identity_grad),
}


class Dense:
    """Fully connected layer ``out = act(x W + b)`` with Xavier init."""

    def __init__(self, in_dim: int, out_dim: int, activation: str = "identity",
                 *, seed=None) -> None:
        if activation not in ACTIVATIONS:
            raise ParameterError(f"unknown activation {activation!r}")
        rng = ensure_rng(seed)
        limit = np.sqrt(6.0 / (in_dim + out_dim))
        self.weight = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.activation = activation
        self._act, self._act_grad = ACTIVATIONS[activation]
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._z = x @ self.weight + self.bias
        self._out = self._act(self._z)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return gradient w.r.t. the input."""
        if self._x is None:
            raise ParameterError("backward() before forward()")
        grad_z = grad_out * self._act_grad(self._z, self._out)
        self.grad_weight += self._x.T @ grad_z
        self.grad_bias += grad_z.sum(axis=0)
        return grad_z @ self.weight.T

    def zero_grad(self) -> None:
        self.grad_weight[:] = 0.0
        self.grad_bias[:] = 0.0

    @property
    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(value, gradient) pairs, consumed by the optimizers."""
        return [(self.weight, self.grad_weight), (self.bias, self.grad_bias)]


class Activation:
    """Standalone activation layer (kept for explicit architectures)."""

    def __init__(self, name: str) -> None:
        if name not in ACTIVATIONS:
            raise ParameterError(f"unknown activation {name!r}")
        self._act, self._act_grad = ACTIVATIONS[name]
        self._z: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._z = x
        self._out = self._act(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._act_grad(self._z, self._out)

    def zero_grad(self) -> None:  # pragma: no cover - no parameters
        pass

    @property
    def parameters(self) -> list:
        return []
