"""MLP autoencoder with manual backprop (DNGR's embedding machine)."""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from ..rng import ensure_rng, spawn_rngs
from .layers import Dense
from .optim import Adam

__all__ = ["Autoencoder"]


class Autoencoder:
    """Symmetric encoder/decoder trained on mean-squared reconstruction.

    ``hidden_dims`` describes the encoder half, e.g. ``(256, 128)``
    encodes ``in_dim -> 256 -> 128``; the decoder mirrors it. The middle
    activation is ``tanh`` so codes are bounded (as in DNGR); the output
    layer is linear.
    """

    def __init__(self, in_dim: int, hidden_dims: tuple[int, ...], *,
                 activation: str = "tanh", lr: float = 1e-3,
                 seed=None) -> None:
        if not hidden_dims:
            raise ParameterError("need at least one hidden dim")
        rngs = spawn_rngs(seed, 2 * len(hidden_dims))
        dims = (in_dim, *hidden_dims)
        self.encoder = [Dense(dims[i], dims[i + 1], activation, seed=rngs[i])
                        for i in range(len(hidden_dims))]
        rev = dims[::-1]
        self.decoder = []
        for i in range(len(hidden_dims)):
            act = activation if i < len(hidden_dims) - 1 else "identity"
            self.decoder.append(Dense(rev[i], rev[i + 1], act,
                                      seed=rngs[len(hidden_dims) + i]))
        self.optimizer = Adam(lr=lr)

    # ------------------------------------------------------------------
    def _layers(self):
        return [*self.encoder, *self.decoder]

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Forward pass through the encoder only."""
        out = x
        for layer in self.encoder:
            out = layer.forward(out)
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self._layers():
            out = layer.forward(out)
        return out

    def train_batch(self, batch: np.ndarray) -> float:
        """One gradient step on MSE reconstruction; returns the loss."""
        for layer in self._layers():
            layer.zero_grad()
        recon = self.forward(batch)
        diff = recon - batch
        loss = float((diff * diff).mean())
        grad = 2.0 * diff / diff.size
        for layer in reversed(self._layers()):
            grad = layer.backward(grad)
        params = []
        for layer in self._layers():
            params.extend(layer.parameters)
        self.optimizer.step(params)
        return loss

    def fit(self, data: np.ndarray, *, epochs: int = 30,
            batch_size: int = 256, seed=None) -> list[float]:
        """Minibatch training; returns the per-epoch mean losses."""
        rng = ensure_rng(seed)
        losses = []
        n = len(data)
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = data[order[start:start + batch_size]]
                epoch_loss += self.train_batch(batch)
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses
