"""Node reweighting: Algorithms 2 (backward) and 4 (forward) of the paper.

Each node ``v`` receives a forward weight ``w_fwd[v]`` and a backward
weight ``w_bwd[v]``; coordinate descent on Eq. (6) updates one weight at
a time by its closed-form minimizer (Eq. 8 / Eq. 23) clamped to
``>= 1/n``. A full epoch costs ``O(n k'^2)`` thanks to the shared
aggregates of Eq. (9)/(10)/(13) (named ``xi, chi, rho1, rho2, lam_mat,
phi`` as in the paper) with ``rho1, rho2`` maintained incrementally
(Eq. 11 / 26).

Three update modes are provided:

* ``sequential`` — the faithful Gauss–Seidel loop of Algorithm 2/4
  (random node order, incremental ``rho`` updates);
* ``jacobi`` — all coordinates updated from the same aggregates in one
  vectorized shot (an ablation; much faster on huge graphs, slightly
  different trajectory);
* naive reference functions that evaluate the Eq. (7)/(23) sums directly
  in ``O(n k')`` per node — used only by tests to pin down the fast path.

``b1`` handling: Eq. (14) approximates ``b1`` via the AM-GM sandwich of
Eq. (12) with a ``k'/2`` multiplier. Since ``b1`` is exactly
``Y_v Lambda Y_v^T - w_fwd[v]^2 (X_v . Y_v)^2`` and ``Y_v Lambda Y_v^T``
is already needed for ``a3``, we also expose ``exact_b1=True`` as a
zero-extra-cost ablation of this design choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DimensionError, ParameterError
from ..rng import ensure_rng

__all__ = [
    "BackwardAggregates", "ForwardAggregates",
    "backward_aggregates", "forward_aggregates",
    "update_backward_weights", "update_forward_weights",
    "naive_backward_terms", "naive_forward_terms",
]


def _check_inputs(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                  w_bwd: np.ndarray) -> None:
    if x.ndim != 2 or x.shape != y.shape:
        raise DimensionError("X and Y must be (n, k') with identical shapes")
    n = x.shape[0]
    if w_fwd.shape != (n,) or w_bwd.shape != (n,):
        raise DimensionError("weights must be length-n vectors")


@dataclass
class BackwardAggregates:
    """Shared terms of Eq. (9), (10), (13) for the backward sweep."""

    xi: np.ndarray        # sum_u d_out(u) w_fwd[u] X_u               (k',)
    chi: np.ndarray       # sum_u w_fwd[u] X_u                        (k',)
    lam_mat: np.ndarray   # sum_u w_fwd[u]^2 X_u^T X_u                (k', k')
    rho1: np.ndarray      # sum_v w_bwd[v] Y_v                        (k',)
    rho2: np.ndarray      # sum_v w_fwd[v]^2 w_bwd[v] (X_v.Y_v) X_v   (k',)
    phi: np.ndarray       # phi[r] = sum_u w_fwd[u]^2 X_u[r]^2        (k',)


@dataclass
class ForwardAggregates:
    """Shared terms of Eq. (24), (25), (28) for the forward sweep."""

    xi: np.ndarray        # sum_v d_in(v) w_bwd[v] Y_v                (k',)
    chi: np.ndarray       # sum_v w_bwd[v] Y_v                        (k',)
    lam_mat: np.ndarray   # sum_v w_bwd[v]^2 Y_v^T Y_v                (k', k')
    rho1: np.ndarray      # sum_u w_fwd[u] X_u                        (k',)
    rho2: np.ndarray      # sum_v w_fwd[v] w_bwd[v]^2 (X_v.Y_v) Y_v   (k',)
    phi: np.ndarray       # phi[r] = sum_v w_bwd[v]^2 Y_v[r]^2        (k',)


def backward_aggregates(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                        w_bwd: np.ndarray, d_out: np.ndarray,
                        ) -> BackwardAggregates:
    """Compute Lines 1-3 of Algorithm 2 in ``O(n k'^2)``."""
    xy = np.einsum("ij,ij->i", x, y)
    wf2 = w_fwd * w_fwd
    return BackwardAggregates(
        xi=(d_out * w_fwd) @ x,
        chi=w_fwd @ x,
        lam_mat=x.T @ (wf2[:, None] * x),
        rho1=w_bwd @ y,
        rho2=(wf2 * w_bwd * xy) @ x,
        phi=wf2 @ (x * x),
    )


def forward_aggregates(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                       w_bwd: np.ndarray, d_in: np.ndarray,
                       ) -> ForwardAggregates:
    """Compute Line 1-3 of Algorithm 4 in ``O(n k'^2)``."""
    xy = np.einsum("ij,ij->i", x, y)
    wb2 = w_bwd * w_bwd
    return ForwardAggregates(
        xi=(d_in * w_bwd) @ y,
        chi=w_bwd @ y,
        lam_mat=y.T @ (wb2[:, None] * y),
        rho1=w_fwd @ x,
        rho2=(w_fwd * wb2 * xy) @ y,
        phi=wb2 @ (y * y),
    )


def _solve(numerator: float, denominator: float, floor: float) -> float:
    if denominator <= 1e-300:
        return floor
    return max(floor, numerator / denominator)


def update_backward_weights(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                            w_bwd: np.ndarray, d_out: np.ndarray,
                            d_in: np.ndarray, lam: float, *,
                            mode: str = "sequential", exact_b1: bool = False,
                            seed=None) -> np.ndarray:
    """One epoch of Algorithm 2 (``updateBwdWeights``); returns new weights."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n, k_prime = x.shape
    floor = 1.0 / n
    agg = backward_aggregates(x, y, w_fwd, w_bwd, d_out)
    xy = np.einsum("ij,ij->i", x, y)
    wf2 = w_fwd * w_fwd

    if mode == "jacobi":
        y_chi = y @ agg.chi
        proj = y_chi - w_fwd * xy
        a1 = y @ agg.xi
        a2 = d_in * proj
        b2 = proj * proj
        y_lam = y @ agg.lam_mat                      # (n, k')
        y_lam_y = np.einsum("ij,ij->i", y_lam, y)
        a3 = (y_lam @ agg.rho1 - w_bwd * y_lam_y - y @ agg.rho2
              + w_bwd * wf2 * xy * xy)
        if exact_b1:
            b1 = y_lam_y - wf2 * xy * xy
        else:
            b1 = 0.5 * k_prime * ((y * y) @ agg.phi
                                  - wf2 * ((y * x) ** 2).sum(axis=1))
        denom = b1 + b2 + lam
        new = np.where(denom > 1e-300, (a1 + a2 - a3) / np.maximum(denom, 1e-300),
                       floor)
        return np.maximum(floor, new)

    if mode != "sequential":
        raise ParameterError(f"unknown update mode {mode!r}")

    rng = ensure_rng(seed)
    out = w_bwd.astype(np.float64).copy()
    rho1 = agg.rho1.copy()
    rho2 = agg.rho2.copy()
    for v in rng.permutation(n):
        yv = y[v]
        xv = x[v]
        xy_v = xy[v]
        lam_yv = agg.lam_mat @ yv
        y_lam_y = float(yv @ lam_yv)
        a1 = float(agg.xi @ yv)
        proj = float(agg.chi @ yv) - w_fwd[v] * xy_v
        a2 = d_in[v] * proj
        b2 = proj * proj
        a3 = (float(rho1 @ lam_yv) - out[v] * y_lam_y - float(rho2 @ yv)
              + out[v] * wf2[v] * xy_v * xy_v)
        if exact_b1:
            b1 = y_lam_y - wf2[v] * xy_v * xy_v
        else:
            b1 = 0.5 * k_prime * (float((yv * yv) @ agg.phi)
                                  - wf2[v] * float(((yv * xv) ** 2).sum()))
        new = _solve(a1 + a2 - a3, b1 + b2 + lam, floor)
        delta = new - out[v]
        if delta != 0.0:
            rho1 += delta * yv                                   # Eq. (11)
            rho2 += delta * wf2[v] * xy_v * xv
            out[v] = new
    return out


def update_forward_weights(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                           w_bwd: np.ndarray, d_out: np.ndarray,
                           d_in: np.ndarray, lam: float, *,
                           mode: str = "sequential", exact_b1: bool = False,
                           seed=None) -> np.ndarray:
    """One epoch of Algorithm 4 (``updateFwdWeights``); returns new weights."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n, k_prime = x.shape
    floor = 1.0 / n
    agg = forward_aggregates(x, y, w_fwd, w_bwd, d_in)
    xy = np.einsum("ij,ij->i", x, y)
    wb2 = w_bwd * w_bwd

    if mode == "jacobi":
        x_chi = x @ agg.chi
        proj = x_chi - w_bwd * xy
        a1 = x @ agg.xi
        a2 = d_out * proj
        b2 = proj * proj
        x_lam = x @ agg.lam_mat
        x_lam_x = np.einsum("ij,ij->i", x_lam, x)
        a3 = (x_lam @ agg.rho1 - w_fwd * x_lam_x - x @ agg.rho2
              + w_fwd * wb2 * xy * xy)
        if exact_b1:
            b1 = x_lam_x - wb2 * xy * xy
        else:
            b1 = 0.5 * k_prime * ((x * x) @ agg.phi
                                  - wb2 * ((x * y) ** 2).sum(axis=1))
        denom = b1 + b2 + lam
        new = np.where(denom > 1e-300, (a1 + a2 - a3) / np.maximum(denom, 1e-300),
                       floor)
        return np.maximum(floor, new)

    if mode != "sequential":
        raise ParameterError(f"unknown update mode {mode!r}")

    rng = ensure_rng(seed)
    out = w_fwd.astype(np.float64).copy()
    rho1 = agg.rho1.copy()
    rho2 = agg.rho2.copy()
    for u in rng.permutation(n):
        xu = x[u]
        yu = y[u]
        xy_u = xy[u]
        lam_xu = agg.lam_mat @ xu
        x_lam_x = float(xu @ lam_xu)
        a1 = float(agg.xi @ xu)
        proj = float(agg.chi @ xu) - w_bwd[u] * xy_u
        a2 = d_out[u] * proj
        b2 = proj * proj
        a3 = (float(rho1 @ lam_xu) - out[u] * x_lam_x - float(rho2 @ xu)
              + out[u] * wb2[u] * xy_u * xy_u)
        if exact_b1:
            b1 = x_lam_x - wb2[u] * xy_u * xy_u
        else:
            b1 = 0.5 * k_prime * (float((xu * xu) @ agg.phi)
                                  - wb2[u] * float(((xu * yu) ** 2).sum()))
        new = _solve(a1 + a2 - a3, b1 + b2 + lam, floor)
        delta = new - out[u]
        if delta != 0.0:
            rho1 += delta * xu                                   # Eq. (26)
            rho2 += delta * wb2[u] * xy_u * yu
            out[u] = new
    return out


# ----------------------------------------------------------------------
# Naive O(n k') / O(n^2) reference implementations of the Eq. (7) / (23)
# terms, used by the test suite to validate the accelerated formulas.
# ----------------------------------------------------------------------

def naive_backward_terms(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                         w_bwd: np.ndarray, d_out: np.ndarray,
                         d_in: np.ndarray, v: int,
                         ) -> tuple[float, float, float, float, float]:
    """``(a1, a2, a3, b1_exact, b2)`` for node ``v`` straight from Eq. (7)."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n = x.shape[0]
    s = x @ y[v]                        # s[u] = X_u . Y_v
    ws = w_fwd * s
    a1 = float((d_out * ws).sum())
    a2 = float(d_in[v] * (ws.sum() - ws[v]))
    # G[u, v'] = w_fwd[u] (X_u . Y_v') w_bwd[v']
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    row_sums = g.sum(axis=1) - g[np.arange(n), np.arange(n)] - g[:, v]
    # v' = v was subtracted twice for u = v; add it back once
    row_sums[v] += g[v, v]
    a3 = float((row_sums * ws).sum())
    b1 = float((ws * ws).sum() - ws[v] * ws[v])
    b2 = float((ws.sum() - ws[v]) ** 2)
    return a1, a2, a3, b1, b2


def naive_forward_terms(x: np.ndarray, y: np.ndarray, w_fwd: np.ndarray,
                        w_bwd: np.ndarray, d_out: np.ndarray,
                        d_in: np.ndarray, u: int,
                        ) -> tuple[float, float, float, float, float]:
    """``(a1', a2', a3', b1'_exact, b2')`` for node ``u`` from Eq. (23)."""
    _check_inputs(x, y, w_fwd, w_bwd)
    n = x.shape[0]
    s = y @ x[u]                        # s[v] = X_u . Y_v
    ws = w_bwd * s
    a1 = float((d_in * ws).sum())
    a2 = float(d_out[u] * (ws.sum() - ws[u]))
    g = (w_fwd[:, None] * (x @ y.T)) * w_bwd[None, :]
    col_sums = g.sum(axis=0) - g[np.arange(n), np.arange(n)] - g[u, :]
    col_sums[u] += g[u, u]
    a3 = float((col_sums * ws).sum())
    b1 = float((ws * ws).sum() - ws[u] * ws[u])
    b2 = float((ws.sum() - ws[u]) ** 2)
    return a1, a2, a3, b1, b2
